#!/usr/bin/env python
"""Record a traced run, replay it, and grade both with health checks.

The operator loop end to end: run a short FileBench OLTP workload
(fig 8's personality) with tracing on, compress the span stream into a
compact SPECsfs-style op-mix trace, replay that trace deterministically
against a *fresh* cluster, then run the ``repro health`` check registry
over the replay and print the verdict table — exiting with the Nagios
code (0 OK / 1 WARN / 2 CRITICAL) so the script itself can gate a CI
job.

Runs under either sim core:  REPRO_SIM_CORE=auto python
examples/health_and_replay.py
"""

import sys

from repro.experiments import Cluster, ClusterConfig
from repro.health import HealthReport, health_of_cluster, load_policy
from repro.health.sinks import render_stdout
from repro.workloads import (
    OltpParams,
    ReplayParams,
    record_trace,
    run_oltp,
    run_replay,
)


def main() -> int:
    # 1. Record: a short OLTP run with span tracing on.
    source = Cluster(ClusterConfig(transport="rdma-rw", strategy="dynamic",
                                   nclients=1, seed=2007, telemetry=True))
    run_oltp(source, OltpParams(readers=8, writers=3, ops_per_thread=6,
                                datafile_bytes=8 << 20))
    trace = record_trace(source.telemetry.tracer, source="oltp fig8 quick")
    print(f"recorded {trace.ops_total} ops from "
          f"{len(source.telemetry.tracer.spans)} spans: {trace.mix}")
    print(f"compact trace: {len(trace.to_json())} bytes of JSON\n")

    # 2. Replay: the same mix and size/offset distributions, played
    #    back deterministically against a brand-new cluster.
    target = Cluster(ClusterConfig(transport="rdma-rw", strategy="dynamic",
                                   nclients=2, seed=2007, telemetry=True))
    result = run_replay(target, trace,
                        ReplayParams(ops_per_thread=25, nthreads=4, seed=11))
    print(f"replayed {result.ops_total} ops in "
          f"{result.elapsed_us / 1e3:.1f} ms simulated "
          f"({result.ops_per_s:.0f} ops/s): {result.verb_counts}")
    print(f"latency: {result.latency}\n")

    # 3. Grade: the health check registry over the replay cluster.
    slo = load_policy(None, "replay")
    point = health_of_cluster(target, slo, label="oltp-replay")
    report = HealthReport(experiment="replay", scale="quick", slo=slo,
                          points=[point])
    print(render_stdout(report))
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
