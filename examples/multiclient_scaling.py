#!/usr/bin/env python
"""Multi-client scalability over a RAID back-end (the Fig 10 scenario).

Sweeps client count for RDMA and NFS/TCP-on-IPoIB against a server with
an 8-spindle RAID-0 and a page cache, at two cache sizes.  Shows the
three regimes the paper identifies: transport-bound (TCP), cache-bound
(RDMA with small memory) and back-end-bound (everyone, eventually).

Run:  python examples/multiclient_scaling.py        (takes a minute)
"""

from repro.analysis import LINUX_DDR_RAID
from repro.analysis.stats import format_table
from repro.api import Cluster, ClusterConfig, IozoneParams, run_iozone

FILE_BYTES = 48 << 20      # per-client file (paper: 1 GB, scaled 1/21)
CLIENTS = (1, 2, 3, 4, 6, 8)


def sweep(transport: str, cache_multiple: int) -> list:
    row = []
    for nclients in CLIENTS:
        cluster = Cluster(ClusterConfig(
            transport=transport,
            strategy="all-physical" if transport == "rdma-rw" else "dynamic",
            backend="raid",
            cache_bytes=cache_multiple * FILE_BYTES,
            nclients=nclients,
            profile=LINUX_DDR_RAID,
        ))
        result = run_iozone(cluster, IozoneParams(
            nthreads=1, record_bytes=1 << 20,
            file_bytes=FILE_BYTES, ops_per_thread=None,
        ))
        row.append(f"{result.read_mb_s:.0f}")
    return row


def main() -> None:
    rows = []
    for cache_multiple in (4, 8):
        for transport, label in (("rdma-rw", "RDMA"), ("tcp-ipoib", "IPoIB")):
            rows.append(
                [f"{label} ({cache_multiple}x cache)"] + sweep(transport, cache_multiple)
            )
    print(format_table(["series"] + [f"{n} clients" for n in CLIENTS], rows))
    print("\nRDMA rides the page cache to ~900 MB/s until the aggregate")
    print("working set spills it, then falls to spindle bandwidth; IPoIB is")
    print("host-cost-bound near 360 MB/s long before the disks matter.")


if __name__ == "__main__":
    main()
