#!/usr/bin/env python
"""Tune registration strategy for an OLTP workload (the Fig 8 scenario).

Runs the FileBench-style OLTP mix over the Read-Write transport with
each registration strategy and reports ops/s and client CPU per op —
the decision a deployment of this system would actually face.

Run:  python examples/oltp_registration_tuning.py
"""

from repro.analysis.stats import format_table
from repro.api import Cluster, ClusterConfig, OltpParams, run_oltp

STRATEGIES = [
    ("dynamic", "register/deregister every op"),
    ("fmr", "fast memory registration"),
    ("cache", "server buffer registration cache"),
]


def main() -> None:
    params = OltpParams(readers=50, writers=10, log_writers=1,
                        datafile_bytes=16 << 20, ops_per_thread=5)
    rows = []
    baseline = None
    for strategy, blurb in STRATEGIES:
        cluster = Cluster(ClusterConfig(transport="rdma-rw", strategy=strategy))
        result = run_oltp(cluster, params)
        if baseline is None:
            baseline = result.ops_per_s
        rows.append([
            strategy,
            blurb,
            f"{result.ops_per_s:.0f}",
            f"{result.ops_per_s / baseline - 1:+.0%}",
            f"{result.client_cpu_us_per_op:.1f}",
        ])
    print(format_table(
        ["strategy", "what it does", "ops/s", "vs dynamic", "client CPU us/op"],
        rows,
    ))
    print("\nThe paper's Fig 8 finding: the slab-backed registration cache")
    print("converts raw bandwidth gains into application throughput (+~50%),")
    print("while FMR only shaves the TPT transaction and stays near dynamic.")


if __name__ == "__main__":
    main()
