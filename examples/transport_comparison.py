#!/usr/bin/env python
"""Compare every transport the paper discusses on one workload.

Runs the same multi-threaded IOzone workload over the proposed
Read-Write design, the original Read-Read design, and NFS/TCP on IPoIB
and Gigabit Ethernet — the full comparison matrix behind the paper's
introduction.

Run:  python examples/transport_comparison.py
"""

from repro.analysis.stats import format_table
from repro.api import Cluster, ClusterConfig, IozoneParams, run_iozone

CONFIGS = [
    ("rdma-rw (proposed)", "rdma-rw", "cache"),
    ("rdma-rw (dynamic reg)", "rdma-rw", "dynamic"),
    ("rdma-rr (Callaghan)", "rdma-rr", "dynamic"),
    ("tcp over IPoIB", "tcp-ipoib", "dynamic"),
    ("tcp over GigE", "tcp-gige", "dynamic"),
]


def main() -> None:
    rows = []
    for label, transport, strategy in CONFIGS:
        cluster = Cluster(ClusterConfig(transport=transport, strategy=strategy))
        result = run_iozone(cluster, IozoneParams(nthreads=8, ops_per_thread=50))
        rows.append([
            label,
            f"{result.read_mb_s:.0f}",
            f"{result.write_mb_s:.0f}",
            f"{result.client_cpu_read * 100:.1f}%",
            f"{result.server_cpu_read * 100:.1f}%",
        ])
    print(format_table(
        ["transport", "read MB/s", "write MB/s", "client CPU", "server CPU"],
        rows,
    ))
    print("\nThe paper's claims, visible above: the Read-Write design beats")
    print("Read-Read on both bandwidth and client CPU; both demolish TCP;")
    print("the registration cache pushes reads toward the wire limit.")
    print("(A single NFS/TCP mount serializes host-side copies on one socket,")
    print("so IPoIB only pulls ahead of GigE with multiple clients — see")
    print("examples/multiclient_scaling.py for that picture.)")


if __name__ == "__main__":
    main()
