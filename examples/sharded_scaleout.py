#!/usr/bin/env python
"""Scale-out serving: QP multiplexing, server shards, striped data.

Builds the fig13 deployment shapes through the ``TopologyConfig``
surface of ``repro.api`` and shows what each layer buys:

1. the same mount count per-connection vs QP-muxed — registered
   receive memory and QP count collapse from O(N) to O(sqrt N);
2. mounts redirected across four server shards — the redirector's
   placement and the aggregate bandwidth win;
3. a pNFS-style striped mount (one metadata server, three data
   servers) — one file's bytes spread RAID-0 style across nodes.

Run:  python examples/sharded_scaleout.py
"""

from repro.api import IozoneParams, MuxConfig, TopologyConfig, connect, run_iozone

MOUNTS = 64
HOSTS = 4


def build(label: str, **topo):
    dep = connect(TopologyConfig(
        client_hosts=HOSTS, credits=8,
        transport="rdma-rw", strategy="dynamic", nclients=MOUNTS,
        server_workers=8, server_queue_depth=64, **topo))
    print(f"{label:<14} {dep.cluster.qp_count():>4} QPs")
    return dep


def main() -> None:
    # -- 1+2: connection cost, per-connection vs muxed vs sharded ----------
    print(f"{MOUNTS} mounts on {HOSTS} hosts:")
    per_conn = build("per-conn")
    muxed = build("muxed", mux=MuxConfig(), srq=True)
    sharded = build("muxed+sharded", servers=4, mux=True, srq=True)
    print(f"redirector placement: {sharded.cluster.redirector.counts()} "
          f"mounts per shard; mount 0 landed on shard "
          f"{sharded.shard_of(0)}")

    params = IozoneParams(nthreads=1, record_bytes=64 * 1024, ops_per_thread=4)
    for label, dep in (("per-conn", per_conn), ("muxed", muxed),
                       ("muxed+sharded", sharded)):
        r = run_iozone(dep.cluster, params)
        recv_kb = dep.cluster.server_recv_buffer_bytes() / 1024
        print(f"{label:<14} aggregate read {r.read_mb_s:7.1f} MB/s, "
              f"p99 {r.read_latency.p99 / 1000:6.1f} ms, "
              f"{recv_kb:6.1f} KB registered recv")

    # -- 3: pNFS-style striping across data servers ------------------------
    dep = connect(TopologyConfig(
        data_servers=3, stripe_unit_bytes=64 * 1024, mux=True, srq=True,
        transport="rdma-rw", strategy="dynamic", nclients=1))
    nfs = dep.mount()
    fh, _ = nfs.create(nfs.root, "striped.dat")
    payload = bytes(range(256)) * 2048                   # 512 KB
    written, _ = nfs.write(fh, 0, payload)
    data, eof, _ = nfs.read(fh, 0, written)
    assert data == payload and eof
    per_ds = [ds.node.hca.reads.value for ds in dep.cluster.data_stacks]
    print(f"\nstriped {written} bytes over {len(per_ds)} data servers; "
          f"per-DS RDMA Read bytes: {per_ds}")


if __name__ == "__main__":
    main()
