#!/usr/bin/env python
"""A complete NFS deployment, bootstrapped the way real ones are.

Walks the full stack: portmapper lookup → MOUNT with an export
allow-list → FSINFO negotiation → client-side caching with
close-to-open consistency → large I/O split at the negotiated transfer
size — all over the Read-Write RPC/RDMA transport with the server
registration cache.

Run:  python examples/full_deployment.py
"""

from repro.api import Cluster, ClusterConfig
from repro.nfs import (
    CachingNfsClient,
    ClientCacheConfig,
    Export,
    MountClient,
    MountServer,
    NfsClient,
    Portmapper,
)
from repro.nfs.mountd import MOUNT_PROG, MOUNT_VERS, MountError


def main() -> None:
    cluster = Cluster(ClusterConfig(transport="rdma-rw", strategy="cache",
                                    nclients=2))

    # Server-side services beyond NFS itself.
    pmap = Portmapper(cluster.rpc_server)
    pmap.set(MOUNT_PROG, MOUNT_VERS, 20048)
    exports = [
        Export("/pub"),
        Export("/home", allowed_clients=frozenset({"workstation-0"})),
    ]
    mountd = MountServer(cluster.rpc_server, cluster.fs, exports)

    def server_setup():
        # Carve the namespace the exports point at.
        fs = cluster.fs
        yield from fs.mkdir(fs.root_id, "pub")
        yield from fs.mkdir(fs.root_id, "home")

    cluster.run(server_setup())

    # -- client 0: full bootstrap -----------------------------------------
    mc0 = MountClient(cluster.mounts[0].transport, "workstation-0")

    def bootstrap():
        port = yield from mc0.getport(MOUNT_PROG, MOUNT_VERS)
        print(f"portmapper says mountd is at port {port}")
        print(f"exports: {(yield from mc0.list_exports())}")
        home_fh = yield from mc0.mount("/home")
        return home_fh

    home_fh = cluster.run(bootstrap())
    print("mounted /home (allow-listed client)")

    # -- client 1 is not on /home's allow-list -------------------------------
    mc1 = MountClient(cluster.mounts[1].transport, "laptop-7")

    def denied():
        try:
            yield from mc1.mount("/home")
        except MountError as exc:
            return exc.status
        return None

    print(f"laptop-7 mounting /home -> MNT3ERR status {cluster.run(denied())} "
          "(ACCES: export list enforced before any NFS op)")

    # -- cached I/O on the mounted tree -------------------------------------
    raw = NfsClient(cluster.mounts[0].transport, home_fh)
    cached = CachingNfsClient(raw, cluster.sim, ClientCacheConfig())

    def work():
        info = yield from raw.fsinfo(home_fh)
        print(f"FSINFO: rtmax={info.rtmax >> 10}KB wtmax={info.wtmax >> 10}KB")
        fh, _ = yield from raw.create(home_fh, "thesis.tex")
        handle = yield from cached.open(fh)
        chapter = b"\\section{NFS over RDMA}\n" * 20_000   # ~480 KB
        yield from cached.write(handle, 0, chapter)
        yield from cached.close(handle)                    # flush + commit
        # Re-open and read: revalidates, then serves from cache.
        handle = yield from cached.open(fh)
        rpcs_before = raw.ops.events
        data, eof = yield from cached.read(handle, 0, len(chapter))
        yield from cached.read(handle, 0, len(chapter))    # pure cache hit
        assert data == chapter and eof
        print(f"read {len(data)} bytes twice with "
              f"{raw.ops.events - rpcs_before} data RPCs after warmup; "
              f"cache hit ratio {cached.pages.hit_ratio():.0%}")
        # Large I/O honours the negotiated transfer ceiling.
        big = bytes(3 << 20)
        yield from raw.write_large(fh, 0, big, limit=info.wtmax)
        back, _ = yield from raw.read_large(fh, 0, len(big), limit=info.rtmax)
        assert back == big
        print(f"3 MB round-trip split into {-(-len(big) // info.wtmax)} "
              "wire transfers per direction")

    cluster.run(work())
    print(f"simulated time: {cluster.sim.now / 1e6:.2f} s; "
          f"server stags exposed: "
          f"{len(cluster.server_node.hca.tpt.stags_exposed_ever)}")


if __name__ == "__main__":
    main()
