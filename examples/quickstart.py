#!/usr/bin/env python
"""Quickstart: an NFS deployment over the Read-Write RPC/RDMA transport.

Builds a one-client simulated cluster (client + server nodes with SDR
InfiniBand HCAs, tmpfs backend), does ordinary file work through the
NFSv3 client, then shows what moved over RDMA and what it cost.

Run:  python examples/quickstart.py
"""

from repro.experiments import Cluster, ClusterConfig
from repro.workloads import IozoneParams, run_iozone


def main() -> None:
    cluster = Cluster(ClusterConfig(
        transport="rdma-rw",       # the paper's proposed design
        strategy="cache",          # server buffer registration cache (§4.3)
        backend="tmpfs",
    ))
    nfs = cluster.mounts[0].nfs

    # -- ordinary file work, end to end over simulated RDMA ---------------
    def session():
        home, _ = yield from nfs.mkdir(nfs.root, "home")
        fh, _ = yield from nfs.create(home, "hello.dat")
        payload = b"hello, rdma world! " * 10_000          # ~190 KB
        written, attrs = yield from nfs.write(fh, 0, payload)
        data, eof, _ = yield from nfs.read(fh, 0, written)
        assert data == payload and eof
        entries = yield from nfs.readdir(home)
        return written, [e.name for e in entries]

    written, names = cluster.run(session())
    print(f"wrote+verified {written} bytes; /home contains {names}")

    # -- what happened on the wire -----------------------------------------
    server_hca = cluster.server_node.hca
    print(f"server RDMA Writes: {server_hca.writes.value} bytes "
          f"(READ data pushed into client memory)")
    print(f"server RDMA Reads:  {server_hca.reads.value} bytes "
          f"(WRITE data pulled from client chunks)")
    print(f"server stags ever exposed: "
          f"{len(server_hca.tpt.stags_exposed_ever)}  <- the security win")

    # -- a quick bandwidth measurement ---------------------------------------
    result = run_iozone(cluster, IozoneParams(nthreads=8, ops_per_thread=60))
    print(f"IOzone 8 threads, 128K records: "
          f"read {result.read_mb_s:.0f} MB/s, write {result.write_mb_s:.0f} MB/s, "
          f"client CPU {result.client_cpu_read * 100:.1f}%")
    print(f"(simulated clock advanced {cluster.sim.now / 1e6:.2f} s)")


if __name__ == "__main__":
    main()
