#!/usr/bin/env python
"""Quickstart: an NFS deployment over the Read-Write RPC/RDMA transport.

Builds a one-client simulated cluster (client + server nodes with SDR
InfiniBand HCAs, tmpfs backend) through the public ``repro.api``
facade, does ordinary file work with synchronous NFS verbs, then shows
what moved over RDMA and what it cost.

Run:  python examples/quickstart.py
"""

from repro.api import ClusterConfig, IozoneParams, connect, run_iozone


def main() -> None:
    dep = connect(ClusterConfig.rdma_rw(
        strategy="cache",          # server buffer registration cache (§4.3)
        backend="tmpfs",
    ))
    nfs = dep.mount()

    # -- ordinary file work, end to end over simulated RDMA ---------------
    # Each verb steps the simulator until its RPC completes: no
    # generators, no cluster.run.
    home, _ = nfs.mkdir(nfs.root, "home")
    fh, _ = nfs.create(home, "hello.dat")
    payload = b"hello, rdma world! " * 10_000          # ~190 KB
    written, attrs = nfs.write(fh, 0, payload)
    data, eof, _ = nfs.read(fh, 0, written)
    assert data == payload and eof
    names = [e.name for e in nfs.readdir(home)]
    print(f"wrote+verified {written} bytes; /home contains {names}")

    # -- what happened on the wire -----------------------------------------
    server_hca = dep.cluster.server_node.hca
    print(f"server RDMA Writes: {server_hca.writes.value} bytes "
          f"(READ data pushed into client memory)")
    print(f"server RDMA Reads:  {server_hca.reads.value} bytes "
          f"(WRITE data pulled from client chunks)")
    print(f"server stags ever exposed: "
          f"{len(server_hca.tpt.stags_exposed_ever)}  <- the security win")

    # -- a quick bandwidth measurement ---------------------------------------
    result = run_iozone(dep.cluster, IozoneParams(nthreads=8, ops_per_thread=60))
    print(f"IOzone 8 threads, 128K records: "
          f"read {result.read_mb_s:.0f} MB/s, write {result.write_mb_s:.0f} MB/s, "
          f"client CPU {result.client_cpu_read * 100:.1f}%")
    print(f"(simulated clock advanced {dep.sim.now / 1e6:.2f} s)")


if __name__ == "__main__":
    main()
