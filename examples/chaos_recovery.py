#!/usr/bin/env python
"""Self-healing RPC/RDMA mounts under injected faults.

Builds a four-client deployment with a seeded chaos schedule — QP
kills, ~1.5% message loss, transient disk errors — and runs a
Postmark-style workload straight through it.  Nothing in the workload
handles failures: the transport's reply timers retransmit lost
messages with the same xid, the server's duplicate request cache
absorbs the duplicates (exactly-once for CREATE/REMOVE/RENAME), and a
dead queue pair triggers an automatic redial that replays the
in-flight call on the fresh connection.

Run:  python examples/chaos_recovery.py
"""

from repro.experiments.chaos import run_chaos_soak


def main() -> None:
    out = run_chaos_soak("quick", seed=2007, loss_rate=0.015)
    cluster = out.cluster
    faults = cluster.faults

    print("chaos schedule (seed 2007):")
    for kill in faults.plan.qp_kills:
        print(f"  t={kill.at_us / 1e3:7.1f} ms  kill QP of "
              f"client{kill.client_index % len(cluster.mounts)}")
    for df in faults.plan.disk_faults:
        print(f"  t={df.at_us / 1e3:7.1f} ms  arm {df.count} transient "
              "disk error(s)")
    loss = faults.plan.message_loss[0]
    print(f"  continuous: drop {loss.rate:.1%} of channel messages\n")

    status = "completed" if out.completed else "DID NOT COMPLETE"
    print(f"workload {status}: {out.verified_files} files verified, "
          f"{out.lost_writes} lost acknowledged writes, "
          f"{out.duplicate_executions} duplicate non-idempotent executions\n")

    print(out.summary.table())

    reconnects = sum(m.transport.reconnects.events for m in cluster.mounts)
    retrans = sum(m.transport.retransmissions.events for m in cluster.mounts)
    print(f"\n{faults.qp_kills_fired.events} QP kills healed by "
          f"{reconnects} automatic redials; {retrans} retransmissions "
          f"covered {faults.messages_dropped.events} dropped messages and "
          "every slow reply, with the DRC absorbing the duplicates; "
          "the workload never saw an error.")


if __name__ == "__main__":
    main()
