#!/usr/bin/env python
"""The §4.1 security story, live: attack both transport designs.

Demonstrates (1) the RDMA_DONE-withholding resource-exhaustion attack
against the Read-Read server, (2) its impossibility against the
Read-Write server, and (3) steering-tag guessing odds against each.

Run:  python examples/security_demo.py
"""

from repro.api import Cluster, ClusterConfig, IozoneParams, run_iozone
from repro.core.readread import ReadReadServer
from repro.nfs import NfsClient
from repro.security import (
    DoneWithholdingClient,
    StagGuessingAdversary,
    audit_server_exposure,
    stag_guess_success_probability,
)


def attack_read_read() -> None:
    print("== Read-Read design under attack ==")
    cluster = Cluster(ClusterConfig(transport="rdma-rr"))
    mount = cluster.mounts[0]

    # A malicious client: wire up a connection whose client never sends
    # RDMA_DONE, then read through it repeatedly.
    qp_c, qp_s = cluster.fabric.connect(mount.node, cluster.server_node)
    evil = DoneWithholdingClient(
        mount.node, qp_c, cluster.config.profile.rpcrdma, mount.transport.strategy
    )
    server_side = ReadReadServer(
        cluster.server_node, qp_s, cluster.config.profile.rpcrdma,
        cluster.server_strategy,
    )
    server_side.attach(cluster.rpc_server)
    evil.peer_ready = server_side.ready
    nfs = NfsClient(evil, cluster.nfs_server.root_handle())

    def attack():
        fh, _ = yield from nfs.create(nfs.root, "bait")
        yield from nfs.write(fh, 0, bytes(4 << 20))
        for i in range(16):
            yield from nfs.read(fh, i * 256 * 1024, 256 * 1024)

    cluster.run(attack())
    report = audit_server_exposure(cluster.server_node, [server_side])
    print(f"  reads completed normally; DONEs withheld: "
          f"{evil.dones_suppressed.events}")
    print(f"  server buffers pinned forever: {report['pending_done_ops']} ops, "
          f"{report['pending_done_bytes'] // 1024} KB")
    print(f"  server windows a stag-guesser could hit right now: "
          f"{report['exposed_regions_now']}")
    p = stag_guess_success_probability(report["exposed_regions_now"])
    print(f"  single uniform 32-bit guess success probability: {p:.3e}")


def attack_read_write() -> None:
    print("\n== Read-Write design under the same pressure ==")
    cluster = Cluster(ClusterConfig(transport="rdma-rw"))
    run_iozone(cluster, IozoneParams(nthreads=4, ops_per_thread=16))
    cluster.sim.run(until=cluster.sim.now + 100_000.0)
    report = audit_server_exposure(cluster.server_node, cluster.server_transports)
    print(f"  server stags ever exposed: {report['stags_exposed_ever']}")
    print(f"  exposed windows now: {report['exposed_regions_now']}")
    print(f"  DONE messages in the protocol at all: none — nothing to withhold")

    # Guessing against a server that exposes nothing.
    mount = cluster.mounts[0]

    def qp_factory():
        qc, _ = cluster.fabric.connect(mount.node, cluster.server_node)
        return qc

    adversary = StagGuessingAdversary(mount.node, qp_factory, seed=1)
    cluster.run(adversary.run(guesses=100))
    print(f"  {adversary.attempts.events} guessed RDMA reads -> "
          f"{adversary.successes.events} hits, {adversary.naks.events} NAKs")
    print(f"  server protection faults logged: "
          f"{cluster.server_node.hca.tpt.protection_faults.events}")


if __name__ == "__main__":
    attack_read_read()
    attack_read_write()
