#!/usr/bin/env python3
"""Standalone sim-purity lint over the source tree.

Usage::

    python tools/lint_sim.py [path ...]       # default: src/repro

Exit status 0 when clean, 1 when any finding survives suppression.
Rules and the ``# lint-sim: allow[rule]`` suppression syntax are
documented in :mod:`repro.check.purity` and DESIGN.md §11.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.check.purity import lint_paths  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    paths = [Path(a) for a in args] or [REPO_ROOT / "src" / "repro"]
    for path in paths:
        if not path.exists():
            print(f"lint_sim: no such path: {path}", file=sys.stderr)
            return 2
    findings = lint_paths(paths)
    for finding in findings:
        print(finding)
    checked = ", ".join(str(p) for p in paths)
    if findings:
        print(f"lint_sim: {len(findings)} finding(s) in {checked}")
        return 1
    print(f"lint_sim: clean ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
