#!/usr/bin/env python3
"""Benchmark regression gate: diff fresh BENCH_*.json against baselines.

Usage::

    python tools/bench_gate.py --fresh bench-out \
        [--baseline benchmarks/baselines] [--max-regress 15]

Compares per-figure ``events_per_sec`` from a fresh ``python -m repro
bench`` run against the committed baselines and exits nonzero when any
figure regresses by more than ``--max-regress`` percent (or when a
baselined figure is missing from the fresh run).  Faster-than-baseline
results always pass — the gate is one-sided.

Reads both BENCH schema versions: v2 (``schema_version``/``events``)
and the unversioned v1 files (``events_stepped``), so pre-v2 baselines
keep working.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "benchmarks" / "baselines"


def load_bench(path: Path) -> dict:
    """Normalize one BENCH_*.json (schema v1 or v2) to a common shape."""
    raw = json.loads(path.read_text())
    events = raw.get("events", raw.get("events_stepped"))
    if events is None:
        raise ValueError(f"{path}: neither 'events' nor 'events_stepped' present")
    eps = raw.get("events_per_sec")
    if eps is None:
        wall = raw.get("wall_seconds") or 0
        eps = round(events / wall) if wall else 0
    return {
        "experiment": raw.get("experiment", path.stem.replace("BENCH_", "")),
        "schema_version": raw.get("schema_version", 1),
        "events": events,
        "events_per_sec": eps,
        "wall_seconds": raw.get("wall_seconds", 0.0),
        "scale": raw.get("scale", "quick"),
    }


def load_dir(directory: Path) -> dict[str, dict]:
    return {
        bench["experiment"]: bench
        for bench in (load_bench(p) for p in sorted(directory.glob("BENCH_*.json")))
    }


def compare(baseline: dict[str, dict], fresh: dict[str, dict],
            max_regress: float) -> list[str]:
    """Return a list of failure messages (empty = gate passes)."""
    failures = []
    for name, base in sorted(baseline.items()):
        if name not in fresh:
            failures.append(f"{name}: missing from fresh bench run")
            continue
        base_eps = base["events_per_sec"]
        fresh_eps = fresh[name]["events_per_sec"]
        if base_eps <= 0:
            continue
        delta_pct = 100.0 * (fresh_eps - base_eps) / base_eps
        status = "OK" if delta_pct >= -max_regress else "REGRESSION"
        print(f"{name:>6}: {base_eps:>10,} -> {fresh_eps:>10,} events/s "
              f"({delta_pct:+6.1f}%)  {status}")
        if status != "OK":
            failures.append(
                f"{name}: events/sec fell {-delta_pct:.1f}% "
                f"(> {max_regress:.0f}% allowed): "
                f"{base_eps:,} -> {fresh_eps:,}")
    return failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--fresh", required=True, type=Path,
                    help="directory with the fresh BENCH_*.json files")
    ap.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                    help=f"baseline directory (default {DEFAULT_BASELINE})")
    ap.add_argument("--max-regress", type=float, default=15.0, metavar="PCT",
                    help="allowed events/sec drop per figure, percent (default 15)")
    args = ap.parse_args(argv)

    baseline = load_dir(args.baseline)
    fresh = load_dir(args.fresh)
    if not baseline:
        print(f"bench-gate: no BENCH_*.json baselines in {args.baseline}",
              file=sys.stderr)
        return 2
    if not fresh:
        print(f"bench-gate: no BENCH_*.json files in {args.fresh}",
              file=sys.stderr)
        return 2

    failures = compare(baseline, fresh, args.max_regress)
    if failures:
        print("\nbench-gate: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nbench-gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
