"""Operating-system model: CPUs, interrupts, slab allocator, threads.

The paper's CPU-utilization results (client CPU in Figs 6–9) and the
TCP-vs-RDMA scalability gap (Fig 10) are driven by where CPU cycles go:
data copies, per-operation protocol work, registration calls and
completion interrupts.  This package models a node's cores as a
contended resource with time-weighted utilization accounting, an
interrupt controller that charges per-interrupt CPU cost, a slab
allocator (the substrate for the server buffer-registration cache of
§4.3), and a kernel thread pool (the NFS server task queue of Fig 1).
"""

from repro.osmodel.cpu import CPU, CPUConfig
from repro.osmodel.interrupts import InterruptController
from repro.osmodel.slab import SlabAllocator, SlabCache, SlabObject
from repro.osmodel.threads import KernelThreadPool, TaskFailure

__all__ = [
    "CPU",
    "CPUConfig",
    "InterruptController",
    "KernelThreadPool",
    "TaskFailure",
    "SlabAllocator",
    "SlabCache",
    "SlabObject",
]
