"""Interrupt delivery with per-interrupt CPU cost.

Every completion interrupt steals CPU from the node.  The Read-Write
design eliminates the ``RDMA_DONE`` send (and its interrupt at the
server) and lets one send-completion interrupt cover all preceding RDMA
Writes — §4.2.  Charging interrupts here lets that saving show up in
measured utilization and throughput.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.sim import Counter, Simulator
from repro.osmodel.cpu import CPU


class InterruptController:
    """Charges CPU for each interrupt and invokes the handler process."""

    def __init__(
        self,
        sim: Simulator,
        cpu: CPU,
        cost_us: float = 4.0,
        coalesce_window_us: float = 0.0,
        name: str = "irq",
    ):
        if cost_us < 0:
            raise ValueError("interrupt cost must be non-negative")
        self.sim = sim
        self.cpu = cpu
        self.cost_us = cost_us
        self.coalesce_window_us = coalesce_window_us
        self.name = name
        self.delivered = Counter(f"{name}.delivered")
        self.coalesced = Counter(f"{name}.coalesced")
        self._last_delivery = -float("inf")

    def raise_irq(self, handler: Optional[Callable[[], Generator]] = None) -> Generator:
        """Process generator: deliver one interrupt.

        If a previous interrupt was delivered within the coalescing
        window the CPU charge is skipped (the handler still runs): this
        models completion-event moderation on the HCA.
        """
        now = self.sim.now
        if self.coalesce_window_us > 0 and now - self._last_delivery < self.coalesce_window_us:
            self.coalesced.add()
        else:
            self._last_delivery = now
            self.delivered.add()
            yield from self.cpu.consume(self.cost_us, priority=-1)
        if handler is not None:
            yield from handler()
