"""Slab allocator: size-classed buffer caches with reclaim.

This is the substrate for the server-side buffer registration cache of
§4.3: NFS buffer allocations are overridden to draw from per-size slab
caches, and a buffer that comes back from the slab *still registered*
skips the registration cost entirely.  Because the cache is keyed on the
slab object — not on a virtual address — it avoids the correctness
hazards of user-level virtual-address registration caches [Wyckoff &
Wu 2005], and because the slab participates in system reclaim it cannot
grow without bound.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.sim import Counter


def _round_up_pow2(n: int) -> int:
    if n <= 0:
        raise ValueError("slab object size must be positive")
    return 1 << (n - 1).bit_length()


@dataclass
class SlabObject:
    """One buffer handed out by a slab cache.

    ``registration`` is an opaque slot where the RPC/RDMA layer parks a
    live memory-region handle; the slab preserves it across free/alloc
    cycles, which is precisely what makes the registration cache work.
    """

    size_class: int
    buffer: bytearray
    registration: Any = None
    generation: int = 0

    @property
    def size(self) -> int:
        return self.size_class


class SlabCache:
    """A single size class: freelist of reusable objects.

    ``factory``/``destructor`` let callers back slab objects with other
    memory (the registration cache uses HCA-arena buffers so the cached
    objects are RDMA-addressable).
    """

    def __init__(self, size_class: int, name: str = "", factory=None, destructor=None):
        self.size_class = size_class
        self.name = name or f"slab-{size_class}"
        self.factory = factory or bytearray
        self.destructor = destructor
        self._free: deque[SlabObject] = deque()
        self.allocated = 0           # live objects handed out
        self.total_objects = 0       # live + cached
        self.hits = Counter(f"{self.name}.hits")
        self.misses = Counter(f"{self.name}.misses")

    def alloc(self) -> SlabObject:
        if self._free:
            obj = self._free.popleft()
            self.hits.add()
        else:
            obj = SlabObject(self.size_class, self.factory(self.size_class))
            self.total_objects += 1
            self.misses.add()
        self.allocated += 1
        return obj

    def free(self, obj: SlabObject) -> None:
        if obj.size_class != self.size_class:
            raise ValueError(f"object of class {obj.size_class} freed to {self.size_class} cache")
        if self.allocated <= 0:
            raise ValueError(f"double free into {self.name}")
        self.allocated -= 1
        obj.generation += 1
        self._free.append(obj)

    @property
    def cached(self) -> int:
        return len(self._free)

    def reclaim(self, target_objects: int) -> list[SlabObject]:
        """Shrink the freelist to ``target_objects``; return the evictees.

        Evictees are returned (not dropped) so the caller can tear down
        any live registrations they carry before the memory goes back to
        the page pool.
        """
        evicted: list[SlabObject] = []
        while len(self._free) > target_objects:
            obj = self._free.pop()  # LIFO: coldest stay, hottest reused
            self.total_objects -= 1
            evicted.append(obj)
        return evicted


class SlabAllocator:
    """Size-classed allocator front-end with a global memory budget."""

    def __init__(self, budget_bytes: float = float("inf"), name: str = "slab",
                 factory=None, destructor=None):
        self.budget_bytes = budget_bytes
        self.name = name
        self.factory = factory
        self.destructor = destructor
        self._caches: dict[int, SlabCache] = {}

    def cache_for(self, nbytes: int) -> SlabCache:
        size_class = _round_up_pow2(nbytes)
        cache = self._caches.get(size_class)
        if cache is None:
            cache = SlabCache(size_class, name=f"{self.name}-{size_class}",
                              factory=self.factory, destructor=self.destructor)
            self._caches[size_class] = cache
        return cache

    def alloc(self, nbytes: int) -> SlabObject:
        obj = self.cache_for(nbytes).alloc()
        self._maybe_reclaim()
        return obj

    def free(self, obj: SlabObject) -> None:
        cache = self._caches.get(obj.size_class)
        if cache is None:
            raise ValueError(f"free of object from unknown size class {obj.size_class}")
        cache.free(obj)
        self._maybe_reclaim()

    def footprint_bytes(self) -> int:
        return sum(c.total_objects * c.size_class for c in self._caches.values())

    def _maybe_reclaim(self) -> None:
        """Evict cold cached objects while over the memory budget."""
        if self.footprint_bytes() <= self.budget_bytes:
            return
        evictees: list[SlabObject] = []
        # Evict from the largest classes first: fewest evictions needed.
        for cache in sorted(self._caches.values(), key=lambda c: -c.size_class):
            while cache.cached and self.footprint_bytes() > self.budget_bytes:
                evictees.extend(cache.reclaim(cache.cached - 1))
            if self.footprint_bytes() <= self.budget_bytes:
                break
        for obj in evictees:
            if obj.registration is not None and hasattr(obj.registration, "invalidate"):
                obj.registration.invalidate()
                obj.registration = None
            if self.destructor is not None:
                self.destructor(obj.buffer)
