"""Kernel thread pool: the NFS server task queue of Fig 1.

Requests arrive on a :class:`~repro.sim.resources.Store`; ``nthreads``
worker processes pull and service them.  The pool width is what turns
the synchronous-RDMA-Read stall of the Read-Read design (§4.1) into a
throughput cap: while a server thread blocks waiting for an RDMA Read
to complete, it can service nothing else.

``max_queue`` bounds the run queue (None = unbounded, the historical
behaviour).  A bounded pool gives the dispatcher real backpressure:
transports reserve a slot with :meth:`KernelThreadPool.reserve_slot`
(blocking — the receive path stalls, which in turn starves credit
grants), while direct submitters get :class:`~repro.errors.PoolExhausted`
when no slot is free.  When ``max_queue`` is None both paths are
no-ops and schedule zero extra simulator events.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.errors import PoolExhausted
from repro.sim import Container, Counter, Simulator, Store


class KernelThreadPool:
    """Fixed pool of worker processes draining a shared task queue."""

    def __init__(
        self,
        sim: Simulator,
        nthreads: int,
        handler: Callable[[int, object], Generator],
        name: str = "pool",
        max_queue: Optional[int] = None,
    ):
        if nthreads < 1:
            raise ValueError("thread pool needs at least one thread")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be >= 1 (or None for unbounded)")
        self.sim = sim
        self.nthreads = nthreads
        self.handler = handler
        self.name = name
        self.max_queue = max_queue
        self.queue: Store = Store(sim, name=f"{name}.queue")
        #: run-queue slots; a task holds one from submission until a
        #: worker dequeues it.  None = unbounded (no slot accounting).
        self._slots: Optional[Container] = (
            Container(sim, capacity=max_queue, init=float(max_queue),
                      name=f"{name}.slots")
            if max_queue is not None else None
        )
        self.completed = Counter(f"{name}.completed")
        self.failed = Counter(f"{name}.failed")
        self.queue_waits = Counter(f"{name}.queue_waits")
        self.backlog_peak = 0
        self._stopping = False
        self._workers = [
            sim.process(self._worker(i), name=f"{name}.worker{i}") for i in range(nthreads)
        ]

    def reserve_slot(self) -> Generator:
        """Process: claim a run-queue slot, blocking while the queue is
        full.  Pair with ``submit(task, reserved=True)``.  Unbounded
        pools return immediately without touching the scheduler."""
        if self._slots is None:
            return
        if self._slots.level < 1:
            self.queue_waits.add()
        yield self._slots.get(1)

    def submit(self, task: object, reserved: bool = False) -> None:
        """Enqueue one task (non-blocking).

        On a bounded pool the caller either pre-reserved a slot
        (``reserved=True``) or one is claimed here; a full run queue
        raises :class:`PoolExhausted` rather than queueing unboundedly.
        """
        if self._stopping:
            raise RuntimeError(f"submit to stopped pool {self.name!r}")
        if self._slots is not None and not reserved:
            if self._slots.level < 1:
                raise PoolExhausted(
                    f"{self.name}: run queue full ({self.max_queue} slots)"
                )
            self._slots.get(1)
        self.queue.put(task)
        depth = len(self.queue)
        if depth > self.backlog_peak:
            self.backlog_peak = depth

    def stop(self) -> None:
        """Drain-stop: workers exit after finishing queued tasks."""
        self._stopping = True
        for _ in range(self.nthreads):
            self.queue.put(_STOP)

    @property
    def backlog(self) -> int:
        return len(self.queue)

    @property
    def free_slots(self) -> Optional[int]:
        """Open run-queue slots, or None when unbounded."""
        return None if self._slots is None else int(self._slots.level)

    def _worker(self, index: int) -> Generator:
        while True:
            task = yield self.queue.get()
            if task is _STOP:
                return
            if self._slots is not None:
                self._slots.put(1)
            try:
                yield from self.handler(index, task)
                self.completed.add()
            except TaskFailure:
                self.failed.add()


class _Stop:
    __slots__ = ()


_STOP = _Stop()


class TaskFailure(Exception):
    """Raised by handlers to record a failed task without killing the worker."""
