"""Kernel thread pool: the NFS server task queue of Fig 1.

Requests arrive on a :class:`~repro.sim.resources.Store`; ``nthreads``
worker processes pull and service them.  The pool width is what turns
the synchronous-RDMA-Read stall of the Read-Read design (§4.1) into a
throughput cap: while a server thread blocks waiting for an RDMA Read
to complete, it can service nothing else.
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.sim import Counter, Simulator, Store


class KernelThreadPool:
    """Fixed pool of worker processes draining a shared task queue."""

    def __init__(
        self,
        sim: Simulator,
        nthreads: int,
        handler: Callable[[int, object], Generator],
        name: str = "pool",
    ):
        if nthreads < 1:
            raise ValueError("thread pool needs at least one thread")
        self.sim = sim
        self.nthreads = nthreads
        self.handler = handler
        self.name = name
        self.queue: Store = Store(sim, name=f"{name}.queue")
        self.completed = Counter(f"{name}.completed")
        self.failed = Counter(f"{name}.failed")
        self._stopping = False
        self._workers = [
            sim.process(self._worker(i), name=f"{name}.worker{i}") for i in range(nthreads)
        ]

    def submit(self, task: object) -> None:
        """Enqueue one task (non-blocking; the queue is unbounded)."""
        if self._stopping:
            raise RuntimeError(f"submit to stopped pool {self.name!r}")
        self.queue.put(task)

    def stop(self) -> None:
        """Drain-stop: workers exit after finishing queued tasks."""
        self._stopping = True
        for _ in range(self.nthreads):
            self.queue.put(_STOP)

    @property
    def backlog(self) -> int:
        return len(self.queue)

    def _worker(self, index: int) -> Generator:
        while True:
            task = yield self.queue.get()
            if task is _STOP:
                return
            try:
                yield from self.handler(index, task)
                self.completed.add()
            except TaskFailure:
                self.failed.add()


class _Stop:
    __slots__ = ()


_STOP = _Stop()


class TaskFailure(Exception):
    """Raised by handlers to record a failed task without killing the worker."""
