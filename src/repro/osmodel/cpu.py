"""Multi-core CPU model with utilization accounting.

Work is expressed as microseconds of service demand.  ``consume`` claims
a core for that long; ``copy`` converts a byte count into service demand
through the node's memcpy bandwidth (this is what makes TCP and the
Read-Read client path CPU-hungry, and the zero-copy direct-I/O path of
the Read-Write design cheap — §4.2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.sim import Counter, Resource, Simulator, UtilizationMeter


@dataclass(frozen=True)
class CPUConfig:
    """Static description of a node's processor complex.

    ``memcpy_mb_s`` is the effective single-core copy bandwidth; 2007-era
    Opteron/Xeon boxes sustain roughly 1–2 GB/s for large copies.
    ``crypt_mb_s`` is the single-core software AES throughput — pre-AES-NI
    hardware manages on the order of 100–200 MB/s, which is what makes
    the encrypted-payload mitigation a measurable CPU cost rather than
    free.
    """

    cores: int = 2
    memcpy_mb_s: float = 1600.0
    crypt_mb_s: float = 140.0

    def copy_cost_us(self, nbytes: int) -> float:
        """Service demand, in microseconds, to copy ``nbytes`` once."""
        return nbytes / self.memcpy_mb_s  # MB/s == bytes/us

    def crypt_cost_us(self, nbytes: int) -> float:
        """Service demand, in microseconds, to AES one pass over ``nbytes``."""
        return nbytes / self.crypt_mb_s  # MB/s == bytes/us


class CPU:
    """A node's cores as a contended resource.

    All protocol code charges its service demand here, so utilization
    percentages fall out of the time-weighted meter, and saturation
    (e.g. IPoIB's copy-bound ceiling) emerges from queueing rather than
    being asserted.
    """

    def __init__(self, sim: Simulator, config: CPUConfig, name: str = "cpu"):
        self.sim = sim
        self.config = config
        self.name = name
        self.cores = Resource(sim, capacity=config.cores, name=f"{name}.cores")
        self.meter = UtilizationMeter(sim, capacity=config.cores, name=name)
        self.busy_us_total = 0.0
        self.crypt_bytes = Counter(f"{name}.crypt_bytes")

    def consume(self, service_us: float, priority: int = 0) -> Generator:
        """Process generator: occupy one core for ``service_us``."""
        if service_us < 0:
            raise ValueError(f"negative CPU demand {service_us!r}")
        if service_us == 0.0:
            return
        req = self.cores.request(priority=priority)
        yield req
        self.meter.acquire()
        try:
            yield self.sim.timeout(service_us)
            self.busy_us_total += service_us
        finally:
            self.meter.release()
            self.cores.release(req)

    def copy(self, nbytes: int, priority: int = 0) -> Generator:
        """Process generator: charge one memory copy of ``nbytes``."""
        yield from self.consume(self.config.copy_cost_us(nbytes), priority=priority)

    def crypt(self, nbytes: int, priority: int = 0) -> Generator:
        """Process generator: charge one AES pass over ``nbytes``."""
        self.crypt_bytes.add(nbytes)
        yield from self.consume(self.config.crypt_cost_us(nbytes), priority=priority)

    def stall(self, duration_us: float, priority: int = -1) -> Generator:
        """Process generator: seize *every* core for ``duration_us``.

        Models a whole-node stall (crash-restart window, checkpoint,
        scheduler livelock): all protocol work queues behind the stall
        and resumes when it ends.  High priority so the stall preempts
        the run queue rather than waiting politely at the back.
        """
        if duration_us <= 0:
            return
        requests = [self.cores.request(priority=priority)
                    for _ in range(self.config.cores)]
        for req in requests:
            yield req
            self.meter.acquire()
        try:
            yield self.sim.timeout(duration_us)
            self.busy_us_total += duration_us * self.config.cores
        finally:
            for req in requests:
                self.meter.release()
                self.cores.release(req)

    def utilization(self) -> float:
        """Mean fraction of all cores busy since the last window reset."""
        return self.meter.utilization()

    def reset_utilization_window(self) -> None:
        self.meter.reset_window()
