"""Span-based tracing over simulated time.

A :class:`Span` is one timed interval of work (an NFS op, an RPC call,
one WQE on an HCA, a disk read) stamped with the simulator clock.  Spans
form trees: every RPC gets a *trace id* at the client and every nested
span inherits it, so one NFS READ can be followed through client → RPC →
transport → HCA → server dispatch → file system → disk.

Two propagation mechanisms stitch the tree together without touching a
single wire byte (message sizes — and therefore simulated timing — are
exactly what they are with tracing off):

* **task spans** — the tracer keeps a ``Process → Span`` map keyed by
  ``sim.active_process`` (set by the engine on every resume).  A layer
  that starts a span *pushes* it as the current task span; anything the
  same process does underneath parents onto it, across arbitrarily deep
  ``yield from`` chains.
* **xid binding** — the client binds its ``rpc.call`` span to the RPC
  xid; the server side (a different process, possibly a different node)
  looks the xid up read-only to parent its dispatch span.  Retransmits
  reuse the xid, so the resent path lands in the same trace.

Export is Chrome ``trace_event`` JSON (the format Perfetto and
``chrome://tracing`` load): async ``b``/``e`` pairs keyed by trace id —
concurrent spans on one lane would overlap, which complete (``X``)
events cannot express — plus ``M`` metadata naming processes/lanes and
``i`` instants for point events (faults, redials).
"""

from __future__ import annotations

import json
from typing import Optional

__all__ = ["Span", "SpanTracer"]


class Span:
    """One timed interval; ``end()`` stamps the simulator clock."""

    __slots__ = (
        "_tracer",
        "name",
        "cat",
        "pid",
        "tid",
        "id",
        "trace_id",
        "parent_id",
        "start",
        "finish",
        "args",
    )

    def __init__(self, tracer, name, cat, pid, tid, span_id, trace_id, parent_id, start, args):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.pid = pid
        self.tid = tid
        self.id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.start = start
        self.finish: Optional[float] = None
        self.args = args

    def end(self, **extra: object) -> None:
        """Close the span at the current simulated instant (idempotent)."""
        if self.finish is None:
            self.finish = self._tracer.sim.now
            if extra:
                self.args.update(extra)

    @property
    def duration(self) -> float:
        end = self.finish if self.finish is not None else self._tracer.sim.now
        return end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Span {self.name} trace={self.trace_id} id={self.id} "
            f"[{self.start:.3f}, {self.finish if self.finish is not None else '...'}]>"
        )


class SpanTracer:
    """Records spans and instants against one :class:`Simulator`.

    The tracer never schedules events, never consumes CPU and never
    draws from any RNG — it only *reads* ``sim.now`` — so enabling it
    cannot perturb simulated time.
    """

    def __init__(self, sim):
        self.sim = sim
        self.spans: list[Span] = []
        self.instants: list[dict] = []
        self._next_trace_id = 1
        self._next_span_id = 1
        # Insertion-ordered name → numeric id maps (deterministic export).
        self._pids: dict[str, int] = {}
        self._tids: dict[tuple[int, str], int] = {}
        # Cross-process propagation state (see module docstring).
        self._xid_spans: dict[int, Span] = {}
        self._task_spans: dict[object, Span] = {}

    # -- id management ----------------------------------------------------
    def _pid(self, process_name: str) -> int:
        pid = self._pids.get(process_name)
        if pid is None:
            pid = self._pids[process_name] = len(self._pids) + 1
        return pid

    def _tid(self, pid: int, lane: str) -> int:
        key = (pid, lane)
        tid = self._tids.get(key)
        if tid is None:
            tid = self._tids[key] = len(self._tids) + 1
        return tid

    # -- recording --------------------------------------------------------
    def begin(self, name: str, cat: str, process: str, lane: str,
              parent: Optional[Span] = None, **args: object) -> Span:
        """Open a span now; inherits ``parent``'s trace id (or starts one)."""
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.id
        else:
            trace_id = self._next_trace_id
            self._next_trace_id += 1
            parent_id = None
        pid = self._pid(process)
        span = Span(self, name, cat, pid, self._tid(pid, lane),
                    self._next_span_id, trace_id, parent_id, self.sim.now, args)
        self._next_span_id += 1
        self.spans.append(span)
        return span

    def instant(self, name: str, cat: str, process: str, lane: str,
                **args: object) -> None:
        """Record a point event (fault injection, redial, cache hit...)."""
        pid = self._pid(process)
        self.instants.append({
            "name": name,
            "cat": cat,
            "ph": "i",
            "ts": self.sim.now,
            "pid": pid,
            "tid": self._tid(pid, lane),
            "s": "t",
            "args": dict(args),
        })

    # -- task-span propagation (same-process nesting) ---------------------
    def task_span(self) -> Optional[Span]:
        """The span the currently running process is working under."""
        proc = self.sim.active_process
        if proc is None:
            return None
        return self._task_spans.get(proc)

    def push_task(self, span: Span) -> Optional[Span]:
        """Make ``span`` the current process's task span; returns the old one."""
        proc = self.sim.active_process
        if proc is None:
            return None
        prev = self._task_spans.get(proc)
        self._task_spans[proc] = span
        return prev

    def pop_task(self, prev: Optional[Span]) -> None:
        """Restore the task span saved by the matching :meth:`push_task`."""
        proc = self.sim.active_process
        if proc is None:
            return
        if prev is None:
            self._task_spans.pop(proc, None)
        else:
            self._task_spans[proc] = prev

    # -- xid propagation (client → server parenting) ----------------------
    def bind_xid(self, xid: int, span: Span) -> None:
        self._xid_spans[xid] = span

    def xid_span(self, xid: int) -> Optional[Span]:
        return self._xid_spans.get(xid)

    def unbind_xid(self, xid: int, span: Span) -> None:
        # Only the binder removes its own binding (a reconnect may have
        # re-issued the xid under a newer call span).
        if self._xid_spans.get(xid) is span:
            del self._xid_spans[xid]

    # -- queries (test helpers) -------------------------------------------
    def find(self, name: Optional[str] = None, cat: Optional[str] = None,
             trace_id: Optional[int] = None) -> list[Span]:
        out = []
        for span in self.spans:
            if name is not None and span.name != name:
                continue
            if cat is not None and span.cat != cat:
                continue
            if trace_id is not None and span.trace_id != trace_id:
                continue
            out.append(span)
        return out

    def children(self, parent: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == parent.id]

    # -- export -----------------------------------------------------------
    def to_chrome(self) -> dict:
        """Chrome ``trace_event`` JSON object (Perfetto-loadable).

        Spans still open (e.g. a run stopped mid-flight) are closed at
        the current simulated instant so the file always balances.
        """
        now = self.sim.now
        events: list[dict] = []
        for process_name, pid in self._pids.items():
            events.append({"name": "process_name", "ph": "M", "pid": pid,
                           "tid": 0, "args": {"name": process_name}})
        for (pid, lane), tid in self._tids.items():
            events.append({"name": "thread_name", "ph": "M", "pid": pid,
                           "tid": tid, "args": {"name": lane}})
        for span in self.spans:
            ident = f"0x{span.trace_id:x}"
            args = {"span_id": span.id}
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            args.update(span.args)
            events.append({"name": span.name, "cat": span.cat, "ph": "b",
                           "id": ident, "pid": span.pid, "tid": span.tid,
                           "ts": span.start, "args": args})
            events.append({"name": span.name, "cat": span.cat, "ph": "e",
                           "id": ident, "pid": span.pid, "tid": span.tid,
                           "ts": span.finish if span.finish is not None else now})
        events.extend(self.instants)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome(), fh, separators=(",", ":"))
            fh.write("\n")
