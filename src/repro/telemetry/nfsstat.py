"""``nfsstat``/``mountstats``-style text report over the registry.

Renders what a kernel admin would get from ``nfsstat -c``, ``nfsstat
-s`` and ``/proc/self/mountstats`` rolled together: per-verb op counts
with exact latency percentiles, per-mount transport health (calls,
retransmits, reconnects), server dispatch and DRC activity, the whole
registration story (TPT transactions, FMR occupancy, regcache hit
rate), page-cache effectiveness and per-node HCA traffic.

Everything is read back *through the registry* — the report is proof
that :meth:`Telemetry.attach_cluster` absorbed the scattered counters.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.latency import LatencyRecorder
from repro.analysis.stats import format_table

__all__ = ["render_stats", "stats_dict"]


def _rows(registry, name):
    family = registry.get(name)
    return list(family.items()) if family is not None else []


def _fmt(value: float) -> str:
    return f"{value:.0f}" if float(value).is_integer() else f"{value:.1f}"


def _verb_section(telemetry: Any) -> str:
    """Per-verb table: client ops (all mounts merged), server ops, latency."""
    counts: dict[str, float] = {}
    recorders: dict[str, LatencyRecorder] = {}
    for labels, child in telemetry.client_ops.items():
        counts[labels["verb"]] = counts.get(labels["verb"], 0.0) + child.value
    for labels, child in telemetry.client_latency.items():
        merged = recorders.setdefault(labels["verb"], LatencyRecorder())
        merged.extend(child.recorder)
    server_counts = {labels["verb"]: child.value
                     for labels, child in telemetry.server_ops.items()}
    rows = []
    for verb in sorted(set(counts) | set(server_counts)):
        summary = recorders[verb].summarize() if verb in recorders else None
        rows.append([
            verb,
            _fmt(counts.get(verb, 0.0)),
            _fmt(server_counts.get(verb, 0.0)),
            f"{summary.mean:.1f}" if summary else "-",
            f"{summary.p50:.1f}" if summary else "-",
            f"{summary.p99:.1f}" if summary else "-",
            f"{summary.maximum:.1f}" if summary else "-",
        ])
    table = format_table(
        ["verb", "client ops", "server ops", "mean us", "p50 us", "p99 us",
         "max us"], rows)
    return "NFS per-verb operations:\n" + table


def _mount_section(registry: Any) -> str:
    mounts: dict[str, dict[str, float]] = {}
    for metric in ("rpc_calls_sent", "rpc_retransmits", "rpc_reconnects",
                   "rpc_calls_recovered", "rpc_credit_waits"):
        for labels, child in _rows(registry, metric):
            mounts.setdefault(labels["mount"], {})[metric] = child.value
    rows = [
        [mount, _fmt(vals.get("rpc_calls_sent", 0.0)),
         _fmt(vals.get("rpc_retransmits", 0.0)),
         _fmt(vals.get("rpc_reconnects", 0.0)),
         _fmt(vals.get("rpc_calls_recovered", 0.0)),
         _fmt(vals.get("rpc_credit_waits", 0.0))]
        for mount, vals in sorted(mounts.items())
    ]
    table = format_table(
        ["mount", "calls", "retrans", "reconnects", "recovered",
         "credit waits"], rows)
    return "RPC transport (per mount):\n" + table


def _scalar_lines(registry: Any, title: str,
                  metrics: list[tuple[str, str]]) -> str:
    lines = [title]
    for metric, label in metrics:
        for labels, child in _rows(registry, metric):
            suffix = ""
            if labels:
                suffix = " (" + ", ".join(f"{k}={v}" for k, v in
                                          sorted(labels.items())) + ")"
            lines.append(f"  {label}{suffix}: {_fmt(child.value)}")
    return "\n".join(lines)


def _server_section(registry: Any) -> str:
    return _scalar_lines(registry, "Server RPC dispatch:", [
        ("rpc_server_calls", "calls served"),
        ("rpc_server_failed", "calls failed"),
        ("nfsd_errors", "nfs error replies"),
        ("drc_inserts", "drc inserts"),
        ("drc_replays", "drc hits (replays)"),
        ("drc_drops", "drc in-progress drops"),
        ("rpc_queue_peak", "run-queue peak depth"),
        ("rpc_queue_waits", "run-queue full waits"),
    ])


def _srq_section(registry: Any) -> str:
    if registry.get("srq_entries") is None:
        return ""
    return _scalar_lines(registry, "Shared receive pool (SRQ):", [
        ("srq_entries", "pool entries"),
        ("srq_available", "posted + unclaimed now"),
        ("srq_min_available", "low-water mark"),
        ("srq_takes", "buffers claimed"),
        ("srq_recycles", "buffers reposted"),
        ("srq_low_watermark", "low-watermark threshold"),
        ("srq_low_watermark_hits", "low-watermark crossings"),
        ("srq_exhaustions", "pool-empty arrivals (RNR)"),
        ("srq_reclaimed_on_detach", "reclaimed on detach"),
        ("srq_registered_bytes", "registered recv bytes"),
    ])


def _registration_section(registry: Any) -> str:
    lines = [_scalar_lines(registry, "Registration:", [
        ("tpt_registrations", "tpt registrations"),
        ("tpt_deregistrations", "tpt deregistrations"),
        ("tpt_protection_faults", "protection faults"),
        ("fmr_pool_size", "fmr pool size"),
        ("fmr_mapped", "fmr mapped (occupancy)"),
        ("fmr_fallbacks", "fmr fallbacks"),
    ])]
    hits = {labels["side"]: child.value
            for labels, child in _rows(registry, "regcache_hits")}
    misses = {labels["side"]: child.value
              for labels, child in _rows(registry, "regcache_misses")}
    for side in sorted(set(hits) | set(misses)):
        h, m = hits.get(side, 0.0), misses.get(side, 0.0)
        rate = h / (h + m) if h + m else 0.0
        lines.append(f"  regcache (side={side}): {_fmt(h)} hits, "
                     f"{_fmt(m)} misses, {rate * 100:.1f}% hit rate")
    return "\n".join(lines)


def _pagecache_section(registry: Any) -> str:
    if registry.get("pagecache_hits") is None:
        return ""
    lines = [_scalar_lines(registry, "Server page cache:", [
        ("pagecache_hits", "hits"),
        ("pagecache_misses", "misses"),
        ("pagecache_evictions", "evictions"),
        ("pagecache_writebacks", "writebacks"),
        ("pagecache_resident_pages", "resident pages"),
    ])]
    hits = next((c.value for _, c in _rows(registry, "pagecache_hits")), 0.0)
    misses = next((c.value for _, c in _rows(registry, "pagecache_misses")), 0.0)
    if hits + misses:
        lines.append(f"  hit rate: {hits / (hits + misses) * 100:.1f}%")
    return "\n".join(lines)


def _hca_section(registry: Any) -> str:
    nodes: dict[str, dict[str, float]] = {}
    for metric in ("hca_send_ops", "hca_send_bytes", "hca_rdma_write_bytes",
                   "hca_rdma_read_bytes", "hca_rnr_events"):
        for labels, child in _rows(registry, metric):
            nodes.setdefault(labels["node"], {})[metric] = child.value
    rows = [
        [node, _fmt(v.get("hca_send_ops", 0.0)),
         _fmt(v.get("hca_send_bytes", 0.0)),
         _fmt(v.get("hca_rdma_write_bytes", 0.0)),
         _fmt(v.get("hca_rdma_read_bytes", 0.0)),
         _fmt(v.get("hca_rnr_events", 0.0))]
        for node, v in sorted(nodes.items())
    ]
    table = format_table(
        ["node", "sends", "send bytes", "write bytes", "read bytes", "rnr"],
        rows)
    return "HCA traffic (per node):\n" + table


def _mux_section(registry: Any) -> str:
    if (registry.get("mux_channels") is None
            and registry.get("shard_mounts") is None):
        return ""
    return _scalar_lines(registry, "QP multiplexing / sharding:", [
        ("mux_channels", "shared QPs"),
        ("mux_lanes", "virtual lanes"),
        ("server_connections", "server-side connections"),
        ("lane_order_violations", "lane FIFO violations"),
        ("shard_mounts", "mounts placed"),
    ])


def _security_section(registry: Any) -> str:
    if registry.get("security_naks") is None:
        return ""
    return _scalar_lines(registry, "Security (hardened data plane):", [
        ("security_naks", "protection naks"),
        ("security_naks_by_cause", "naks"),
        ("security_malformed_wrs", "malformed wrs"),
        ("security_bad_calls", "bad rpc calls"),
        ("security_lease_reclaims", "lease reclaims"),
        ("security_lease_reclaimed_bytes", "lease reclaimed bytes"),
        ("security_quota_evictions", "quota evictions"),
        ("security_quota_evicted_bytes", "quota evicted bytes"),
        ("security_active_exposures", "active exposures (pending DONE)"),
        ("security_exposure_bytes", "exposed bytes"),
        ("security_warnings", "clients warned"),
        ("security_throttles", "clients throttled"),
        ("security_quarantined_mounts", "quarantined mounts"),
        ("security_redials_refused", "redials refused"),
    ])


def _fault_section(registry: Any) -> str:
    if registry.get("faults_messages_dropped") is None:
        return ""
    return _scalar_lines(registry, "Fault injection:", [
        ("faults_messages_dropped", "messages dropped"),
        ("faults_delay_spikes", "delay spikes"),
        ("faults_qp_kills", "qp kills"),
        ("faults_server_stalls", "server stalls"),
        ("faults_server_crashes", "server crashes"),
    ])


def _require_telemetry(cluster):
    telemetry = getattr(cluster, "telemetry", None)
    if telemetry is None:
        raise ValueError(
            "cluster has no telemetry (build with ClusterConfig(telemetry=True) "
            "or call cluster.enable_telemetry())")
    return telemetry


def stats_dict(cluster: Any) -> dict:
    """The nfsstat report as plain data (the ``--json`` / health-sink form).

    Two views of the same registry:

    * ``verbs`` — per-verb client/server op counts with the merged
      latency distribution (mean/p50/p90/p99/max), mirroring the text
      report's first table;
    * ``samples`` — every registry sample as ``{name, labels, value}``
      in collection order, so nothing the registry knows is dropped.

    Everything is JSON-native (str/int/float/dict/list); round-tripping
    through ``json.dumps``/``loads`` is lossless.
    """
    telemetry = _require_telemetry(cluster)
    counts: dict[str, float] = {}
    recorders: dict[str, LatencyRecorder] = {}
    for labels, child in telemetry.client_ops.items():
        counts[labels["verb"]] = counts.get(labels["verb"], 0.0) + child.value
    for labels, child in telemetry.client_latency.items():
        merged = recorders.setdefault(labels["verb"], LatencyRecorder())
        merged.extend(child.recorder)
    server_counts = {labels["verb"]: child.value
                     for labels, child in telemetry.server_ops.items()}
    verbs = {}
    for verb in sorted(set(counts) | set(server_counts)):
        entry = {
            "client_ops": counts.get(verb, 0.0),
            "server_ops": server_counts.get(verb, 0.0),
        }
        if verb in recorders:
            s = recorders[verb].summarize()
            entry["latency_us"] = {
                "count": s.count, "mean": s.mean, "p50": s.p50,
                "p90": s.p90, "p99": s.p99, "max": s.maximum,
            }
        verbs[verb] = entry
    samples = [
        {"name": s.name, "labels": dict(s.labels), "value": s.value}
        for s in telemetry.registry.collect()
    ]
    return {"verbs": verbs, "samples": samples}


def render_stats(cluster: Any) -> str:
    """The full nfsstat-style report for a cluster with telemetry attached."""
    telemetry = _require_telemetry(cluster)
    registry = telemetry.registry
    sections = [
        _verb_section(telemetry),
        _mount_section(registry),
        _server_section(registry),
        _srq_section(registry),
        _mux_section(registry),
        _registration_section(registry),
        _pagecache_section(registry),
        _security_section(registry),
        _hca_section(registry),
        _fault_section(registry),
    ]
    return "\n\n".join(s for s in sections if s)
