"""Telemetry: span tracing, a unified metrics registry, reporting.

One object — :class:`Telemetry` — owns both observability surfaces:

* ``telemetry.registry`` (:class:`~repro.telemetry.registry.Registry`):
  labeled counters/gauges/histograms with deterministic iteration order.
  :meth:`Telemetry.attach_cluster` absorbs every scattered live counter
  in a built cluster (transports, HCAs, TPTs, FMR pools, registration
  caches, page cache, DRC, fault injector) as callback gauges.
* ``telemetry.tracer`` (:class:`~repro.telemetry.spans.SpanTracer`):
  per-RPC span trees over simulated time, exportable as Chrome
  ``trace_event`` JSON.  ``None`` unless tracing was requested.

**Overhead contract** (DESIGN.md §9): the whole subsystem hangs off a
single ``sim.telemetry`` attribute that defaults to ``None``.  Every
instrumented site does one attribute load and one ``is None`` test when
telemetry is off — no span objects, no dict lookups, no closures.  When
on, spans only *read* ``sim.now``; they never schedule events, consume
modeled CPU, or draw randomness, so simulated results are bit-identical
either way.
"""

from __future__ import annotations

from repro.ib.verbs import QPState
from typing import Any, Optional

from repro.telemetry.registry import Counter, Gauge, Histogram, Registry, Sample
from repro.telemetry.spans import Span, SpanTracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "Sample",
    "Span",
    "SpanTracer",
    "Telemetry",
]


def _events(counter):
    """Collect-time reader for a live sim Counter's event count."""
    return lambda: float(counter.events)


def _value(counter):
    """Collect-time reader for a live sim Counter's (possibly byte) value."""
    return lambda: float(counter.value)


class Telemetry:
    """The cluster-wide observability root, attached as ``sim.telemetry``."""

    def __init__(self, sim: Any, tracing: bool = True) -> None:
        self.sim = sim
        self.registry = Registry()
        self.tracer = SpanTracer(sim) if tracing else None
        reg = self.registry
        self.client_ops = reg.counter(
            "nfs_client_ops", "NFS calls issued, by mount and verb",
            ("mount", "verb"))
        self.client_latency = reg.histogram(
            "nfs_client_latency_us", "client-observed call latency",
            ("mount", "verb"))
        self.server_ops = reg.counter(
            "nfs_server_ops", "NFS procedures executed by the server",
            ("verb",))

    def enable_tracing(self) -> SpanTracer:
        if self.tracer is None:
            self.tracer = SpanTracer(self.sim)
        return self.tracer

    # -- hot-path recording hooks -----------------------------------------
    def record_op(self, mount: str, verb: str, latency_us: float) -> None:
        self.client_ops.labels(mount=mount, verb=verb).add()
        self.client_latency.labels(mount=mount, verb=verb).observe(latency_us)

    def record_server_op(self, verb: str) -> None:
        self.server_ops.labels(verb=verb).add()

    # -- cluster wiring ----------------------------------------------------
    def attach_cluster(self, cluster: Any) -> None:
        """Absorb a built cluster's live counters into the registry.

        Everything is attached as a callback gauge, so the subsystems
        keep their existing counter objects and the registry reads them
        at collect time.
        """
        reg = self.registry
        stacks = getattr(cluster, "server_stacks", None)
        multi = stacks is not None

        for mount in cluster.mounts:
            t = mount.transport
            m = mount.nfs.name
            reg.attach("rpc_calls_sent", _events(t.calls_sent),
                       "RPC calls handed to the transport", mount=m)
            # A MuxLane has no timers or recovery of its own — those
            # live on the shared channel, attached below per channel.
            if hasattr(t, "retransmissions"):
                reg.attach("rpc_retransmits", _events(t.retransmissions),
                           "timer-driven resends (same xid)", mount=m)
            if hasattr(t, "reconnects"):
                reg.attach("rpc_reconnects", _events(t.reconnects),
                           "transport redials after fatal QP errors", mount=m)
                reg.attach("rpc_calls_recovered", _events(t.calls_recovered),
                           "calls replayed across a reconnect", mount=m)
            credits = getattr(t, "credits", None)
            if credits is not None:
                reg.attach("rpc_credit_waits", _events(credits.waits),
                           "calls that stalled on an exhausted credit grant",
                           mount=m)
                reg.attach("rpc_credit_outstanding_peak",
                           lambda c=credits: float(c.outstanding_peak),
                           "deepest concurrent-call level seen", mount=m)

        for mux in getattr(cluster, "muxes", {}).values():
            reg.attach("mux_channels",
                       lambda x=mux: float(x.qp_count),
                       "shared QPs in this channel pool", mux=mux.name)
            reg.attach("mux_lanes",
                       lambda x=mux: float(len(x.lanes)),
                       "virtual lanes attached to this pool", mux=mux.name)
            for channel in mux.channels:
                cn = channel.name
                reg.attach("rpc_calls_sent", _events(channel.calls_sent),
                           "RPC calls handed to the transport", mount=cn)
                reg.attach("rpc_retransmits",
                           _events(channel.retransmissions),
                           "timer-driven resends (same xid)", mount=cn)
                if hasattr(channel, "reconnects"):
                    reg.attach("rpc_reconnects", _events(channel.reconnects),
                               "transport redials after fatal QP errors",
                               mount=cn)
                    reg.attach("rpc_calls_recovered",
                               _events(channel.calls_recovered),
                               "calls replayed across a reconnect", mount=cn)
                reg.attach("rpc_credit_waits", _events(channel.credits.waits),
                           "calls that stalled on an exhausted credit grant",
                           mount=cn)

        if multi:
            for stack in cluster.all_stacks:
                self._attach_serving_stack(
                    stack.rpc_server, stack.srq, stack.drc, stack.nfs_server,
                    {"server": stack.name})
                reg.attach("lane_order_violations",
                           lambda st=stack: float(sum(
                               t.lanes.order_violations.events
                               for t in st.server_transports
                               if getattr(t, "lanes", None) is not None)),
                           "per-lane FIFO violations flagged by the server",
                           server=stack.name)
                reg.attach("server_connections",
                           lambda st=stack: float(len(st.server_transports)),
                           "live server-side connections (QPs)",
                           server=stack.name)
            redirector = getattr(cluster, "redirector", None)
            if redirector is not None:
                for index, stack in enumerate(cluster.server_stacks):
                    reg.attach("shard_mounts",
                               lambda r=redirector, i=index: float(
                                   r.counts()[i]),
                               "mounts the redirector placed on this shard",
                               server=stack.name)
        else:
            self._attach_serving_stack(
                cluster.rpc_server, getattr(cluster, "srq", None),
                cluster.drc, cluster.nfs_server, {})

        nodes = getattr(cluster, "server_nodes", None)
        if nodes is None:
            nodes = [cluster.server_node]
        for node in [*nodes, *cluster.client_nodes]:
            hca = node.hca
            n = node.name
            reg.attach("hca_send_ops", _events(hca.sends),
                       "send WQEs executed", node=n)
            reg.attach("hca_send_bytes", _value(hca.sends),
                       "bytes moved by sends", node=n)
            reg.attach("hca_rdma_write_bytes", _value(hca.writes),
                       "bytes moved by RDMA Writes", node=n)
            reg.attach("hca_rdma_read_bytes", _value(hca.reads),
                       "bytes moved by RDMA Reads", node=n)
            reg.attach("hca_rnr_events", _events(hca.rnr_events),
                       "receiver-not-ready stalls", node=n)
            reg.attach("hca_qps", lambda h=hca: float(len(h.qps)),
                       "queue pairs created on this adapter", node=n)
            reg.attach("hca_qps_error",
                       lambda h=hca: float(sum(
                           1 for qp in h.qps if qp.state is QPState.ERROR)),
                       "queue pairs currently in the ERROR state", node=n)
            tpt = hca.tpt
            reg.attach("tpt_registrations", _events(tpt.registrations),
                       "memory registrations installed", node=n)
            reg.attach("tpt_deregistrations", _events(tpt.deregistrations),
                       "registrations torn down", node=n)
            reg.attach("tpt_protection_faults", _events(tpt.protection_faults),
                       "RDMA accesses refused by the TPT", node=n)
            reg.attach("tpt_live_entries", lambda t=tpt: float(t.live_entries),
                       "currently valid TPT entries", node=n)

        san = cluster.sim.sanitizer
        if san is not None:
            reg.attach("sanitizer_violations",
                       lambda s=san: float(len(s.violations)),
                       "runtime sanitizer violations recorded")
            for rule in san.RULES:
                reg.attach("sanitizer_rule_violations",
                           lambda s=san, r=rule: float(s.counts.get(r, 0)),
                           "sanitizer violations for one rule", rule=rule)

        if multi:
            for stack in cluster.all_stacks:
                self._attach_strategy(stack.strategy, side=stack.name)
            for mux in cluster.muxes.values():
                for channel in mux.channels:
                    self._attach_strategy(channel.strategy, side=channel.name)
        else:
            self._attach_strategy(cluster.server_strategy, side="server")
        for mount in cluster.mounts:
            strategy = getattr(mount.transport, "strategy", None)
            if strategy is not None and not hasattr(mount.transport, "channel"):
                self._attach_strategy(strategy, side=mount.nfs.name)

        for fs, labels in (
                [(stack.fs, {"server": stack.name})
                 for stack in cluster.all_stacks] if multi
                else [(cluster.fs, {})]):
            cache = getattr(fs, "cache", None)
            if cache is not None and hasattr(cache, "hits"):
                reg.attach("pagecache_hits", _events(cache.hits),
                           "server page-cache hits", **labels)
                reg.attach("pagecache_misses", _events(cache.misses),
                           "server page-cache misses", **labels)
                reg.attach("pagecache_evictions", _events(cache.evictions),
                           "pages evicted under memory pressure", **labels)
                reg.attach("pagecache_writebacks", _events(cache.writebacks),
                           "dirty pages written back", **labels)
                reg.attach("pagecache_resident_pages",
                           lambda c=cache: float(c.resident_pages),
                           "pages currently cached", **labels)

        policy = getattr(cluster, "security_policy", None)
        if policy is not None:
            reg.attach("security_naks", _events(policy.naks),
                       "protection NAKs recorded by the policy")
            from repro.security.policy import NAK_CAUSES
            for cause in NAK_CAUSES:
                reg.attach("security_naks_by_cause",
                           lambda p=policy, c=cause: float(
                               p.naks_by_cause.get(c, 0)),
                           "protection NAKs broken down by TPT cause",
                           cause=cause)
            reg.attach("security_malformed_wrs", _events(policy.malformed_wrs),
                       "receives that failed RPC/RDMA header decode")
            reg.attach("security_bad_calls", _events(policy.bad_calls),
                       "RPC calls rejected at dispatch")
            reg.attach("security_lease_reclaims", _events(policy.lease_reclaims),
                       "exposure leases reclaimed by deadline")
            reg.attach("security_lease_reclaimed_bytes",
                       _value(policy.lease_reclaims),
                       "bytes un-exposed by lease reclamation")
            reg.attach("security_quota_evictions",
                       _events(policy.quota_evictions),
                       "exposures evicted by per-client quota")
            reg.attach("security_quota_evicted_bytes",
                       _value(policy.quota_evictions),
                       "bytes un-exposed by quota eviction")
            reg.attach("security_warnings", _events(policy.warnings),
                       "clients that crossed the WARN threshold")
            reg.attach("security_throttles", _events(policy.throttles),
                       "clients escalated to throttling")
            reg.attach("security_quarantined_mounts",
                       lambda p=policy: float(len(p.quarantined)),
                       "clients evicted and banned")
            reg.attach("security_redials_refused",
                       _events(policy.redials_refused),
                       "redial attempts refused for banned clients")
            reg.attach("security_active_exposures",
                       lambda c=cluster: float(sum(
                           len(getattr(t, "pending_done", ()) or ())
                           for t in c.server_transports)),
                       "chunk exposures currently awaiting RDMA_DONE")
            for client in sorted({m.node.name for m in cluster.mounts}):
                reg.attach("security_exposure_bytes",
                           lambda p=policy, c=client: float(
                               p.exposure_bytes_by_client().get(c, 0)),
                           "currently exposed (pending-DONE) bytes",
                           client=client)

        if getattr(cluster, "faults", None) is not None:
            f = cluster.faults
            reg.attach("faults_messages_dropped", _events(f.messages_dropped),
                       "messages eaten by the wire")
            reg.attach("faults_delay_spikes", _events(f.delay_spikes_injected),
                       "latency spikes injected")
            reg.attach("faults_qp_kills", _events(f.qp_kills_fired),
                       "QP connections killed")
            reg.attach("faults_server_stalls", _events(f.stalls_fired),
                       "whole-server stalls fired")
            reg.attach("faults_server_crashes", _events(f.crashes_fired),
                       "server crash-restarts fired")

    def _attach_serving_stack(self, rpc: Any, srq: Any, drc: Any,
                              nfs_server: Any, labels: dict) -> None:
        """One serving stack's dispatch/SRQ/DRC gauges.

        ``labels`` is empty on a single-node cluster (the historical
        unlabeled form) and ``{"server": ...}`` per stack on a
        :class:`~repro.experiments.topology.MultiCluster`, so the
        registry-summing health checks aggregate across nodes for free.
        """
        reg = self.registry
        reg.attach("rpc_server_calls", _events(rpc.calls_served),
                   "RPCs dispatched by the server", **labels)
        reg.attach("rpc_server_failed", _events(rpc.calls_failed),
                   "dispatches that raised", **labels)
        pool = rpc.pool
        reg.attach("rpc_queue_depth", lambda p=pool: float(p.backlog),
                   "RPCs waiting for a worker thread", **labels)
        reg.attach("rpc_queue_peak", lambda p=pool: float(p.backlog_peak),
                   "deepest run-queue backlog seen", **labels)
        reg.attach("rpc_queue_waits", _events(pool.queue_waits),
                   "submitters blocked on a full bounded run queue", **labels)
        if srq is not None:
            reg.attach("srq_entries", lambda s=srq: float(s.entries),
                       "shared receive pool capacity", **labels)
            reg.attach("srq_available", lambda s=srq: float(s.available),
                       "receive buffers currently posted and unclaimed",
                       **labels)
            reg.attach("srq_min_available",
                       lambda s=srq: float(s.min_available),
                       "low-water mark of posted buffers", **labels)
            reg.attach("srq_takes", _events(srq.takes),
                       "receive buffers claimed by arriving messages",
                       **labels)
            reg.attach("srq_exhaustions", _events(srq.exhaustions),
                       "arrivals that found the pool empty (RNR path)",
                       **labels)
            reg.attach("srq_registered_bytes",
                       lambda s=srq: float(s.registered_bytes),
                       "registered receive-buffer memory, whole server",
                       **labels)
            reg.attach("srq_recycles", _events(srq.recycles),
                       "buffers reposted to the pool after consumption",
                       **labels)
            reg.attach("srq_low_watermark",
                       lambda s=srq: float(s.low_watermark),
                       "repost threshold the pool guards", **labels)
            reg.attach("srq_low_watermark_hits",
                       _events(srq.low_watermark_hits),
                       "times the pool drained down to the watermark",
                       **labels)
            reg.attach("srq_reclaimed_on_detach",
                       _events(srq.reclaimed_on_detach),
                       "parked deliveries drained back on connection death",
                       **labels)
        if drc is not None:
            reg.attach("drc_inserts", _events(drc.inserts),
                       "replies cached for duplicate detection", **labels)
            reg.attach("drc_replays", _events(drc.replays),
                       "duplicate xids answered from the cache", **labels)
            reg.attach("drc_drops", _events(drc.drops),
                       "duplicates dropped while the original ran", **labels)
        reg.attach("nfsd_errors", _events(nfs_server.errors),
                   "NFS procedures that returned an error status", **labels)

    def _attach_strategy(self, strategy: Any, side: str) -> None:
        """Registration-strategy gauges: FMR occupancy, regcache hit rate."""
        reg = self.registry
        if hasattr(strategy, "acquires"):
            reg.attach("reg_acquires", _events(strategy.acquires),
                       "registration-strategy acquisitions", side=side)
            reg.attach("reg_releases", _events(strategy.releases),
                       "registration-strategy releases", side=side)
        pool = getattr(strategy, "pool", None)
        if pool is not None:
            reg.attach("fmr_pool_size", lambda p=pool: float(p.pool_size),
                       "pre-allocated FMR entries", side=side)
            reg.attach("fmr_mapped", lambda p=pool: float(p.pool_size - p.available),
                       "FMR entries currently mapped (occupancy)", side=side)
            reg.attach("fmr_maps", _events(pool.maps), "FMR map operations",
                       side=side)
            reg.attach("fmr_unmaps", _events(pool.unmaps), "FMR unmap operations",
                       side=side)
            reg.attach("fmr_fallbacks", _events(pool.fallbacks),
                       "mappings that fell back to regular registration",
                       side=side)
        if hasattr(strategy, "hits") and hasattr(strategy, "misses"):
            reg.attach("regcache_hits", _events(strategy.hits),
                       "registration-cache hits", side=side)
            reg.attach("regcache_misses", _events(strategy.misses),
                       "registration-cache misses", side=side)
