"""Unified metrics registry: labeled counters, gauges and histograms.

The simulator already counts everything — ``sim/trace.py`` counters on
transports and HCAs, page-cache hit counters, latency recorders — but
each subsystem keeps its own objects with its own naming.  The
:class:`Registry` puts one deterministic namespace over all of it:

* metric *families* are created idempotently by name and held in
  insertion order;
* each family fans out into labeled *children* (``mount=client0.nfs``,
  ``verb=READ``); :meth:`Registry.collect` emits children sorted by
  label value, so two identical runs produce byte-identical output;
* existing live counters are absorbed without migration via
  :meth:`Registry.attach` callback gauges — the registry reads them at
  collect time instead of forcing every subsystem onto new objects.

Histograms wrap :class:`repro.analysis.latency.LatencyRecorder`, so
percentiles are exact (computed over all samples), not bucketed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Optional

from repro.analysis.latency import LatencyRecorder, LatencySummary

__all__ = ["Counter", "Gauge", "Histogram", "Registry", "Sample"]


@dataclass(frozen=True)
class Sample:
    """One collected value: ``name{labels} value``."""

    name: str
    labels: tuple[tuple[str, str], ...]
    value: float

    def __str__(self) -> str:  # pragma: no cover - presentation
        if not self.labels:
            return f"{self.name} {self.value}"
        inner = ",".join(f'{k}="{v}"' for k, v in self.labels)
        return f"{self.name}{{{inner}}} {self.value}"


class _Family:
    """Base: a named metric with a fixed label schema and labeled children."""

    kind = "untyped"

    def __init__(self, name: str, help: str,
                 label_names: tuple[str, ...]) -> None:
        self.name = name
        self.help = help
        self.label_names = label_names
        self._children: dict[tuple[str, ...], Any] = {}

    def labels(self, **labelset: object) -> Any:
        """The child for one label combination (created on first use)."""
        if set(labelset) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labelset))}"
            )
        key = tuple(str(labelset[k]) for k in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make_child()
        return child

    def items(self) -> Iterator[tuple[dict[str, str], Any]]:
        """(label dict, child) pairs sorted by label values."""
        for key in sorted(self._children):
            yield dict(zip(self.label_names, key)), self._children[key]

    def _make_child(self) -> Any:  # pragma: no cover - abstract
        raise NotImplementedError

    def _label_tuple(self, key: tuple[str, ...]) -> tuple[tuple[str, str], ...]:
        return tuple(zip(self.label_names, key))

    def samples(self) -> Iterator[Sample]:  # pragma: no cover - abstract
        raise NotImplementedError


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Counter(_Family):
    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def add(self, amount: float = 1.0, **labelset: object) -> None:
        self.labels(**labelset).add(amount)

    def samples(self) -> Iterator[Sample]:
        for key in sorted(self._children):
            yield Sample(self.name, self._label_tuple(key), self._children[key].value)


class _GaugeChild:
    __slots__ = ("_value", "_fn")

    def __init__(self):
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        self._fn = None
        self._value = float(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Read the value live at collect time (absorbs existing counters)."""
        self._fn = fn

    @property
    def value(self) -> float:
        return float(self._fn()) if self._fn is not None else self._value


class Gauge(_Family):
    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float, **labelset: object) -> None:
        self.labels(**labelset).set(value)

    def samples(self) -> Iterator[Sample]:
        for key in sorted(self._children):
            yield Sample(self.name, self._label_tuple(key), self._children[key].value)


class _HistogramChild:
    __slots__ = ("recorder",)

    def __init__(self, name: str) -> None:
        self.recorder = LatencyRecorder(name)

    def observe(self, value: float) -> None:
        self.recorder.record(value)

    def summarize(self) -> LatencySummary:
        return self.recorder.summarize()


class Histogram(_Family):
    kind = "histogram"

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.name)

    def observe(self, value: float, **labelset: object) -> None:
        self.labels(**labelset).observe(value)

    def samples(self) -> Iterator[Sample]:
        for key in sorted(self._children):
            s = self._children[key].summarize()
            labels = self._label_tuple(key)
            yield Sample(f"{self.name}_count", labels, float(s.count))
            yield Sample(f"{self.name}_mean", labels, s.mean)
            yield Sample(f"{self.name}_p50", labels, s.p50)
            yield Sample(f"{self.name}_p90", labels, s.p90)
            yield Sample(f"{self.name}_p99", labels, s.p99)
            yield Sample(f"{self.name}_max", labels, s.maximum)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class Registry:
    """Deterministically ordered namespace of metric families."""

    def __init__(self):
        self._families: dict[str, _Family] = {}  # insertion-ordered

    def _family(self, kind: str, name: str, help: str,
                labels: Iterable[str]) -> _Family:
        label_names = tuple(labels)
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = _KINDS[kind](name, help, label_names)
            return family
        if family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, not {kind}")
        if family.label_names != label_names:
            raise ValueError(
                f"metric {name!r} has labels {family.label_names}, not {label_names}")
        return family

    def counter(self, name: str, help: str = "",
                labels: Iterable[str] = ()) -> Counter:
        return self._family("counter", name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Iterable[str] = ()) -> Gauge:
        return self._family("gauge", name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Iterable[str] = ()) -> Histogram:
        return self._family("histogram", name, help, labels)

    def attach(self, name: str, fn: Callable[[], float], help: str = "",
               **labelset: object) -> None:
        """Absorb an existing live value: a gauge child reading ``fn``."""
        gauge = self.gauge(name, help, labels=tuple(labelset))
        gauge.labels(**labelset).set_function(fn)

    def get(self, name: str) -> Optional[_Family]:
        return self._families.get(name)

    def families(self) -> Iterator[_Family]:
        yield from self._families.values()

    def collect(self) -> list[Sample]:
        """Every sample, families in registration order, children sorted."""
        out: list[Sample] = []
        for family in self._families.values():
            out.extend(family.samples())
        return out
