"""One runner per table/figure in the paper's evaluation (§5).

Each ``run_*`` function rebuilds the corresponding experiment and
returns an :class:`ExperimentResult` whose rows mirror the series the
paper plots.  ``scale`` trades fidelity for runtime: ``quick`` is sized
for CI/benchmarks, ``full`` for EXPERIMENTS.md regeneration.  Absolute
numbers come from the calibrated profiles (DESIGN.md §4); the *shape*
targets from the paper are embedded here so reports can show
paper-vs-measured side by side.

Every figure is a grid of independent points, so each runner builds a
:class:`~repro.experiments.sweep.Point` list and hands it to
:func:`~repro.experiments.sweep.sweep` — pass ``jobs > 1`` to fan the
grid across worker processes with bit-identical results (``--jobs`` on
the CLI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.stats import format_table
from repro.experiments.sweep import Point, sweep
from repro.security import probe_primitive_properties

__all__ = [
    "ExperimentResult",
    "figure_grid",
    "run_table1",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_security_audit",
]


@dataclass
class ExperimentResult:
    """Structured output: headers + rows + the paper's reference claims."""

    experiment: str
    headers: list[str]
    rows: list[list]
    paper_reference: str
    #: total simulator events stepped across every point (bench metric).
    events: int = 0

    def table(self) -> str:
        return format_table(self.headers, self.rows)

    def __str__(self) -> str:  # pragma: no cover - presentation
        return (
            f"== {self.experiment} ==\n{self.table()}\n"
            f"paper: {self.paper_reference}\n"
        )


def _ops(scale: str, quick: int, full: int) -> int:
    return quick if scale == "quick" else full


def figure_grid(name: str, scale: str = "quick") -> list[tuple[str, Point]]:
    """The labeled point grid behind an iozone figure.

    Lets per-point tooling (the ``stats`` and ``trace`` CLI commands)
    re-run exactly one point of a figure with telemetry attached.
    """
    if name in ("fig5", "fig6"):
        return [(f"{series}-t{threads}", p)
                for series, threads, p in _solaris_iozone_points(scale)]
    if name == "fig7":
        grid = _strategy_iozone_points(
            scale,
            (("dynamic", "Register"), ("fmr", "FMR"), ("cache", "Cache")),
            "solaris-sdr",
        )
        return [(f"RW-{label}-t{threads}", p) for label, threads, p in grid]
    if name == "fig9":
        grid = _strategy_iozone_points(
            scale,
            (("dynamic", "Register"), ("fmr", "FMR"),
             ("all-physical", "All-Physical")),
            "linux-sdr",
        )
        return [(f"RW-{label}-t{threads}", p) for label, threads, p in grid]
    if name == "fig8":
        return [(f"OLTP-{label}-r{readers}", p)
                for label, readers, p in _fig8_points(scale)]
    if name == "fig10":
        return [(f"{label}-{cache_label}-c{nclients}", p)
                for label, cache_label, nclients, p in _fig10_points(scale)]
    if name == "fig11":
        return [(f"{series}-c{nclients}", p)
                for series, nclients, p in _fig11_points(scale)]
    if name == "fig12":
        return [(f"{mitigation}-{label}", p)
                for mitigation, label, p in _fig12_points(scale)]
    if name == "fig13":
        return [(f"{series}-m{mounts}", p)
                for series, mounts, p in _fig13_points(scale)]
    raise ValueError(
        f"no point grid for {name!r} (choose fig5, fig6, fig7, fig8, fig9, "
        f"fig10, fig11, fig12 or fig13)"
    )


def _events(results: list[dict]) -> int:
    return sum(r["events"] for r in results)


# ---------------------------------------------------------------- Table 1
def run_table1(scale: str = "quick", jobs: int = 1) -> ExperimentResult:
    """Table 1: communication-primitive properties, probed live."""
    rows = [
        [p.primitive,
         "X" if p.receive_buffer_exposed else "",
         "X" if p.receive_buffer_pre_posted else "",
         "X" if p.steering_tag else "",
         "X" if p.rendezvous else ""]
        for p in probe_primitive_properties()
    ]
    return ExperimentResult(
        experiment="Table 1: Communication Primitive Properties",
        headers=["primitive", "recv buffer exposed", "recv pre-posted",
                 "steering tag", "rendezvous"],
        rows=rows,
        paper_reference=(
            "channel: only pre-posted; memory: exposed + steering tag + "
            "rendezvous (Table 1)"
        ),
    )


# ---------------------------------------------------------------- Fig 5 / 6
def _solaris_iozone_points(scale: str) -> list[tuple[str, int, Point]]:
    """The shared Fig 5/6 grid: (series label, threads, point)."""
    ops = _ops(scale, 40, 120)
    threads_list = (1, 2, 4, 8) if scale == "quick" else (1, 2, 3, 4, 5, 6, 7, 8)
    grid = []
    for record in (128 * 1024, 1 << 20):
        for design, label in (("rdma-rr", "RR"), ("rdma-rw", "RW")):
            for threads in threads_list:
                grid.append((
                    f"{label}-{record // 1024}K", threads,
                    Point(kind="iozone",
                          cluster={"transport": design, "strategy": "dynamic",
                                   "profile": "solaris-sdr"},
                          params={"nthreads": threads, "record_bytes": record,
                                  "ops_per_thread": ops}),
                ))
    return grid


def run_fig5(scale: str = "quick", jobs: int = 1) -> ExperimentResult:
    """Fig 5: IOzone READ bandwidth, Solaris, Read-Read vs Read-Write."""
    grid = _solaris_iozone_points(scale)
    results = sweep([p for _, _, p in grid], jobs)
    rows = [[series, threads, round(r["read_mb_s"], 1)]
            for (series, threads, _), r in zip(grid, results)]
    return ExperimentResult(
        experiment="Fig 5: IOzone Read Bandwidth on Solaris (RR vs RW)",
        headers=["series", "threads", "read MB/s"],
        rows=rows,
        paper_reference=(
            "RR saturates ~375 MB/s, RW ~400 MB/s; RW leads by ~47% at 1 "
            "thread/128K shrinking to ~5% at 8 threads; record size barely "
            "matters"
        ),
        events=_events(results),
    )


def run_fig6(scale: str = "quick", jobs: int = 1) -> ExperimentResult:
    """Fig 6: IOzone WRITE bandwidth + client CPU, Solaris, RR vs RW."""
    grid = _solaris_iozone_points(scale)
    results = sweep([p for _, _, p in grid], jobs)
    rows = [[series, threads, round(r["write_mb_s"], 1),
             round(r["client_cpu_read"] * 100, 1)]
            for (series, threads, _), r in zip(grid, results)]
    return ExperimentResult(
        experiment="Fig 6: IOzone Write Bandwidth on Solaris + client CPU",
        headers=["series", "threads", "write MB/s", "client CPU % (read)"],
        rows=rows,
        paper_reference=(
            "write paths nearly identical (both RDMA-Read based, bounded by "
            "read serialization); client CPU: RR 4%->24%, RW flat 2%->5%"
        ),
        events=_events(results),
    )


# ---------------------------------------------------------------- Fig 7 / 9
def _strategy_iozone_points(scale: str, strategies, profile: str):
    ops = _ops(scale, 40, 120)
    threads_list = (1, 2, 4, 8) if scale == "quick" else (1, 2, 3, 4, 5, 6, 7, 8)
    grid = []
    for strategy, label in strategies:
        for threads in threads_list:
            grid.append((
                label, threads,
                Point(kind="iozone",
                      cluster={"transport": "rdma-rw", "strategy": strategy,
                               "profile": profile},
                      params={"nthreads": threads, "record_bytes": 128 * 1024,
                              "ops_per_thread": ops}),
            ))
    return grid


def run_fig7(scale: str = "quick", jobs: int = 1) -> ExperimentResult:
    """Fig 7: registration strategies on OpenSolaris (read + write)."""
    grid = _strategy_iozone_points(
        scale,
        (("dynamic", "Register"), ("fmr", "FMR"), ("cache", "Cache")),
        "solaris-sdr",
    )
    results = sweep([p for _, _, p in grid], jobs)
    rows = [[f"RW-{label}-Solaris", threads,
             round(r["read_mb_s"], 1), round(r["write_mb_s"], 1),
             round(r["client_cpu_read"] * 100, 1)]
            for (label, threads, _), r in zip(grid, results)]
    return ExperimentResult(
        experiment="Fig 7: IOzone bandwidth by registration strategy (Solaris)",
        headers=["series", "threads", "read MB/s", "write MB/s", "client CPU %"],
        rows=rows,
        paper_reference=(
            "read: Register ~350, FMR ~400, Cache ~730 MB/s; write: FMR "
            "modest, Cache ~515 MB/s (bounded by RDMA Read serialization)"
        ),
        events=_events(results),
    )


def run_fig9(scale: str = "quick", jobs: int = 1) -> ExperimentResult:
    """Fig 9: registration strategies on Linux (read + write)."""
    grid = _strategy_iozone_points(
        scale,
        (("dynamic", "Register"), ("fmr", "FMR"), ("all-physical", "All-Physical")),
        "linux-sdr",
    )
    results = sweep([p for _, _, p in grid], jobs)
    rows = [[f"RW-{label}-Linux", threads,
             round(r["read_mb_s"], 1), round(r["write_mb_s"], 1),
             round(r["client_cpu_read"] * 100, 1)]
            for (label, threads, _), r in zip(grid, results)]
    return ExperimentResult(
        experiment="Fig 9: IOzone bandwidth by registration strategy (Linux)",
        headers=["series", "threads", "read MB/s", "write MB/s", "client CPU %"],
        rows=rows,
        paper_reference=(
            "read: Register < FMR < All-Physical (~900 MB/s peak); write: "
            "All-Physical degrades below FMR (no scatter/gather -> more read "
            "chunks -> IRD/ORD limit)"
        ),
        events=_events(results),
    )


# ---------------------------------------------------------------- Fig 8
def _fig8_points(scale: str) -> list[tuple[str, int, Point]]:
    """OLTP strategy grid: (strategy label, readers, point)."""
    readers_list = (10, 50, 100) if scale == "quick" else (10, 25, 50, 100, 150, 200)
    ops = _ops(scale, 4, 8)
    grid = []
    for strategy, label in (("dynamic", "Register"), ("fmr", "FMR"),
                            ("cache", "Cache")):
        for readers in readers_list:
            grid.append((
                label, readers,
                Point(kind="oltp",
                      cluster={"transport": "rdma-rw", "strategy": strategy,
                               "profile": "solaris-sdr"},
                      params={"readers": readers,
                              "writers": max(2, readers // 5),
                              "log_writers": 1, "datafile_bytes": 16 << 20,
                              "ops_per_thread": ops}),
            ))
    return grid


def run_fig8(scale: str = "quick", jobs: int = 1) -> ExperimentResult:
    """Fig 8: FileBench OLTP ops/s and CPU/op by strategy."""
    grid = _fig8_points(scale)
    results = sweep([p for _, _, p in grid], jobs)
    rows = [[label, readers, round(r["ops_per_s"]),
             round(r["client_cpu_us_per_op"], 1)]
            for (label, readers, _), r in zip(grid, results)]
    return ExperimentResult(
        experiment="Fig 8: FileBench OLTP performance by strategy",
        headers=["strategy", "readers", "ops/s", "client CPU us/op"],
        rows=rows,
        paper_reference=(
            "registration cache improves throughput up to ~50% over dynamic "
            "registration; FMR comparable to dynamic; CPU/op slightly higher "
            "for cache"
        ),
        events=_events(results),
    )


# ---------------------------------------------------------------- Fig 10
#: Fig 10 scaling: the paper used 1 GB files against 4/8 GB of server
#: memory; we keep the cache:file ratios (4x and 8x) at 1/16 scale so
#: the LRU knee lands at the same client count.
FIG10_FILE_BYTES = 64 << 20
FIG10_CACHE_SMALL = 4 * FIG10_FILE_BYTES
FIG10_CACHE_BIG = 8 * FIG10_FILE_BYTES


def _fig10_points(scale: str, cache_bytes: Optional[int] = None
                  ) -> list[tuple[str, str, int, Point]]:
    """Multi-client transport grid: (transport, cache label, clients, point)."""
    clients_list = (1, 2, 3, 5, 8) if scale == "quick" else tuple(range(1, 9))
    caches = ([cache_bytes] if cache_bytes is not None
              else [FIG10_CACHE_SMALL, FIG10_CACHE_BIG])
    grid = []
    for cache in caches:
        cache_label = f"{cache / FIG10_FILE_BYTES:.0f}x-file-cache"
        for transport, label in (("rdma-rw", "RDMA"), ("tcp-ipoib", "IPoIB"),
                                 ("tcp-gige", "GigE")):
            strategy = "all-physical" if transport == "rdma-rw" else "dynamic"
            for nclients in clients_list:
                grid.append((
                    label, cache_label, nclients,
                    Point(kind="iozone",
                          cluster={"transport": transport, "strategy": strategy,
                                   "backend": "raid", "cache_bytes": cache,
                                   "nclients": nclients,
                                   "profile": "linux-ddr-raid"},
                          params={"nthreads": 1, "record_bytes": 1 << 20,
                                  "file_bytes": FIG10_FILE_BYTES,
                                  "ops_per_thread": None}),
                ))
    return grid


def run_fig10(scale: str = "quick", cache_bytes: Optional[int] = None,
              jobs: int = 1) -> ExperimentResult:
    """Fig 10: multi-client IOzone READ over RDMA vs IPoIB vs GigE."""
    grid = _fig10_points(scale, cache_bytes)
    results = sweep([p for _, _, _, p in grid], jobs)
    rows = [[label, cache_label, nclients, round(r["read_mb_s"], 1)]
            for (label, cache_label, nclients, _), r in zip(grid, results)]
    return ExperimentResult(
        experiment="Fig 10: Multi-client IOzone Read (RDMA vs IPoIB vs GigE)",
        headers=["transport", "server cache", "clients", "aggregate read MB/s"],
        rows=rows,
        paper_reference=(
            "4GB: RDMA peaks 883 MB/s at 3 clients then falls toward spindle "
            "bandwidth; IPoIB ~326; GigE ~107 falling. 8GB: RDMA >900 MB/s "
            "through 7 clients; IPoIB ~360"
        ),
        events=_events(results),
    )


# ---------------------------------------------------------------- Fig 11
def _fig11_points(scale: str) -> list[tuple[str, int, Point]]:
    """Client-scaling grid: (series label, nclients, point).

    Three series at each client count: Read-Write RDMA with the shared
    receive pool (SRQ), the same design with classic per-connection
    receive rings, and IPoIB as the non-RDMA baseline.  Every server
    runs the same bounded dispatcher (8 workers, 64-deep run queue) so
    the only variable across the RDMA series is receive-buffer pooling.
    """
    ops = _ops(scale, 4, 8)
    clients_list = (1, 4, 16, 64) if scale == "quick" else (1, 8, 32, 64, 128, 256)
    series = (
        ("RDMA-SRQ", {"transport": "rdma-rw", "srq": True}),
        ("RDMA-conn", {"transport": "rdma-rw"}),
        ("IPoIB", {"transport": "tcp-ipoib"}),
    )
    grid = []
    for label, extra in series:
        for nclients in clients_list:
            grid.append((
                label, nclients,
                Point(kind="iozone",
                      cluster={"strategy": "dynamic", "profile": "solaris-sdr",
                               "nclients": nclients, "server_workers": 8,
                               "server_queue_depth": 64, **extra},
                      params={"nthreads": 1, "record_bytes": 64 * 1024,
                              "ops_per_thread": ops}),
            ))
    return grid


def run_fig11(scale: str = "quick", jobs: int = 1) -> ExperimentResult:
    """Fig 11: many-client scaling — SRQ vs per-connection receive pools."""
    grid = _fig11_points(scale)
    results = sweep([p for _, _, p in grid], jobs)
    rows = [[series, nclients, round(r["read_mb_s"], 1),
             round(r["read_p99_us"], 1),
             round(r["server_cpu_read"] * 100, 1),
             round(r["recv_registered_bytes"] / nclients / 1024, 1)]
            for (series, nclients, _), r in zip(grid, results)]
    return ExperimentResult(
        experiment="Fig 11: Client scaling (SRQ vs per-connection pools vs IPoIB)",
        headers=["series", "clients", "aggregate read MB/s", "read p99 us",
                 "server CPU %", "recv KB/client"],
        rows=rows,
        paper_reference=(
            "projection beyond the paper's 8-client testbed: aggregate "
            "bandwidth holds as clients grow while SRQ keeps registered "
            "receive memory sublinear (per-connection rings grow linearly); "
            "IPoIB saturates far below the RDMA series"
        ),
        events=_events(results),
    )


# ---------------------------------------------------------------- Fig 12
#: The fig12 mitigation ladder: each step adds one defense layer on top
#: of the previous (lease values in µs, quota in bytes).
FIG12_MITIGATIONS = (
    ("none", {}),
    ("leases", {"lease_timeout_us": 5_000.0}),
    ("hardened", {"lease_timeout_us": 5_000.0,
                  "exposure_quota_bytes": 512 * 1024,
                  "quarantine": True}),
    ("hardened+aes", {"lease_timeout_us": 5_000.0,
                      "exposure_quota_bytes": 512 * 1024,
                      "quarantine": True, "aes_payload": True}),
)


def _fig12_points(scale: str) -> list[tuple[str, str, Point]]:
    """Attack/mitigation grid: (mitigation, transport label, point)."""
    duration = 30_000.0 if scale == "quick" else 120_000.0
    grid = []
    for mitigation, knobs in FIG12_MITIGATIONS:
        for transport, label in (("rdma-rr", "RR"), ("rdma-rw", "RW")):
            grid.append((
                mitigation, label,
                Point(kind="attack",
                      cluster={"transport": transport, "strategy": "dynamic",
                               "profile": "solaris-sdr", "nclients": 2,
                               **knobs},
                      params={"duration_us": duration}),
            ))
    return grid


def run_fig12(scale: str = "quick", jobs: int = 1) -> ExperimentResult:
    """Fig 12: adversary campaign outcomes across the mitigation ladder.

    Each point runs the full §4.1 adversary cast (DONE withholder,
    informed stag guesser, stale-chunk replayer, garbage flooder) as
    long-lived malicious mounts mixed with two legitimate mounts, and
    reports what the attackers achieved next to what the victims paid.
    """
    grid = _fig12_points(scale)
    results = sweep([p for _, _, p in grid], jobs)
    rows = [[mitigation, label,
             round(r["legit_read_mb_s"], 1), round(r["legit_p99_us"], 1),
             r["pinned_peak_bytes"] // 1024, r["pinned_final_bytes"] // 1024,
             r["guess_hits"], r["replay_hits"], r["malformed_wrs"],
             r["lease_reclaimed_bytes"] // 1024,
             r["quota_evicted_bytes"] // 1024,
             r["quarantined"], r["redials_refused"],
             round(r["server_cpu"] * 100, 1)]
            for (mitigation, label, _), r in zip(grid, results)]
    return ExperimentResult(
        experiment="Fig 12: Adversary campaign vs mitigation ladder (RR/RW)",
        headers=["mitigation", "design", "legit MB/s", "legit p99 us",
                 "pinned peak KB", "pinned end KB", "guess hits",
                 "replay hits", "malformed", "leased KB", "evicted KB",
                 "quarantined", "refused", "server CPU %"],
        rows=rows,
        paper_reference=(
            "RR without mitigation: withheld DONEs pin server buffers "
            "without bound and an informed stag guesser can hit; leases "
            "bound the pinned bytes, quota+quarantine evict the attackers, "
            "AES adds integrity at measurable CPU cost. RW is flat across "
            "the ladder — no server stags exist to attack (§4.2)"
        ),
        events=_events(results),
    )


# ---------------------------------------------------------------- Fig 13
def _fig13_points(scale: str) -> list[tuple[str, int, Point]]:
    """Mount-scaling grid: (series label, mounts, point).

    Three deployments at each mount count, all on four client hosts
    with small (8-deep) per-connection credit windows so connection
    cost — not bandwidth — is the variable:

    * ``per-conn`` — the paper's architecture: every mount dials its
      own RC QP with private receive rings;
    * ``muxed`` — one server, but mounts share ``ceil(sqrt(lanes))``
      QPs per host (:class:`~repro.ib.mux.QpMux`) riding the server's
      shared receive pool;
    * ``muxed+sharded`` — the same mux with mounts redirected across
      four server shards.
    """
    ops = _ops(scale, 2, 4)
    mounts_list = ((1, 10, 100, 1000) if scale == "quick"
                   else (1, 10, 100, 1000, 10000))
    series = (
        ("per-conn", {}),
        ("muxed", {"mux": True, "srq": True}),
        ("muxed+sharded", {"servers": 4, "mux": True, "srq": True}),
    )
    grid = []
    for label, extra in series:
        for mounts in mounts_list:
            grid.append((
                label, mounts,
                Point(kind="iozone",
                      cluster={"transport": "rdma-rw", "strategy": "dynamic",
                               "profile": "solaris-sdr", "nclients": mounts,
                               "server_workers": 8, "server_queue_depth": 64,
                               "client_hosts": 4, "credits": 8, **extra},
                      params={"nthreads": 1, "record_bytes": 64 * 1024,
                              "ops_per_thread": ops}),
            ))
    return grid


def run_fig13(scale: str = "quick", jobs: int = 1) -> ExperimentResult:
    """Fig 13: mount scaling — per-connection QPs vs mux vs mux+shards."""
    grid = _fig13_points(scale)
    results = sweep([p for _, _, p in grid], jobs)
    rows = [[series, mounts, round(r["read_mb_s"], 1),
             round(r["read_p99_us"], 1), r["qp_total"],
             round(r["recv_registered_bytes"] / 1024, 1)]
            for (series, mounts, _), r in zip(grid, results)]
    return ExperimentResult(
        experiment="Fig 13: Mount scaling (per-conn vs QP mux vs mux+shards)",
        headers=["series", "mounts", "aggregate read MB/s", "read p99 us",
                 "total QPs", "recv registered KB"],
        rows=rows,
        paper_reference=(
            "projection beyond the paper: per-connection QP count and "
            "registered receive memory grow linearly with mounts while the "
            "muxed deployments stay O(sqrt(N)); sharding holds p99 flat "
            "where a single muxed server saturates; aggregate bandwidth "
            "matches per-connection at low mount counts"
        ),
        events=_events(results),
    )


# ---------------------------------------------------------------- security
def run_security_audit(scale: str = "quick", jobs: int = 1) -> ExperimentResult:
    """§4.1 exposure comparison: attack surface of RR vs RW under load."""
    grid = [
        (transport,
         Point(kind="security",
               cluster={"transport": transport},
               params={"nthreads": 4, "ops_per_thread": 20}))
        for transport in ("rdma-rr", "rdma-rw")
    ]
    results = sweep([p for _, p in grid], jobs)
    rows = [[transport,
             r["stags_exposed_ever"], r["exposed_regions_now"],
             r["pending_done_ops"], r["protection_faults"]]
            for (transport, _), r in zip(grid, results)]
    return ExperimentResult(
        experiment="Security audit (§4.1): server attack surface under IOzone",
        headers=["design", "server stags exposed (ever)", "exposed now",
                 "pending DONE", "protection faults"],
        rows=rows,
        paper_reference=(
            "Read-Read exposes a server window per bulk reply and depends on "
            "client DONEs; Read-Write exposes zero server stags, ever"
        ),
        events=_events(results),
    )
