"""One runner per table/figure in the paper's evaluation (§5).

Each ``run_*`` function rebuilds the corresponding experiment and
returns an :class:`ExperimentResult` whose rows mirror the series the
paper plots.  ``scale`` trades fidelity for runtime: ``quick`` is sized
for CI/benchmarks, ``full`` for EXPERIMENTS.md regeneration.  Absolute
numbers come from the calibrated profiles (DESIGN.md §4); the *shape*
targets from the paper are embedded here so reports can show
paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis import LINUX_DDR_RAID, LINUX_SDR, SOLARIS_SDR
from repro.analysis.stats import format_table
from repro.experiments.cluster import Cluster, ClusterConfig
from repro.security import audit_server_exposure, probe_primitive_properties
from repro.workloads import IozoneParams, OltpParams, run_iozone, run_oltp

__all__ = [
    "ExperimentResult",
    "run_table1",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_security_audit",
]


@dataclass
class ExperimentResult:
    """Structured output: headers + rows + the paper's reference claims."""

    experiment: str
    headers: list[str]
    rows: list[list]
    paper_reference: str

    def table(self) -> str:
        return format_table(self.headers, self.rows)

    def __str__(self) -> str:  # pragma: no cover - presentation
        return (
            f"== {self.experiment} ==\n{self.table()}\n"
            f"paper: {self.paper_reference}\n"
        )


def _ops(scale: str, quick: int, full: int) -> int:
    return quick if scale == "quick" else full


# ---------------------------------------------------------------- Table 1
def run_table1(scale: str = "quick") -> ExperimentResult:
    """Table 1: communication-primitive properties, probed live."""
    rows = [
        [p.primitive,
         "X" if p.receive_buffer_exposed else "",
         "X" if p.receive_buffer_pre_posted else "",
         "X" if p.steering_tag else "",
         "X" if p.rendezvous else ""]
        for p in probe_primitive_properties()
    ]
    return ExperimentResult(
        experiment="Table 1: Communication Primitive Properties",
        headers=["primitive", "recv buffer exposed", "recv pre-posted",
                 "steering tag", "rendezvous"],
        rows=rows,
        paper_reference=(
            "channel: only pre-posted; memory: exposed + steering tag + "
            "rendezvous (Table 1)"
        ),
    )


# ---------------------------------------------------------------- Fig 5
def run_fig5(scale: str = "quick") -> ExperimentResult:
    """Fig 5: IOzone READ bandwidth, Solaris, Read-Read vs Read-Write."""
    ops = _ops(scale, 40, 120)
    threads_list = (1, 2, 4, 8) if scale == "quick" else (1, 2, 3, 4, 5, 6, 7, 8)
    rows = []
    for record in (128 * 1024, 1 << 20):
        for design, label in (("rdma-rr", "RR"), ("rdma-rw", "RW")):
            for threads in threads_list:
                cluster = Cluster(ClusterConfig(
                    transport=design, strategy="dynamic", profile=SOLARIS_SDR))
                result = run_iozone(cluster, IozoneParams(
                    nthreads=threads, record_bytes=record, ops_per_thread=ops))
                rows.append([
                    f"{label}-{record // 1024}K", threads,
                    round(result.read_mb_s, 1),
                ])
    return ExperimentResult(
        experiment="Fig 5: IOzone Read Bandwidth on Solaris (RR vs RW)",
        headers=["series", "threads", "read MB/s"],
        rows=rows,
        paper_reference=(
            "RR saturates ~375 MB/s, RW ~400 MB/s; RW leads by ~47% at 1 "
            "thread/128K shrinking to ~5% at 8 threads; record size barely "
            "matters"
        ),
    )


# ---------------------------------------------------------------- Fig 6
def run_fig6(scale: str = "quick") -> ExperimentResult:
    """Fig 6: IOzone WRITE bandwidth + client CPU, Solaris, RR vs RW."""
    ops = _ops(scale, 40, 120)
    threads_list = (1, 2, 4, 8) if scale == "quick" else (1, 2, 3, 4, 5, 6, 7, 8)
    rows = []
    for record in (128 * 1024, 1 << 20):
        for design, label in (("rdma-rr", "RR"), ("rdma-rw", "RW")):
            for threads in threads_list:
                cluster = Cluster(ClusterConfig(
                    transport=design, strategy="dynamic", profile=SOLARIS_SDR))
                result = run_iozone(cluster, IozoneParams(
                    nthreads=threads, record_bytes=record, ops_per_thread=ops))
                rows.append([
                    f"{label}-{record // 1024}K", threads,
                    round(result.write_mb_s, 1),
                    round(result.client_cpu_read * 100, 1),
                ])
    return ExperimentResult(
        experiment="Fig 6: IOzone Write Bandwidth on Solaris + client CPU",
        headers=["series", "threads", "write MB/s", "client CPU % (read)"],
        rows=rows,
        paper_reference=(
            "write paths nearly identical (both RDMA-Read based, bounded by "
            "read serialization); client CPU: RR 4%->24%, RW flat 2%->5%"
        ),
    )


# ---------------------------------------------------------------- Fig 7
def run_fig7(scale: str = "quick") -> ExperimentResult:
    """Fig 7: registration strategies on OpenSolaris (read + write)."""
    ops = _ops(scale, 40, 120)
    threads_list = (1, 2, 4, 8) if scale == "quick" else (1, 2, 3, 4, 5, 6, 7, 8)
    rows = []
    for strategy, label in (("dynamic", "Register"), ("fmr", "FMR"),
                            ("cache", "Cache")):
        for threads in threads_list:
            cluster = Cluster(ClusterConfig(
                transport="rdma-rw", strategy=strategy, profile=SOLARIS_SDR))
            result = run_iozone(cluster, IozoneParams(
                nthreads=threads, record_bytes=128 * 1024, ops_per_thread=ops))
            rows.append([
                f"RW-{label}-Solaris", threads,
                round(result.read_mb_s, 1), round(result.write_mb_s, 1),
                round(result.client_cpu_read * 100, 1),
            ])
    return ExperimentResult(
        experiment="Fig 7: IOzone bandwidth by registration strategy (Solaris)",
        headers=["series", "threads", "read MB/s", "write MB/s", "client CPU %"],
        rows=rows,
        paper_reference=(
            "read: Register ~350, FMR ~400, Cache ~730 MB/s; write: FMR "
            "modest, Cache ~515 MB/s (bounded by RDMA Read serialization)"
        ),
    )


# ---------------------------------------------------------------- Fig 8
def run_fig8(scale: str = "quick") -> ExperimentResult:
    """Fig 8: FileBench OLTP ops/s and CPU/op by strategy."""
    readers_list = (10, 50, 100) if scale == "quick" else (10, 25, 50, 100, 150, 200)
    ops = _ops(scale, 4, 8)
    rows = []
    for strategy, label in (("dynamic", "Register"), ("fmr", "FMR"),
                            ("cache", "Cache")):
        for readers in readers_list:
            cluster = Cluster(ClusterConfig(
                transport="rdma-rw", strategy=strategy, profile=SOLARIS_SDR))
            result = run_oltp(cluster, OltpParams(
                readers=readers, writers=max(2, readers // 5), log_writers=1,
                datafile_bytes=16 << 20, ops_per_thread=ops))
            rows.append([
                label, readers, round(result.ops_per_s),
                round(result.client_cpu_us_per_op, 1),
            ])
    return ExperimentResult(
        experiment="Fig 8: FileBench OLTP performance by strategy",
        headers=["strategy", "readers", "ops/s", "client CPU us/op"],
        rows=rows,
        paper_reference=(
            "registration cache improves throughput up to ~50% over dynamic "
            "registration; FMR comparable to dynamic; CPU/op slightly higher "
            "for cache"
        ),
    )


# ---------------------------------------------------------------- Fig 9
def run_fig9(scale: str = "quick") -> ExperimentResult:
    """Fig 9: registration strategies on Linux (read + write)."""
    ops = _ops(scale, 40, 120)
    threads_list = (1, 2, 4, 8) if scale == "quick" else (1, 2, 3, 4, 5, 6, 7, 8)
    rows = []
    for strategy, label in (("dynamic", "Register"), ("fmr", "FMR"),
                            ("all-physical", "All-Physical")):
        for threads in threads_list:
            cluster = Cluster(ClusterConfig(
                transport="rdma-rw", strategy=strategy, profile=LINUX_SDR))
            result = run_iozone(cluster, IozoneParams(
                nthreads=threads, record_bytes=128 * 1024, ops_per_thread=ops))
            rows.append([
                f"RW-{label}-Linux", threads,
                round(result.read_mb_s, 1), round(result.write_mb_s, 1),
                round(result.client_cpu_read * 100, 1),
            ])
    return ExperimentResult(
        experiment="Fig 9: IOzone bandwidth by registration strategy (Linux)",
        headers=["series", "threads", "read MB/s", "write MB/s", "client CPU %"],
        rows=rows,
        paper_reference=(
            "read: Register < FMR < All-Physical (~900 MB/s peak); write: "
            "All-Physical degrades below FMR (no scatter/gather -> more read "
            "chunks -> IRD/ORD limit)"
        ),
    )


# ---------------------------------------------------------------- Fig 10
#: Fig 10 scaling: the paper used 1 GB files against 4/8 GB of server
#: memory; we keep the cache:file ratios (4x and 8x) at 1/16 scale so
#: the LRU knee lands at the same client count.
FIG10_FILE_BYTES = 64 << 20
FIG10_CACHE_SMALL = 4 * FIG10_FILE_BYTES
FIG10_CACHE_BIG = 8 * FIG10_FILE_BYTES


def run_fig10(scale: str = "quick", cache_bytes: Optional[int] = None) -> ExperimentResult:
    """Fig 10: multi-client IOzone READ over RDMA vs IPoIB vs GigE."""
    clients_list = (1, 2, 3, 5, 8) if scale == "quick" else tuple(range(1, 9))
    caches = ([cache_bytes] if cache_bytes is not None
              else [FIG10_CACHE_SMALL, FIG10_CACHE_BIG])
    rows = []
    for cache in caches:
        cache_label = f"{cache / FIG10_FILE_BYTES:.0f}x-file-cache"
        for transport, label in (("rdma-rw", "RDMA"), ("tcp-ipoib", "IPoIB"),
                                 ("tcp-gige", "GigE")):
            strategy = "all-physical" if transport == "rdma-rw" else "dynamic"
            for nclients in clients_list:
                cluster = Cluster(ClusterConfig(
                    transport=transport, strategy=strategy,
                    backend="raid", cache_bytes=cache,
                    nclients=nclients, profile=LINUX_DDR_RAID))
                result = run_iozone(cluster, IozoneParams(
                    nthreads=1, record_bytes=1 << 20,
                    file_bytes=FIG10_FILE_BYTES, ops_per_thread=None))
                rows.append([
                    label, cache_label, nclients, round(result.read_mb_s, 1),
                ])
    return ExperimentResult(
        experiment="Fig 10: Multi-client IOzone Read (RDMA vs IPoIB vs GigE)",
        headers=["transport", "server cache", "clients", "aggregate read MB/s"],
        rows=rows,
        paper_reference=(
            "4GB: RDMA peaks 883 MB/s at 3 clients then falls toward spindle "
            "bandwidth; IPoIB ~326; GigE ~107 falling. 8GB: RDMA >900 MB/s "
            "through 7 clients; IPoIB ~360"
        ),
    )


# ---------------------------------------------------------------- security
def run_security_audit(scale: str = "quick") -> ExperimentResult:
    """§4.1 exposure comparison: attack surface of RR vs RW under load."""
    rows = []
    for transport in ("rdma-rr", "rdma-rw"):
        cluster = Cluster(ClusterConfig(transport=transport))
        run_iozone(cluster, IozoneParams(nthreads=4, ops_per_thread=20))
        cluster.sim.run(until=cluster.sim.now + 100_000.0)
        report = audit_server_exposure(cluster.server_node,
                                       cluster.server_transports)
        rows.append([
            transport,
            report["stags_exposed_ever"],
            report["exposed_regions_now"],
            report["pending_done_ops"],
            report["protection_faults"],
        ])
    return ExperimentResult(
        experiment="Security audit (§4.1): server attack surface under IOzone",
        headers=["design", "server stags exposed (ever)", "exposed now",
                 "pending DONE", "protection faults"],
        rows=rows,
        paper_reference=(
            "Read-Read exposes a server window per bulk reply and depends on "
            "client DONEs; Read-Write exposes zero server stags, ever"
        ),
    )
