"""Experiment registry: every figure/table behind one uniform signature.

The CLI (and any embedding code) runs experiments through
:func:`run`, never by importing per-figure functions — adding an
experiment means one :func:`register` call, not editing dispatch code
in ``__main__``.  Every runner shares the signature
``runner(scale, jobs=..., **opts)`` and returns an
:class:`~repro.experiments.figures.ExperimentResult`.
"""

from __future__ import annotations

from typing import Callable

from repro.experiments import chaos, figures
from repro.experiments.figures import ExperimentResult

__all__ = ["EXPERIMENTS", "register", "run"]

#: name -> runner; insertion order is the ``list`` command's order.
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {}


def register(name: str, runner: Callable[..., ExperimentResult]) -> None:
    """Add one experiment; names are unique."""
    if name in EXPERIMENTS:
        raise ValueError(f"experiment {name!r} already registered")
    EXPERIMENTS[name] = runner


def run(name: str, scale: str = "quick", jobs: int = 1, **opts) -> ExperimentResult:
    """Run one experiment by name — the single public entry point.

    ``opts`` pass through to the runner (e.g. ``cache_bytes`` for
    fig10).  Unknown names raise ``KeyError`` listing the registry.
    """
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None
    return runner(scale, jobs=jobs, **opts)


register("table1", figures.run_table1)
register("fig5", figures.run_fig5)
register("fig6", figures.run_fig6)
register("fig7", figures.run_fig7)
register("fig8", figures.run_fig8)
register("fig9", figures.run_fig9)
register("fig10", figures.run_fig10)
register("fig11", figures.run_fig11)
register("fig12", figures.run_fig12)
register("fig13", figures.run_fig13)
register("security", figures.run_security_audit)
register("chaos", chaos.run_chaos_soak_table)
