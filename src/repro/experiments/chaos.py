"""Chaos soak: a multi-client Postmark-style workload under faults.

The robustness counterpart of the paper's performance figures: instead
of measuring bandwidth, the soak drives several clients through a
metadata- and data-heavy file workload while a seeded
:class:`~repro.faults.FaultPlan` kills queue pairs, drops ~1% of
channel messages and injects transient disk errors — then checks the
recovery machinery's two promises:

* **exactly-once** — no non-idempotent NFS procedure (CREATE, REMOVE,
  RENAME) executes twice, however many times it was retransmitted;
* **durability** — every acknowledged stable WRITE reads back intact
  after all faults and recoveries.

Everything derives from two seeds (cluster, plan), so a failing soak
reproduces exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.analysis import SOLARIS_SDR
from repro.core.config import RpcRdmaConfig
from repro.experiments.cluster import Cluster, ClusterConfig
from repro.experiments.figures import ExperimentResult
from repro.faults import FaultPlan
from repro.nfs.protocol import Nfs3Proc
from repro.sim import DeterministicRNG

__all__ = [
    "ChaosSoakOutcome",
    "recovery_summary",
    "run_chaos_soak",
    "run_chaos_soak_table",
]

NFS_PROG, NFS_VERS = 100003, 3
NON_IDEMPOTENT = frozenset(
    {Nfs3Proc.CREATE, Nfs3Proc.REMOVE, Nfs3Proc.RENAME}
)


def recovery_summary(cluster: Cluster) -> ExperimentResult:
    """Fault/recovery counters of a run, as a reportable table.

    Covers every layer that participates in self-healing: per-mount
    transport retries and redials, the server's duplicate request
    cache, FMR fallback degradations, disk retry loops, and (when a
    plan was armed) what the injector actually fired.
    """
    rows: list[list] = []
    for i, mount in enumerate(cluster.mounts):
        t = mount.transport
        for counter, label in (
            (getattr(t, "retransmissions", None), "retransmissions"),
            (getattr(t, "reconnects", None), "reconnects"),
            (getattr(t, "calls_recovered", None), "calls recovered"),
        ):
            if counter is not None:
                rows.append([f"client{i}", label, counter.events])
    if cluster.drc is not None:
        rows.append(["server", "drc replays", cluster.drc.replays.events])
        rows.append(["server", "drc duplicate drops", cluster.drc.drops.events])
    strategy = cluster.server_strategy
    if hasattr(strategy, "fallbacks"):
        rows.append(["server", "fmr fallbacks", strategy.fallbacks.events])
    if cluster.raid is not None:
        hits = sum(d.transient_errors.events for d in cluster.raid.disks)
        rows.append(["server", "disk transient errors", hits])
    if cluster.faults is not None:
        for label, value in cluster.faults.summary().items():
            rows.append(["injector", label, value])
    return ExperimentResult(
        experiment="Recovery summary",
        headers=["where", "counter", "events"],
        rows=rows,
        paper_reference=(
            "robustness extension: exactly-once retransmit semantics and "
            "self-healing mounts (not measured in the paper)"
        ),
    )


@dataclass
class ChaosSoakOutcome:
    """Everything a caller needs to assert the soak's invariants."""

    completed: bool
    #: per-client list of (filename, expected bytes) that verified OK.
    verified_files: int
    #: acknowledged stable writes whose read-back mismatched (must be 0).
    lost_writes: int
    #: (xid, proc) -> handler executions for non-idempotent procedures.
    executions: dict = field(default_factory=dict)
    summary: Optional[ExperimentResult] = None
    cluster: Optional[Cluster] = None

    @property
    def duplicate_executions(self) -> int:
        return sum(n - 1 for n in self.executions.values() if n > 1)


def _instrument(cluster) -> dict:
    executions: dict = {}
    original = cluster.rpc_server._programs[(NFS_PROG, NFS_VERS)]

    def wrapped(call):
        if call.proc in NON_IDEMPOTENT:
            key = (call.xid, call.proc)
            executions[key] = executions.get(key, 0) + 1
        return (yield from original(call))

    cluster.rpc_server._programs[(NFS_PROG, NFS_VERS)] = wrapped
    return executions


def _postmark(nfs, index, rng, nfiles, file_bytes, transactions, state):
    """One client's Postmark-style lifetime.

    ``state`` collects {name: expected content} for every file whose
    stable WRITE was acknowledged — the durability ledger.
    """
    files = state["files"]
    # Initial pool.
    for i in range(nfiles):
        name = f"c{index}-f{i}"
        fh, _ = yield from nfs.create(nfs.root, name)
        data = rng.bytes(file_bytes)
        yield from nfs.write(fh, 0, data, stable=True)
        files[name] = (fh, data)
    # Transactions: weighted mix of read / overwrite / create / delete /
    # rename, like Postmark's transaction phase.
    serial = nfiles
    for _ in range(transactions):
        op = rng.choice(("read", "write", "create", "delete", "rename"))
        if op == "read" and files:
            name = rng.choice(sorted(files))
            fh, expect = files[name]
            data, _, _ = yield from nfs.read(fh, 0, len(expect))
            if data != expect:
                state["lost"] += 1
        elif op == "write" and files:
            name = rng.choice(sorted(files))
            fh, _ = files[name]
            data = rng.bytes(file_bytes)
            yield from nfs.write(fh, 0, data, stable=True)
            files[name] = (fh, data)
        elif op == "create":
            name = f"c{index}-f{serial}"
            serial += 1
            fh, _ = yield from nfs.create(nfs.root, name)
            data = rng.bytes(file_bytes)
            yield from nfs.write(fh, 0, data, stable=True)
            files[name] = (fh, data)
        elif op == "delete" and len(files) > 1:
            name = rng.choice(sorted(files))
            yield from nfs.remove(nfs.root, name)
            del files[name]
        elif op == "rename" and files:
            name = rng.choice(sorted(files))
            newname = f"{name}-r{serial}"
            serial += 1
            yield from nfs.rename(nfs.root, name, nfs.root, newname)
            files[newname] = files.pop(name)
    # Verification sweep: every acknowledged write must read back.
    verified = 0
    for name in sorted(files):
        fh, expect = files[name]
        data, _, _ = yield from nfs.read(fh, 0, len(expect))
        if data == expect:
            verified += 1
        else:
            state["lost"] += 1
    state["verified"] = verified
    state["done"] = True


def run_chaos_soak(
    scale: str = "quick",
    seed: int = 2007,
    nclients: int = 4,
    loss_rate: float = 0.01,
    qp_kills: int = 3,
    disk_faults: int = 2,
    crashes: int = 0,
    telemetry: bool = False,
) -> ChaosSoakOutcome:
    """Build a faulted cluster, run the soak, check the invariants.

    ``crashes`` arms that many seeded server crash-restarts on top of
    the usual chaos mix; ``telemetry`` builds the cluster with the
    metrics registry attached so ``repro health`` can grade the run.
    """
    if scale == "quick":
        nfiles, file_bytes, transactions = 6, 16 * 1024, 30
        duration_us = 400_000.0
        horizon_us = 600_000_000.0
    else:
        nfiles, file_bytes, transactions = 20, 32 * 1024, 150
        duration_us = 3_000_000.0
        horizon_us = 3_600_000_000.0
    profile = replace(
        SOLARIS_SDR,
        rpcrdma=replace(RpcRdmaConfig(), reply_timeout_us=30_000.0),
    )
    plan = FaultPlan.chaos(
        seed=seed,
        duration_us=duration_us,
        nclients=nclients,
        loss_rate=loss_rate,
        qp_kills=qp_kills,
        disk_faults=disk_faults,
        crashes=crashes,
    )
    cluster = Cluster(ClusterConfig(
        transport="rdma-rw",
        backend="raid",
        nclients=nclients,
        seed=seed,
        profile=profile,
        # Small server cache: the workload spills to the spindles, so
        # armed disk faults actually land in the I/O path.
        cache_bytes=2 << 20,
        fault_plan=plan,
        telemetry=telemetry,
    ))
    executions = _instrument(cluster)
    states = []
    for index, mount in enumerate(cluster.mounts):
        rng = DeterministicRNG(seed, "chaos-soak", f"client{index}")
        state = {"files": {}, "lost": 0, "verified": 0, "done": False}
        states.append(state)
        cluster.sim.process(
            _postmark(mount.nfs, index, rng, nfiles, file_bytes,
                      transactions, state),
            name=f"soak.client{index}",
        )
    cluster.sim.run(until=cluster.sim.now + horizon_us)
    return ChaosSoakOutcome(
        completed=all(s["done"] for s in states),
        verified_files=sum(s["verified"] for s in states),
        lost_writes=sum(s["lost"] for s in states),
        executions=executions,
        summary=recovery_summary(cluster),
        cluster=cluster,
    )


def run_chaos_soak_table(scale: str = "quick", jobs: int = 1) -> ExperimentResult:
    """Chaos soak: recovery counters from a faulted multi-client run.

    ``jobs`` is accepted for runner-signature uniformity but unused: the
    soak is a single fault-ordered simulation, not a point grid.
    """
    out = run_chaos_soak(scale)
    result = out.summary
    result.experiment = "Chaos soak: recovery summary"
    status = "completed" if out.completed else "DID NOT COMPLETE"
    result.paper_reference += (
        f"; soak {status}: {out.verified_files} files verified, "
        f"{out.lost_writes} lost writes, "
        f"{out.duplicate_executions} duplicate executions"
    )
    return result
