"""Multi-node deployments: sharded servers, data servers, QP sharing.

:class:`~repro.experiments.cluster.Cluster` wires the paper's testbed —
one server, N clients, one QP each.  This module is the scale-out
generalisation behind fig13 and the ``repro.api`` Deployment surface:

* **K server shards** — independent full serving stacks (file system,
  DRC, dispatcher, NFS program, registration strategy, optional shared
  receive pool), with a :class:`~repro.nfs.redirector.MountRedirector`
  load-balancing mounts across them at build time;
* **M data servers** — pNFS-style striping
  (:class:`~repro.nfs.striping.StripedNfsClient`): each mount keeps its
  namespace on its assigned shard (the MDS) and stripes file contents
  across the data-server stacks;
* **H client hosts** — mounts co-located ``m % H``, the substrate QP
  sharing needs (dedicated-per-mount hosts cannot share anything);
* **QP multiplexing** (:class:`~repro.ib.mux.QpMux`) — per
  (host, target) channel pools of ``ceil(sqrt(lanes))`` shared QPs with
  per-mount virtual lanes, riding each stack's shared receive pool.

With mux on, the shared pool no longer needs one buffer per *mount* —
only one per *channel* — so SRQ sizing drops the linear floor
:func:`~repro.experiments.cluster.default_srq_entries` keeps for
dedicated connections: registered receive memory scales with
``sqrt(N)``, the fig13 claim.

:class:`MultiCluster` exposes the same measurement surface as
``Cluster`` (``mounts``/``run``/``server_recv_buffer_bytes``/CPU
utilization/aggregated ``server_transports``), so workloads, the
sanitizer, telemetry and the health checks drive both unchanged.
"""

from __future__ import annotations

from dataclasses import replace
from math import isqrt
from typing import Optional

from repro.core import (
    ClientRegistrationCache,
    ReadReadClient,
    ReadReadServer,
    ReadWriteClient,
    ReadWriteServer,
    RegistrationCacheStrategy,
    SrqCreditPolicy,
)
from repro.core.strategies import (
    AllPhysicalStrategy,
    DynamicRegistration,
    FmrStrategy,
    RegistrationStrategy,
)
from repro.errors import TransportError
from repro.experiments.cluster import ClusterConfig, Mount
from repro.fs import BlockFs, DiskConfig, Raid0, TmpFs
from repro.ib.fabric import Fabric, IBNode
from repro.ib.mux import MuxConfig, QpMux
from repro.ib.srq import SharedReceivePool
from repro.ib.verbs import QPState
from repro.nfs import NfsClient, NfsServer
from repro.nfs.redirector import MountRedirector
from repro.nfs.striping import StripedNfsClient
from repro.rpc import RpcServer
from repro.rpc.drc import DuplicateRequestCache
from repro.rpc.svc import RpcServerCosts
from repro.sim import Simulator

__all__ = ["MultiCluster", "ServerStack", "TopologyConfig", "TOPOLOGY_KEYS"]

#: Point-spec keys that route :func:`repro.experiments.sweep._build_cluster`
#: to a :class:`MultiCluster` instead of a single-node ``Cluster``.
TOPOLOGY_KEYS = ("servers", "data_servers", "mux", "client_hosts",
                 "stripe_unit_bytes", "credits")


class TopologyConfig:
    """A multi-node deployment: base cluster knobs + topology knobs.

    ``cluster`` carries the single-node knobs (transport, strategy,
    profile, nclients, ...); alternatively pass them as keyword
    arguments and they are folded into a fresh
    :class:`~repro.experiments.cluster.ClusterConfig`::

        TopologyConfig(servers=4, mux=MuxConfig(), nclients=1000,
                       srq=True)
    """

    def __init__(self, servers: int = 1, data_servers: int = 0,
                 mux=None, client_hosts: Optional[int] = None,
                 stripe_unit_bytes: int = 64 * 1024,
                 credits: Optional[int] = None,
                 cluster: Optional[ClusterConfig] = None,
                 **cluster_kwargs):
        if cluster is not None and cluster_kwargs:
            raise ValueError("pass either cluster= or ClusterConfig "
                             "keyword arguments, not both")
        if servers < 1:
            raise ValueError("need at least one server")
        if data_servers < 0:
            raise ValueError("data_servers must be non-negative")
        if client_hosts is not None and client_hosts < 1:
            raise ValueError("client_hosts must be >= 1 (or None)")
        if stripe_unit_bytes < 1:
            raise ValueError("stripe_unit_bytes must be positive")
        if credits is not None and credits < 1:
            raise ValueError("credits must be >= 1 (or None)")
        if mux is True:
            mux = MuxConfig()
        elif mux is False:
            mux = None
        elif isinstance(mux, dict):
            mux = MuxConfig(**mux)
        if mux is not None and not isinstance(mux, MuxConfig):
            raise ValueError("mux must be a MuxConfig, a dict of its "
                             "fields, or a bool")
        self.servers = servers
        self.data_servers = data_servers
        self.mux: Optional[MuxConfig] = \
            mux if (mux is None or mux.enabled) else None
        self.client_hosts = client_hosts
        self.stripe_unit_bytes = stripe_unit_bytes
        self.credits = credits
        self.cluster = cluster if cluster is not None \
            else ClusterConfig(**cluster_kwargs)
        if not self.cluster.is_rdma:
            raise ValueError("multi-node topologies require an RDMA "
                             "transport (use ClusterConfig for TCP)")
        if self.cluster.quarantine:
            raise ValueError("quarantine is not supported on multi-node "
                             "topologies yet")
        if self.cluster.fault_plan is not None:
            raise ValueError("fault plans are not supported on multi-node "
                             "topologies yet")

    @property
    def is_multi(self) -> bool:
        """Anything beyond what a single-node ``Cluster`` wires."""
        return (self.servers > 1 or self.data_servers > 0
                or self.mux is not None or self.client_hosts is not None)


class ServerStack:
    """One server node's complete serving stack."""

    def __init__(self, cluster: "MultiCluster", name: str):
        config = cluster.config
        profile = config.profile
        self.name = name
        self.node = cluster.fabric.add_node(
            name,
            cpu_config=profile.server_cpu,
            hca_config=profile.server_hca,
            link_config=profile.link,
            interrupt_cost_us=profile.interrupt_cost_us,
            allow_physical=config.strategy == "all-physical",
        )
        if config.backend == "tmpfs":
            self.fs = TmpFs(cluster.sim, self.node.cpu)
            self.raid = None
        else:
            self.raid = Raid0(
                cluster.sim,
                ndisks=config.ndisks,
                disk_config=DiskConfig(streaming_mb_s=config.disk_mb_s),
                stripe_unit_bytes=config.page_bytes,
            )
            self.fs = BlockFs(
                cluster.sim, self.node.cpu, self.raid,
                cache_bytes=config.cache_bytes,
                page_bytes=config.page_bytes,
            )
        self.drc = (
            DuplicateRequestCache(config.drc_entries, name=f"{name}.drc")
            if config.drc_entries > 0 else None
        )
        self.rpc_server = RpcServer(
            cluster.sim,
            self.node.cpu,
            nthreads=config.server_workers or profile.server_threads,
            costs=RpcServerCosts(),
            drc=self.drc,
            name=f"{name}.rpcsvc",
            max_queue=config.server_queue_depth,
        )
        self.nfs_server = NfsServer(
            self.rpc_server, self.fs,
            max_transfer_bytes=profile.rpcrdma.max_transfer_bytes,
        )
        self.strategy = cluster._make_strategy(config.strategy, self.node,
                                               server=True)
        self.server_transports: list = []
        # Flow control is sized by MultiCluster once the lane plan is
        # known (connection count drives SRQ entries + credit clamps).
        self.srq: Optional[SharedReceivePool] = None
        self.credit_policy = None
        self.rpcrdma = profile.rpcrdma

    def size_flow_control(self, cluster: "MultiCluster",
                          lanes: int, connections: int) -> None:
        """Shared pool + per-connection credit clamp for this stack."""
        config = cluster.config
        base_credits = cluster.topology.credits or self.rpcrdma.credits
        overrides = dict(cluster._hardening_overrides(), credits=base_credits)
        if config.srq:
            if cluster.topology.mux is not None:
                # Shared QPs: the pool only needs to cover *channels*,
                # so the per-mount linear floor goes away — this is the
                # fig13 sublinear-memory claim.
                entries = max(64, 16 * isqrt(max(1, lanes)), connections)
            else:
                from repro.experiments.cluster import default_srq_entries

                entries = (config.srq_entries
                           if config.srq_entries is not None
                           else default_srq_entries(max(1, connections)))
            demand = 2 if config.transport == "rdma-rr" else 1
            per_conn = max(1, min(base_credits,
                                  entries // max(1, demand * connections)))
            self.srq = SharedReceivePool(
                self.node, entries, self.rpcrdma.inline_threshold,
                name=f"{self.name}.srq",
            )
            cluster.sim.process(self.srq.setup(),
                                name=f"{self.name}.srq.setup")
            overrides["credits"] = per_conn
            self.credit_policy = SrqCreditPolicy(self.srq,
                                                 max_grant=per_conn)
        self.rpcrdma = replace(self.rpcrdma, **overrides)

    def make_transport(self, cluster: "MultiCluster", qp_s):
        """Build + attach one RDMA server transport for ``qp_s``."""
        cls = (ReadWriteServer if cluster.config.transport == "rdma-rw"
               else ReadReadServer)
        server = cls(self.node, qp_s, self.rpcrdma, self.strategy,
                     credit_policy=self.credit_policy, srq=self.srq)
        server.attach(self.rpc_server)
        self.server_transports.append(server)
        return server

    def recv_buffer_bytes(self) -> int:
        if self.srq is not None:
            return self.srq.registered_bytes
        total = 0
        for transport in self.server_transports:
            pool = getattr(transport, "recv_pool", None)
            if pool is not None:
                total += pool.count * pool.size
        return total


class MultiCluster:
    """A fully wired sharded deployment (drop-in ``Cluster`` surface)."""

    def __init__(self, topology: TopologyConfig):
        self.topology = topology
        config = topology.cluster
        self.config = config
        profile = config.profile
        if config.perturb_seed is not None:
            from repro.check.races import PerturbedSimulator

            self.sim = PerturbedSimulator(config.perturb_seed)
        else:
            self.sim = Simulator()
        if config.sanitizer:
            from repro.check.sanitizer import Sanitizer

            self.sim.sanitizer = Sanitizer(self.sim)
        self.fabric = Fabric(self.sim, seed=config.seed)
        self._client_cls = (ReadWriteClient if config.transport == "rdma-rw"
                            else ReadReadClient)

        self.server_stacks = [ServerStack(self, f"server{i}")
                              for i in range(topology.servers)]
        self.data_stacks = [ServerStack(self, f"ds{j}")
                            for j in range(topology.data_servers)]

        nclients = config.nclients
        hosts = min(topology.client_hosts or nclients, nclients)
        allow_phys = config.strategy == "all-physical"
        self.client_nodes = [
            self.fabric.add_node(
                f"client{h}",
                cpu_config=profile.client_cpu,
                hca_config=profile.client_hca,
                link_config=profile.link,
                interrupt_cost_us=profile.interrupt_cost_us,
                allow_physical=allow_phys,
            )
            for h in range(hosts)
        ]

        # Placement first — flow-control sizing and mux pool sizing both
        # need the full lane plan before any connection is dialed.
        self.redirector = MountRedirector(self.server_stacks)
        placements: list[tuple[int, int]] = []
        server_lanes: dict[tuple[int, int], int] = {}
        host_mounts: dict[int, int] = {}
        for m in range(nclients):
            h = m % hosts
            s, _ = self.redirector.place(m)
            placements.append((h, s))
            server_lanes[(h, s)] = server_lanes.get((h, s), 0) + 1
            host_mounts[h] = host_mounts.get(h, 0) + 1

        mux_cfg = topology.mux

        def channels_for(lanes: int) -> int:
            return mux_cfg.qps_for(lanes) if mux_cfg is not None else lanes

        for s, stack in enumerate(self.server_stacks):
            lanes = sum(n for (h, si), n in server_lanes.items() if si == s)
            conns = sum(channels_for(n)
                        for (h, si), n in server_lanes.items() if si == s)
            stack.size_flow_control(self, lanes, conns)
        for stack in self.data_stacks:
            # Every mount stripes to every data server: lane count per
            # host is simply that host's mount count.
            lanes = nclients
            conns = sum(channels_for(n) for n in host_mounts.values())
            stack.size_flow_control(self, lanes, conns)

        # Channel pools per (host, target stack), dialed eagerly so the
        # lane plan above matches what actually exists.
        self.muxes: dict[tuple[int, str], QpMux] = {}
        if mux_cfg is not None:
            for h, host in enumerate(self.client_nodes):
                for s, stack in enumerate(self.server_stacks):
                    lanes = server_lanes.get((h, s), 0)
                    if lanes:
                        self._add_mux(h, host, stack, lanes, mux_cfg)
                for stack in self.data_stacks:
                    lanes = host_mounts.get(h, 0)
                    if lanes:
                        self._add_mux(h, host, stack, lanes, mux_cfg)

        self.mounts: list[Mount] = []
        for m, (h, s) in enumerate(placements):
            self.mounts.append(self._build_mount(m, h, s))

        self.faults = None
        self.telemetry = None
        if config.telemetry:
            self.enable_telemetry()

    # -- wiring ------------------------------------------------------------
    def _hardening_overrides(self) -> dict:
        config = self.config
        overrides = {}
        if config.lease_timeout_us is not None:
            overrides["lease_timeout_us"] = config.lease_timeout_us
        if config.exposure_quota_bytes is not None:
            overrides["exposure_quota_bytes"] = config.exposure_quota_bytes
        if config.aes_payload:
            overrides["aes_payload"] = True
        return overrides

    def _make_strategy(self, kind: str, node: IBNode,
                       server: bool) -> RegistrationStrategy:
        if kind == "dynamic":
            return DynamicRegistration(node)
        if kind == "fmr":
            return FmrStrategy(node)
        if kind == "cache":
            if server:
                return RegistrationCacheStrategy(
                    node, budget_bytes=self.config.regcache_budget_bytes)
            return DynamicRegistration(node)
        if kind == "client-cache":
            if server:
                return RegistrationCacheStrategy(
                    node, budget_bytes=self.config.regcache_budget_bytes)
            return ClientRegistrationCache(node)
        if kind == "all-physical":
            return AllPhysicalStrategy(node)
        raise ValueError(kind)

    def _make_redial(self, stack: ServerStack):
        """Recovery policy redialing ``stack`` (see ``Cluster._redial``)."""

        def redial(client):
            old_qp = client.qp
            old_server = next(
                (s for s in stack.server_transports
                 if getattr(s, "qp", None) is old_qp.peer),
                None,
            )
            if old_qp.state is not QPState.ERROR:
                old_qp.enter_error("client-initiated redial")
            if old_qp.peer is not None and \
                    old_qp.peer.state is not QPState.ERROR:
                old_qp.peer.enter_error("client-initiated redial (remote)")
            if old_server is not None:
                stack.server_transports.remove(old_server)
                yield from old_server.disconnect()
            qp_c, qp_s = self.fabric.connect(client.node, stack.node)
            server = stack.make_transport(self, qp_s)
            return qp_c, server.ready

        return redial

    def _dial(self, host: IBNode, stack: ServerStack, name: str):
        """One client connection from ``host`` to ``stack``."""
        qp_c, qp_s = self.fabric.connect(host, stack.node)
        strategy = self._make_strategy(self.config.strategy, host,
                                       server=False)
        client = self._client_cls(host, qp_c, stack.rpcrdma, strategy,
                                  name=name)
        server = stack.make_transport(self, qp_s)
        client.peer_ready = server.ready
        if self.config.auto_reconnect:
            client.reconnector = self._make_redial(stack)
        return client

    def _add_mux(self, h: int, host: IBNode, stack: ServerStack,
                 lanes: int, mux_cfg: MuxConfig) -> None:
        name = f"{host.name}.{stack.name}.mux"
        self.muxes[(h, stack.name)] = QpMux(
            name, lanes,
            lambda i, host=host, stack=stack, name=name:
                self._dial(host, stack, f"{name}.ch{i}"),
            config=mux_cfg,
        )

    def _transport_for(self, m: int, h: int, stack: ServerStack):
        """Mount ``m``'s transport to ``stack``: lane or dedicated QP."""
        if self.topology.mux is not None:
            return self.muxes[(h, stack.name)].add_lane(m)
        host = self.client_nodes[h]
        return self._dial(host, stack,
                          f"{host.name}.m{m}.{stack.name}")

    def _build_mount(self, m: int, h: int, s: int) -> Mount:
        host = self.client_nodes[h]
        stack = self.server_stacks[s]
        transport = self._transport_for(m, h, stack)
        mds = NfsClient(transport, stack.nfs_server.root_handle(),
                        name=f"{host.name}.m{m}.nfs")
        if not self.data_stacks:
            return Mount(node=host, transport=transport, nfs=mds)
        data_clients = [
            NfsClient(self._transport_for(m, h, ds),
                      ds.nfs_server.root_handle(),
                      name=f"{host.name}.m{m}.{ds.name}.nfs")
            for ds in self.data_stacks
        ]
        striped = StripedNfsClient(
            mds, data_clients,
            stripe_unit=self.topology.stripe_unit_bytes,
            name=f"{host.name}.m{m}.pnfs",
            component_tag=f".s{s}.m{m}",
        )
        return Mount(node=host, transport=transport, nfs=striped)

    def enable_telemetry(self, tracing: bool = True):
        """Attach telemetry (see ``Cluster.enable_telemetry``)."""
        from repro.telemetry import Telemetry

        if self.telemetry is None:
            self.telemetry = Telemetry(self.sim, tracing=tracing)
            self.sim.telemetry = self.telemetry
            self.telemetry.attach_cluster(self)
        elif tracing:
            self.telemetry.enable_tracing()
        return self.telemetry

    # -- aggregate views (the single-node compat surface) ------------------
    @property
    def all_stacks(self) -> list[ServerStack]:
        return [*self.server_stacks, *self.data_stacks]

    @property
    def server_nodes(self) -> list[IBNode]:
        return [stack.node for stack in self.all_stacks]

    @property
    def server_node(self) -> IBNode:
        return self.server_stacks[0].node

    @property
    def server_transports(self) -> list:
        return [t for stack in self.all_stacks
                for t in stack.server_transports]

    @property
    def server_strategy(self):
        return self.server_stacks[0].strategy

    @property
    def rpc_server(self):
        return self.server_stacks[0].rpc_server

    @property
    def nfs_server(self):
        return self.server_stacks[0].nfs_server

    @property
    def fs(self):
        return self.server_stacks[0].fs

    @property
    def drc(self):
        return self.server_stacks[0].drc

    @property
    def srq(self):
        return self.server_stacks[0].srq

    @property
    def node_count(self) -> int:
        """Real node count (health's ``hca`` check compares to this)."""
        return len(self.all_stacks) + len(self.client_nodes)

    def qp_count(self) -> int:
        """Live server-side connections across every stack — the fig13
        "total QPs" column (each costs HCA QP context on both ends)."""
        return sum(len(stack.server_transports) for stack in self.all_stacks)

    # -- measurement helpers ----------------------------------------------
    def server_recv_buffer_bytes(self) -> int:
        return sum(stack.recv_buffer_bytes() for stack in self.all_stacks)

    def reset_utilization_windows(self) -> None:
        for stack in self.all_stacks:
            stack.node.cpu.reset_utilization_window()
        for node in self.client_nodes:
            node.cpu.reset_utilization_window()

    def client_cpu_utilization(self) -> float:
        if not self.client_nodes:
            return 0.0
        return (sum(n.cpu.utilization() for n in self.client_nodes)
                / len(self.client_nodes))

    def server_cpu_utilization(self) -> float:
        stacks = self.all_stacks
        return (sum(s.node.cpu.utilization() for s in stacks)
                / len(stacks))

    def run(self, proc):
        """Run one process to completion and return its value."""
        return self.sim.run_until_complete(self.sim.process(proc))
