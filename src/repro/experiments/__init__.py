"""Experiment harness: cluster builder and one module per paper figure."""

from repro.experiments.cluster import Cluster, ClusterConfig

__all__ = ["Cluster", "ClusterConfig"]
