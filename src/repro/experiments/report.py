"""Regenerate EXPERIMENTS.md: every table/figure, paper vs measured.

Usage::

    python -m repro.experiments.report [quick|full] [output-path]

``full`` runs the complete thread/client sweeps (several minutes);
``quick`` (default) runs the reduced grids the benchmarks use.
"""

from __future__ import annotations

import sys
import time

from repro.experiments.chaos import recovery_summary
from repro.experiments.registry import EXPERIMENTS, run as run_experiment

__all__ = ["ALL_EXPERIMENTS", "generate", "main", "recovery_summary"]

#: every registered experiment, in registry (paper) order.
ALL_EXPERIMENTS = list(EXPERIMENTS)

PREAMBLE = """\
# EXPERIMENTS — paper vs. measured

Reproduction record for **"Designing NFS with RDMA for Security,
Performance and Scalability"** (ICPP 2007) on the simulated cluster
(DESIGN.md describes the substitution).  Regenerate with::

    python -m repro.experiments.report {scale}

All bandwidths are simulated-clock MB/s (bytes / simulated microsecond).
Absolute numbers depend on the calibrated profiles in
`repro.analysis.calibration`; the claims being reproduced are the
*shapes*: who wins, by what factor, and where saturation/knees fall.

## Scaling notes

* IOzone runs on the memory backend cover a prefix of each file
  (`ops_per_thread`); steady-state bandwidth there does not depend on
  file length.
* Fig 10 keeps the paper's cache:file ratios (4x, 8x) at 1/16 scale
  (64 MB files vs 256/512 MB server cache, same 8x30 MB/s spindles), so
  the LRU knee lands at the same client count.

## Tracing a figure point (Perfetto recipe)

Any point of the fig 5/6/7/9/11 grids can be re-run with telemetry on
and inspected span-by-span:

    # nfsstat-style rollup for fig 5, point 0 (RR, 128K records, 1 thread)
    python -m repro stats --figure fig5 --quick --point 0

    # full span trace of the same point as Chrome trace_event JSON
    python -m repro trace --figure fig5 --quick --point 0 --out trace.json

Open https://ui.perfetto.dev (or `chrome://tracing`), choose *Open
trace file* and load `trace.json`.  Each simulated node appears as a
process (`client0`, `server`); lanes are transports, HCA queue pairs
(`qp0x100`), server dispatch workers (`svc.w0`...) and the file
system.  Spans are async begin/end pairs keyed by trace id, so
clicking one NFS op's `rpc.call` highlights the whole flow — RDMA
chunk transfers, HCA work-queue occupancy, server dispatch, disk — and
fault injections/redials show up as instant markers.  Timestamps are
simulated microseconds (displayed as ms).

## Known deviations

* Fig 5's single-thread Read-Write advantage measures ~25-30% here vs
  the paper's ~47%: the simulated Read-Read path lacks some per-wakeup
  scheduling latency of the real client stack. The direction and decay
  with thread count reproduce.
* Fig 7a's Register/FMR plateaus land ~10% above the paper's figure
  (400/430 vs 350/400); the paper's own Fig 5 reports ~400 for the same
  configuration, so we calibrated between the two.
* Fig 10a's GigE series holds flat ~110 MB/s rather than declining
  slightly with client count (we do not model TCP congestion collapse).
* Post-knee RDMA bandwidth in Fig 10a falls to the spindle floor
  (~230 MB/s); the paper's decline is shallower (its LRU is softened by
  the Solaris/Linux active-inactive page lists we do not model).

"""


CHAOS_RECIPE = """\
### Chaos recipe

The soak builds a 4-client `rdma-rw` cluster on the RAID backend with
`reply_timeout_us=30_000` and arms `FaultPlan.chaos(seed, duration_us,
nclients=4, loss_rate=0.01, qp_kills=3, disk_faults=2)`: a schedule of
QP kills and transient disk errors landing in the middle 80% of the
window plus continuous ~1% message loss.  A `FaultPlan` is a frozen
value object — tuples of `MessageLoss(rate, start_us, end_us, node)`,
`DelaySpike(rate, mean_delay_us, ...)`, `QpKill(at_us, client_index)`,
`DiskFault(at_us, count, disk_index)`, `ServerStall(at_us,
duration_us)` and `ServerCrash(at_us, restart_us)` — so a schedule is
printable, diffable and hashable.

Invariants asserted (benchmarks/test_chaos_soak.py):

* the Postmark-style workload completes with **zero** manual repair —
  every recovery is the transport's own retransmit/redial machinery;
* every non-idempotent procedure (CREATE/REMOVE/RENAME) executed
  exactly once per (xid, proc) despite retransmits and reconnects;
* every acknowledged stable WRITE read back intact;
* the schedule actually bit: >=3 QP kills fired, messages dropped,
  >=2 disk errors hit.

Reproduction: every stochastic draw derives from two integers — the
cluster seed and the plan seed (both default 2007).  Re-running
`repro.experiments.chaos.run_chaos_soak(scale, seed)` replays the
identical run, fault for fault.
"""

FIG11_RECIPE = """\
### Fig 11 recipe (extension: many-client scaling)

Not a paper figure: it projects the Fig 10 story past the 8-node
testbed to ask what the *server* needs to hold per client.  Three
series per client count — the Read-Write design with the shared
receive pool (`ClusterConfig(srq=True)`), the same design with the
seed's per-connection receive rings, and NFS/TCP on IPoIB — each on
the tmpfs backend (64 KB records, 1 thread/mount) behind the same
bounded dispatcher (8 workers, 64-deep run queue), so receive-buffer
pooling is the only variable between the RDMA series.  Regenerate one
point with telemetry: `python -m repro stats --figure fig11 --quick
--point 3` (the SRQ section shows pool occupancy and the low-water
mark).

Registered receive-buffer memory (1 KB inline buffers, credits = 32):

```
clients   per-connection rings       shared pool (SRQ)
          buffers    KB/client       buffers    KB/client
      1        32          32             64         64
      4       128          32             64         16
     16       512          32             64          4
     64      2048          32            128          2
    256      8192          32            256          1
```

Per-connection rings pin `credits x inline_threshold` per mount —
linear, 32 KB/client forever.  The pool sizes as
`max(64, 16*sqrt(n), n)` entries *total*; client credit grants are
clamped to `entries // (demand * nclients)` so the sum of grants never
exceeds the pool and no receive can arrive to an empty SRQ (RNR-free
by construction, asserted in tests/test_srq.py).
"""

BENCH_RECIPE = """\
## Benchmarking the simulator itself

The tables above measure the *simulated* cluster; to measure the
simulator, run:

```
PYTHONPATH=src python -m repro bench --scale quick --jobs "$(nproc)"
```

This times every figure runner and writes `BENCH_fig{5..11}.json`
(wall seconds, simulator events stepped, events/sec).  CI runs the
same command as a smoke job with a wall-clock budget and archives the
JSON artifacts.  `--jobs N` parallelises the independent figure points
across worker processes with bit-identical tables (DESIGN.md §8);
comparing `--jobs 1` against `--jobs N` output is itself a determinism
check.
"""


def generate(scale: str = "quick", jobs: int = 1) -> str:
    sections = [PREAMBLE.format(scale=scale)]
    for name in ALL_EXPERIMENTS:
        t0 = time.time()  # lint-sim: allow[wallclock] (host report timing)
        result = run_experiment(name, scale, jobs=jobs)
        elapsed = time.time() - t0  # lint-sim: allow[wallclock] (host report timing)
        sections.append(
            f"## {result.experiment}\n\n"
            f"**Paper:** {result.paper_reference}\n\n"
            "```\n"
            f"{result.table()}\n"
            "```\n\n"
            f"*(regenerated in {elapsed:.1f}s wall, scale={scale})*\n"
        )
        if name == "fig11":
            sections.append(FIG11_RECIPE)
        if name == "chaos":
            sections.append(CHAOS_RECIPE)
    sections.append(BENCH_RECIPE)
    return "\n".join(sections)


def main(argv: list[str]) -> int:
    scale = argv[1] if len(argv) > 1 else "quick"
    path = argv[2] if len(argv) > 2 else "EXPERIMENTS.md"
    content = generate(scale)
    with open(path, "w") as fh:
        fh.write(content)
    print(f"wrote {path} ({len(content)} bytes, scale={scale})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
