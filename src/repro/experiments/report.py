"""Regenerate EXPERIMENTS.md: every table/figure, paper vs measured.

Usage::

    python -m repro.experiments.report [quick|full] [output-path]

``full`` runs the complete thread/client sweeps (several minutes);
``quick`` (default) runs the reduced grids the benchmarks use.
"""

from __future__ import annotations

import sys
import time

from repro.experiments import figures
from repro.experiments.chaos import recovery_summary, run_chaos_soak_table

__all__ = ["ALL_EXPERIMENTS", "generate", "main", "recovery_summary"]

#: (runner, paper-vs-measured commentary extractor)
ALL_EXPERIMENTS = [
    figures.run_table1,
    figures.run_fig5,
    figures.run_fig6,
    figures.run_fig7,
    figures.run_fig8,
    figures.run_fig9,
    figures.run_fig10,
    figures.run_security_audit,
    run_chaos_soak_table,
]

PREAMBLE = """\
# EXPERIMENTS — paper vs. measured

Reproduction record for **"Designing NFS with RDMA for Security,
Performance and Scalability"** (ICPP 2007) on the simulated cluster
(DESIGN.md describes the substitution).  Regenerate with::

    python -m repro.experiments.report {scale}

All bandwidths are simulated-clock MB/s (bytes / simulated microsecond).
Absolute numbers depend on the calibrated profiles in
`repro.analysis.calibration`; the claims being reproduced are the
*shapes*: who wins, by what factor, and where saturation/knees fall.

## Scaling notes

* IOzone runs on the memory backend cover a prefix of each file
  (`ops_per_thread`); steady-state bandwidth there does not depend on
  file length.
* Fig 10 keeps the paper's cache:file ratios (4x, 8x) at 1/16 scale
  (64 MB files vs 256/512 MB server cache, same 8x30 MB/s spindles), so
  the LRU knee lands at the same client count.

## Known deviations

* Fig 5's single-thread Read-Write advantage measures ~25-30% here vs
  the paper's ~47%: the simulated Read-Read path lacks some per-wakeup
  scheduling latency of the real client stack. The direction and decay
  with thread count reproduce.
* Fig 7a's Register/FMR plateaus land ~10% above the paper's figure
  (400/430 vs 350/400); the paper's own Fig 5 reports ~400 for the same
  configuration, so we calibrated between the two.
* Fig 10a's GigE series holds flat ~110 MB/s rather than declining
  slightly with client count (we do not model TCP congestion collapse).
* Post-knee RDMA bandwidth in Fig 10a falls to the spindle floor
  (~230 MB/s); the paper's decline is shallower (its LRU is softened by
  the Solaris/Linux active-inactive page lists we do not model).

"""


CHAOS_RECIPE = """\
### Chaos recipe

The soak builds a 4-client `rdma-rw` cluster on the RAID backend with
`reply_timeout_us=30_000` and arms `FaultPlan.chaos(seed, duration_us,
nclients=4, loss_rate=0.01, qp_kills=3, disk_faults=2)`: a schedule of
QP kills and transient disk errors landing in the middle 80% of the
window plus continuous ~1% message loss.  A `FaultPlan` is a frozen
value object — tuples of `MessageLoss(rate, start_us, end_us, node)`,
`DelaySpike(rate, mean_delay_us, ...)`, `QpKill(at_us, client_index)`,
`DiskFault(at_us, count, disk_index)`, `ServerStall(at_us,
duration_us)` and `ServerCrash(at_us, restart_us)` — so a schedule is
printable, diffable and hashable.

Invariants asserted (benchmarks/test_chaos_soak.py):

* the Postmark-style workload completes with **zero** manual repair —
  every recovery is the transport's own retransmit/redial machinery;
* every non-idempotent procedure (CREATE/REMOVE/RENAME) executed
  exactly once per (xid, proc) despite retransmits and reconnects;
* every acknowledged stable WRITE read back intact;
* the schedule actually bit: >=3 QP kills fired, messages dropped,
  >=2 disk errors hit.

Reproduction: every stochastic draw derives from two integers — the
cluster seed and the plan seed (both default 2007).  Re-running
`repro.experiments.chaos.run_chaos_soak(scale, seed)` replays the
identical run, fault for fault.
"""

BENCH_RECIPE = """\
## Benchmarking the simulator itself

The tables above measure the *simulated* cluster; to measure the
simulator, run:

```
PYTHONPATH=src python -m repro bench --scale quick --jobs "$(nproc)"
```

This times every figure runner and writes `BENCH_fig{5..10}.json`
(wall seconds, simulator events stepped, events/sec).  CI runs the
same command as a smoke job with a wall-clock budget and archives the
JSON artifacts.  `--jobs N` parallelises the independent figure points
across worker processes with bit-identical tables (DESIGN.md §8);
comparing `--jobs 1` against `--jobs N` output is itself a determinism
check.
"""


def generate(scale: str = "quick", jobs: int = 1) -> str:
    sections = [PREAMBLE.format(scale=scale)]
    for runner in ALL_EXPERIMENTS:
        t0 = time.time()
        result = runner(scale, jobs=jobs)
        elapsed = time.time() - t0
        sections.append(
            f"## {result.experiment}\n\n"
            f"**Paper:** {result.paper_reference}\n\n"
            "```\n"
            f"{result.table()}\n"
            "```\n\n"
            f"*(regenerated in {elapsed:.1f}s wall, scale={scale})*\n"
        )
        if runner is run_chaos_soak_table:
            sections.append(CHAOS_RECIPE)
    sections.append(BENCH_RECIPE)
    return "\n".join(sections)


def main(argv: list[str]) -> int:
    scale = argv[1] if len(argv) > 1 else "quick"
    path = argv[2] if len(argv) > 2 else "EXPERIMENTS.md"
    content = generate(scale)
    with open(path, "w") as fh:
        fh.write(content)
    print(f"wrote {path} ({len(content)} bytes, scale={scale})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
