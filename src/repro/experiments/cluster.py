"""Builds complete simulated NFS deployments.

One call assembles the full stack of DESIGN.md §2 — nodes, fabric or
TCP network, RPC transport (either RDMA design or TCP on IPoIB/GigE),
registration strategy, RPC dispatcher, NFS server, backend file system
— and hands back per-client NFS mounts.  Every test, example and
benchmark builds on this.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from math import isqrt
from typing import Optional

from repro.analysis.calibration import SOLARIS_SDR, TestbedProfile
from repro.core import (
    ClientRegistrationCache,
    DynamicRegistration,
    ReadReadClient,
    ReadReadServer,
    ReadWriteClient,
    ReadWriteServer,
    RegistrationCacheStrategy,
    SrqCreditPolicy,
)
from repro.core.strategies import AllPhysicalStrategy, FmrStrategy, RegistrationStrategy
from repro.errors import TransportError
from repro.faults import FaultInjector, FaultPlan
from repro.fs import BlockFs, DiskConfig, Raid0, TmpFs
from repro.ib.fabric import Fabric, IBNode
from repro.ib.srq import SharedReceivePool
from repro.ib.verbs import QPState
from repro.nfs import NfsClient, NfsServer
from repro.rpc import RpcServer, TcpRpcClient, TcpRpcServerTransport
from repro.rpc.drc import DuplicateRequestCache
from repro.rpc.svc import RpcServerCosts
from repro.sim import Simulator
from repro.tcpip import TcpConnection, TcpEndpoint

__all__ = ["Cluster", "ClusterConfig", "Mount", "default_srq_entries"]


def default_srq_entries(nclients: int) -> int:
    """Auto-size the shared receive pool for ``nclients`` mounts.

    ``16·sqrt(n)`` grows sublinearly (the figure-11 contrast with the
    per-connection ``credits·n``), floored at 64 (two rings' worth, so
    small deployments lose nothing) and at ``n`` (every connection can
    always hold at least one buffer).
    """
    return max(64, 16 * isqrt(nclients), nclients)

TRANSPORTS = ("rdma-rw", "rdma-rr", "tcp-ipoib", "tcp-gige")
STRATEGIES = ("dynamic", "fmr", "cache", "client-cache", "all-physical")
BACKENDS = ("tmpfs", "raid")


@dataclass(frozen=True)
class ClusterConfig:
    """What to build."""

    profile: TestbedProfile = SOLARIS_SDR
    transport: str = "rdma-rw"
    strategy: str = "dynamic"
    backend: str = "tmpfs"
    nclients: int = 1
    seed: int = 2007
    #: raid backend: server page cache (the Fig 10 4 GB / 8 GB knob).
    cache_bytes: int = 4 << 30
    ndisks: int = 8
    disk_mb_s: float = 30.0
    page_bytes: int = 64 * 1024
    #: registration-cache memory budget (inf = unbounded).
    regcache_budget_bytes: float = float("inf")
    #: duplicate request cache entries for the server (0 disables; the
    #: default gives every cluster exactly-once retransmit semantics).
    drc_entries: int = 1024
    #: install the transport-level reconnect policy on RDMA clients so a
    #: dead QP heals itself instead of killing the mount.
    auto_reconnect: bool = True
    #: deterministic fault schedule to arm against this cluster (None =
    #: no injector constructed, zero overhead).
    fault_plan: Optional[FaultPlan] = None
    #: build with telemetry (span tracer + metrics registry) enabled.
    #: Off by default: when off, ``sim.telemetry`` stays ``None`` and
    #: every instrumentation site is a single attribute test.
    telemetry: bool = False
    #: serve every connection's receives from one shared registered
    #: pool (:mod:`repro.ib.srq`) instead of per-connection rings.
    #: Off by default — the paper figures use per-connection pools.
    srq: bool = False
    #: shared-pool size in buffers (None = auto-size from nclients).
    srq_entries: Optional[int] = None
    #: dispatcher worker threads (None = the profile's calibrated
    #: ``server_threads``, the paper-figure default).
    server_workers: Optional[int] = None
    #: dispatcher run-queue bound (None = unbounded, the historical
    #: behaviour; bounded queues exert credit backpressure).
    server_queue_depth: Optional[int] = None
    #: attach the runtime RDMA sanitizer (:mod:`repro.check.sanitizer`).
    #: Off by default: when off, ``sim.sanitizer`` stays ``None`` and
    #: every check site is a single attribute test.  The sanitizer only
    #: reads sim state, so results are bit-identical either way.
    sanitizer: bool = False
    #: run on a :class:`~repro.check.races.PerturbedSimulator` that
    #: breaks same-timestamp ties in seeded-random order (None = the
    #: plain deterministic engine).
    perturb_seed: Optional[int] = None
    #: hardened data plane (all default-off, and inert when off — see
    #: :class:`repro.core.config.RpcRdmaConfig`): exposure leases,
    #: per-client exposure quota, misbehavior quarantine, AES payloads.
    lease_timeout_us: Optional[float] = None
    exposure_quota_bytes: Optional[int] = None
    quarantine: bool = False
    aes_payload: bool = False

    def __post_init__(self):
        if self.transport not in TRANSPORTS:
            raise ValueError(f"transport must be one of {TRANSPORTS}")
        if self.strategy not in STRATEGIES:
            raise ValueError(f"strategy must be one of {STRATEGIES}")
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}")
        if self.nclients < 1:
            raise ValueError("need at least one client")
        if self.drc_entries < 0:
            raise ValueError("drc_entries must be non-negative")
        if self.srq and not self.is_rdma:
            raise ValueError("srq requires an RDMA transport")
        if self.srq_entries is not None and self.srq_entries < self.nclients:
            raise ValueError("srq_entries must cover at least one buffer "
                             "per client")
        if self.server_workers is not None and self.server_workers < 1:
            raise ValueError("server_workers must be >= 1 (or None)")
        if self.server_queue_depth is not None and self.server_queue_depth < 1:
            raise ValueError("server_queue_depth must be >= 1 (or None)")
        if (self.lease_timeout_us is not None or
                self.exposure_quota_bytes is not None or
                self.quarantine or self.aes_payload) and not self.is_rdma:
            raise ValueError("hardening knobs require an RDMA transport")
        if self.lease_timeout_us is not None and self.lease_timeout_us <= 0:
            raise ValueError("lease_timeout_us must be positive (or None)")
        if (self.exposure_quota_bytes is not None
                and self.exposure_quota_bytes < 1):
            raise ValueError("exposure_quota_bytes must be >= 1 (or None)")

    @property
    def is_rdma(self) -> bool:
        return self.transport.startswith("rdma")

    # -- builders (the repro.api entry points) -----------------------------
    @classmethod
    def rdma_rw(cls, **kwargs) -> "ClusterConfig":
        """The paper's proposed Read-Write design (server RDMA Writes)."""
        return cls(transport="rdma-rw", **kwargs)

    @classmethod
    def rdma_rr(cls, **kwargs) -> "ClusterConfig":
        """Callaghan's original Read-Read design (client RDMA Reads)."""
        return cls(transport="rdma-rr", **kwargs)

    @classmethod
    def tcp(cls, nic: str = "ipoib", **kwargs) -> "ClusterConfig":
        """RPC over TCP on ``nic``: ``"ipoib"`` or ``"gige"``."""
        if nic not in ("ipoib", "gige"):
            raise ValueError('nic must be "ipoib" or "gige"')
        return cls(transport=f"tcp-{nic}", **kwargs)


@dataclass
class Mount:
    """One client's view: node + transport + NFS client."""

    node: IBNode
    transport: object
    nfs: NfsClient


class Cluster:
    """A fully wired simulated NFS deployment."""

    def __init__(self, config: ClusterConfig):
        self.config = config
        profile = config.profile
        if config.perturb_seed is not None:
            from repro.check.races import PerturbedSimulator

            self.sim = PerturbedSimulator(config.perturb_seed)
        else:
            self.sim = Simulator()
        if config.sanitizer:
            # Attach before any wiring so setup-time registrations and
            # SRQ posts are tracked from the first event.
            from repro.check.sanitizer import Sanitizer

            self.sim.sanitizer = Sanitizer(self.sim)
        self.fabric = Fabric(self.sim, seed=config.seed)
        allow_phys = config.strategy == "all-physical"

        self.server_node = self.fabric.add_node(
            "server",
            cpu_config=profile.server_cpu,
            hca_config=profile.server_hca,
            link_config=profile.link,
            interrupt_cost_us=profile.interrupt_cost_us,
            allow_physical=allow_phys,
        )
        self.client_nodes = [
            self.fabric.add_node(
                f"client{i}",
                cpu_config=profile.client_cpu,
                hca_config=profile.client_hca,
                link_config=profile.link,
                interrupt_cost_us=profile.interrupt_cost_us,
                allow_physical=allow_phys,
            )
            for i in range(config.nclients)
        ]

        # Backend file system.
        if config.backend == "tmpfs":
            self.fs = TmpFs(self.sim, self.server_node.cpu)
            self.raid = None
        else:
            self.raid = Raid0(
                self.sim,
                ndisks=config.ndisks,
                disk_config=DiskConfig(streaming_mb_s=config.disk_mb_s),
                stripe_unit_bytes=config.page_bytes,
            )
            self.fs = BlockFs(
                self.sim,
                self.server_node.cpu,
                self.raid,
                cache_bytes=config.cache_bytes,
                page_bytes=config.page_bytes,
            )

        # RPC dispatcher + NFS program.  The DRC is on by default: any
        # transport-level retry (TCP retransmit, RDMA recovery) must not
        # re-execute non-idempotent procedures.
        self.drc = (
            DuplicateRequestCache(config.drc_entries, name="rpcsvc.drc")
            if config.drc_entries > 0 else None
        )
        self.rpc_server = RpcServer(
            self.sim,
            self.server_node.cpu,
            nthreads=config.server_workers or profile.server_threads,
            costs=RpcServerCosts(),
            drc=self.drc,
            name="rpcsvc",
            max_queue=config.server_queue_depth,
        )
        self.nfs_server = NfsServer(
            self.rpc_server, self.fs,
            max_transfer_bytes=profile.rpcrdma.max_transfer_bytes,
        )

        # One shared server-side registration strategy (the registration
        # cache is a server-global structure; dynamic/FMR are stateless
        # enough that sharing matches a real kernel transport).
        self.server_strategy = self._make_strategy(config.strategy, self.server_node)

        # Shared receive pool (tentpole of the scale-out design): one
        # registered pool per server HCA, sized sublinearly in client
        # count, with client credit grants clamped so their sum never
        # outruns the pool (the RNR-avoidance invariant).
        self.srq: Optional[SharedReceivePool] = None
        self.credit_policy = None
        self.rpcrdma = profile.rpcrdma
        if config.srq:
            entries = (config.srq_entries if config.srq_entries is not None
                       else default_srq_entries(config.nclients))
            # Read-Read DONE messages consume receives beyond the credit
            # grant; budget two pool buffers per outstanding call.
            demand = 2 if config.transport == "rdma-rr" else 1
            per_client = max(1, min(profile.rpcrdma.credits,
                                    entries // (demand * config.nclients)))
            self.srq = SharedReceivePool(
                self.server_node, entries, profile.rpcrdma.inline_threshold,
                name="server.srq",
            )
            self.sim.process(self.srq.setup(), name="server.srq.setup")
            self.rpcrdma = replace(profile.rpcrdma, credits=per_client)
            self.credit_policy = SrqCreditPolicy(
                self.srq, max_grant=per_client,
            )

        # Hardened data plane (PR 6): fold the cluster-level mitigation
        # knobs into the transport config and stand up the misbehavior
        # policy.  With everything at defaults, nothing below runs and
        # self.security_policy stays None — zero hooks on the hot path.
        overrides = {}
        if config.lease_timeout_us is not None:
            overrides["lease_timeout_us"] = config.lease_timeout_us
        if config.exposure_quota_bytes is not None:
            overrides["exposure_quota_bytes"] = config.exposure_quota_bytes
        if config.quarantine:
            overrides.update(
                misbehavior_warn=5,
                misbehavior_throttle=10,
                misbehavior_quarantine=20,
            )
        if config.aes_payload:
            overrides["aes_payload"] = True
        self.security_policy = None
        if overrides:
            self.rpcrdma = replace(self.rpcrdma, **overrides)
        if config.quarantine or config.lease_timeout_us is not None or \
                config.exposure_quota_bytes is not None:
            from repro.security.policy import SecurityPolicy

            self.security_policy = SecurityPolicy(
                self.sim, self.rpcrdma,
                quarantine_enabled=config.quarantine,
            )
            self.server_node.hca.protection_nak_hook = \
                self.security_policy.record_nak
            self.rpc_server.security_policy = self.security_policy

        self.server_transports: list = []
        self.mounts: list[Mount] = []

        for node in self.client_nodes:
            mount = self._connect_client(node)
            self.mounts.append(mount)

        # Fault injection (off unless a plan is supplied): hooks install
        # only when armed, so fault-free runs schedule no extra events.
        self.faults: Optional[FaultInjector] = None
        if config.fault_plan is not None:
            self.faults = FaultInjector(self, config.fault_plan)
            self.faults.arm()

        # Telemetry last: every component above must exist before the
        # registry adapters walk the cluster.  Spans only read sim.now,
        # so enabling this cannot perturb simulated timing.
        self.telemetry = None
        if config.telemetry:
            self.enable_telemetry()

    def enable_telemetry(self, tracing: bool = True):
        """Attach a :class:`repro.telemetry.Telemetry` to this cluster.

        Must be called before the simulation runs (the standard path is
        ``ClusterConfig(telemetry=True)``).  Returns the Telemetry.
        """
        from repro.telemetry import Telemetry

        if self.telemetry is None:
            self.telemetry = Telemetry(self.sim, tracing=tracing)
            self.sim.telemetry = self.telemetry
            self.telemetry.attach_cluster(self)
        elif tracing:
            self.telemetry.enable_tracing()
        return self.telemetry

    # -- wiring -----------------------------------------------------------
    def _make_strategy(self, kind: str, node: IBNode) -> RegistrationStrategy:
        if kind == "dynamic":
            return DynamicRegistration(node)
        if kind == "fmr":
            return FmrStrategy(node)
        if kind == "cache":
            if node is self.server_node:
                return RegistrationCacheStrategy(
                    node, budget_bytes=self.config.regcache_budget_bytes
                )
            # §4.3: the cache is a *server* design; clients register
            # dynamically (the client-side variant is an extension).
            return DynamicRegistration(node)
        if kind == "client-cache":
            # Extension (TR): registration caches on BOTH sides.
            if node is self.server_node:
                return RegistrationCacheStrategy(
                    node, budget_bytes=self.config.regcache_budget_bytes
                )
            return ClientRegistrationCache(node)
        if kind == "all-physical":
            return AllPhysicalStrategy(node)
        raise ValueError(kind)

    def _make_server_transport(self, qp_s):
        """Build + attach one RDMA server transport for ``qp_s``."""
        cls = ReadWriteServer if self.config.transport == "rdma-rw" else ReadReadServer
        server = cls(self.server_node, qp_s, self.rpcrdma, self.server_strategy,
                     credit_policy=self.credit_policy, srq=self.srq,
                     policy=self.security_policy)
        server.attach(self.rpc_server)
        self.server_transports.append(server)
        if self.security_policy is not None:
            self.security_policy.register_transport(server.client_id, server)
        return server

    def _redial(self, client):
        """Transport recovery policy (installed as ``client.reconnector``).

        What `reconnect_client` used to do by hand, promoted into the
        transport's own error path: tear down the dead connection (the
        server side reclaims anything the old client pinned — §4.1's
        operational defense), then hand back a fresh QP and the new
        server transport's ready event for the CM handshake.
        """
        if (self.security_policy is not None
                and self.security_policy.is_banned(client.node.name)):
            # Quarantined mount: the redial is refused outright — the
            # ban outlives the evicted connection.
            self.security_policy.redials_refused.add()
            raise TransportError(
                f"{client.node.name}: redial refused (quarantined)")
        old_qp = client.qp
        old_server = next(
            (s for s in self.server_transports
             if getattr(s, "qp", None) is old_qp.peer),
            None,
        )
        if old_qp.state is not QPState.ERROR:
            old_qp.enter_error("client-initiated redial")
        if old_qp.peer is not None and old_qp.peer.state is not QPState.ERROR:
            old_qp.peer.enter_error("client-initiated redial (remote)")
        if old_server is not None:
            self.server_transports.remove(old_server)
            yield from old_server.disconnect()
        qp_c, qp_s = self.fabric.connect(client.node, self.server_node)
        server = self._make_server_transport(qp_s)
        return qp_c, server.ready

    def _connect_client(self, node: IBNode) -> Mount:
        config = self.config
        profile = config.profile
        if config.is_rdma:
            qp_c, qp_s = self.fabric.connect(node, self.server_node)
            client_strategy = self._make_strategy(config.strategy, node)
            client_cls = (
                ReadWriteClient if config.transport == "rdma-rw" else ReadReadClient
            )
            client = client_cls(node, qp_c, self.rpcrdma, client_strategy)
            server = self._make_server_transport(qp_s)
            # CM handshake: the client may not send until the server side
            # has pre-posted its receives.
            client.peer_ready = server.ready
            if config.auto_reconnect:
                client.reconnector = self._redial
            transport = client
        else:
            nic = profile.ipoib if config.transport == "tcp-ipoib" else profile.gige
            client_ep = TcpEndpoint(self.sim, node.cpu, node.irq, nic,
                                    name=f"{node.name}.tcp")
            server_ep = TcpEndpoint(
                self.sim, self.server_node.cpu, self.server_node.irq, nic,
                name=f"server.tcp.{node.name}",
            )
            # All per-client server endpoints share the single physical
            # server port so aggregate bandwidth is capped correctly.
            if not hasattr(self, "_server_port"):
                self._server_port = server_ep.port
            server_ep.port = self._server_port
            conn = TcpConnection(client_ep, server_ep)
            transport = TcpRpcClient(client_ep, conn)
            server = TcpRpcServerTransport(server_ep, conn)
            server.attach(self.rpc_server)
            self.server_transports.append(server)
        nfs = NfsClient(transport, self.nfs_server.root_handle(),
                        name=f"{node.name}.nfs")
        return Mount(node=node, transport=transport, nfs=nfs)

    def reconnect_client(self, index: int) -> Mount:
        """Re-establish a client's connection after a fatal QP error.

        Mirrors what a kernel RPC transport does on connection loss:
        tear down the old endpoint (the server side reclaims anything
        the dead client pinned — §4.1's operational defense), build a
        fresh QP pair and transport, and resume with the same file
        handles (NFS is stateless; handles survive reconnection).
        """
        old = self.mounts[index]
        if self.config.is_rdma:
            qp = old.transport.qp
            dead_server = next(
                (s for s in self.server_transports
                 if getattr(s, "qp", None) is qp.peer),
                None,
            )
        else:
            dead_server = self.server_transports[index] if index < len(
                self.server_transports) else None
        if dead_server is not None and hasattr(dead_server, "disconnect"):
            self.server_transports.remove(dead_server)
            self.sim.process(dead_server.disconnect(),
                             name="server.disconnect")
        mount = self._connect_client(old.node)
        self.mounts[index] = mount
        return mount

    # -- measurement helpers ----------------------------------------------
    def server_recv_buffer_bytes(self) -> int:
        """Registered receive-buffer memory on the server.

        The figure-11 scaling metric: the shared pool's one-time
        registration vs the per-connection rings' ``credits ×
        inline_threshold`` per mount.  TCP transports pre-register
        nothing (socket buffers are not HCA-registered), so they report
        zero.
        """
        if self.srq is not None:
            return self.srq.registered_bytes
        total = 0
        for transport in self.server_transports:
            pool = getattr(transport, "recv_pool", None)
            if pool is not None:
                total += pool.count * pool.size
        return total

    def reset_utilization_windows(self) -> None:
        self.server_node.cpu.reset_utilization_window()
        for node in self.client_nodes:
            node.cpu.reset_utilization_window()

    def client_cpu_utilization(self) -> float:
        """Mean utilization across client nodes (fraction of all cores)."""
        if not self.client_nodes:
            return 0.0
        return sum(n.cpu.utilization() for n in self.client_nodes) / len(self.client_nodes)

    def server_cpu_utilization(self) -> float:
        return self.server_node.cpu.utilization()

    def run(self, proc):
        """Run one process to completion and return its value."""
        return self.sim.run_until_complete(self.sim.process(proc))
