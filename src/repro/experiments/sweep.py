"""Parallel experiment sweeps over independent figure points.

Every figure in the paper's evaluation is a grid of *independent*
simulations: each point builds a fresh :class:`Cluster` from a fixed
seed and runs one workload, so no state crosses points.  That makes the
grid embarrassingly parallel — this module fans the points out across a
``ProcessPoolExecutor`` while guaranteeing results **bit-identical** to
the serial order:

* each point is a picklable :class:`Point` spec (profiles ride by name,
  not object identity) executed by the module-level :func:`run_point`;
* the per-point seed is carried in the spec itself (the cluster default
  or an explicit override), never derived from worker identity;
* ``pool.map`` preserves submission order, so row assembly is the same
  with ``jobs=8`` as with ``jobs=1``.

Process-global counters (RPC xids) differ between serial and parallel
runs, but they are fixed-width header fields — they never change a
message size or a simulated timestamp.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis import LINUX_DDR_RAID, LINUX_SDR, SOLARIS_SDR

__all__ = ["PROFILES", "Point", "default_jobs", "run_point", "sweep"]

#: Calibrated host profiles by spec name (keeps :class:`Point` picklable).
PROFILES = {
    "solaris-sdr": SOLARIS_SDR,
    "linux-sdr": LINUX_SDR,
    "linux-ddr-raid": LINUX_DDR_RAID,
}


@dataclass(frozen=True)
class Point:
    """One independent simulation: cluster kwargs + workload kwargs."""

    kind: str                         # "iozone" | "oltp" | "security" | "attack"
    cluster: dict = field(default_factory=dict)  # ClusterConfig kwargs;
    #                                             "profile" is a PROFILES name
    params: dict = field(default_factory=dict)   # workload parameter kwargs


def _build_cluster(spec: dict):
    from repro.experiments.cluster import Cluster, ClusterConfig

    kwargs = dict(spec)
    profile = kwargs.pop("profile", None)
    if isinstance(profile, str):
        profile = PROFILES[profile]
    if profile is not None:
        kwargs["profile"] = profile
    from repro.experiments.topology import TOPOLOGY_KEYS

    topo_kwargs = {k: kwargs.pop(k) for k in TOPOLOGY_KEYS if k in kwargs}
    if topo_kwargs:
        from repro.experiments.topology import MultiCluster, TopologyConfig

        return MultiCluster(TopologyConfig(cluster=ClusterConfig(**kwargs),
                                           **topo_kwargs))
    return Cluster(ClusterConfig(**kwargs))


def run_point(point: Point, cluster=None) -> dict:
    """Execute one point; returns plain-data metrics (picklable).

    Always includes ``events`` (simulator events stepped) and
    ``sim_us`` (simulated time covered) so callers can report the
    simulator's own throughput.  ``cluster`` lets a caller supply a
    pre-built cluster (e.g. one with telemetry enabled) and inspect it
    after the run; by default each point builds its own.
    """
    if cluster is None:
        cluster = _build_cluster(point.cluster)
    if point.kind == "iozone":
        from repro.workloads import IozoneParams, run_iozone

        r = run_iozone(cluster, IozoneParams(**point.params))
        out = {
            "read_mb_s": r.read_mb_s,
            "write_mb_s": r.write_mb_s,
            "write_elapsed_us": r.write_elapsed_us,
            "read_elapsed_us": r.read_elapsed_us,
            "bytes_per_phase": r.bytes_per_phase,
            "client_cpu_read": r.client_cpu_read,
            "client_cpu_write": r.client_cpu_write,
            "server_cpu_read": r.server_cpu_read,
            "read_p99_us": r.read_latency.p99,
            # Fig 11's memory axis: bytes of registered receive buffers
            # the server holds for this client population.
            "recv_registered_bytes": cluster.server_recv_buffer_bytes(),
            # Fig 13's connection axis: live server-side connections
            # (each one costs QP context on both ends).
            "qp_total": (cluster.qp_count()
                         if hasattr(cluster, "qp_count")
                         else len(getattr(cluster, "server_transports", []))),
        }
    elif point.kind == "oltp":
        from repro.workloads import OltpParams, run_oltp

        r = run_oltp(cluster, OltpParams(**point.params))
        out = {
            "ops_total": r.ops_total,
            "elapsed_us": r.elapsed_us,
            "ops_per_s": r.ops_per_s,
            "client_cpu_us_per_op": r.client_cpu_us_per_op,
            "bytes_read": r.bytes_read,
            "bytes_written": r.bytes_written,
        }
    elif point.kind == "attack":
        from repro.security.campaign import CampaignParams, run_campaign

        # run_campaign captures its metrics before draining the
        # malicious connections, so the dict is already teardown-safe.
        out = run_campaign(cluster, CampaignParams(**point.params)).as_dict()
    elif point.kind == "security":
        from repro.security import audit_server_exposure
        from repro.workloads import IozoneParams, run_iozone

        run_iozone(cluster, IozoneParams(**point.params))
        cluster.sim.run(until=cluster.sim.now + 100_000.0)
        report = audit_server_exposure(
            getattr(cluster, "server_nodes", cluster.server_node),
            cluster.server_transports)
        out = {
            "stags_exposed_ever": report["stags_exposed_ever"],
            "exposed_regions_now": report["exposed_regions_now"],
            "pending_done_ops": report["pending_done_ops"],
            "protection_faults": report["protection_faults"],
        }
    else:
        raise ValueError(f"unknown point kind {point.kind!r}")
    out["events"] = cluster.sim.steps
    out["sim_us"] = cluster.sim.now
    san = cluster.sim.sanitizer
    if san is not None:
        # Leak audit AFTER the metrics are captured: draining in-flight
        # DONEs moves sim time but can no longer change the result dict,
        # so sanitized runs stay bit-identical to baseline.
        cluster.sim.run(until=cluster.sim.now + 1_000_000.0)
        san.check_teardown(cluster)
    return out


def default_jobs() -> int:
    return max(1, os.cpu_count() or 1)


def sweep(points: list[Point], jobs: int = 1,
          timeout: Optional[float] = None) -> list[dict]:
    """Run every point; results in submission order.

    ``jobs <= 1`` runs inline (no pool, no pickling).  Workers use the
    spawn start method so each point sees a pristine interpreter — the
    same conditions as a standalone serial run.
    """
    if jobs <= 1 or len(points) <= 1:
        return [run_point(p) for p in points]
    import multiprocessing as mp

    ctx = mp.get_context("spawn")
    with ProcessPoolExecutor(max_workers=min(jobs, len(points)),
                             mp_context=ctx) as pool:
        return list(pool.map(run_point, points, timeout=timeout))
