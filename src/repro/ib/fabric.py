"""Node bundling and connection management.

An :class:`IBNode` is a host: CPU complex, interrupt controller, memory
arena and one HCA with one port.  A :class:`Fabric` wires node pairs
into Reliable Connections (queue-pair pairs), the peer-to-peer model of
InfiniBand RC described in §2 of the paper.  The fabric itself is
full-bisection: contention only ever occurs at node ports, matching the
single-switch testbeds of the paper.
"""

from __future__ import annotations

from typing import Optional

from repro.sim import DeterministicRNG, Simulator
from repro.osmodel import CPU, CPUConfig, InterruptController
from repro.ib.hca import HCA, HCAConfig
from repro.ib.link import LinkConfig
from repro.ib.memory import MemoryArena
from repro.ib.verbs import CompletionQueue, QueuePair

__all__ = ["Fabric", "IBNode"]


class IBNode:
    """A host with CPUs, memory, an interrupt controller and one HCA."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rng: DeterministicRNG,
        cpu_config: Optional[CPUConfig] = None,
        hca_config: Optional[HCAConfig] = None,
        link_config: Optional[LinkConfig] = None,
        interrupt_cost_us: float = 4.0,
        allow_physical: bool = False,
    ):
        self.sim = sim
        self.name = name
        self.rng = rng.child(name)
        self.cpu = CPU(sim, cpu_config or CPUConfig(), name=f"{name}.cpu")
        self.irq = InterruptController(
            sim, self.cpu, cost_us=interrupt_cost_us, name=f"{name}.irq"
        )
        self.arena = MemoryArena(name=f"{name}.mem")
        self.hca = HCA(
            sim,
            self.cpu,
            self.irq,
            self.arena,
            hca_config or HCAConfig(),
            link_config or LinkConfig(),
            self.rng,
            name=f"{name}.hca",
            allow_physical=allow_physical,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<IBNode {self.name}>"


class Fabric:
    """Creates nodes and Reliable Connections between them."""

    def __init__(self, sim: Simulator, seed: int = 2007):
        self.sim = sim
        self.rng = DeterministicRNG(seed, "fabric")
        self.nodes: dict[str, IBNode] = {}

    def add_node(self, name: str, **kwargs) -> IBNode:
        if name in self.nodes:
            raise ValueError(f"duplicate node name {name!r}")
        node = IBNode(self.sim, name, self.rng, **kwargs)
        self.nodes[name] = node
        return node

    def connect(
        self,
        a: IBNode,
        b: IBNode,
        a_cqs: Optional[tuple[CompletionQueue, CompletionQueue]] = None,
        b_cqs: Optional[tuple[CompletionQueue, CompletionQueue]] = None,
    ) -> tuple[QueuePair, QueuePair]:
        """Establish an RC between ``a`` and ``b``; returns (qp_a, qp_b).

        Fresh CQs are created per connection unless supplied (the NFS
        server shares CQs across client connections, as a kernel RPC
        transport would).
        """
        if a is b:
            raise ValueError("cannot connect a node to itself")
        if a_cqs is None:
            a_cqs = (a.hca.create_cq("scq"), a.hca.create_cq("rcq"))
        if b_cqs is None:
            b_cqs = (b.hca.create_cq("scq"), b.hca.create_cq("rcq"))
        qp_a = a.hca.create_qp(*a_cqs)
        qp_b = b.hca.create_qp(*b_cqs)
        qp_a.peer = qp_b
        qp_b.peer = qp_a
        a.hca.activate(qp_a)
        b.hca.activate(qp_b)
        return qp_a, qp_b
