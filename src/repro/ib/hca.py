"""The HCA processing engine: executes work requests per IB RC rules.

One dispatcher process per QP drains the send queue **in order** —
requests begin execution in post order, as RC requires.  The rules the
paper's designs exploit all live here:

* A Send or RDMA Write holds the dispatcher until its payload is on the
  wire, and its ack (hence CQE) follows data in FIFO order — so
  **Write → Send completion ordering is guaranteed** (§4.2: the reply
  send's completion proves the preceding writes landed).
* An RDMA Read only holds the dispatcher while acquiring one of the
  ORD slots and transmitting the tiny request packet; the response
  streams back asynchronously — so **a later Send can complete before
  an earlier Read** (§4.1: the server must block, i.e. fence, before
  replying on the NFS WRITE path).  ``fence=True`` on a WR restores
  ordering by draining outstanding reads first.
* The responder serves read responses through a single per-QP read
  engine with a fixed per-read turnaround, so RDMA Read throughput on
  one connection sits well below RDMA Write throughput, and at most
  IRD/ORD (= 8) reads are ever outstanding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

from repro.payload import join_parts
from repro.sim import Counter, Resource, Simulator
from repro.ib.link import DuplexLink, LinkConfig
from repro.ib.memory import (
    AccessFlags,
    MemoryArena,
    ProtectionError,
    RegistrationCosts,
    TranslationProtectionTable,
)
from repro.ib.phys import GLOBAL_STAG, PhysicalAccessMap
from repro.ib.verbs import (
    CompletionQueue,
    CqeStatus,
    Opcode,
    QPState,
    QueuePair,
    RdmaReadWR,
    RdmaWriteWR,
    RecvWR,
    Segment,
    SendWR,
)

__all__ = ["HCA", "HCAConfig"]

_READ_REQUEST_BYTES = 28  # RETH + AETH-ish request packet


@dataclass(frozen=True)
class HCAConfig:
    """Per-HCA cost/limit parameters (calibrated in repro.analysis)."""

    wqe_process_us: float = 0.6
    post_cpu_us: float = 0.4
    read_response_setup_us: float = 95.0
    rnr_retry_us: float = 60.0
    rnr_retry_limit: int = 6
    max_ird: int = 8
    max_ord: int = 8
    #: mean physically-contiguous run for the all-physical mode's
    #: scatter/gather-free fragmentation (DESIGN.md, Fig 9b mechanism).
    phys_mean_run_bytes: int = 64 * 1024
    registration: RegistrationCosts = field(default_factory=RegistrationCosts)


class HCA:
    """One host channel adapter: TPT, port, per-QP dispatchers."""

    def __init__(
        self,
        sim: Simulator,
        cpu,  # repro.osmodel.CPU
        irq,  # repro.osmodel.InterruptController
        arena: MemoryArena,
        config: HCAConfig,
        link_config: LinkConfig,
        rng,
        name: str = "hca",
        allow_physical: bool = False,
    ):
        self.sim = sim
        self.cpu = cpu
        self.irq = irq
        self.arena = arena
        self.config = config
        self.name = name
        # Telemetry process label: the owning node ("server.hca" → "server").
        self._pid = name.split(".")[0] if "." in name else name
        self.port = DuplexLink(sim, link_config, name=f"{name}.port")
        self.tpt = TranslationProtectionTable(
            sim, cpu, config.registration, rng.child("tpt"), name=f"{name}.tpt"
        )
        self.phys = PhysicalAccessMap(
            arena, rng.child("phys"), enabled=allow_physical,
            mean_contig_run_bytes=config.phys_mean_run_bytes, name=f"{name}.phys",
        )
        self.qps: list[QueuePair] = []
        #: Called with ``(offender_qp, ProtectionError)`` when *this* HCA
        #: NAKs a remote operation against its memory.  ``None`` (the
        #: default) keeps the data path hook-free; the security policy
        #: installs its misbehavior scorer here.
        self.protection_nak_hook = None
        self.sends = Counter(f"{name}.sends")
        self.writes = Counter(f"{name}.writes")
        self.reads = Counter(f"{name}.reads")
        self.rnr_events = Counter(f"{name}.rnr")
        # Per-QP structures keyed by qp_num, created on connect.
        self._ord_slots: dict[int, Resource] = {}
        self._read_engines: dict[int, Resource] = {}
        self._delivery_locks: dict[int, Resource] = {}
        # done-events of in-flight reads, dict-as-ordered-set so drain
        # order is insertion order, never id() order.
        self._outstanding_reads: dict[int, dict] = {}
        self._inbound_reads_active: dict[int, int] = {}
        self.max_inbound_reads_seen: int = 0

    # -- setup -------------------------------------------------------------
    def create_cq(self, name: str = "cq", interrupts: bool = True) -> CompletionQueue:
        """A CQ; if ``interrupts``, each CQE raises an interrupt on this node."""
        cq = CompletionQueue(self.sim, name=f"{self.name}.{name}")
        if interrupts:
            def _on_completion(cqe) -> None:
                self.sim.process(self.irq.raise_irq(), name=f"{self.name}.irq")
            cq.on_completion = _on_completion
        return cq

    def create_qp(self, send_cq: CompletionQueue, recv_cq: CompletionQueue) -> QueuePair:
        qp = QueuePair(
            self.sim, self, send_cq, recv_cq,
            ird=self.config.max_ird, ord=self.config.max_ord,
        )
        self.qps.append(qp)
        return qp

    def activate(self, qp: QueuePair) -> None:
        """Called by the fabric once both ends are wired; starts dispatch."""
        if qp.peer is None:
            raise ValueError("activate before peer wired")
        effective_ord = min(qp.ord, qp.peer.ird)
        self._ord_slots[qp.qp_num] = Resource(
            self.sim, capacity=effective_ord, name=f"qp{qp.qp_num}.ord"
        )
        self._read_engines[qp.qp_num] = Resource(
            self.sim, capacity=1, name=f"qp{qp.qp_num}.rdeng"
        )
        self._delivery_locks[qp.qp_num] = Resource(
            self.sim, capacity=1, name=f"qp{qp.qp_num}.deliver"
        )
        self._outstanding_reads[qp.qp_num] = {}
        self._inbound_reads_active[qp.qp_num] = 0
        qp.state = QPState.RTS
        self.sim.process(self._dispatcher(qp), name=f"{self.name}.qp{qp.qp_num}")

    # -- consumer helpers ----------------------------------------------------
    def post_send(self, qp: QueuePair, wr) -> Generator:
        """Process: charge the doorbell/post CPU cost, then post."""
        yield from self.cpu.consume(self.config.post_cpu_us)
        qp.post_send(wr)
        return wr

    def post_recv(self, qp: QueuePair, wr: RecvWR) -> Generator:
        yield from self.cpu.consume(self.config.post_cpu_us)
        qp.post_recv(wr)
        return wr

    # -- local address resolution ---------------------------------------------
    def _gather(self, segments: list[Segment]):
        """Read local scatter/gather elements (lkey path).

        Returns real bytes or a zero-copy payload descriptor — whatever
        representation the registered memory holds.
        """
        parts = []
        for seg in segments:
            if seg.stag == GLOBAL_STAG:
                buf, off = self.arena.resolve(seg.addr, seg.length)
                parts.append(buf.peek(off, seg.length))
            else:
                mr = self.tpt.lookup(seg.stag, seg.addr, seg.length, AccessFlags(0))
                parts.append(mr.read(seg.addr, seg.length))
        return join_parts(parts)

    def _scatter(self, segments: list[Segment], payload) -> int:
        """Write ``payload`` across local scatter elements; returns bytes placed."""
        pos = 0
        for seg in segments:
            if pos >= len(payload):
                break
            take = min(seg.length, len(payload) - pos)
            if seg.stag == GLOBAL_STAG:
                buf, off = self.arena.resolve(seg.addr, take)
                buf.fill(payload[pos : pos + take], off)
            else:
                mr = self.tpt.lookup(seg.stag, seg.addr, take, AccessFlags.LOCAL_WRITE)
                mr.write(seg.addr, payload[pos : pos + take])
            pos += take
        if pos < len(payload):
            raise ProtectionError(
                f"scatter list too small: {len(payload)} bytes into "
                f"{sum(s.length for s in segments)}"
            )
        return pos

    # -- dispatcher -------------------------------------------------------------
    def _dispatcher(self, qp: QueuePair) -> Generator:
        while qp.state is QPState.RTS:
            wr = yield qp.sq.get()
            if qp.state is not QPState.RTS:
                wr._complete(qp, qp.send_cq, CqeStatus.WR_FLUSH_ERR, error=qp.error_cause)
                return
            if getattr(wr, "fence", False):
                yield from self._drain_reads(qp)
            telemetry = self.sim.telemetry
            span = None
            if telemetry is not None and telemetry.tracer is not None:
                # Span covers the dispatcher's occupancy by this WQE:
                # serial per QP, parented under whoever posted the WR.
                span = telemetry.tracer.begin(
                    f"hca.{wr.opcode.value}", "hca", self._pid,
                    f"qp{qp.qp_num}", parent=wr.tspan)
            try:
                yield self.sim.timeout(self.config.wqe_process_us)
                if wr.opcode is Opcode.SEND:
                    yield from self._execute_send(qp, wr)
                elif wr.opcode is Opcode.RDMA_WRITE:
                    yield from self._execute_write(qp, wr)
                elif wr.opcode is Opcode.RDMA_READ:
                    yield from self._execute_read(qp, wr)
                else:  # pragma: no cover - defensive
                    wr._complete(qp, qp.send_cq, CqeStatus.LOC_PROT_ERR,
                                 error="bad opcode")
            finally:
                if span is not None:
                    span.end()

    def _drain_reads(self, qp: QueuePair) -> Generator:
        pending = list(self._outstanding_reads[qp.qp_num])
        for ev in pending:
            if not ev.processed:
                yield ev

    # -- SEND ---------------------------------------------------------------
    def _execute_send(self, qp: QueuePair, wr: SendWR) -> Generator:
        peer_hca: HCA = qp.peer.hca
        san = self.sim.sanitizer
        if san is not None:
            san.on_wr_execute(self, wr)
        try:
            payload = wr.inline if wr.inline is not None else self._gather(wr.segments)
        except ProtectionError as exc:
            wr._complete(qp, qp.send_cq, CqeStatus.LOC_PROT_ERR, error=str(exc))
            self._fatal(qp, f"local protection error on send: {exc}")
            return
        # Serialize onto the wire, then move on: propagation and remote
        # delivery overlap the next WQE (per-QP delivery lock keeps RC
        # in-order delivery).
        yield from self.port.transfer(peer_hca.port, len(payload))
        self.sim.process(self._deliver_send(qp, wr, payload),
                         name=f"{self.name}.dlv")

    def _deliver_send(self, qp: QueuePair, wr: SendWR, payload: bytes) -> Generator:
        peer_qp = qp.peer
        peer_hca: HCA = peer_qp.hca
        yield self.sim.timeout(self.port.propagation_us(peer_hca.port))
        hook = peer_hca.port.fault_hook
        if hook is not None and hook.drop_message(peer_hca.port):
            # Injected loss at the receiving HCA/driver boundary: the
            # wire-level ack already went out, so the sender's CQE is a
            # success, but no receive ever fires — exactly the silent
            # loss an RPC retransmit timer exists to cover.
            yield self.sim.timeout(peer_hca.port.config.latency_us)
            wr._complete(qp, qp.send_cq, CqeStatus.SUCCESS, byte_len=len(payload))
            return
        lock = self._delivery_locks[qp.qp_num].request()
        yield lock
        try:
            # Match a pre-posted receive; RNR-retry if the peer is slow.
            recv = peer_qp.take_recv()
            retries = 0
            while recv is None:
                self.rnr_events.add()
                if retries >= self.config.rnr_retry_limit:
                    wr._complete(qp, qp.send_cq, CqeStatus.RNR_RETRY_EXC,
                                 error="receiver never posted a buffer")
                    self._fatal(qp, "RNR retry exceeded")
                    self._fatal(peer_qp, "RNR retry exceeded (remote)")
                    return
                retries += 1
                yield self.sim.timeout(self.config.rnr_retry_us)
                recv = peer_qp.take_recv()
            try:
                peer_hca._scatter(recv.segments, payload)
            except ProtectionError as exc:
                recv._complete(peer_qp, peer_qp.recv_cq, CqeStatus.LOC_PROT_ERR, error=str(exc))
                wr._complete(qp, qp.send_cq, CqeStatus.REM_ACCESS_ERR, error=str(exc))
                if peer_hca.protection_nak_hook is not None:
                    peer_hca.protection_nak_hook(qp, exc)
                self._fatal(qp, f"send overflowed receive buffer: {exc}")
                self._fatal(peer_qp, "receive buffer overflow")
                return
            recv.received = payload
            recv._complete(peer_qp, peer_qp.recv_cq, CqeStatus.SUCCESS, byte_len=len(payload))
            self.sends.add(len(payload))
        finally:
            self._delivery_locks[qp.qp_num].release(lock)
        yield self.sim.timeout(peer_hca.port.config.latency_us)  # ack
        wr._complete(qp, qp.send_cq, CqeStatus.SUCCESS, byte_len=len(payload))

    # -- RDMA WRITE -----------------------------------------------------------
    def _execute_write(self, qp: QueuePair, wr: RdmaWriteWR) -> Generator:
        peer_hca: HCA = qp.peer.hca
        san = self.sim.sanitizer
        if san is not None:
            san.on_wr_execute(self, wr)
        try:
            payload = self._gather(wr.local)
        except ProtectionError as exc:
            wr._complete(qp, qp.send_cq, CqeStatus.LOC_PROT_ERR, error=str(exc))
            self._fatal(qp, f"local protection error on write: {exc}")
            return
        yield from self.port.transfer(peer_hca.port, len(payload))
        self.sim.process(self._deliver_write(qp, wr, payload),
                         name=f"{self.name}.dlv")

    def _deliver_write(self, qp: QueuePair, wr: RdmaWriteWR, payload: bytes) -> Generator:
        peer_hca: HCA = qp.peer.hca
        yield self.sim.timeout(self.port.propagation_us(peer_hca.port))
        lock = self._delivery_locks[qp.qp_num].request()
        yield lock
        try:
            san = self.sim.sanitizer
            if san is not None:
                san.on_rdma_write_target(peer_hca.tpt, wr, len(payload))
            try:
                # Target-side validation: TPT or (if honoured) the global stag.
                if wr.remote.stag == GLOBAL_STAG:
                    buf, off = peer_hca.phys.resolve(wr.remote.addr, len(payload))
                    buf.fill(payload, off)
                else:
                    mr = peer_hca.tpt.lookup(
                        wr.remote.stag, wr.remote.addr, len(payload),
                        AccessFlags.REMOTE_WRITE,
                    )
                    mr.write(wr.remote.addr, payload)
            except ProtectionError as exc:
                wr._complete(qp, qp.send_cq, CqeStatus.REM_ACCESS_ERR, error=str(exc))
                if peer_hca.protection_nak_hook is not None:
                    peer_hca.protection_nak_hook(qp, exc)
                self._fatal(qp, f"remote access error on write: {exc}")
                self._fatal(qp.peer, f"NAK sent for bad write: {exc}")
                return
            # No remote CQE, no remote CPU, no remote interrupt: one-sided.
            self.writes.add(len(payload))
        finally:
            self._delivery_locks[qp.qp_num].release(lock)
        yield self.sim.timeout(peer_hca.port.config.latency_us)  # ack
        wr._complete(qp, qp.send_cq, CqeStatus.SUCCESS, byte_len=len(payload))

    # -- RDMA READ ---------------------------------------------------------------
    def _execute_read(self, qp: QueuePair, wr: RdmaReadWR) -> Generator:
        # ORD: stall the SQ until a slot frees (this is the §4.1 cap).
        slot = self._ord_slots[qp.qp_num].request()
        yield slot
        done = self.sim.event()
        self._outstanding_reads[qp.qp_num][done] = None
        # Tiny request packet to the responder; SQ then moves on.
        yield from self.port.transfer(qp.peer.hca.port, _READ_REQUEST_BYTES)
        self.sim.process(self._read_response(qp, wr, slot, done),
                         name=f"{self.name}.rdresp")

    def _read_response(self, qp: QueuePair, wr: RdmaReadWR, slot, done) -> Generator:
        peer_qp = qp.peer
        peer_hca: HCA = peer_qp.hca
        telemetry = self.sim.telemetry
        span = None
        if telemetry is not None and telemetry.tracer is not None:
            # The responder-side half of the read: engine occupancy + data
            # return, drawn on the *remote* HCA's lane.
            span = telemetry.tracer.begin(
                "hca.read_response", "hca", peer_hca._pid,
                f"qp{peer_qp.qp_num}.rdeng", parent=wr.tspan,
                bytes=wr.remote.length)
        try:
            # Responder: serialized per-QP read engine (request scheduling,
            # DMA setup) then the data streams back on the reverse path.
            count = peer_hca._inbound_reads_active[peer_qp.qp_num] = (
                peer_hca._inbound_reads_active[peer_qp.qp_num] + 1
            )
            peer_hca.max_inbound_reads_seen = max(peer_hca.max_inbound_reads_seen, count)
            engine = peer_hca._read_engines[peer_qp.qp_num]
            req = engine.request()
            yield req
            try:
                san = self.sim.sanitizer
                if san is not None:
                    san.on_rdma_read_target(peer_hca.tpt, wr)
                try:
                    if wr.remote.stag == GLOBAL_STAG:
                        buf, off = peer_hca.phys.resolve(wr.remote.addr, wr.remote.length)
                        payload = buf.peek(off, wr.remote.length)
                    else:
                        mr = peer_hca.tpt.lookup(
                            wr.remote.stag, wr.remote.addr, wr.remote.length,
                            AccessFlags.REMOTE_READ,
                        )
                        payload = mr.read(wr.remote.addr, wr.remote.length)
                except ProtectionError as exc:
                    wr._complete(qp, qp.send_cq, CqeStatus.REM_ACCESS_ERR, error=str(exc))
                    if peer_hca.protection_nak_hook is not None:
                        peer_hca.protection_nak_hook(qp, exc)
                    self._fatal(qp, f"remote access error on read: {exc}")
                    self._fatal(peer_qp, f"NAK sent for bad read: {exc}")
                    return
                yield self.sim.timeout(peer_hca.config.read_response_setup_us)
                yield from peer_hca.port.transfer(self.port, len(payload))
                yield self.sim.timeout(peer_hca.port.propagation_us(self.port))
            finally:
                engine.release(req)
                peer_hca._inbound_reads_active[peer_qp.qp_num] -= 1
            if san is not None:
                san.on_wr_execute(self, wr)
            try:
                self._scatter(wr.local, payload)
            except ProtectionError as exc:
                wr._complete(qp, qp.send_cq, CqeStatus.LOC_PROT_ERR, error=str(exc))
                self._fatal(qp, f"local scatter failed on read response: {exc}")
                return
            self.reads.add(len(payload))
            wr._complete(qp, qp.send_cq, CqeStatus.SUCCESS, byte_len=len(payload))
        finally:
            if span is not None:
                span.end()
            self._ord_slots[qp.qp_num].release(slot)
            self._outstanding_reads[qp.qp_num].pop(done, None)
            if not done.triggered:
                done.succeed()

    # -- failure ---------------------------------------------------------------
    def _fatal(self, qp: QueuePair, cause: str) -> None:
        qp.enter_error(cause)
