"""Shared receive queue: one registered buffer pool per server HCA.

The baseline transport posts a private ring of ``credits`` inline
receive buffers per connection, so server receive memory grows linearly
in client count — the scaling bottleneck the paper's §7 calls out and
RDMAvisor quantifies at datacenter fan-in.  A :class:`SharedReceivePool`
is the verbs-SRQ answer: every connection's inbound Sends consume
buffers from a single pool registered once at server start, so the
registered footprint is sized to the server's concurrency, not to the
number of mounts.

Mechanics, mirrored from hardware SRQs:

* the HCA delivery path calls :meth:`take` instead of popping the QP's
  private receive ring (``QueuePair.take_recv`` branches when
  ``qp.srq`` is set).  An empty pool returns ``None``, which the HCA
  already turns into RNR retry/backoff — pool exhaustion produces
  *exactly* the receiver-not-ready semantics real fabrics exhibit;
* completions are steered back to the owning connection through a
  per-QP inbox (the SRQ analogue of a shared CQ demultiplexed by
  ``qp_num``);
* consumed buffers are recycled into the pool immediately after the
  endpoint copies the message out (low-watermark repost: the pool
  tracks ``min_available`` and counts the times it crossed the
  watermark, so experiments can see how close they ran to exhaustion);
* a connection dying with deliveries still parked in its inbox drains
  them back into the pool on :meth:`detach` — buffers never leak across
  QP kill + redial.

Credit interplay: the wiring layer must keep the sum of client grants
at or below ``entries`` (see ``core.flowcontrol.SrqCreditPolicy``),
otherwise well-behaved clients can push the pool into RNR stalls.
"""

from __future__ import annotations

from collections import deque
from typing import Generator, Optional

from repro.ib.memory import AccessFlags
from repro.ib.verbs import RecvWR, Segment
from repro.sim import Counter, Event, Store

__all__ = ["SharedReceivePool"]


class _Slot:
    """One pool buffer: allocated and registered exactly once."""

    __slots__ = ("buffer", "mr", "segments", "index")

    def __init__(self, buffer, mr, segments, index):
        self.buffer = buffer
        self.mr = mr
        self.segments = segments
        self.index = index


class SharedReceivePool:
    """SRQ-style shared pool of pre-registered inline receive buffers."""

    #: Sentinel delivered to a connection's inbox on detach so a blocked
    #: receiver wakes up and exits instead of waiting forever.
    CLOSED = object()

    def __init__(self, node, entries: int, buffer_bytes: int,
                 low_watermark: Optional[int] = None, name: str = "srq"):
        if entries < 1:
            raise ValueError("shared receive pool needs at least one entry")
        self.node = node
        self.sim = node.sim
        self.entries = entries
        self.buffer_bytes = buffer_bytes
        self.low_watermark = (low_watermark if low_watermark is not None
                              else max(1, entries // 8))
        self.name = name
        self._slots: list[_Slot] = []
        self._avail: deque[RecvWR] = deque()
        self._inboxes: dict[int, Store] = {}
        #: fires once every buffer is registered; endpoints gate their
        #: CM handshake on it exactly like a private pool's setup.
        self.ready: Event = Event(self.sim)
        self.takes = Counter(f"{name}.takes")
        self.recycles = Counter(f"{name}.recycles")
        self.exhaustions = Counter(f"{name}.exhaustions")
        self.low_watermark_hits = Counter(f"{name}.low_watermark")
        self.reclaimed_on_detach = Counter(f"{name}.reclaimed")
        self.min_available = entries

    # -- accounting -------------------------------------------------------
    @property
    def registered_bytes(self) -> int:
        """Receive memory pinned + TPT-registered for this pool."""
        return len(self._slots) * self.buffer_bytes

    @property
    def available(self) -> int:
        return len(self._avail)

    @property
    def connections(self) -> int:
        return len(self._inboxes)

    # -- lifecycle --------------------------------------------------------
    def setup(self) -> Generator:
        """Process: allocate + register every buffer, then post them."""
        tpt = self.node.hca.tpt
        for _ in range(self.entries):
            buffer = self.node.arena.alloc(self.buffer_bytes)
            mr = yield from tpt.register(buffer, AccessFlags.LOCAL_WRITE)
            slot = _Slot(buffer, mr,
                         [Segment(mr.stag, buffer.addr, self.buffer_bytes)],
                         len(self._slots))
            self._slots.append(slot)
            self._post(slot)
        self.ready.succeed()

    def attach(self, qp) -> Store:
        """Adopt ``qp``: its inbound Sends now consume pool buffers.

        Returns the connection's inbox Store; completed receives for
        ``qp`` appear there in arrival order.
        """
        qp.srq = self
        inbox = Store(self.sim, name=f"{self.name}.qp{qp.qp_num:#x}")
        self._inboxes[qp.qp_num] = inbox
        return inbox

    def detach(self, qp) -> None:
        """Release ``qp``: reclaim parked deliveries, close the inbox."""
        inbox = self._inboxes.pop(qp.qp_num, None)
        if getattr(qp, "srq", None) is self:
            qp.srq = None
        if inbox is None:
            return
        while True:
            ok, wr = inbox.try_get()
            if not ok:
                break
            if wr is not SharedReceivePool.CLOSED:
                self.recycle(wr)
                self.reclaimed_on_detach.add()
        inbox.put(SharedReceivePool.CLOSED)

    # -- HCA delivery path ------------------------------------------------
    def take(self, qp) -> Optional[RecvWR]:
        """Claim one buffer for a message arriving on ``qp``.

        ``None`` means pool exhausted — the HCA's RNR retry machinery
        takes over, exactly as for an empty private receive ring.
        """
        if not self._avail:
            self.exhaustions.add()
            return None
        wr = self._avail.popleft()
        wr.srq_qp = qp
        self.takes.add()
        san = self.sim.sanitizer
        if san is not None:
            san.on_srq_take(self, wr.pool_slot)
        avail = len(self._avail)
        if avail < self.min_available:
            self.min_available = avail
        if avail == self.low_watermark:
            self.low_watermark_hits.add()
        return wr

    def _on_complete(self, wr: RecvWR, cqe) -> None:
        """WR completion hook: steer the delivery to the owner's inbox."""
        inbox = self._inboxes.get(wr.srq_qp.qp_num)
        if inbox is None or not cqe.ok:
            # Connection already torn down (or the WR was flushed):
            # nobody will consume this delivery — reclaim it now.
            self.recycle(wr)
            return
        inbox.put(wr)

    def recycle(self, wr: RecvWR) -> None:
        """Return a consumed buffer to the pool (fresh WR, same slot)."""
        self._post(wr.pool_slot)
        self.recycles.add()

    def _post(self, slot: _Slot) -> None:
        san = self.sim.sanitizer
        if san is not None:
            san.on_srq_post(self, slot)
        wr = RecvWR(self.sim, list(slot.segments))
        wr.pool_slot = slot
        wr.srq_qp = None
        wr.on_complete = self._on_complete
        self._avail.append(wr)
