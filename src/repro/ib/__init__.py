"""Simulated InfiniBand substrate: verbs, HCA, memory registration, wire.

This package stands in for the Mellanox SDR/DDR HCAs and fabric of the
paper's testbeds (see DESIGN.md §1 for the substitution argument).  It
is *byte-real*: RDMA operations move actual bytes between node memory
arenas, steering tags are real 32-bit capabilities checked against a
Translation Protection Table, and the InfiniBand rules the paper's
design exploits are enforced:

* Reliable Connection QPs with in-order request execution;
* RDMA Write → Send completion ordering **guaranteed**;
* RDMA Read → Send ordering **not** guaranteed (requester must fence);
* IRD/ORD caps (8 on 2007 Mellanox HCAs) on outstanding RDMA Reads;
* a single serialized TPT engine per HCA (registration is expensive and
  serialises, which is why the paper's registration strategies matter);
* a per-QP read-response engine at the responder (RDMA Read throughput
  on one connection is far below RDMA Write throughput — §4.1).
"""

from repro.ib.memory import (
    AccessFlags,
    MemoryArena,
    MemoryBuffer,
    MemoryRegion,
    ProtectionError,
    RegistrationCosts,
    TranslationProtectionTable,
)
from repro.ib.fmr import FMRPool, FMRRegion
from repro.ib.phys import GLOBAL_STAG, PhysicalAccessMap
from repro.ib.link import DuplexLink, LinkConfig
from repro.ib.verbs import (
    CompletionQueue,
    Cqe,
    CqeStatus,
    Opcode,
    QueuePair,
    QPError,
    RecvWR,
    RdmaReadWR,
    RdmaWriteWR,
    Segment,
    SendWR,
)
from repro.ib.srq import SharedReceivePool
from repro.ib.hca import HCA, HCAConfig
from repro.ib.fabric import Fabric, IBNode

__all__ = [
    "AccessFlags",
    "CompletionQueue",
    "Cqe",
    "CqeStatus",
    "DuplexLink",
    "FMRPool",
    "FMRRegion",
    "Fabric",
    "GLOBAL_STAG",
    "HCA",
    "HCAConfig",
    "IBNode",
    "LinkConfig",
    "MemoryArena",
    "MemoryBuffer",
    "MemoryRegion",
    "Opcode",
    "PhysicalAccessMap",
    "ProtectionError",
    "QPError",
    "QueuePair",
    "RdmaReadWR",
    "RdmaWriteWR",
    "RecvWR",
    "RegistrationCosts",
    "Segment",
    "SendWR",
    "SharedReceivePool",
    "TranslationProtectionTable",
]
