"""Verbs-level objects: work requests, queue pairs, completion queues.

The API mirrors the InfiniBand verbs the paper's transport is written
against: consumers ``post_send``/``post_recv`` work requests on a
Reliable Connection queue pair and collect completions from completion
queues.  Each work request also carries a per-WR ``completion`` event so
transport code can block on exactly the completion it needs (the
kernel-style "wait for this WR" idiom) without polling.

Channel vs memory semantics (Table 1 of the paper):

* ``SendWR``/``RecvWR`` — channel primitives: receiver must pre-post a
  buffer, nothing is exposed, no steering tag, no rendezvous.
* ``RdmaWriteWR``/``RdmaReadWR`` — memory primitives: the *target*
  buffer is exposed under a steering tag the peers must rendezvous on.
"""

from __future__ import annotations

import enum
import itertools
from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.errors import TransportError
from repro.sim import Event, Simulator, Store

__all__ = [
    "CompletionQueue",
    "Cqe",
    "CqeStatus",
    "Opcode",
    "QPError",
    "QPState",
    "QueuePair",
    "RdmaReadWR",
    "RdmaWriteWR",
    "RecvWR",
    "Segment",
    "SendWR",
]

_wr_ids = itertools.count(1)
_qp_nums = itertools.count(0x100)


class QPError(TransportError):
    """The QP transitioned to the error state (fatal for the connection)."""


class Opcode(enum.Enum):
    SEND = "send"
    RECV = "recv"
    RDMA_WRITE = "rdma_write"
    RDMA_READ = "rdma_read"


class CqeStatus(enum.Enum):
    SUCCESS = "success"
    LOC_PROT_ERR = "local_protection_error"
    REM_ACCESS_ERR = "remote_access_error"
    RNR_RETRY_EXC = "rnr_retry_exceeded"
    WR_FLUSH_ERR = "flushed"


class QPState(enum.Enum):
    RESET = "reset"
    RTS = "ready_to_send"
    ERROR = "error"


@dataclass(frozen=True, slots=True)
class Segment:
    """A (steering tag, address, length) triple.

    Used both as a local scatter/gather element (stag = lkey) and as the
    wire encoding of chunk-list entries (stag = rkey the peer will use).
    """

    stag: int
    addr: int
    length: int

    def __post_init__(self):
        if self.length < 0:
            raise ValueError("negative segment length")


@dataclass(slots=True)
class Cqe:
    """Completion queue entry."""

    wr_id: int
    opcode: Opcode
    status: CqeStatus
    byte_len: int = 0
    qp_num: int = 0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status is CqeStatus.SUCCESS


class _WorkRequest:
    """Common machinery for all WR flavours.

    ``__slots__``-based struct layout: WRs are the highest-volume
    objects after events, so they carry no per-instance dict.  The tag
    slots below (``adversarial``, ``pool_region``, ``pool_slot``,
    ``srq_qp``, ``_san_local``, ``_san_remote``) are written by the
    security, buffer-pool, SRQ and sanitizer layers respectively;
    readers use ``getattr(wr, name, default)``, which works unchanged
    on an unassigned slot.
    """

    __slots__ = (
        "wr_id", "signaled", "completion", "cqe", "tspan", "on_complete",
        "adversarial", "pool_region", "pool_slot", "srq_qp",
        "_san_local", "_san_remote",
    )

    opcode: Opcode = Opcode.SEND

    def __init__(self, sim: Simulator, signaled: bool = True):
        self.wr_id = next(_wr_ids)
        self.signaled = signaled
        self.completion: Event = sim.event()
        self.cqe: Optional[Cqe] = None
        #: telemetry parent span set by the posting layer — lets the HCA
        #: dispatcher nest its WQE spans under the RPC that posted them.
        self.tspan = None
        #: synchronous completion hook ``(wr, cqe)`` set by pool owners
        #: (the shared receive pool steers deliveries through it); None
        #: costs a single attribute test.
        self.on_complete = None

    def _complete(self, qp: "QueuePair", cq: "CompletionQueue", status: CqeStatus,
                  byte_len: int = 0, error: Optional[str] = None) -> Cqe:
        cqe = Cqe(self.wr_id, self.opcode, status, byte_len, qp.qp_num, error)
        self.cqe = cqe
        if self.signaled:
            cq.push(cqe)
        self.completion.succeed(cqe)
        if self.on_complete is not None:
            self.on_complete(self, cqe)
        return cqe


class SendWR(_WorkRequest):
    """Channel send: inline bytes or a gather list of local segments."""

    __slots__ = ("inline", "segments", "fence")

    opcode = Opcode.SEND

    def __init__(
        self,
        sim: Simulator,
        inline: Optional[bytes] = None,
        segments: Optional[list[Segment]] = None,
        signaled: bool = True,
        fence: bool = False,
    ):
        if (inline is None) == (segments is None):
            raise ValueError("SendWR takes exactly one of inline= or segments=")
        super().__init__(sim, signaled)
        self.inline = inline
        self.segments = segments or []
        self.fence = fence

    @property
    def byte_len(self) -> int:
        if self.inline is not None:
            return len(self.inline)
        return sum(s.length for s in self.segments)


class RecvWR(_WorkRequest):
    """Pre-posted receive buffer (scatter list of local segments)."""

    __slots__ = ("segments", "received")

    opcode = Opcode.RECV

    def __init__(self, sim: Simulator, segments: list[Segment], signaled: bool = True):
        if not segments:
            raise ValueError("RecvWR needs at least one segment")
        super().__init__(sim, signaled)
        self.segments = segments
        self.received: Optional[bytes] = None

    @property
    def capacity(self) -> int:
        return sum(s.length for s in self.segments)


class RdmaWriteWR(_WorkRequest):
    """Memory-semantics write into a remote segment (no remote CQE)."""

    __slots__ = ("local", "remote", "fence")

    opcode = Opcode.RDMA_WRITE

    def __init__(
        self,
        sim: Simulator,
        local: list[Segment],
        remote: Segment,
        signaled: bool = True,
        fence: bool = False,
    ):
        super().__init__(sim, signaled)
        if not local:
            raise ValueError("RDMA Write needs a local gather list")
        self.local = local
        self.remote = remote
        self.fence = fence

    @property
    def byte_len(self) -> int:
        return sum(s.length for s in self.local)


class RdmaReadWR(_WorkRequest):
    """Memory-semantics read from a remote segment into local scatter."""

    __slots__ = ("local", "remote")

    opcode = Opcode.RDMA_READ

    def __init__(self, sim: Simulator, local: list[Segment], remote: Segment,
                 signaled: bool = True):
        super().__init__(sim, signaled)
        if not local:
            raise ValueError("RDMA Read needs a local scatter list")
        self.local = local
        self.remote = remote

    @property
    def byte_len(self) -> int:
        return self.remote.length


class CompletionQueue:
    """Queue of CQEs with blocking wait and optional event callback."""

    def __init__(self, sim: Simulator, name: str = "cq"):
        self.sim = sim
        self.name = name
        self._cqes: deque[Cqe] = deque()
        self._waiters: deque[Event] = deque()
        self.on_completion = None  # optional callable(Cqe) -> None
        self.total = 0

    def push(self, cqe: Cqe) -> None:
        self.total += 1
        if self.on_completion is not None:
            self.on_completion(cqe)
        if self._waiters:
            self._waiters.popleft().succeed(cqe)
        else:
            self._cqes.append(cqe)

    def poll(self) -> Optional[Cqe]:
        return self._cqes.popleft() if self._cqes else None

    def wait(self) -> Event:
        """Event that fires with the next CQE."""
        ev = Event(self.sim)
        if self._cqes:
            ev.succeed(self._cqes.popleft())
        else:
            self._waiters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self._cqes)


class QueuePair:
    """A Reliable Connection endpoint.

    Created through :class:`repro.ib.fabric.Fabric`, which wires the two
    ends together and starts the HCA dispatcher processes.  ``ird`` and
    ``ord`` are the inbound/outbound RDMA Read depths negotiated at
    connection time — 8 on the paper's Mellanox hardware.
    """

    def __init__(
        self,
        sim: Simulator,
        hca,  # repro.ib.hca.HCA
        send_cq: CompletionQueue,
        recv_cq: CompletionQueue,
        ird: int = 8,
        ord: int = 8,
    ):
        self.sim = sim
        self.hca = hca
        self.qp_num = next(_qp_nums)
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.ird = ird
        self.ord = ord
        self.state = QPState.RESET
        self.peer: Optional["QueuePair"] = None
        self.sq: Store = Store(sim, name=f"qp{self.qp_num}.sq")
        self.rq: deque[RecvWR] = deque()
        #: shared receive pool (``repro.ib.srq``); when set, inbound
        #: messages consume pool buffers instead of the private ``rq``.
        self.srq = None
        self.error_cause: Optional[str] = None
        #: async-event subscribers: each callable(qp, cause) fires once,
        #: synchronously, when the QP transitions to ERROR — the verbs
        #: analogue of IBV_EVENT_QP_FATAL, used by transports for prompt
        #: failure detection instead of waiting for a flushed CQE.
        self.on_error: list = []

    # -- consumer API -----------------------------------------------------
    def post_send(self, wr: _WorkRequest) -> _WorkRequest:
        if self.state is QPState.ERROR:
            raise QPError(f"QP {self.qp_num:#x} in error state: {self.error_cause}")
        if self.state is not QPState.RTS:
            raise QPError(f"QP {self.qp_num:#x} not connected")
        if wr.opcode is Opcode.RECV:
            raise QPError("receive WR posted to send queue")
        san = self.sim.sanitizer
        if san is not None:
            san.on_post_send(self, wr)
        self.sq.put(wr)
        return wr

    def post_recv(self, wr: RecvWR) -> RecvWR:
        if self.state is QPState.ERROR:
            raise QPError(f"QP {self.qp_num:#x} in error state: {self.error_cause}")
        self.rq.append(wr)
        return wr

    # -- fabric-internal ----------------------------------------------------
    def take_recv(self) -> Optional[RecvWR]:
        if self.srq is not None:
            return self.srq.take(self)
        return self.rq.popleft() if self.rq else None

    def enter_error(self, cause: str) -> None:
        """Fatal: flush outstanding WRs with WR_FLUSH_ERR."""
        if self.state is QPState.ERROR:
            return
        self.state = QPState.ERROR
        self.error_cause = cause
        while True:
            ok, wr = self.sq.try_get()
            if not ok:
                break
            wr._complete(self, self.send_cq, CqeStatus.WR_FLUSH_ERR, error=cause)
        while self.rq:
            wr = self.rq.popleft()
            wr._complete(self, self.recv_cq, CqeStatus.WR_FLUSH_ERR, error=cause)
        for callback in list(self.on_error):
            callback(self, cause)

    @property
    def recv_queue_depth(self) -> int:
        return len(self.rq)
