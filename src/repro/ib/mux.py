"""QP multiplexing: many mounts riding a few shared connections.

The paper's designs give every mount its own RC queue pair, so N mounts
cost N QPs and N private receive rings — the linear blow-up fig13
measures.  RDMAvisor-style QP sharing (PAPERS.md) and DC-style dynamic
connections collapse that: a client host keeps a small pool of shared
QPs per server and hands each mount a *virtual lane* on one of them.

Three pieces (DESIGN.md §15):

:class:`MuxConfig`
    The deployment knob: QP sharing on/off and an optional hard budget
    on shared QPs per (host, server) pair.  The default budget is
    ``ceil(sqrt(lanes))`` — with ``lanes/host ~ N/H`` that keeps the
    fleet-wide QP count at ``O(sqrt(N))`` for a fixed host count.

:class:`QpMux`
    One pool of shared *channels* (ordinary
    :class:`~repro.core.base.RpcRdmaClientBase` connections — already
    re-entrant thanks to xid demux and the serialized recovery path)
    between one client host and one server.  Lanes are pinned to a
    channel at mount time (round-robin) and never migrate, so RC
    in-order delivery gives each lane FIFO semantics for free — the
    server audits exactly that via
    :class:`~repro.rpc.lanes.LaneLedger`.

:class:`MuxLane`
    The per-mount transport handed to :class:`~repro.nfs.client.NfsClient`.
    It stamps ``call.lane``/``call.lane_seq`` (carried in the version-2
    RPC/RDMA header), passes through a per-lane credit gate — a
    fairness slice of the channel window, refreshed from the
    ``lane_credits`` field the server echoes in replies — and delegates
    to the shared channel.  The channel-level
    :class:`~repro.core.credits.CreditManager` stays the hard cap that
    protects the server's shared receive pool; the lane gate only keeps
    one chatty mount from hogging it.

Failure handling comes free: a shared QP dying fails every in-flight
call on it, each of which re-enters the channel's ``call()`` retry
loop; the first one redials (serialized on ``_reconnect_done``) and the
rest ride the new connection — one redial heals all lanes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from repro.core.credits import CreditManager
from repro.rpc.lanes import lane_grant
from repro.rpc.msg import RpcCall
from repro.rpc.transport import RpcClientTransport
from repro.sim import Counter

__all__ = ["MuxConfig", "MuxLane", "QpMux", "default_mux_qps"]


def default_mux_qps(nlanes: int) -> int:
    """``ceil(sqrt(nlanes))`` shared QPs — the RDMAvisor sweet spot."""
    return max(1, math.isqrt(max(0, nlanes - 1)) + 1)


@dataclass(frozen=True)
class MuxConfig:
    """QP-sharing knobs for one deployment."""

    enabled: bool = True
    #: hard cap on shared QPs per (client host, server) pair; ``None``
    #: lets :func:`default_mux_qps` size the pool from the lane count.
    qp_budget: Optional[int] = None

    def __post_init__(self):
        if self.qp_budget is not None and self.qp_budget < 1:
            raise ValueError("qp_budget must be >= 1")

    def qps_for(self, nlanes: int) -> int:
        budget = self.qp_budget or default_mux_qps(nlanes)
        return max(1, min(nlanes, budget)) if nlanes else 1


class MuxLane(RpcClientTransport):
    """One mount's virtual lane on a shared channel."""

    def __init__(self, mux: "QpMux", channel: Any, lane_id: int,
                 name: str = "") -> None:
        self.mux = mux
        self.channel = channel
        self.lane_id = lane_id
        self.name = name or f"{channel.name}.lane{lane_id}"
        #: fairness slice of the channel window; the server refreshes it
        #: via the ``lane_credits`` reply field.
        self.credits = CreditManager(
            channel.sim, mux.initial_lane_grant(channel),
            name=f"{self.name}.credits")
        self.calls_sent = Counter(f"{self.name}.calls")
        self._seq = 0

    # NfsClient and the wiring layer read these off any transport.
    @property
    def node(self):
        return self.channel.node

    @property
    def sim(self):
        return self.channel.sim

    @property
    def strategy(self):
        return self.channel.strategy

    def call(self, call: RpcCall) -> Generator:
        call.lane = self.lane_id
        call.lane_seq = self._seq
        self._seq += 1
        yield from self.credits.acquire()
        try:
            reply = yield from self.channel.call(call)
        finally:
            self.credits.release(self.mux.lane_grants.get(self.lane_id))
        self.calls_sent.add()
        return reply


class QpMux:
    """A pool of shared channels between one client host and one server.

    ``make_channel(index)`` builds (and dials) one shared connection —
    the wiring layer owns fabric topology, so the mux stays transport-
    agnostic.  Channels are created eagerly for the planned lane count;
    lanes attach round-robin by id and stay put.
    """

    def __init__(self, name: str, nlanes: int,
                 make_channel: Callable[[int], Any],
                 config: Optional[MuxConfig] = None) -> None:
        self.name = name
        self.config = config or MuxConfig()
        self.planned_lanes = nlanes
        self.channels = [make_channel(i)
                         for i in range(self.config.qps_for(nlanes))]
        for channel in self.channels:
            channel.lane_hook = self._on_reply_header
        self.lanes: dict[int, MuxLane] = {}
        #: latest per-lane grant echoed by the server.
        self.lane_grants: dict[int, int] = {}

    @property
    def qp_count(self) -> int:
        return len(self.channels)

    def lanes_on(self, channel: Any) -> int:
        """Planned lane load of ``channel`` (for initial credit slices)."""
        nqps = len(self.channels)
        index = self.channels.index(channel)
        lanes = max(self.planned_lanes, len(self.lanes))
        return max(1, (lanes - index + nqps - 1) // nqps)

    def initial_lane_grant(self, channel: Any) -> int:
        return lane_grant(channel.config.credits, self.lanes_on(channel))

    def add_lane(self, lane_id: int, name: str = "") -> MuxLane:
        if lane_id in self.lanes:
            raise ValueError(f"{self.name}: lane {lane_id} already attached")
        # Round-robin by attachment order, not id: the wiring layer hands
        # out global mount ids with host-count strides, and striding by a
        # shared factor of the pool size would crowd a few channels.
        channel = self.channels[len(self.lanes) % len(self.channels)]
        lane = MuxLane(self, channel, lane_id, name=name)
        self.lanes[lane_id] = lane
        return lane

    def _on_reply_header(self, header: Any) -> None:
        if header.lane_credits > 0:
            self.lane_grants[header.lane] = header.lane_credits
