"""Wire model: full-duplex ports with bandwidth, latency and chunking.

A node owns one port with independent transmit (egress) and receive
(ingress) sides.  A message transfer claims the sender's egress and the
receiver's ingress *per chunk*, so concurrent flows interleave fairly at
chunk granularity while a single node's aggregate in/out bandwidth is
capped by its port — which is exactly what caps the NFS server at its
link rate in the multi-client experiments (Fig 10).

Bandwidth is expressed in MB/s, which conveniently equals bytes/µs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.sim import Counter, Resource, Simulator, UtilizationMeter

__all__ = ["DuplexLink", "LinkConfig", "LinkFaultHook", "PortDirection"]


class LinkFaultHook:
    """Fault-injection interface a port consults when one is installed.

    The default implementation is a no-op; `repro.faults` provides the
    deterministic injector.  ``DuplexLink.fault_hook`` is ``None`` unless
    a fault plan is armed, so the fault-free fast path costs a single
    attribute check and schedules no events.
    """

    def transfer_delay_us(self, link: "DuplexLink", nbytes: int) -> float:
        """Extra one-way delay (congestion spike) for this transfer."""
        return 0.0

    def drop_message(self, link: "DuplexLink") -> bool:
        """True to silently discard a channel message arriving at ``link``.

        Consulted by the receiving HCA for Send deliveries only: RDMA
        Read/Write data is never dropped (the RC protocol retries those
        below the verbs layer), so loss surfaces exactly where an RPC
        transport must handle it — a call or reply that never arrives.
        """
        return False


@dataclass(frozen=True)
class LinkConfig:
    """Static wire parameters.

    ``per_message_overhead_bytes`` folds headers/CRC/ack overhead into an
    effective per-message cost; ``chunk_bytes`` sets the interleaving
    granularity (an MTU-train, not a single MTU, to keep event counts
    reasonable).
    """

    bandwidth_mb_s: float = 950.0
    latency_us: float = 1.5
    per_message_overhead_bytes: int = 64
    chunk_bytes: int = 32 * 1024

    def __post_init__(self):
        if self.bandwidth_mb_s <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_us < 0:
            raise ValueError("latency must be non-negative")
        if self.chunk_bytes < 1024:
            raise ValueError("chunk size unreasonably small")

    def wire_time_us(self, nbytes: int) -> float:
        """Serialisation time for ``nbytes`` plus per-message overhead."""
        return (nbytes + self.per_message_overhead_bytes) / self.bandwidth_mb_s


class PortDirection:
    """One direction (egress or ingress) of a node's port."""

    def __init__(self, sim: Simulator, config: LinkConfig, name: str):
        self.sim = sim
        self.config = config
        self.name = name
        self.arbiter = Resource(sim, capacity=1, name=f"{name}.arbiter")
        self.meter = UtilizationMeter(sim, capacity=1.0, name=name)
        self.bytes_carried = Counter(f"{name}.bytes")

    def hold(self, duration_us: float) -> Generator:
        """Process: occupy this direction for ``duration_us``."""
        req = self.arbiter.request()
        yield req
        self.meter.acquire()
        try:
            yield self.sim.timeout(duration_us)
        finally:
            self.meter.release()
            self.arbiter.release(req)


class DuplexLink:
    """A node's network port (tx + rx) attached to a full-bisection fabric."""

    def __init__(self, sim: Simulator, config: LinkConfig, name: str = "port"):
        self.sim = sim
        self.config = config
        self.name = name
        self.tx = PortDirection(sim, config, f"{name}.tx")
        self.rx = PortDirection(sim, config, f"{name}.rx")
        #: optional LinkFaultHook; installed by a FaultInjector, else None.
        self.fault_hook = None

    def propagation_us(self, dst: "DuplexLink") -> float:
        """One-way propagation delay to ``dst`` (switch hop included)."""
        return self.config.latency_us + dst.config.latency_us

    def transfer(self, dst: "DuplexLink", nbytes: int) -> Generator:
        """Process: serialize ``nbytes`` from this port toward ``dst``.

        Completes when the last byte has left the wire — *not* when it
        arrives; callers model propagation with :meth:`propagation_us`
        so back-to-back messages pipeline the way real HCAs do.  Chunks
        claim source egress and destination ingress together, so the
        slower of the two ports paces the transfer and concurrent flows
        share fairly.
        """
        if nbytes < 0:
            raise ValueError("negative transfer size")
        if self.fault_hook is not None:
            spike = self.fault_hook.transfer_delay_us(self, nbytes)
            if spike > 0.0:
                yield self.sim.timeout(spike)
        cfg = self.config
        total = nbytes + cfg.per_message_overhead_bytes
        bw = min(cfg.bandwidth_mb_s, dst.config.bandwidth_mb_s)
        remaining = total
        while remaining > 0:
            chunk = min(remaining, cfg.chunk_bytes)
            duration = chunk / bw
            tx_req = self.tx.arbiter.request()
            yield tx_req
            rx_req = dst.rx.arbiter.request()
            yield rx_req
            self.tx.meter.acquire()
            dst.rx.meter.acquire()
            try:
                yield self.sim.timeout(duration)
            finally:
                self.tx.meter.release()
                dst.rx.meter.release()
                dst.rx.arbiter.release(rx_req)
                self.tx.arbiter.release(tx_req)
            remaining -= chunk
        self.tx.bytes_carried.add(nbytes)
        dst.rx.bytes_carried.add(nbytes)

    def utilization(self) -> tuple[float, float]:
        """(tx, rx) mean utilization since window reset."""
        return self.tx.meter.utilization(), self.rx.meter.utilization()
