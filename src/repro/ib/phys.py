"""All-physical registration via the Global Steering Tag (§4.3).

Privileged consumers may skip per-buffer registration entirely and let
RDMA operations name *physical* addresses under a single well-known
steering tag.  The consumer must still pin memory and obtain the
virtual→physical mapping, but no TPT update is needed — registration
cost disappears from the critical path (the best Read throughput in
Fig 9a).

Two consequences the paper measures, both modeled here:

* **Security**: the global stag authorises access to *all* of the
  exposing node's pinned memory — acceptable only "where there is
  confidence in the integrity of the [peer]", i.e. clients trusting the
  server, never the reverse.
* **No scatter/gather**: physically-addressed operations cannot ride a
  single virtually-contiguous descriptor; a transfer must be split at
  every physical-contiguity break.  ``chunk_runs`` performs that split,
  which is what multiplies RDMA Reads on the NFS WRITE path and runs
  into the IRD/ORD cap (Fig 9b).
"""

from __future__ import annotations

from typing import Iterator

from repro.sim import Counter, DeterministicRNG
from repro.ib.memory import MemoryArena, MemoryBuffer, ProtectionError

__all__ = ["GLOBAL_STAG", "PhysicalAccessMap"]

#: The reserved steering tag naming physical memory (cf. IB's reserved lkey).
GLOBAL_STAG = 0xFFFF_FFFF


class PhysicalAccessMap:
    """Resolves global-stag operations against a node's arena.

    ``enabled`` is the privilege gate: an HCA only honours the global
    stag when its owner opted in (the paper's "environments where there
    is confidence in the integrity of the server").
    """

    def __init__(
        self,
        arena: MemoryArena,
        rng: DeterministicRNG,
        enabled: bool = False,
        mean_contig_run_bytes: int = 16 * 1024,
        name: str = "phys",
    ):
        if mean_contig_run_bytes < 4096:
            raise ValueError("physical runs are at least one page")
        self.arena = arena
        self.rng = rng
        self.enabled = enabled
        self.mean_contig_run_bytes = mean_contig_run_bytes
        self.name = name
        self.accesses = Counter(f"{name}.accesses")
        self.rejections = Counter(f"{name}.rejections")

    def resolve(self, addr: int, length: int) -> tuple[MemoryBuffer, int]:
        """Data-path check for an incoming global-stag operation."""
        if not self.enabled:
            self.rejections.add()
            raise ProtectionError("global stag not honoured by this HCA", GLOBAL_STAG)
        try:
            buf, off = self.arena.resolve(addr, length)
        except ProtectionError:
            self.rejections.add()
            raise
        self.accesses.add()
        return buf, off

    def chunk_runs(self, addr: int, length: int) -> Iterator[tuple[int, int]]:
        """Split a virtual range at physical-contiguity breaks.

        Physical page placement is not tracked individually; instead run
        lengths are drawn (deterministically, seeded by the address) from
        a geometric-ish distribution with the configured mean, matching
        the fragmented look of kernel page allocations.  Splits are
        page-aligned.
        """
        if length <= 0:
            return
        rng = self.rng.child(f"runs-{addr}")
        pos = addr
        remaining = length
        while remaining > 0:
            mean_pages = max(1, self.mean_contig_run_bytes // 4096)
            run_pages = max(1, int(rng.exponential(mean_pages) + 0.5))
            run = min(remaining, run_pages * 4096)
            # First run ends at a page boundary relative to addr alignment.
            misalign = pos % 4096
            if misalign:
                run = min(run, 4096 - misalign + (run_pages - 1) * 4096)
            yield pos, run
            pos += run
            remaining -= run
