"""Node memory, memory regions and the Translation Protection Table.

Registration is the paper's central overhead (§4.3): pinning pages and
translating addresses costs CPU, and updating the HCA's TPT costs a
serialized I/O-bus transaction whose latency depends on region size.
Both costs are modeled here; the serialized TPT engine (one per HCA) is
what makes dynamic per-operation registration a throughput ceiling and
what the FMR / registration-cache / all-physical strategies attack.

Steering tags are real 32-bit capabilities: every remote access is
checked against the TPT, which is what gives the security evaluation
teeth (a malicious client guessing stags faces a genuine 2^32 space
minus what the transport exposed).
"""

from __future__ import annotations

import enum
from bisect import bisect_right, insort
from dataclasses import dataclass
from typing import Generator, Optional

from repro.errors import ReproError
from repro.sim import Counter, DeterministicRNG, Resource, Simulator

__all__ = [
    "AccessFlags",
    "MemoryArena",
    "MemoryBuffer",
    "MemoryRegion",
    "ProtectionError",
    "RegistrationCosts",
    "TranslationProtectionTable",
    "PAGE_SIZE",
]

PAGE_SIZE = 4096


class ProtectionError(ReproError):
    """A remote (or local) access failed TPT validation.

    ``cause`` classifies the refusal — ``"stag"`` (no live registration),
    ``"access"`` (rights mismatch) or ``"bounds"`` (range overrun) — so
    NAK consumers (misbehavior scoring, stats) can break faults down the
    way ``nfsstat`` breaks down error replies.
    """

    def __init__(self, reason: str, stag: int = 0, cause: str = "stag"):
        super().__init__(reason)
        self.reason = reason
        self.stag = stag
        self.cause = cause


class AccessFlags(enum.IntFlag):
    """MR access rights; remote flags are what 'exposes' a buffer."""

    LOCAL_WRITE = 1
    REMOTE_READ = 2
    REMOTE_WRITE = 4

    @property
    def remote(self) -> bool:
        return bool(self & (AccessFlags.REMOTE_READ | AccessFlags.REMOTE_WRITE))


class MemoryBuffer:
    """A contiguous allocation in a node's arena (virtually addressed).

    Storage is zero-copy: the backing ``bytearray`` is allocated lazily
    (an untouched buffer is all zeros and costs nothing), and
    :class:`~repro.payload.Payload` descriptors written through
    :meth:`fill` are kept as *overlays* — ``(start, end, payload)``
    windows that mask the backing bytes — instead of being materialised.
    :meth:`peek` hands descriptors straight back, so a bulk transfer
    passes through registered memory without the host ever copying the
    simulated bytes.  Real-bytes fills and direct ``data`` access
    behave exactly as before.
    """

    __slots__ = ("arena", "addr", "length", "pinned_pages", "_data", "_overlays")

    def __init__(self, arena: "MemoryArena", addr: int, length: int):
        self.arena = arena
        self.addr = addr
        self.length = length
        self.pinned_pages = 0
        self._data: Optional[bytearray] = None
        self._overlays: list = []   # sorted disjoint (start, end, Payload)

    @property
    def npages(self) -> int:
        return pages_spanned(self.addr, self.length)

    @property
    def data(self) -> bytearray:
        """The backing bytes, with overlays folded in (compat path)."""
        return self._materialize()

    def _materialize(self) -> bytearray:
        if self._data is None:
            self._data = bytearray(self.length)
        if self._overlays:
            for start, end, payload in self._overlays:
                self._data[start:end] = payload.tobytes()
            self._overlays.clear()
        return self._data

    def _clip_overlays(self, start: int, end: int) -> None:
        """Remove overlay coverage of ``[start, end)``, keeping edges."""
        if not self._overlays:
            return
        kept = []
        for s, e, p in self._overlays:
            if e <= start or s >= end:
                kept.append((s, e, p))
                continue
            if s < start:
                kept.append((s, start, p[: start - s]))
            if e > end:
                kept.append((end, e, p[end - s:]))
        self._overlays = kept

    def fill(self, payload, offset: int = 0) -> None:
        n = len(payload)
        if offset < 0 or offset + n > self.length:
            raise ValueError(
                f"fill of {n} bytes at offset {offset} "
                f"overruns buffer of {self.length}"
            )
        if n == 0:
            return
        from repro.payload import Payload
        if isinstance(payload, Payload):
            self._clip_overlays(offset, offset + n)
            self._overlays.append((offset, offset + n, payload))
            self._overlays.sort(key=lambda o: o[0])
            return
        self._clip_overlays(offset, offset + n)
        if self._data is None:
            self._data = bytearray(self.length)
        self._data[offset : offset + n] = payload

    def peek(self, offset: int = 0, length: Optional[int] = None):
        if length is None:
            length = self.length - offset
        if offset < 0 or offset + length > self.length:
            raise ValueError("peek out of bounds")
        if length == 0:
            return b""
        end = offset + length
        hits = [o for o in self._overlays if o[0] < end and o[1] > offset]
        if not hits:
            if self._data is None:
                return bytes(length)
            return bytes(self._data[offset:end])
        s, e, p = hits[0]
        if len(hits) == 1 and s <= offset and e >= end:
            return p[offset - s : end - s]
        from repro.payload import Payload, join_parts
        parts = []
        pos = offset
        for s, e, p in hits:
            if s > pos:
                parts.append(bytes(self._data[pos:s]) if self._data is not None
                             else Payload.zeros(s - pos))
            lo = max(pos, s)
            hi = min(end, e)
            parts.append(p[lo - s : hi - s])
            pos = hi
        if pos < end:
            parts.append(bytes(self._data[pos:end]) if self._data is not None
                         else Payload.zeros(end - pos))
        return join_parts(parts)


def pages_spanned(addr: int, length: int) -> int:
    """Number of pages a virtual range touches (page-alignment aware)."""
    if length <= 0:
        return 0
    first = addr // PAGE_SIZE
    last = (addr + length - 1) // PAGE_SIZE
    return last - first + 1


class MemoryArena:
    """Per-node virtual memory: a bump allocator over real bytearrays.

    Allocations are page-aligned so registration page counts match what a
    kernel would see.  ``resolve`` maps an arbitrary virtual range back to
    the buffer that contains it — this is the path the all-physical
    (global steering tag) mode uses, since it bypasses the TPT entirely.
    """

    def __init__(self, name: str = "mem", base: int = 0x1000_0000):
        self.name = name
        self._next = base
        self._starts: list[int] = []
        self._buffers: dict[int, MemoryBuffer] = {}
        self.allocated_bytes = 0

    def alloc(self, length: int) -> MemoryBuffer:
        if length <= 0:
            raise ValueError(f"allocation of {length} bytes")
        addr = self._next
        buf = MemoryBuffer(self, addr, length)
        self._buffers[addr] = buf
        insort(self._starts, addr)
        # Page-align the next allocation; keep a guard page between
        # buffers so stray accesses can't silently alias a neighbour.
        self._next += ((length + PAGE_SIZE - 1) // PAGE_SIZE + 1) * PAGE_SIZE
        self.allocated_bytes += length
        return buf

    def free(self, buf: MemoryBuffer) -> None:
        if self._buffers.pop(buf.addr, None) is None:
            raise ValueError("free of buffer not in this arena")
        self._starts.remove(buf.addr)
        self.allocated_bytes -= buf.length

    def resolve(self, addr: int, length: int) -> tuple[MemoryBuffer, int]:
        """Find the buffer containing ``[addr, addr+length)``; offset into it."""
        idx = bisect_right(self._starts, addr) - 1
        if idx >= 0:
            buf = self._buffers[self._starts[idx]]
            off = addr - buf.addr
            if 0 <= off and off + length <= buf.length:
                return buf, off
        raise ProtectionError(f"address range {addr:#x}+{length} maps no buffer")


@dataclass(frozen=True)
class RegistrationCosts:
    """Cost model for the registration machinery (DESIGN.md §4).

    *CPU* costs (pinning, address translation) run on the node's cores
    and parallelise; *TPT* costs occupy the HCA's single TPT engine and
    serialise, which is why they bound throughput under multi-threaded
    load.  FMR pre-allocates TPT entries so its map/unmap transactions
    are cheaper; unmapping an FMR batches the invalidate (Mellanox-style
    deferred flush), making it cheaper still.
    """

    pin_cpu_per_page_us: float = 0.25
    unpin_cpu_per_page_us: float = 0.10
    reg_tpt_base_us: float = 4.0
    reg_tpt_per_page_us: float = 7.0
    dereg_tpt_base_us: float = 3.0
    dereg_tpt_per_page_us: float = 3.8
    fmr_map_base_us: float = 3.0
    fmr_map_per_page_us: float = 5.5
    fmr_unmap_base_us: float = 2.0
    fmr_unmap_per_page_us: float = 2.8

    def reg_tpt_us(self, npages: int) -> float:
        return self.reg_tpt_base_us + npages * self.reg_tpt_per_page_us

    def dereg_tpt_us(self, npages: int) -> float:
        return self.dereg_tpt_base_us + npages * self.dereg_tpt_per_page_us

    def fmr_map_us(self, npages: int) -> float:
        return self.fmr_map_base_us + npages * self.fmr_map_per_page_us

    def fmr_unmap_us(self, npages: int) -> float:
        return self.fmr_unmap_base_us + npages * self.fmr_unmap_per_page_us


class MemoryRegion:
    """A registered window over a buffer, addressable by steering tag."""

    __slots__ = ("tpt", "stag", "buffer", "addr", "length", "access", "valid", "is_fmr")

    def __init__(
        self,
        tpt: "TranslationProtectionTable",
        stag: int,
        buffer: MemoryBuffer,
        addr: int,
        length: int,
        access: AccessFlags,
        is_fmr: bool = False,
    ):
        self.tpt = tpt
        self.stag = stag
        self.buffer = buffer
        self.addr = addr
        self.length = length
        self.access = access
        self.valid = True
        self.is_fmr = is_fmr

    @property
    def npages(self) -> int:
        return pages_spanned(self.addr, self.length)

    def _offset(self, addr: int, length: int) -> int:
        if not self.valid:
            raise ProtectionError("access through invalidated MR", self.stag)
        if addr < self.addr or addr + length > self.addr + self.length:
            raise ProtectionError(
                f"range {addr:#x}+{length} outside MR [{self.addr:#x}, "
                f"{self.addr + self.length:#x})",
                self.stag,
            )
        return (addr - self.addr) + (self.addr - self.buffer.addr)

    def read(self, addr: int, length: int):
        off = self._offset(addr, length)
        return self.buffer.peek(off, length)

    def write(self, addr: int, payload) -> None:
        off = self._offset(addr, len(payload))
        self.buffer.fill(payload, off)

    def invalidate(self) -> None:
        """Synchronously drop the mapping (no cost; used by teardown paths)."""
        if self.valid:
            self.valid = False
            self.tpt._entries.pop(self.stag, None)
            san = self.tpt.sim.sanitizer
            if san is not None:
                san.on_invalidate(self.tpt, self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "valid" if self.valid else "stale"
        return f"<MR stag={self.stag:#010x} {self.addr:#x}+{self.length} {state}>"


class TranslationProtectionTable:
    """Per-HCA stag → MR map plus the serialized TPT update engine.

    ``register``/``deregister`` are *processes*: they charge pin/unpin
    CPU on the owning node and occupy the TPT engine for the modeled
    I/O-bus transaction.  ``lookup`` is the zero-cost data-path check
    performed by the HCA on every incoming RDMA operation.
    """

    def __init__(
        self,
        sim: Simulator,
        cpu,  # repro.osmodel.CPU
        costs: RegistrationCosts,
        rng: DeterministicRNG,
        name: str = "tpt",
    ):
        self.sim = sim
        self.cpu = cpu
        self.costs = costs
        self.rng = rng
        self.name = name
        self.engine = Resource(sim, capacity=1, name=f"{name}.engine")
        self._entries: dict[int, MemoryRegion] = {}
        self.registrations = Counter(f"{name}.registrations")
        self.deregistrations = Counter(f"{name}.deregistrations")
        self.protection_faults = Counter(f"{name}.faults")
        self.faults_by_cause: dict[str, int] = {
            "stag": 0, "access": 0, "bounds": 0}
        self.stags_exposed_ever: set[int] = set()

    # -- stag management --------------------------------------------------
    def _fresh_stag(self) -> int:
        while True:
            stag = self.rng.integers(1, 2**32)  # 0 is reserved
            if stag not in self._entries:
                return stag

    def allocate_stag(self) -> int:
        """Reserve a stag without binding it (FMR pools pre-allocate these)."""
        stag = self._fresh_stag()
        self._entries[stag] = None  # type: ignore[assignment]
        return stag

    # -- control path (costed processes) ----------------------------------
    def register(
        self,
        buffer: MemoryBuffer,
        access: AccessFlags,
        addr: Optional[int] = None,
        length: Optional[int] = None,
    ) -> Generator:
        """Process: register a window of ``buffer``; returns the MR."""
        addr = buffer.addr if addr is None else addr
        length = buffer.length if length is None else length
        if addr < buffer.addr or addr + length > buffer.addr + buffer.length:
            raise ValueError("registration window outside buffer")
        npages = pages_spanned(addr, length)
        span = self._reg_span("reg.register", npages=npages)
        try:
            # Pin + translate on the CPU (parallelisable across cores).
            yield from self.cpu.consume(npages * self.costs.pin_cpu_per_page_us)
            buffer.pinned_pages += npages
            # Serialized TPT update transaction on the HCA.
            req = self.engine.request()
            yield req
            try:
                yield self.sim.timeout(self.costs.reg_tpt_us(npages))
            finally:
                self.engine.release(req)
        finally:
            if span is not None:
                span.end()
        stag = self._fresh_stag()
        mr = MemoryRegion(self, stag, buffer, addr, length, access)
        self._entries[stag] = mr
        self.registrations.add()
        if access.remote:
            self.stags_exposed_ever.add(stag)
        san = self.sim.sanitizer
        if san is not None:
            san.on_register(self, mr)
        return mr

    def deregister(self, mr: MemoryRegion) -> Generator:
        """Process: invalidate TPT entries, then unpin pages."""
        if not mr.valid:
            return
        npages = mr.npages
        span = self._reg_span("reg.deregister", npages=npages)
        try:
            req = self.engine.request()
            yield req
            try:
                yield self.sim.timeout(self.costs.dereg_tpt_us(npages))
            finally:
                self.engine.release(req)
            mr.invalidate()
            mr.buffer.pinned_pages -= npages
            yield from self.cpu.consume(npages * self.costs.unpin_cpu_per_page_us)
        finally:
            if span is not None:
                span.end()
        self.deregistrations.add()

    def _reg_span(self, name: str, **args):
        """Registration-path span (cat ``reg``), or None when telemetry is off."""
        telemetry = self.sim.telemetry
        if telemetry is None or telemetry.tracer is None:
            return None
        tracer = telemetry.tracer
        pid = self.name.split(".")[0] if "." in self.name else self.name
        return tracer.begin(name, "reg", pid, "tpt",
                            parent=tracer.task_span(), **args)

    # -- data path (free; performed by HCA hardware) ----------------------
    def lookup(self, stag: int, addr: int, length: int, need: AccessFlags) -> MemoryRegion:
        mr = self._entries.get(stag)
        if mr is None or not mr.valid:
            self.protection_faults.add()
            self.faults_by_cause["stag"] += 1
            raise ProtectionError(f"stag {stag:#010x} not in TPT", stag,
                                  cause="stag")
        if need & ~mr.access:
            self.protection_faults.add()
            self.faults_by_cause["access"] += 1
            raise ProtectionError(
                f"stag {stag:#010x} lacks {need!r} (has {mr.access!r})", stag,
                cause="access",
            )
        if addr < mr.addr or addr + length > mr.addr + mr.length:
            self.protection_faults.add()
            self.faults_by_cause["bounds"] += 1
            raise ProtectionError(
                f"stag {stag:#010x} range {addr:#x}+{length} out of bounds", stag,
                cause="bounds",
            )
        return mr

    # -- audit -------------------------------------------------------------
    def remotely_exposed(self) -> list[MemoryRegion]:
        """MRs a remote peer could currently name (the attack surface)."""
        return [
            mr
            for mr in self._entries.values()
            if mr is not None and mr.valid and mr.access.remote
        ]

    @property
    def live_entries(self) -> int:
        return sum(1 for mr in self._entries.values() if mr is not None and mr.valid)
