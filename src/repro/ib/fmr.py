"""Fast Memory Registration pools (§4.3, "Fast Memory Registration").

FMR pre-allocates TPT entries (and their steering tags) at pool-creation
time; mapping a buffer onto a pool entry still pins pages and installs a
translation, but skips entry allocation and uses a cheaper, batched TPT
transaction — the Mellanox FMR optimisation.  Limitations modeled as in
the paper: privileged (kernel) consumers only, a fixed maximum mapping
size set at initialisation, and a finite pool; the RPC/RDMA transport
falls back to regular registration when a request doesn't fit.
"""

from __future__ import annotations

from collections import deque
from typing import Generator, Optional

from repro.sim import Counter
from repro.ib.memory import (
    AccessFlags,
    MemoryBuffer,
    MemoryRegion,
    TranslationProtectionTable,
    pages_spanned,
)

__all__ = ["FMRPool", "FMRRegion", "FMRExhausted", "FMRTooLarge"]


class FMRExhausted(Exception):
    """All pool entries are mapped; caller must fall back or wait."""


class FMRTooLarge(Exception):
    """Mapping exceeds the pool's fixed maximum region size."""


class FMRRegion(MemoryRegion):
    """An MR whose stag/TPT slot came from an FMR pool."""

    __slots__ = ("pool",)

    def __init__(self, pool: "FMRPool", stag: int, buffer, addr, length, access):
        super().__init__(pool.tpt, stag, buffer, addr, length, access, is_fmr=True)
        self.pool = pool


class FMRPool:
    """A fixed set of pre-allocated TPT entries for fast map/unmap."""

    def __init__(
        self,
        tpt: TranslationProtectionTable,
        pool_size: int = 512,
        max_bytes: int = 1 << 20,
        name: str = "fmr",
    ):
        if pool_size < 1:
            raise ValueError("FMR pool needs at least one entry")
        if max_bytes < 1:
            raise ValueError("FMR max mapping size must be positive")
        self.tpt = tpt
        self.max_bytes = max_bytes
        self.name = name
        # Entry allocation happens once, here, at initialisation: this is
        # the whole point of FMR (no TPT-entry allocation per mapping).
        self._free_stags: deque[int] = deque(tpt.allocate_stag() for _ in range(pool_size))
        self.pool_size = pool_size
        self.maps = Counter(f"{name}.maps")
        self.unmaps = Counter(f"{name}.unmaps")
        self.fallbacks = Counter(f"{name}.fallbacks")

    @property
    def available(self) -> int:
        return len(self._free_stags)

    def map(
        self,
        buffer: MemoryBuffer,
        access: AccessFlags,
        addr: Optional[int] = None,
        length: Optional[int] = None,
    ) -> Generator:
        """Process: bind a buffer window to a pre-allocated entry."""
        addr = buffer.addr if addr is None else addr
        length = buffer.length if length is None else length
        if length > self.max_bytes:
            self.fallbacks.add()
            raise FMRTooLarge(f"{length} bytes > FMR max {self.max_bytes}")
        if not self._free_stags:
            raise FMRExhausted(f"pool {self.name!r} has no free entries")
        # Reserve the entry *before* yielding: concurrent mappers must
        # not observe the same free stag (classic check-then-act hazard).
        stag = self._free_stags.popleft()
        npages = pages_spanned(addr, length)
        span = self.tpt._reg_span("reg.fmr_map", npages=npages)
        try:
            # Pinning and translation are unchanged relative to regular
            # registration; only the TPT transaction is cheaper.
            yield from self.tpt.cpu.consume(npages * self.tpt.costs.pin_cpu_per_page_us)
            buffer.pinned_pages += npages
            req = self.tpt.engine.request()
            yield req
            try:
                yield self.tpt.sim.timeout(self.tpt.costs.fmr_map_us(npages))
            finally:
                self.tpt.engine.release(req)
        except BaseException:
            self._free_stags.append(stag)
            raise
        finally:
            if span is not None:
                span.end()
        mr = FMRRegion(self, stag, buffer, addr, length, access)
        self.tpt._entries[stag] = mr
        self.tpt.registrations.add()
        if access.remote:
            self.tpt.stags_exposed_ever.add(stag)
        self.maps.add()
        san = self.tpt.sim.sanitizer
        if san is not None:
            san.on_register(self.tpt, mr)
        return mr

    def unmap(self, mr: FMRRegion) -> Generator:
        """Process: release the mapping; the stag returns to the pool."""
        if mr.pool is not self:
            raise ValueError("unmap of FMR from a different pool")
        if not mr.valid:
            return
        npages = mr.npages
        span = self.tpt._reg_span("reg.fmr_unmap", npages=npages)
        try:
            req = self.tpt.engine.request()
            yield req
            try:
                yield self.tpt.sim.timeout(self.tpt.costs.fmr_unmap_us(npages))
            finally:
                self.tpt.engine.release(req)
        finally:
            if span is not None:
                span.end()
        mr.valid = False
        # The entry (slot + stag) survives; only the binding is dropped.
        self.tpt._entries[mr.stag] = None  # type: ignore[assignment]
        self._free_stags.append(mr.stag)
        san = self.tpt.sim.sanitizer
        if san is not None:
            san.on_invalidate(self.tpt, mr)
        mr.buffer.pinned_pages -= npages
        yield from self.tpt.cpu.consume(npages * self.tpt.costs.unpin_cpu_per_page_us)
        self.tpt.deregistrations.add()
        self.unmaps.add()
