"""Message-bearing TCP connections with full host-side cost accounting.

The unit of transfer is an application message (ONC RPC does its own
record marking on TCP, so message framing is faithful).  Each message is
cut into NIC segments; per segment the sender charges copy/checksum CPU,
the segment occupies sender-egress and receiver-ingress wire, and the
receiver charges its (coalesced) interrupt plus copy/checksum CPU before
the message is delivered to the receive queue.

This is where TCP's costs live relative to RDMA: every byte crosses each
host's memory bus multiple times and takes CPU on *both* ends, whereas
the RDMA data path in :mod:`repro.ib` touches no remote CPU at all.
"""

from __future__ import annotations

import itertools
from typing import Generator

from repro.ib.link import DuplexLink
from repro.osmodel import CPU, InterruptController
from repro.sim import Counter, Simulator, Store

from repro.tcpip.nic import NicProfile

__all__ = ["TcpConnection", "TcpEndpoint", "TcpListener"]

_conn_ids = itertools.count(1)


class TcpEndpoint:
    """A host's attachment point: CPU + interrupt controller + NIC port."""

    def __init__(
        self,
        sim: Simulator,
        cpu: CPU,
        irq: InterruptController,
        profile: NicProfile,
        name: str = "tcp-ep",
    ):
        self.sim = sim
        self.cpu = cpu
        self.irq = irq
        self.profile = profile
        self.name = name
        self.port: DuplexLink = profile.port(sim, f"{name}.{profile.name}")
        self._rx_irq_last = -float("inf")

    def _tx_cpu_us(self, nbytes: int) -> float:
        passes = self.profile.cpu_passes_tx
        return passes * self.cpu.config.copy_cost_us(nbytes) + self.profile.per_segment_cpu_us

    def _rx_cpu_us(self, nbytes: int) -> float:
        passes = self.profile.cpu_passes_rx
        return passes * self.cpu.config.copy_cost_us(nbytes) + self.profile.per_segment_cpu_us


class TcpConnection:
    """A reliable, ordered, bidirectional message pipe between endpoints."""

    def __init__(self, a: TcpEndpoint, b: TcpEndpoint):
        if a.sim is not b.sim:
            raise ValueError("endpoints live in different simulators")
        if a.profile.name != b.profile.name:
            raise ValueError(
                f"mixed NIC profiles on one connection: {a.profile.name} vs {b.profile.name}"
            )
        self.sim = a.sim
        self.conn_id = next(_conn_ids)
        self.a = a
        self.b = b
        self._rx: dict[int, Store] = {id(a): Store(self.sim), id(b): Store(self.sim)}
        # Per-direction pipeline stages: keep segments ordered within a
        # direction while letting CPU work overlap wire time.
        from repro.sim import Resource

        self._tx_stage = {id(a): Resource(self.sim), id(b): Resource(self.sim)}
        self._rx_stage = {id(a): Resource(self.sim), id(b): Resource(self.sim)}
        self.bytes_sent = Counter(f"tcp{self.conn_id}.bytes")
        self.messages_sent = Counter(f"tcp{self.conn_id}.messages")
        self.closed = False

    def _other(self, side: TcpEndpoint) -> TcpEndpoint:
        if side is self.a:
            return self.b
        if side is self.b:
            return self.a
        raise ValueError("endpoint not part of this connection")

    def send(self, side: TcpEndpoint, message: bytes) -> Generator:
        """Process: move ``message`` from ``side`` to its peer.

        Completes when the last segment has been handed to the peer's
        stack; delivery to the peer's receive queue happens then too.
        """
        if self.closed:
            raise ConnectionError("send on closed TCP connection")
        peer = self._other(side)
        profile = side.profile
        total = len(message)
        sizes = [0] if total == 0 else [
            min(profile.segment_bytes, total - off)
            for off in range(0, total, profile.segment_bytes)
        ]
        # Three-stage pipeline per segment: tx CPU, wire, rx CPU.  Stages
        # are FIFO resources so segments stay ordered within a direction
        # while stage N+1 of one segment overlaps stage N of the next —
        # which is how a real TCP stack keeps the wire busy.  The tx slot
        # is claimed HERE, in message order, not inside the segment
        # process: otherwise the pipeline's FIFO order would rest on the
        # incidental boot order of sibling processes, which the schedule
        # perturbation checker (repro.check.races) deliberately breaks.
        tx_stage = self._tx_stage[id(side)]
        done = [
            self.sim.process(self._segment(side, peer, seg, tx_stage.request()))
            for seg in sizes
        ]
        for proc in done:
            yield proc
        self.bytes_sent.add(total)
        self.messages_sent.add(1)
        yield self._rx[id(peer)].put(message)

    def _segment(self, side: TcpEndpoint, peer: TcpEndpoint, seg: int, req) -> Generator:
        tx_stage = self._tx_stage[id(side)]
        rx_stage = self._rx_stage[id(side)]
        yield req
        try:
            # Sender: copy into the stack + checksum + protocol work.
            yield from side.cpu.consume(side._tx_cpu_us(seg))
        finally:
            tx_stage.release(req)
        # Wire: occupies sender egress and receiver ingress.
        yield from side.port.transfer(peer.port, seg)
        req = rx_stage.request()
        yield req
        try:
            # Receiver: interrupt (coalesced) then copy out of the stack.
            yield from self._rx_side(peer, seg)
        finally:
            rx_stage.release(req)

    def _rx_side(self, peer: TcpEndpoint, nbytes: int) -> Generator:
        now = self.sim.now
        if now - peer._rx_irq_last >= peer.profile.rx_interrupt_coalesce_us:
            peer._rx_irq_last = now
            yield from peer.irq.raise_irq()
        yield from peer.cpu.consume(peer._rx_cpu_us(nbytes))

    def recv(self, side: TcpEndpoint):
        """Event firing with the next message addressed to ``side``."""
        if side is not self.a and side is not self.b:
            raise ValueError("endpoint not part of this connection")
        return self._rx[id(side)].get()

    def pending(self, side: TcpEndpoint) -> int:
        return len(self._rx[id(side)])

    def close(self) -> None:
        self.closed = True


class TcpListener:
    """Accept queue for inbound connections (server-side convenience)."""

    def __init__(self, endpoint: TcpEndpoint):
        self.endpoint = endpoint
        self._backlog: Store = Store(endpoint.sim)

    def connect_from(self, client: TcpEndpoint) -> TcpConnection:
        """Client-side connect; returns the established connection."""
        conn = TcpConnection(client, self.endpoint)
        self._backlog.put(conn)
        return conn

    def accept(self):
        """Event firing with the next established connection."""
        return self._backlog.get()
