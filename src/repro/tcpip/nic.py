"""NIC profiles: Gigabit Ethernet and IP-over-InfiniBand.

A profile bundles the wire parameters with the host-side CPU cost
structure of driving that NIC through the TCP stack.  ``cpu_passes_*``
counts how many times each payload byte crosses the memory bus on each
side (copies + checksum); multiplied by the node's memcpy cost it gives
the per-byte CPU demand that makes IPoIB CPU-bound in Fig 10.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ib.link import DuplexLink, LinkConfig
from repro.sim import Simulator

__all__ = ["GIGE_PROFILE", "IPOIB_PROFILE", "NicProfile"]


@dataclass(frozen=True)
class NicProfile:
    """Wire + host-cost description of one NIC type."""

    name: str
    link: LinkConfig
    #: memory-bus passes per payload byte on transmit (copy-to-skb + csum).
    cpu_passes_tx: float = 2.0
    #: passes per byte on receive (DMA'd skb -> socket buf -> user + csum).
    cpu_passes_rx: float = 3.0
    #: fixed stack cost per segment on each side (protocol processing).
    per_segment_cpu_us: float = 2.0
    #: TCP segment size carried per wire frame train (LRO/GSO-ish batch).
    segment_bytes: int = 32 * 1024
    #: receive interrupt coalescing window.
    rx_interrupt_coalesce_us: float = 30.0

    def port(self, sim: Simulator, name: str) -> DuplexLink:
        """Fabricate a port of this NIC type for a node."""
        return DuplexLink(sim, self.link, name=name)


#: Gigabit Ethernet: 125 MB/s theoretical; realistic MAC/IP/TCP framing
#: overhead lands effective goodput near the paper's ≈107 MB/s.
GIGE_PROFILE = NicProfile(
    name="gige",
    link=LinkConfig(
        bandwidth_mb_s=125.0,
        latency_us=30.0,
        per_message_overhead_bytes=2500,  # per ~32KB segment train of frames
        chunk_bytes=32 * 1024,
    ),
    cpu_passes_tx=2.0,
    cpu_passes_rx=3.0,
    per_segment_cpu_us=4.0,
)

#: IPoIB on the SDR/DDR HCA: the wire is fast, but 2007-era IPoIB had a
#: ~2 KB MTU, no checksum/segmentation offload and per-packet interrupts
#: — every byte takes the full copy+checksum path on both hosts plus
#: hefty per-segment protocol work.  That host cost, not the link, is
#: what pins NFS/IPoIB near 330-360 MB/s in Fig 10.
IPOIB_PROFILE = NicProfile(
    name="ipoib",
    link=LinkConfig(
        bandwidth_mb_s=950.0,
        latency_us=15.0,
        per_message_overhead_bytes=512,
        chunk_bytes=32 * 1024,
    ),
    cpu_passes_tx=4.0,
    cpu_passes_rx=5.0,
    per_segment_cpu_us=16.0,
    segment_bytes=8 * 1024,
)
