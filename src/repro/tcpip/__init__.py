"""TCP/IP substrate: the baseline transports of the paper's evaluation.

NFS over TCP is the comparator in Fig 10: on Gigabit Ethernet it is
line-rate-bound (125 MB/s theoretical, ≈107 MB/s observed) and on IPoIB
it is CPU-bound by per-byte copy and checksum work (≈326–360 MB/s on
the paper's Xeons) even though the underlying IB link could carry far
more.  Both limits are *emergent* here: the stack charges copy/checksum
CPU per byte on both ends and occupies the line for wire time, so
whichever saturates first caps throughput.
"""

from repro.tcpip.nic import GIGE_PROFILE, IPOIB_PROFILE, NicProfile
from repro.tcpip.tcp import TcpConnection, TcpEndpoint, TcpListener

__all__ = [
    "GIGE_PROFILE",
    "IPOIB_PROFILE",
    "NicProfile",
    "TcpConnection",
    "TcpEndpoint",
    "TcpListener",
]
