"""NFSv3 procedure numbers, status codes and XDR codecs (RFC 1813 subset).

Bulk data (READ results, WRITE args) travels out-of-band on the
transport (`read_payload` / `write_payload`); the XDR ``count`` fields
remain authoritative and are checked against the payload length on
decode.  This mirrors RPC/RDMA chunked encoding, where data never sits
inside the XDR stream either.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import NfsStatusError
from repro.fs.api import DirEntry, FileKind, FsAttributes, FsStat
from repro.rpc.xdr import XdrDecoder, XdrEncoder

__all__ = [
    "FsInfo",
    "NFS3_PROG",
    "NFS3_VERS",
    "PathConf",
    "Nfs3Proc",
    "Nfs3Status",
    "NfsError",
    "decode_fattr",
    "encode_fattr",
]

NFS3_PROG = 100003
NFS3_VERS = 3


class Nfs3Proc(enum.IntEnum):
    NULL = 0
    GETATTR = 1
    SETATTR = 2
    LOOKUP = 3
    ACCESS = 4
    READLINK = 5
    READ = 6
    WRITE = 7
    CREATE = 8
    MKDIR = 9
    SYMLINK = 10
    MKNOD = 11
    REMOVE = 12
    RMDIR = 13
    RENAME = 14
    LINK = 15
    READDIR = 16
    READDIRPLUS = 17
    FSSTAT = 18
    FSINFO = 19
    PATHCONF = 20
    COMMIT = 21


class Nfs3Status(enum.IntEnum):
    OK = 0
    PERM = 1
    NOENT = 2
    IO = 5
    ACCES = 13
    EXIST = 17
    NOTDIR = 20
    ISDIR = 21
    INVAL = 22
    NOSPC = 28
    STALE = 70
    NOTEMPTY = 66
    SERVERFAULT = 10006


#: FsError.status string -> NFS status code.
FS_STATUS_MAP = {
    "NOENT": Nfs3Status.NOENT,
    "EXIST": Nfs3Status.EXIST,
    "NOTDIR": Nfs3Status.NOTDIR,
    "ISDIR": Nfs3Status.ISDIR,
    "INVAL": Nfs3Status.INVAL,
    "NOSPC": Nfs3Status.NOSPC,
    "STALE": Nfs3Status.STALE,
    "NOTEMPTY": Nfs3Status.NOTEMPTY,
}


class NfsError(NfsStatusError):
    """Client-side exception carrying the NFS status."""

    def __init__(self, status: Nfs3Status, proc: Optional[Nfs3Proc] = None):
        super().__init__(f"{proc.name if proc else 'NFS'}: {status.name}",
                         status=status)
        self.proc = proc


_KIND_TO_WIRE = {
    FileKind.REGULAR: 1,
    FileKind.DIRECTORY: 2,
    FileKind.SYMLINK: 5,
    FileKind.SPECIAL: 6,  # FIFO stand-in for all special nodes
}
_WIRE_TO_KIND = {v: k for k, v in _KIND_TO_WIRE.items()}


def encode_fattr(enc: XdrEncoder, attrs: FsAttributes) -> None:
    enc.u32(_KIND_TO_WIRE[attrs.kind])
    enc.u32(attrs.mode)
    enc.u32(attrs.nlink)
    enc.u32(attrs.uid)
    enc.u32(attrs.gid)
    enc.u64(attrs.size)
    enc.u64(attrs.size)          # bytes used
    enc.u64(0)                   # rdev
    enc.u64(1)                   # fsid
    enc.u64(attrs.fileid)
    for stamp in (attrs.atime, attrs.mtime, attrs.ctime):
        enc.u32(int(stamp) & 0xFFFFFFFF)
        enc.u32(int((stamp % 1.0) * 1e9))


def decode_fattr(dec: XdrDecoder) -> FsAttributes:
    kind = _WIRE_TO_KIND[dec.u32()]
    mode = dec.u32()
    nlink = dec.u32()
    uid = dec.u32()
    gid = dec.u32()
    size = dec.u64()
    dec.u64()  # used
    dec.u64()  # rdev
    dec.u64()  # fsid
    fileid = dec.u64()
    stamps = []
    for _ in range(3):
        sec = dec.u32()
        nsec = dec.u32()
        stamps.append(sec + nsec / 1e9)
    return FsAttributes(
        fileid=fileid, kind=kind, size=size, mode=mode, nlink=nlink,
        uid=uid, gid=gid, atime=stamps[0], mtime=stamps[1], ctime=stamps[2],
    )


def encode_direntries(enc: XdrEncoder, entries: list[DirEntry]) -> None:
    enc.array(
        entries,
        lambda e, ent: (e.u64(ent.fileid), e.string(ent.name),
                        e.u32(_KIND_TO_WIRE[ent.kind])),
    )


def decode_direntries(dec: XdrDecoder) -> list[DirEntry]:
    return dec.array(
        lambda d: DirEntry(fileid=d.u64(), name=d.string(),
                           kind=_WIRE_TO_KIND[d.u32()]),
        max_items=1 << 16,
    )


@dataclass(frozen=True)
class FsInfo:
    """FSINFO results: the server's transfer-size contract.

    ``rtmax``/``wtmax`` advertise the maximum READ/WRITE transfer the
    transport supports — on RPC/RDMA that is the chunk ceiling
    (``RpcRdmaConfig.max_transfer_bytes``), which is how a real client
    learns to size its write chunks."""

    rtmax: int
    rtpref: int
    wtmax: int
    wtpref: int
    dtpref: int = 64 * 1024
    maxfilesize: int = 1 << 50
    time_delta_ns: int = 1

    def encode(self, enc: XdrEncoder) -> None:
        enc.u32(self.rtmax)
        enc.u32(self.rtpref)
        enc.u32(self.wtmax)
        enc.u32(self.wtpref)
        enc.u32(self.dtpref)
        enc.u64(self.maxfilesize)
        enc.u32(0)
        enc.u32(self.time_delta_ns)

    @classmethod
    def decode(cls, dec: XdrDecoder) -> "FsInfo":
        rtmax = dec.u32()
        rtpref = dec.u32()
        wtmax = dec.u32()
        wtpref = dec.u32()
        dtpref = dec.u32()
        maxfilesize = dec.u64()
        dec.u32()
        delta = dec.u32()
        return cls(rtmax=rtmax, rtpref=rtpref, wtmax=wtmax, wtpref=wtpref,
                   dtpref=dtpref, maxfilesize=maxfilesize, time_delta_ns=delta)


@dataclass(frozen=True)
class PathConf:
    """PATHCONF results (static limits)."""

    linkmax: int = 32000
    name_max: int = 255
    no_trunc: bool = True
    case_insensitive: bool = False

    def encode(self, enc: XdrEncoder) -> None:
        enc.u32(self.linkmax)
        enc.u32(self.name_max)
        enc.boolean(self.no_trunc)
        enc.boolean(False)  # chown_restricted
        enc.boolean(self.case_insensitive)
        enc.boolean(True)   # case_preserving

    @classmethod
    def decode(cls, dec: XdrDecoder) -> "PathConf":
        linkmax = dec.u32()
        name_max = dec.u32()
        no_trunc = dec.boolean()
        dec.boolean()
        case_insensitive = dec.boolean()
        dec.boolean()
        return cls(linkmax=linkmax, name_max=name_max, no_trunc=no_trunc,
                   case_insensitive=case_insensitive)


def encode_fsstat(enc: XdrEncoder, stat: FsStat) -> None:
    enc.u64(stat.total_bytes)
    enc.u64(stat.free_bytes)
    enc.u64(stat.free_bytes)  # avail == free (no reservations)
    enc.u64(stat.total_files)
    enc.u64(stat.free_files)
    enc.u64(stat.free_files)


def decode_fsstat(dec: XdrDecoder) -> FsStat:
    total_bytes = dec.u64()
    free_bytes = dec.u64()
    dec.u64()
    total_files = dec.u64()
    free_files = dec.u64()
    dec.u64()
    return FsStat(total_bytes=total_bytes, free_bytes=free_bytes,
                  total_files=total_files, free_files=free_files)
