"""NFSv3 file handles: opaque server-minted capabilities for inodes."""

from __future__ import annotations

from dataclasses import dataclass

from repro.rpc.xdr import XdrDecoder, XdrEncoder, XdrError

__all__ = ["FileHandle"]

_FH_BYTES = 16


@dataclass(frozen=True)
class FileHandle:
    """(fsid, fileid, generation) packed into a 16-byte opaque handle."""

    fsid: int
    fileid: int
    generation: int = 0

    def encode(self, enc: XdrEncoder) -> None:
        body = (
            self.fsid.to_bytes(4, "big")
            + self.fileid.to_bytes(8, "big")
            + self.generation.to_bytes(4, "big")
        )
        enc.opaque(body)

    @classmethod
    def decode(cls, dec: XdrDecoder) -> "FileHandle":
        body = dec.opaque()
        if len(body) != _FH_BYTES:
            raise XdrError(f"file handle of {len(body)} bytes, expected {_FH_BYTES}")
        return cls(
            fsid=int.from_bytes(body[0:4], "big"),
            fileid=int.from_bytes(body[4:12], "big"),
            generation=int.from_bytes(body[12:16], "big"),
        )
