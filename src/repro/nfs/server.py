"""The NFSv3 server: RPC program handler over a FileSystem backend.

One instance serves any number of transports (each transport instance
``attach``es the same :class:`repro.rpc.RpcServer`, whose thread pool is
the paper's Fig 1 "server task queue").  Handlers decode args, descend
into the backend file system (which charges its own CPU/disk costs) and
encode results; READ data is returned through the reply's bulk
side-channel so the transport decides how it moves (inline, server
RDMA Write, or exposed read chunks).
"""

from __future__ import annotations

from typing import Generator

from repro.fs.api import FileSystem, FsError
from repro.nfs.fh import FileHandle
from repro.nfs.protocol import (
    FS_STATUS_MAP,
    NFS3_PROG,
    NFS3_VERS,
    FsInfo,
    Nfs3Proc,
    Nfs3Status,
    PathConf,
    encode_direntries,
    encode_fattr,
    encode_fsstat,
)
from repro.rpc.msg import RpcCall, RpcReply
from repro.rpc.svc import RpcServer
from repro.rpc.xdr import XdrDecoder, XdrEncoder, XdrError
from repro.sim import Counter

__all__ = ["NfsServer"]


class NfsServer:
    """Dispatches NFSv3 procedures to a backend file system."""

    def __init__(self, rpc_server: RpcServer, fs: FileSystem, fsid: int = 1,
                 max_transfer_bytes: int = 1 << 20, name: str = "nfsd"):
        self.rpc = rpc_server
        self.fs = fs
        self.fsid = fsid
        self.max_transfer_bytes = max_transfer_bytes
        self.name = name
        self.ops = Counter(f"{name}.ops")
        self.errors = Counter(f"{name}.errors")
        rpc_server.register_program(NFS3_PROG, NFS3_VERS, self.handle)

    # -- helpers -----------------------------------------------------------
    def root_handle(self) -> FileHandle:
        return FileHandle(fsid=self.fsid, fileid=self.fs.root_id)

    def _fh(self, dec: XdrDecoder) -> FileHandle:
        fh = FileHandle.decode(dec)
        if fh.fsid != self.fsid:
            raise FsError("STALE", f"foreign fsid {fh.fsid}")
        return fh

    def _attrs_reply(self, call: RpcCall, attrs) -> RpcReply:
        enc = XdrEncoder()
        enc.u32(int(Nfs3Status.OK))
        encode_fattr(enc, attrs)
        return RpcReply(xid=call.xid, header=enc.take())

    def _error_reply(self, call: RpcCall, status: Nfs3Status) -> RpcReply:
        self.errors.add()
        enc = XdrEncoder()
        enc.u32(int(status))
        return RpcReply(xid=call.xid, header=enc.take())

    # -- dispatcher -----------------------------------------------------------
    def handle(self, call: RpcCall) -> Generator:
        """RPC program handler (runs on an RpcServer worker thread)."""
        self.ops.add()
        try:
            proc = Nfs3Proc(call.proc)
        except ValueError:
            return self._error_reply(call, Nfs3Status.SERVERFAULT)
        method = getattr(self, f"_do_{proc.name.lower()}", None)
        if method is None:
            return self._error_reply(call, Nfs3Status.SERVERFAULT)
        telemetry = self.rpc.sim.telemetry
        if telemetry is None:
            return (yield from self._run_proc(call, proc, method))
        telemetry.record_server_op(proc.name)
        tracer = telemetry.tracer
        if tracer is None:
            return (yield from self._run_proc(call, proc, method))
        span = tracer.begin(f"nfsd.{proc.name}", "server", "server", "nfsd",
                            parent=tracer.task_span(), xid=call.xid)
        prev = tracer.push_task(span)
        try:
            return (yield from self._run_proc(call, proc, method))
        finally:
            tracer.pop_task(prev)
            span.end()

    def _run_proc(self, call: RpcCall, proc: Nfs3Proc, method) -> Generator:
        try:
            reply = yield from method(call, XdrDecoder(call.header))
            return reply
        except FsError as exc:
            return self._error_reply(
                call, FS_STATUS_MAP.get(exc.status, Nfs3Status.IO)
            )
        except XdrError:
            return self._error_reply(call, Nfs3Status.INVAL)

    # -- procedures -----------------------------------------------------------
    def _do_null(self, call: RpcCall, dec: XdrDecoder) -> Generator:
        if False:  # NULL does nothing, costs nothing
            yield
        return RpcReply(xid=call.xid, header=b"")

    def _do_getattr(self, call: RpcCall, dec: XdrDecoder) -> Generator:
        fh = self._fh(dec)
        attrs = yield from self.fs.getattr(fh.fileid)
        return self._attrs_reply(call, attrs)

    def _do_setattr(self, call: RpcCall, dec: XdrDecoder) -> Generator:
        fh = self._fh(dec)
        size = dec.optional(lambda d: d.u64())
        mode = dec.optional(lambda d: d.u32())
        attrs = yield from self.fs.setattr(fh.fileid, size=size, mode=mode)
        return self._attrs_reply(call, attrs)

    def _do_lookup(self, call: RpcCall, dec: XdrDecoder) -> Generator:
        dir_fh = self._fh(dec)
        name = dec.string()
        fileid = yield from self.fs.lookup(dir_fh.fileid, name)
        attrs = yield from self.fs.getattr(fileid)
        enc = XdrEncoder()
        enc.u32(int(Nfs3Status.OK))
        FileHandle(fsid=self.fsid, fileid=fileid).encode(enc)
        encode_fattr(enc, attrs)
        return RpcReply(xid=call.xid, header=enc.take())

    def _do_access(self, call: RpcCall, dec: XdrDecoder) -> Generator:
        fh = self._fh(dec)
        wanted = dec.u32()
        yield from self.fs.getattr(fh.fileid)  # existence check
        enc = XdrEncoder()
        enc.u32(int(Nfs3Status.OK))
        enc.u32(wanted)  # everything allowed in this model
        return RpcReply(xid=call.xid, header=enc.take())

    def _do_readlink(self, call: RpcCall, dec: XdrDecoder) -> Generator:
        fh = self._fh(dec)
        target = yield from self.fs.readlink(fh.fileid)
        enc = XdrEncoder()
        enc.u32(int(Nfs3Status.OK))
        enc.string(target)
        return RpcReply(xid=call.xid, header=enc.take())

    def _do_read(self, call: RpcCall, dec: XdrDecoder) -> Generator:
        fh = self._fh(dec)
        offset = dec.u64()
        count = dec.u32()
        data, eof = yield from self.fs.read(fh.fileid, offset, count)
        attrs = yield from self.fs.getattr(fh.fileid)
        enc = XdrEncoder()
        enc.u32(int(Nfs3Status.OK))
        encode_fattr(enc, attrs)
        enc.u32(len(data))
        enc.boolean(eof)
        # Data returns via the transport's bulk side-channel.
        return RpcReply(xid=call.xid, header=enc.take(), read_payload=data)

    def _do_write(self, call: RpcCall, dec: XdrDecoder) -> Generator:
        fh = self._fh(dec)
        offset = dec.u64()
        count = dec.u32()
        stable = dec.u32()
        data = call.write_payload or b""
        if len(data) != count:
            raise FsError("INVAL", f"count {count} != payload {len(data)}")
        written = yield from self.fs.write(fh.fileid, offset, data)
        if stable:
            yield from self.fs.commit(fh.fileid)
        attrs = yield from self.fs.getattr(fh.fileid)
        enc = XdrEncoder()
        enc.u32(int(Nfs3Status.OK))
        encode_fattr(enc, attrs)
        enc.u32(written)
        enc.u32(stable)
        return RpcReply(xid=call.xid, header=enc.take())

    def _do_create(self, call: RpcCall, dec: XdrDecoder) -> Generator:
        dir_fh = self._fh(dec)
        name = dec.string()
        mode = dec.u32()
        fileid = yield from self.fs.create(dir_fh.fileid, name, mode)
        attrs = yield from self.fs.getattr(fileid)
        enc = XdrEncoder()
        enc.u32(int(Nfs3Status.OK))
        FileHandle(fsid=self.fsid, fileid=fileid).encode(enc)
        encode_fattr(enc, attrs)
        return RpcReply(xid=call.xid, header=enc.take())

    def _do_mkdir(self, call: RpcCall, dec: XdrDecoder) -> Generator:
        dir_fh = self._fh(dec)
        name = dec.string()
        mode = dec.u32()
        fileid = yield from self.fs.mkdir(dir_fh.fileid, name, mode)
        attrs = yield from self.fs.getattr(fileid)
        enc = XdrEncoder()
        enc.u32(int(Nfs3Status.OK))
        FileHandle(fsid=self.fsid, fileid=fileid).encode(enc)
        encode_fattr(enc, attrs)
        return RpcReply(xid=call.xid, header=enc.take())

    def _do_symlink(self, call: RpcCall, dec: XdrDecoder) -> Generator:
        dir_fh = self._fh(dec)
        name = dec.string()
        target = dec.string()
        fileid = yield from self.fs.symlink(dir_fh.fileid, name, target)
        attrs = yield from self.fs.getattr(fileid)
        enc = XdrEncoder()
        enc.u32(int(Nfs3Status.OK))
        FileHandle(fsid=self.fsid, fileid=fileid).encode(enc)
        encode_fattr(enc, attrs)
        return RpcReply(xid=call.xid, header=enc.take())

    def _do_mknod(self, call: RpcCall, dec: XdrDecoder) -> Generator:
        dir_fh = self._fh(dec)
        name = dec.string()
        mode = dec.u32()
        fileid = yield from self.fs.mknod(dir_fh.fileid, name, mode)
        attrs = yield from self.fs.getattr(fileid)
        enc = XdrEncoder()
        enc.u32(int(Nfs3Status.OK))
        FileHandle(fsid=self.fsid, fileid=fileid).encode(enc)
        encode_fattr(enc, attrs)
        return RpcReply(xid=call.xid, header=enc.take())

    def _do_link(self, call: RpcCall, dec: XdrDecoder) -> Generator:
        target_fh = self._fh(dec)
        dir_fh = self._fh(dec)
        name = dec.string()
        yield from self.fs.link(dir_fh.fileid, name, target_fh.fileid)
        attrs = yield from self.fs.getattr(target_fh.fileid)
        return self._attrs_reply(call, attrs)

    def _do_remove(self, call: RpcCall, dec: XdrDecoder) -> Generator:
        dir_fh = self._fh(dec)
        name = dec.string()
        yield from self.fs.remove(dir_fh.fileid, name)
        enc = XdrEncoder()
        enc.u32(int(Nfs3Status.OK))
        return RpcReply(xid=call.xid, header=enc.take())

    def _do_rmdir(self, call: RpcCall, dec: XdrDecoder) -> Generator:
        dir_fh = self._fh(dec)
        name = dec.string()
        yield from self.fs.rmdir(dir_fh.fileid, name)
        enc = XdrEncoder()
        enc.u32(int(Nfs3Status.OK))
        return RpcReply(xid=call.xid, header=enc.take())

    def _do_rename(self, call: RpcCall, dec: XdrDecoder) -> Generator:
        from_fh = self._fh(dec)
        from_name = dec.string()
        to_fh = self._fh(dec)
        to_name = dec.string()
        yield from self.fs.rename(from_fh.fileid, from_name, to_fh.fileid, to_name)
        enc = XdrEncoder()
        enc.u32(int(Nfs3Status.OK))
        return RpcReply(xid=call.xid, header=enc.take())

    def _do_readdir(self, call: RpcCall, dec: XdrDecoder) -> Generator:
        dir_fh = self._fh(dec)
        dec.u64()  # cookie (single-shot model)
        dec.u32()  # count
        entries = yield from self.fs.readdir(dir_fh.fileid)
        enc = XdrEncoder()
        enc.u32(int(Nfs3Status.OK))
        encode_direntries(enc, entries)
        enc.boolean(True)  # eof
        # Large listings make this a long reply on RDMA transports.
        return RpcReply(xid=call.xid, header=enc.take())

    def _do_readdirplus(self, call: RpcCall, dec: XdrDecoder) -> Generator:
        dir_fh = self._fh(dec)
        dec.u64()  # cookie
        dec.u32()  # dircount
        dec.u32()  # maxcount
        entries = yield from self.fs.readdir(dir_fh.fileid)
        enc = XdrEncoder()
        enc.u32(int(Nfs3Status.OK))
        enc.u32(len(entries))
        for entry in entries:
            attrs = yield from self.fs.getattr(entry.fileid)
            enc.u64(entry.fileid)
            enc.string(entry.name)
            FileHandle(fsid=self.fsid, fileid=entry.fileid).encode(enc)
            encode_fattr(enc, attrs)
        enc.boolean(True)  # eof
        # Fattrs per entry make this the biggest reply NFS produces —
        # guaranteed long-reply territory on the RDMA transports.
        return RpcReply(xid=call.xid, header=enc.take())

    def _do_fsinfo(self, call: RpcCall, dec: XdrDecoder) -> Generator:
        self._fh(dec)
        yield from self.fs.getattr(self.fs.root_id)
        info = FsInfo(
            rtmax=self.max_transfer_bytes,
            rtpref=self.max_transfer_bytes,
            wtmax=self.max_transfer_bytes,
            wtpref=self.max_transfer_bytes,
        )
        enc = XdrEncoder()
        enc.u32(int(Nfs3Status.OK))
        info.encode(enc)
        return RpcReply(xid=call.xid, header=enc.take())

    def _do_pathconf(self, call: RpcCall, dec: XdrDecoder) -> Generator:
        self._fh(dec)
        yield from self.fs.getattr(self.fs.root_id)
        enc = XdrEncoder()
        enc.u32(int(Nfs3Status.OK))
        PathConf().encode(enc)
        return RpcReply(xid=call.xid, header=enc.take())

    def _do_fsstat(self, call: RpcCall, dec: XdrDecoder) -> Generator:
        self._fh(dec)
        stat = yield from self.fs.fsstat()
        enc = XdrEncoder()
        enc.u32(int(Nfs3Status.OK))
        encode_fsstat(enc, stat)
        return RpcReply(xid=call.xid, header=enc.take())

    def _do_commit(self, call: RpcCall, dec: XdrDecoder) -> Generator:
        fh = self._fh(dec)
        dec.u64()  # offset
        dec.u32()  # count
        yield from self.fs.commit(fh.fileid)
        enc = XdrEncoder()
        enc.u32(int(Nfs3Status.OK))
        return RpcReply(xid=call.xid, header=enc.take())
