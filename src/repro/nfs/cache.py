"""Client-side NFS caching: attributes, names, data, close-to-open.

The paper's introduction motivates the transport work precisely from
the limits of client caching: "The ability of clients to cache this
data for fast and efficient access is limited, partly because of the
demands on main memory on the client ... for medium and large scale
clusters the overhead of keeping client caches coherent quickly becomes
prohibitively expensive."  This module implements the standard NFSv3
client caching model so those limits are measurable, and so buffered
I/O can be ablated against the direct-I/O paths the paper benchmarks:

* **attribute cache** — getattr/lookup results held for a timeout;
* **name cache (dnlc)** — (directory, name) → handle;
* **data cache** — LRU page cache of file contents with write-back;
* **close-to-open consistency** — ``open`` revalidates attributes and
  drops cached data if the file changed on the server; ``close``
  flushes dirty pages and COMMITs, so another client's subsequent open
  sees the data.  Between open and close, reads may be served stale —
  exactly NFS's contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.fs.api import FsAttributes
from repro.fs.pagecache import PageCache
from repro.nfs.client import NfsClient
from repro.nfs.fh import FileHandle
from repro.payload import Payload, PayloadLike, join_parts
from repro.sim import Counter, Simulator

__all__ = ["CachingNfsClient", "ClientCacheConfig", "OpenFile"]


@dataclass(frozen=True)
class ClientCacheConfig:
    """Knobs of the client caching model."""

    attr_timeout_us: float = 3_000_000.0      # acregmin-style, 3 s
    data_cache_bytes: int = 64 << 20
    page_bytes: int = 16 * 1024
    #: maximum dirty bytes before writes flush synchronously.
    dirty_limit_bytes: int = 16 << 20
    close_to_open: bool = True


@dataclass
class OpenFile:
    """An open handle: identity + the mtime seen at open (for CTO)."""

    fh: FileHandle
    attrs: FsAttributes
    dirty: bool = False


class CachingNfsClient:
    """Caching wrapper over :class:`NfsClient` (same generator API)."""

    def __init__(self, inner: NfsClient, sim: Simulator,
                 config: Optional[ClientCacheConfig] = None,
                 name: str = "nfs-cache"):
        self.inner = inner
        self.sim = sim
        self.config = config or ClientCacheConfig()
        self.name = name
        self.root = inner.root
        self._attrs: dict[int, tuple[FsAttributes, float]] = {}
        self._names: dict[tuple[int, str], FileHandle] = {}
        self.pages = PageCache(self.config.data_cache_bytes,
                               self.config.page_bytes, name=f"{name}.data")
        #: cached page contents: ``bytes`` or zero-copy :class:`Payload`
        #: descriptors, possibly shorter than a page (zero tail implied).
        self._content: dict[tuple[int, int], PayloadLike] = {}
        self._dirty_bytes = 0
        self.attr_hits = Counter(f"{name}.attr_hits")
        self.attr_misses = Counter(f"{name}.attr_misses")
        self.name_hits = Counter(f"{name}.name_hits")
        self.read_hits = Counter(f"{name}.read_hits")
        self.read_misses = Counter(f"{name}.read_misses")

    # -- attribute cache -----------------------------------------------------
    def _remember_attrs(self, attrs: FsAttributes) -> None:
        self._attrs[attrs.fileid] = (attrs, self.sim.now + self.config.attr_timeout_us)

    def _cached_attrs(self, fileid: int) -> Optional[FsAttributes]:
        entry = self._attrs.get(fileid)
        if entry is None:
            return None
        attrs, expiry = entry
        if self.sim.now >= expiry:
            del self._attrs[fileid]
            return None
        return attrs

    def getattr(self, fh: FileHandle) -> Generator:
        cached = self._cached_attrs(fh.fileid)
        if cached is not None:
            self.attr_hits.add()
            return cached
        self.attr_misses.add()
        attrs = yield from self.inner.getattr(fh)
        self._remember_attrs(attrs)
        return attrs

    def lookup(self, dir_fh: FileHandle, name: str) -> Generator:
        key = (dir_fh.fileid, name)
        fh = self._names.get(key)
        if fh is not None:
            cached = self._cached_attrs(fh.fileid)
            if cached is not None:
                self.name_hits.add()
                return fh, cached
        fh, attrs = yield from self.inner.lookup(dir_fh, name)
        self._names[key] = fh
        self._remember_attrs(attrs)
        return fh, attrs

    def invalidate_attrs(self, fileid: Optional[int] = None) -> None:
        if fileid is None:
            self._attrs.clear()
            self._names.clear()
        else:
            self._attrs.pop(fileid, None)
            self._names = {k: v for k, v in self._names.items()
                           if v.fileid != fileid}

    # -- open / close (close-to-open consistency) ----------------------------
    def open(self, path_or_fh) -> Generator:
        """Open: revalidate against the server; returns an OpenFile."""
        if isinstance(path_or_fh, FileHandle):
            fh = path_or_fh
        else:
            fh, _ = yield from self.inner.walk(path_or_fh)
        fresh = yield from self.inner.getattr(fh)  # CTO: always revalidate
        if self.config.close_to_open:
            stale = self._cached_attrs(fh.fileid)
            if stale is not None and stale.mtime != fresh.mtime:
                self._invalidate_data(fh.fileid)
        self._remember_attrs(fresh)
        return OpenFile(fh=fh, attrs=fresh)

    def close(self, handle: OpenFile) -> Generator:
        """Close: flush dirty pages and COMMIT (the CTO write barrier)."""
        if handle.dirty:
            yield from self.flush(handle)
            yield from self.inner.commit(handle.fh)
        # Attributes changed server-side by our writes; drop so the next
        # open revalidates honestly.
        self._attrs.pop(handle.fh.fileid, None)

    # -- data cache -----------------------------------------------------
    def _page_slice(self, key, within: int, take: int) -> PayloadLike:
        """``take`` bytes of a cached page from ``within``, zero-padded."""
        page = self._content.get(key)
        if page is None:
            return Payload.zeros(take)
        avail = len(page) - within
        if avail >= take:
            return page[within:within + take]
        if avail <= 0:
            return Payload.zeros(take)
        return join_parts([page[within:], Payload.zeros(take - avail)])

    def _invalidate_data(self, fileid: int) -> None:
        dropped = self.pages.invalidate(fileid)
        doomed = [k for k in self._content if k[0] == fileid]
        for k in doomed:
            del self._content[k]

    def read(self, handle: OpenFile, offset: int, count: int) -> Generator:
        """Cached read; misses fetch whole pages from the server."""
        fh = handle.fh
        pb = self.config.page_bytes
        first = offset // pb
        last = (offset + count - 1) // pb if count else first - 1
        eof_size = None
        for page in range(first, last + 1):
            key = (fh.fileid, page)
            if self.pages.touch(key):
                self.read_hits.add()
                continue
            self.read_misses.add()
            data, eof, attrs = yield from self.inner.read(fh, page * pb, pb)
            self._remember_attrs(attrs)
            if isinstance(data, bytearray):
                data = bytes(data)
            self._content[key] = data      # short page ⇒ zero tail implied
            for evicted_key, was_dirty in self.pages.insert(key):
                if was_dirty:
                    yield from self._writeback(evicted_key)
                else:
                    self._content.pop(evicted_key, None)
            if eof:
                eof_size = attrs.size
                break
        parts: list[PayloadLike] = []
        pos = offset
        stop = offset + count
        while pos < stop:
            page, within = divmod(pos, pb)
            take = min(pb - within, stop - pos)
            parts.append(self._page_slice((fh.fileid, page), within, take))
            pos += take
        data = join_parts(parts)
        size = eof_size
        if size is None:
            attrs = yield from self.getattr(fh)
            size = attrs.size
        if offset + len(data) > size:
            data = data[: max(0, size - offset)]
        return data, offset + len(data) >= size

    def write(self, handle: OpenFile, offset: int, data: bytes) -> Generator:
        """Write-back: dirty the cache; flush at the dirty limit/close."""
        fh = handle.fh
        pb = self.config.page_bytes
        end = offset + len(data)
        pos = offset
        while pos < end:
            page, within = divmod(pos, pb)
            take = min(pb - within, end - pos)
            key = (fh.fileid, page)
            chunk = data[pos - offset: pos - offset + take]
            if take == pb:
                new_page = chunk
            else:
                if not self.pages.is_resident(key):
                    # Read-modify-write against the server copy.
                    got, _, _ = yield from self.inner.read(fh, page * pb, pb)
                    self._content[key] = (bytes(got) if isinstance(got, bytearray)
                                          else got)
                head = self._page_slice(key, 0, within) if within else b""
                old = self._content.get(key)
                tail_len = (len(old) if old is not None else 0) - (within + take)
                tail = (self._page_slice(key, within + take, tail_len)
                        if tail_len > 0 else b"")
                new_page = join_parts([head, chunk, tail])
            if isinstance(new_page, bytearray):
                new_page = bytes(new_page)
            if isinstance(new_page, Payload) and new_page.nruns > 32:
                new_page = new_page.tobytes()
            self._content[key] = new_page
            for evicted_key, was_dirty in self.pages.insert(key, dirty=True):
                if was_dirty:
                    yield from self._writeback(evicted_key)
                else:
                    self._content.pop(evicted_key, None)
            self._dirty_bytes += pb
            pos += take
        handle.dirty = True
        new_size = max(handle.attrs.size, offset + len(data))
        handle.attrs.size = new_size
        if self._dirty_bytes >= self.config.dirty_limit_bytes:
            yield from self.flush(handle)
        return len(data)

    def _writeback(self, key) -> Generator:
        fileid, page = key
        payload = self._content.pop(key, None)
        if payload is None:
            return
        fh = FileHandle(fsid=self.root.fsid, fileid=fileid)
        yield from self.inner.write(fh, page * self.config.page_bytes, payload)

    def flush(self, handle: OpenFile) -> Generator:
        """Push every dirty page of the file to the server."""
        fh = handle.fh
        size = handle.attrs.size
        for key in self.pages.dirty_pages(handle.fh.fileid):
            page = key[1]
            payload = self._content.get(key)
            if payload is None:
                continue
            start = page * self.config.page_bytes
            take = min(len(payload), max(0, size - start))
            if take:
                yield from self.inner.write(fh, start, payload[:take])
            self.pages.mark_clean(key)
            self._dirty_bytes -= self.config.page_bytes
        self._dirty_bytes = max(0, self._dirty_bytes)
        handle.dirty = False
