"""NFS version 3 over any RPC transport.

The protocol layer (:mod:`repro.nfs.protocol`) XDR-encodes the NFSv3
procedures the paper's workloads exercise; the server
(:mod:`repro.nfs.server`) dispatches them to a
:class:`repro.fs.FileSystem` backend; the client
(:mod:`repro.nfs.client`) issues them through any
:class:`repro.rpc.RpcClientTransport` — TCP, Read-Read or Read-Write —
including the direct-I/O zero-copy paths the Read-Write design enables.

Bulk data rides the transport's side-channel (``write_payload`` /
``read_payload``); the length fields in the XDR args/results remain
authoritative, matching how NFS/RDMA chunked encoding works.
"""

from repro.nfs.fh import FileHandle
from repro.nfs.protocol import Nfs3Proc, Nfs3Status, NfsError, NFS3_PROG, NFS3_VERS
from repro.nfs.server import NfsServer
from repro.nfs.client import NfsClient
from repro.nfs.cache import CachingNfsClient, ClientCacheConfig
from repro.nfs.mountd import Export, MountClient, MountServer, Portmapper

__all__ = [
    "CachingNfsClient",
    "ClientCacheConfig",
    "Export",
    "FileHandle",
    "MountClient",
    "MountServer",
    "Portmapper",
    "NFS3_PROG",
    "NFS3_VERS",
    "Nfs3Proc",
    "Nfs3Status",
    "NfsClient",
    "NfsError",
    "NfsServer",
]
