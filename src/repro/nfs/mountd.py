"""The MOUNT v3 protocol and a portmapper: how a client gets its root.

NFS itself never hands out the first file handle — a separate MOUNT RPC
program does (after the portmapper says where to find it), with an
export table deciding who may mount what.  Including them makes the
simulated deployment bootstrap the way a real one does, and gives the
security story its first gate: an export list rejection happens before
a single NFS operation.

Programs:

* ``portmapper`` (prog 100000): GETPORT — program number → port.
* ``mountd`` (prog 100005): MNT (path → file handle), UMNT, EXPORT
  (list exports), DUMP (list active mounts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.fs.api import FileSystem, FsError
from repro.nfs.fh import FileHandle
from repro.rpc.msg import RpcCall, RpcReply
from repro.rpc.svc import RpcServer
from repro.rpc.transport import RpcClientTransport
from repro.rpc.xdr import XdrDecoder, XdrEncoder, XdrError
from repro.sim import Counter

__all__ = [
    "Export",
    "MountClient",
    "MountServer",
    "Portmapper",
    "MOUNT_PROG",
    "PMAP_PROG",
]

PMAP_PROG = 100000
PMAP_VERS = 2
PMAP_GETPORT = 3

MOUNT_PROG = 100005
MOUNT_VERS = 3
MNT = 1
DUMP = 2
UMNT = 3
EXPORT = 5

MNT3_OK = 0
MNT3ERR_NOENT = 2
MNT3ERR_ACCES = 13
MNT3ERR_NOTDIR = 20


@dataclass(frozen=True)
class Export:
    """One exported subtree with a client allow-list."""

    path: str
    allowed_clients: frozenset[str] = frozenset()   # empty = everyone
    read_only: bool = False

    def admits(self, client_name: str) -> bool:
        return not self.allowed_clients or client_name in self.allowed_clients


class Portmapper:
    """prog 100000: program-number → port directory."""

    def __init__(self, rpc_server: RpcServer):
        self._registry: dict[tuple[int, int], int] = {}
        self.lookups = Counter("pmap.lookups")
        rpc_server.register_program(PMAP_PROG, PMAP_VERS, self.handle)

    def set(self, prog: int, vers: int, port: int) -> None:
        self._registry[(prog, vers)] = port

    def handle(self, call: RpcCall) -> Generator:
        if False:
            yield
        dec = XdrDecoder(call.header)
        enc = XdrEncoder()
        if call.proc == PMAP_GETPORT:
            prog = dec.u32()
            vers = dec.u32()
            self.lookups.add()
            enc.u32(self._registry.get((prog, vers), 0))
        else:
            enc.u32(0)
        return RpcReply(xid=call.xid, header=enc.take())


class MountServer:
    """prog 100005: export-gated distribution of root file handles."""

    def __init__(self, rpc_server: RpcServer, fs: FileSystem,
                 exports: list[Export], fsid: int = 1, name: str = "mountd"):
        self.fs = fs
        self.exports = {e.path: e for e in exports}
        self.fsid = fsid
        self.name = name
        self.mounts: dict[tuple[str, str], FileHandle] = {}
        self.grants = Counter(f"{name}.grants")
        self.rejections = Counter(f"{name}.rejections")
        rpc_server.register_program(MOUNT_PROG, MOUNT_VERS, self.handle)

    def handle(self, call: RpcCall) -> Generator:
        dec = XdrDecoder(call.header)
        try:
            if call.proc == MNT:
                return (yield from self._mnt(call, dec))
            if call.proc == UMNT:
                client = dec.string()
                path = dec.string()
                self.mounts.pop((client, path), None)
                return RpcReply(xid=call.xid, header=XdrEncoder().u32(0).take())
            if call.proc == EXPORT:
                enc = XdrEncoder()
                enc.array(sorted(self.exports), lambda e, p: e.string(p))
                return RpcReply(xid=call.xid, header=enc.take())
            if call.proc == DUMP:
                enc = XdrEncoder()
                enc.array(
                    sorted(self.mounts),
                    lambda e, key: (e.string(key[0]), e.string(key[1])),
                )
                return RpcReply(xid=call.xid, header=enc.take())
        except XdrError:
            pass
        return RpcReply(xid=call.xid, stat=1, header=b"")

    def _mnt(self, call: RpcCall, dec: XdrDecoder) -> Generator:
        client = dec.string()
        path = dec.string()
        enc = XdrEncoder()
        export = self.exports.get(path)
        if export is None:
            self.rejections.add()
            enc.u32(MNT3ERR_NOENT)
            return RpcReply(xid=call.xid, header=enc.take())
        if not export.admits(client):
            self.rejections.add()
            enc.u32(MNT3ERR_ACCES)
            return RpcReply(xid=call.xid, header=enc.take())
        # Resolve the export path inside the backend file system.
        fileid = self.fs.root_id
        for part in [p for p in path.split("/") if p]:
            try:
                fileid = yield from self.fs.lookup(fileid, part)
            except FsError:
                self.rejections.add()
                enc.u32(MNT3ERR_NOENT)
                return RpcReply(xid=call.xid, header=enc.take())
        fh = FileHandle(fsid=self.fsid, fileid=fileid)
        self.mounts[(client, path)] = fh
        self.grants.add()
        enc.u32(MNT3_OK)
        fh.encode(enc)
        return RpcReply(xid=call.xid, header=enc.take())


class MountError(Exception):
    """MNT denied (unknown export or client not admitted)."""

    def __init__(self, status: int):
        super().__init__(f"mount denied: status {status}")
        self.status = status


class MountClient:
    """Client-side bootstrap: portmapper lookup, then MNT."""

    def __init__(self, transport: RpcClientTransport, client_name: str):
        self.transport = transport
        self.client_name = client_name

    def getport(self, prog: int, vers: int) -> Generator:
        enc = XdrEncoder()
        enc.u32(prog)
        enc.u32(vers)
        call = RpcCall(prog=PMAP_PROG, vers=PMAP_VERS, proc=PMAP_GETPORT,
                       header=enc.take())
        reply = yield from self.transport.call(call)
        return XdrDecoder(reply.header).u32()

    def mount(self, path: str) -> Generator:
        """→ the export's root FileHandle, or raises MountError."""
        enc = XdrEncoder()
        enc.string(self.client_name)
        enc.string(path)
        call = RpcCall(prog=MOUNT_PROG, vers=MOUNT_VERS, proc=MNT,
                       header=enc.take())
        reply = yield from self.transport.call(call)
        dec = XdrDecoder(reply.header)
        status = dec.u32()
        if status != MNT3_OK:
            raise MountError(status)
        return FileHandle.decode(dec)

    def unmount(self, path: str) -> Generator:
        enc = XdrEncoder()
        enc.string(self.client_name)
        enc.string(path)
        call = RpcCall(prog=MOUNT_PROG, vers=MOUNT_VERS, proc=UMNT,
                       header=enc.take())
        yield from self.transport.call(call)

    def list_exports(self) -> Generator:
        call = RpcCall(prog=MOUNT_PROG, vers=MOUNT_VERS, proc=EXPORT, header=b"")
        reply = yield from self.transport.call(call)
        return XdrDecoder(reply.header).array(lambda d: d.string())
