"""pNFS-style file striping: one metadata server, many data servers.

The paper scales a single server; the pNFS file layout (RFC 5661 §13,
dense packing) is the standard answer once one node's spindles or HCA
saturate.  :class:`StripedNfsClient` keeps the normal NFS namespace on
the *metadata server* (MDS) and spreads file contents RAID-0 style
across *data servers* (DS): stripe ``s`` of a file lives at offset
``(s // ndata) * unit`` of a per-file component object on DS
``s % ndata`` — the dense layout, so component files stay compact.

Metadata procedures pass straight through to the MDS (the class
delegates any verb it does not override), so the striped client is a
drop-in :class:`~repro.nfs.client.NfsClient` replacement for the
workloads and the API layer.  READ/WRITE split into per-stripe extents
issued to all touched data servers *in parallel* — the bandwidth
aggregation that justifies the architecture — and WRITE commits the new
file size to the MDS afterwards (the LAYOUTCOMMIT step), so GETATTR
through the MDS stays correct.
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence

from repro.nfs.client import NfsClient
from repro.nfs.fh import FileHandle
from repro.payload import join_parts
from repro.sim import AllOf, Counter

__all__ = ["StripedNfsClient"]


class StripedNfsClient:
    """NFS client with pNFS-file-layout data placement."""

    def __init__(self, mds: NfsClient, data: Sequence[NfsClient],
                 stripe_unit: int = 64 * 1024, name: str = "nfs-striped",
                 component_tag: str = ""):
        if not data:
            raise ValueError("striping needs at least one data server")
        if stripe_unit < 1:
            raise ValueError("stripe unit must be positive")
        self.mds = mds
        self.data = list(data)
        self.stripe_unit = stripe_unit
        self.name = name
        #: disambiguates component objects when several MDS namespaces
        #: share the same data servers (fileids are only per-MDS unique).
        self.component_tag = component_tag
        self.root = mds.root
        self.transport = mds.transport
        self.ops = Counter(f"{name}.ops")
        self._sim = mds._sim
        #: fileid -> per-DS component handles (the layout).
        self._layouts: dict[int, list[FileHandle]] = {}
        #: fileid -> logical size committed to the MDS so far.
        self._sizes: dict[int, int] = {}

    def __getattr__(self, verb: str):
        # Metadata verbs (lookup, getattr, mkdir, readdir, fsinfo, ...)
        # pass through to the MDS untouched.
        return getattr(self.mds, verb)

    # -- layout management -------------------------------------------------
    def _component_name(self, fileid: int, index: int) -> str:
        return f".stripe{self.component_tag}.{fileid:x}.{index}"

    def _layout(self, fh: FileHandle) -> Generator:
        """Component handles for ``fh``, created on first touch."""
        components = self._layouts.get(fh.fileid)
        if components is None:
            components = []
            for index, ds in enumerate(self.data):
                cname = self._component_name(fh.fileid, index)
                cfh, _ = yield from ds.create(ds.root, cname)
                components.append(cfh)
            self._layouts[fh.fileid] = components
        return components

    def _extents(self, offset: int, length: int):
        """Split ``[offset, offset+length)`` into per-DS dense extents.

        Yields ``(ds_index, component_offset, start, stop)`` with
        start/stop indexing the caller's logical buffer.
        """
        unit = self.stripe_unit
        ndata = len(self.data)
        pos = offset
        end = offset + length
        while pos < end:
            stripe = pos // unit
            within = pos - stripe * unit
            take = min(unit - within, end - pos)
            yield (stripe % ndata,
                   (stripe // ndata) * unit + within,
                   pos - offset, pos - offset + take)
            pos += take

    # -- data path ---------------------------------------------------------
    def create(self, dir_fh: FileHandle, name: str, mode: int = 0o644) -> Generator:
        fh, attrs = yield from self.mds.create(dir_fh, name, mode)
        yield from self._layout(fh)
        self._sizes[fh.fileid] = attrs.size
        self.ops.add()
        return fh, attrs

    def write(self, fh: FileHandle, offset: int, data: bytes,
              stable: bool = False, write_buffer=None) -> Generator:
        """WRITE split across data servers; returns (count, attrs).

        ``write_buffer`` is ignored: zero-copy needs per-extent
        registered windows, which the component split defeats.
        """
        components = yield from self._layout(fh)
        procs = [
            self._sim.process(
                self.data[ds].write(components[ds], comp_off,
                                    data[start:stop], stable=stable),
                name=f"{self.name}.w{ds}")
            for ds, comp_off, start, stop in self._extents(offset, len(data))
        ]
        yield AllOf(self._sim, procs)
        written = sum(proc.value[0] for proc in procs)
        attrs = yield from self._commit_size(fh, offset + written)
        self.ops.add()
        return written, attrs

    def read(self, fh: FileHandle, offset: int, count: int,
             read_buffer=None) -> Generator:
        """READ reassembled from data servers; returns (data, eof, attrs).

        ``read_buffer`` is ignored for the same reason as on writes:
        parallel extents would scatter into one window.
        """
        size = yield from self._logical_size(fh)
        count = max(0, min(count, size - offset))
        components = yield from self._layout(fh)
        procs = [
            self._sim.process(
                self.data[ds].read(components[ds], comp_off, stop - start),
                name=f"{self.name}.r{ds}")
            for ds, comp_off, start, stop in self._extents(offset, count)
        ]
        yield AllOf(self._sim, procs)
        data = join_parts([proc.value[0] for proc in procs])
        eof = offset + len(data) >= size
        attrs = yield from self.mds.getattr(fh)
        self.ops.add()
        return data, eof, attrs

    def commit(self, fh: FileHandle, offset: int = 0, count: int = 0) -> Generator:
        """COMMIT fans out to every component, then the MDS."""
        components = yield from self._layout(fh)
        for ds, cfh in zip(self.data, components):
            yield from ds.commit(cfh, 0, 0)
        yield from self.mds.commit(fh, offset, count)
        self.ops.add()

    def remove(self, dir_fh: FileHandle, name: str) -> Generator:
        fh, _ = yield from self.mds.lookup(dir_fh, name)
        components = self._layouts.pop(fh.fileid, None)
        if components is not None:
            for index, ds in enumerate(self.data):
                yield from ds.remove(ds.root,
                                     self._component_name(fh.fileid, index))
        self._sizes.pop(fh.fileid, None)
        yield from self.mds.remove(dir_fh, name)
        self.ops.add()

    # -- large-op conveniences (re-split over the striped paths) -----------
    def read_large(self, fh: FileHandle, offset: int, count: int,
                   limit: int = 1 << 20, read_buffer=None) -> Generator:
        parts = []
        pos = offset
        remaining = count
        eof = False
        while remaining > 0 and not eof:
            take = min(limit, remaining)
            data, eof, _ = yield from self.read(fh, pos, take,
                                                read_buffer=read_buffer)
            parts.append(data)
            pos += len(data)
            remaining -= len(data)
            if not data:
                break
        return join_parts(parts), eof

    def write_large(self, fh: FileHandle, offset: int, data: bytes,
                    limit: int = 1 << 20, stable: bool = False,
                    write_buffer=None) -> Generator:
        pos = 0
        while pos < len(data):
            chunk = data[pos : pos + limit]
            written, _ = yield from self.write(fh, offset + pos, chunk,
                                               stable=stable)
            pos += written
        if stable:
            yield from self.commit(fh)
        return len(data)

    # -- size tracking (the LAYOUTCOMMIT dance) ----------------------------
    def _logical_size(self, fh: FileHandle) -> Generator:
        size = self._sizes.get(fh.fileid)
        if size is None:
            attrs = yield from self.mds.getattr(fh)
            size = self._sizes[fh.fileid] = attrs.size
        return size

    def _commit_size(self, fh: FileHandle, end: int) -> Generator:
        """Grow the MDS's idea of the file after a striped write."""
        known = yield from self._logical_size(fh)
        if end > known:
            attrs = yield from self.mds.setattr(fh, size=end)
            self._sizes[fh.fileid] = attrs.size
            return attrs
        return (yield from self.mds.getattr(fh))
