"""The NFSv3 client: procedure wrappers over any RPC transport.

Every method is a simulation process returning decoded results (raising
:class:`NfsError` on non-OK status).  The client supplies the transport
hints the Read-Write design consumes: ``read_len_hint`` (READ count →
write chunk size), ``reply_len_hint`` (READDIR/READLINK → reply chunk),
and the optional direct-I/O buffers for zero-copy transfers.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.nfs.fh import FileHandle
from repro.nfs.protocol import (
    NFS3_PROG,
    NFS3_VERS,
    FsInfo,
    Nfs3Proc,
    Nfs3Status,
    NfsError,
    PathConf,
    decode_direntries,
    decode_fattr,
    decode_fsstat,
)
from repro.payload import join_parts
from repro.rpc.msg import RpcCall
from repro.rpc.transport import RpcClientTransport
from repro.rpc.xdr import XdrDecoder, XdrEncoder
from repro.sim import Counter

__all__ = ["NfsClient"]

#: Generous ceiling for READDIR reply headers (drives the reply chunk).
_READDIR_REPLY_HINT = 64 * 1024


class NfsClient:
    """Procedure-level NFSv3 client."""

    def __init__(self, transport: RpcClientTransport, root: FileHandle,
                 name: str = "nfs-client"):
        self.transport = transport
        self.root = root
        self.name = name
        self.ops = Counter(f"{name}.ops")
        self._sim = getattr(transport, "sim", None)
        node = getattr(transport, "node", None)
        endpoint = getattr(transport, "endpoint", None)
        self._pid = (node.name if node is not None
                     else endpoint.name.split(".")[0] if endpoint is not None
                     else "client")

    # -- plumbing -----------------------------------------------------------
    def _call(self, proc: Nfs3Proc, header: bytes, span_args=None,
              **kwargs) -> Generator:
        call = RpcCall(prog=NFS3_PROG, vers=NFS3_VERS, proc=int(proc),
                       header=header, **kwargs)
        telemetry = self._sim.telemetry if self._sim is not None else None
        if telemetry is None:
            reply = yield from self.transport.call(call)
        else:
            reply = yield from self._call_traced(call, proc.name, telemetry,
                                                 span_args)
        self.ops.add()
        dec = XdrDecoder(reply.header)
        status = Nfs3Status(dec.u32())
        if status is not Nfs3Status.OK:
            raise NfsError(status, proc)
        return dec, reply

    def _call_traced(self, call: RpcCall, verb: str, telemetry,
                     span_args=None) -> Generator:
        """Traced transport call: a client op span + per-verb latency.

        ``span_args`` (READ/WRITE offset and count) ride on the span so
        a recorded trace preserves the op-mix *and* size/offset
        distributions for :mod:`repro.workloads.replay`.
        """
        tracer = telemetry.tracer
        span = prev = None
        if tracer is not None:
            span = tracer.begin(f"nfs.{verb}", "client", self._pid, "nfs",
                                parent=tracer.task_span(), xid=call.xid,
                                **(span_args or {}))
            prev = tracer.push_task(span)
        start = self._sim.now
        try:
            reply = yield from self.transport.call(call)
        finally:
            telemetry.record_op(self.name, verb, self._sim.now - start)
            if tracer is not None:
                tracer.pop_task(prev)
                span.end()
        return reply

    @staticmethod
    def _enc() -> XdrEncoder:
        return XdrEncoder()

    # -- procedures -----------------------------------------------------------
    def null(self) -> Generator:
        yield from self._call(Nfs3Proc.NULL, b"")

    def getattr(self, fh: FileHandle) -> Generator:
        enc = self._enc()
        fh.encode(enc)
        dec, _ = yield from self._call(Nfs3Proc.GETATTR, enc.take())
        return decode_fattr(dec)

    def setattr(self, fh: FileHandle, size: Optional[int] = None,
                mode: Optional[int] = None) -> Generator:
        enc = self._enc()
        fh.encode(enc)
        enc.optional(size, lambda e, v: e.u64(v))
        enc.optional(mode, lambda e, v: e.u32(v))
        dec, _ = yield from self._call(Nfs3Proc.SETATTR, enc.take())
        return decode_fattr(dec)

    def lookup(self, dir_fh: FileHandle, name: str) -> Generator:
        enc = self._enc()
        dir_fh.encode(enc)
        enc.string(name)
        dec, _ = yield from self._call(Nfs3Proc.LOOKUP, enc.take())
        fh = FileHandle.decode(dec)
        attrs = decode_fattr(dec)
        return fh, attrs

    def access(self, fh: FileHandle, wanted: int = 0x3F) -> Generator:
        enc = self._enc()
        fh.encode(enc)
        enc.u32(wanted)
        dec, _ = yield from self._call(Nfs3Proc.ACCESS, enc.take())
        return dec.u32()

    def readlink(self, fh: FileHandle) -> Generator:
        enc = self._enc()
        fh.encode(enc)
        dec, _ = yield from self._call(
            Nfs3Proc.READLINK, enc.take(), reply_len_hint=4096
        )
        return dec.string()

    def read(self, fh: FileHandle, offset: int, count: int,
             read_buffer=None) -> Generator:
        """READ: returns (data, eof, attrs).

        ``read_buffer`` is the direct-I/O destination: on the Read-Write
        transport the server RDMA-Writes straight into it (zero copy).
        """
        enc = self._enc()
        fh.encode(enc)
        enc.u64(offset)
        enc.u32(count)
        dec, reply = yield from self._call(
            Nfs3Proc.READ, enc.take(),
            span_args={"offset": offset, "count": count},
            read_len_hint=count, read_buffer=read_buffer,
        )
        attrs = decode_fattr(dec)
        returned = dec.u32()
        eof = dec.boolean()
        data = (reply.read_payload or b"")[:returned]
        if len(data) != returned:
            raise NfsError(Nfs3Status.IO, Nfs3Proc.READ)
        return data, eof, attrs

    def write(self, fh: FileHandle, offset: int, data: bytes,
              stable: bool = False, write_buffer=None) -> Generator:
        """WRITE: returns (count, attrs).

        ``write_buffer`` is the registered source for zero-copy sends on
        RDMA transports (must already hold ``data``).
        """
        enc = self._enc()
        fh.encode(enc)
        enc.u64(offset)
        enc.u32(len(data))
        enc.u32(1 if stable else 0)
        dec, _ = yield from self._call(
            Nfs3Proc.WRITE, enc.take(),
            span_args={"offset": offset, "count": len(data)},
            write_payload=data, write_buffer=write_buffer,
        )
        attrs = decode_fattr(dec)
        written = dec.u32()
        return written, attrs

    def create(self, dir_fh: FileHandle, name: str, mode: int = 0o644) -> Generator:
        enc = self._enc()
        dir_fh.encode(enc)
        enc.string(name)
        enc.u32(mode)
        dec, _ = yield from self._call(Nfs3Proc.CREATE, enc.take())
        fh = FileHandle.decode(dec)
        attrs = decode_fattr(dec)
        return fh, attrs

    def mkdir(self, dir_fh: FileHandle, name: str, mode: int = 0o755) -> Generator:
        enc = self._enc()
        dir_fh.encode(enc)
        enc.string(name)
        enc.u32(mode)
        dec, _ = yield from self._call(Nfs3Proc.MKDIR, enc.take())
        fh = FileHandle.decode(dec)
        attrs = decode_fattr(dec)
        return fh, attrs

    def symlink(self, dir_fh: FileHandle, name: str, target: str) -> Generator:
        enc = self._enc()
        dir_fh.encode(enc)
        enc.string(name)
        enc.string(target)
        dec, _ = yield from self._call(Nfs3Proc.SYMLINK, enc.take())
        fh = FileHandle.decode(dec)
        attrs = decode_fattr(dec)
        return fh, attrs

    def mknod(self, dir_fh: FileHandle, name: str, mode: int = 0o644) -> Generator:
        enc = self._enc()
        dir_fh.encode(enc)
        enc.string(name)
        enc.u32(mode)
        dec, _ = yield from self._call(Nfs3Proc.MKNOD, enc.take())
        fh = FileHandle.decode(dec)
        attrs = decode_fattr(dec)
        return fh, attrs

    def link(self, target: FileHandle, dir_fh: FileHandle, name: str) -> Generator:
        enc = self._enc()
        target.encode(enc)
        dir_fh.encode(enc)
        enc.string(name)
        dec, _ = yield from self._call(Nfs3Proc.LINK, enc.take())
        return decode_fattr(dec)

    def remove(self, dir_fh: FileHandle, name: str) -> Generator:
        enc = self._enc()
        dir_fh.encode(enc)
        enc.string(name)
        yield from self._call(Nfs3Proc.REMOVE, enc.take())

    def rmdir(self, dir_fh: FileHandle, name: str) -> Generator:
        enc = self._enc()
        dir_fh.encode(enc)
        enc.string(name)
        yield from self._call(Nfs3Proc.RMDIR, enc.take())

    def rename(self, from_dir: FileHandle, from_name: str,
               to_dir: FileHandle, to_name: str) -> Generator:
        enc = self._enc()
        from_dir.encode(enc)
        enc.string(from_name)
        to_dir.encode(enc)
        enc.string(to_name)
        yield from self._call(Nfs3Proc.RENAME, enc.take())

    def readdir(self, dir_fh: FileHandle, count: int = _READDIR_REPLY_HINT) -> Generator:
        enc = self._enc()
        dir_fh.encode(enc)
        enc.u64(0)      # cookie
        enc.u32(count)
        dec, _ = yield from self._call(
            Nfs3Proc.READDIR, enc.take(), reply_len_hint=count
        )
        entries = decode_direntries(dec)
        dec.boolean()   # eof
        return entries

    def readdirplus(self, dir_fh: FileHandle,
                    count: int = 4 * _READDIR_REPLY_HINT) -> Generator:
        """READDIRPLUS: entries with attributes and handles.

        Per-entry fattrs make this reply several times larger than
        READDIR's — the heaviest long-reply producer in the protocol.
        """
        enc = self._enc()
        dir_fh.encode(enc)
        enc.u64(0)       # cookie
        enc.u32(count)   # dircount
        enc.u32(count)   # maxcount
        dec, _ = yield from self._call(
            Nfs3Proc.READDIRPLUS, enc.take(), reply_len_hint=count
        )
        n = dec.u32()
        out = []
        for _ in range(n):
            fileid = dec.u64()
            name = dec.string()
            fh = FileHandle.decode(dec)
            attrs = decode_fattr(dec)
            out.append((name, fh, attrs))
        dec.boolean()    # eof
        return out

    def fsinfo(self, fh: Optional[FileHandle] = None) -> Generator:
        enc = self._enc()
        (fh or self.root).encode(enc)
        dec, _ = yield from self._call(Nfs3Proc.FSINFO, enc.take())
        return FsInfo.decode(dec)

    def pathconf(self, fh: Optional[FileHandle] = None) -> Generator:
        enc = self._enc()
        (fh or self.root).encode(enc)
        dec, _ = yield from self._call(Nfs3Proc.PATHCONF, enc.take())
        return PathConf.decode(dec)

    def fsstat(self, fh: Optional[FileHandle] = None) -> Generator:
        enc = self._enc()
        (fh or self.root).encode(enc)
        dec, _ = yield from self._call(Nfs3Proc.FSSTAT, enc.take())
        return decode_fsstat(dec)

    def commit(self, fh: FileHandle, offset: int = 0, count: int = 0) -> Generator:
        enc = self._enc()
        fh.encode(enc)
        enc.u64(offset)
        enc.u32(count)
        yield from self._call(Nfs3Proc.COMMIT, enc.take())

    # -- conveniences -----------------------------------------------------------
    def read_large(self, fh: FileHandle, offset: int, count: int,
                   limit: int = 1 << 20, read_buffer=None) -> Generator:
        """READ of arbitrary size, split at the server's rtmax.

        Real clients size each wire READ by FSINFO's ``rtmax``; pass the
        negotiated limit (``(yield from fsinfo()).rtmax``).
        Returns (data, eof).
        """
        if limit < 1:
            raise ValueError("transfer limit must be positive")
        parts = []
        pos = offset
        remaining = count
        eof = False
        while remaining > 0 and not eof:
            take = min(limit, remaining)
            data, eof, _ = yield from self.read(fh, pos, take,
                                                read_buffer=read_buffer)
            parts.append(data)
            pos += len(data)
            remaining -= len(data)
            if not data:
                break
        return join_parts(parts), eof

    def write_large(self, fh: FileHandle, offset: int, data: bytes,
                    limit: int = 1 << 20, stable: bool = False,
                    write_buffer=None) -> Generator:
        """WRITE of arbitrary size, split at the server's wtmax."""
        if limit < 1:
            raise ValueError("transfer limit must be positive")
        pos = 0
        while pos < len(data):
            chunk = data[pos : pos + limit]
            written, _ = yield from self.write(fh, offset + pos, chunk,
                                               stable=stable,
                                               write_buffer=write_buffer)
            pos += written
        if stable:
            yield from self.commit(fh)
        return len(data)

    def walk(self, path: str) -> Generator:
        """Resolve an absolute slash path to (fh, attrs)."""
        fh = self.root
        attrs = None
        for part in [p for p in path.split("/") if p]:
            fh, attrs = yield from self.lookup(fh, part)
        if attrs is None:
            attrs = yield from self.getattr(fh)
        return fh, attrs
