"""Mount redirection: load-balancing mounts across server nodes.

A deployment with K metadata/file servers needs each new mount steered
to one of them.  Real fleets do this with a referral service (NFSv4
``fs_locations``) or a mountd-level redirector; here the policy is the
deterministic heart of it: *least-loaded, lowest index wins ties*.
Determinism matters doubly — placement happens at cluster build time,
before the simulation runs, and the check suite requires identical
placements across sanitized and perturbed runs.
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = ["MountRedirector"]


class MountRedirector:
    """Deterministic least-loaded placement over ``targets``."""

    def __init__(self, targets: Sequence):
        if not targets:
            raise ValueError("redirector needs at least one target")
        self._targets = list(targets)
        self._load = [0] * len(self._targets)
        #: (mount id, target index) in placement order — the audit trail
        #: telemetry exports as ``shard_mounts``.
        self.assignments: list[tuple[int, int]] = []

    @property
    def targets(self) -> list:
        return list(self._targets)

    def place(self, mount_id: int):
        """Assign ``mount_id``; returns ``(index, target)``."""
        index = min(range(len(self._load)), key=lambda i: (self._load[i], i))
        self._load[index] += 1
        self.assignments.append((mount_id, index))
        return index, self._targets[index]

    def index_of(self, mount_id: int) -> Optional[int]:
        for mid, index in self.assignments:
            if mid == mount_id:
                return index
        return None

    def counts(self) -> tuple[int, ...]:
        """Mounts per target — balanced to within one by construction."""
        return tuple(self._load)

    @property
    def imbalance(self) -> int:
        return max(self._load) - min(self._load)
