"""Drive the health checks against experiments and soaks.

The runner owns the only cluster-aware code in the package: it builds a
telemetry-enabled cluster, runs the requested experiment on it, derives
the few structural facts the checks need (node count, dispatcher
bound), then hands the registry to :func:`repro.health.checks.run_checks`
and folds the verdicts into a :class:`HealthReport` whose worst status
is the Nagios exit code.

Three attachment modes:

* ``figN`` — every point of the figure's quick/full grid, each on a
  fresh telemetry-enabled cluster (results identical to ``repro run``:
  the same :func:`~repro.experiments.sweep.run_point` executes);
* ``chaos`` — one :func:`~repro.experiments.chaos.run_chaos_soak` run,
  optionally with seeded server crash-restarts, graded after the soak's
  own invariant sweep;
* any pre-built cluster via :func:`health_of_cluster` (used by the
  replay example and tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.health.checks import (
    CheckContext,
    CheckResult,
    Status,
    run_checks,
)
from repro.health.slo import SloPolicy, load_slo_file, resolve_slo

__all__ = [
    "HealthReport",
    "PointHealth",
    "health_of_cluster",
    "load_policy",
    "run_health",
]

#: Figure experiments the health command can attach to.
FIGURES = ("fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
           "fig13")


@dataclass
class PointHealth:
    """One graded run: its label, verdicts, and the registry dump."""

    label: str
    results: list[CheckResult]
    #: ``stats_dict(cluster)`` at grading time (the JSON-sink payload).
    stats: dict = field(default_factory=dict)
    sim_us: float = 0.0

    @property
    def status(self) -> Status:
        return max((r.status for r in self.results), default=Status.OK)


@dataclass
class HealthReport:
    """All graded points of one experiment, worst status = exit code."""

    experiment: str
    scale: str
    slo: SloPolicy
    points: list[PointHealth] = field(default_factory=list)

    @property
    def status(self) -> Status:
        return max((p.status for p in self.points), default=Status.OK)

    @property
    def exit_code(self) -> int:
        return int(self.status)

    def failing(self) -> list[tuple[str, CheckResult]]:
        """(point label, result) for every non-OK verdict."""
        return [(p.label, r) for p in self.points for r in p.results
                if r.status is not Status.OK]


def health_of_cluster(cluster: Any, slo: SloPolicy,
                      label: str = "cluster") -> PointHealth:
    """Grade one already-run, telemetry-enabled cluster."""
    from repro.telemetry.nfsstat import stats_dict

    telemetry = getattr(cluster, "telemetry", None)
    if telemetry is None:
        raise ValueError(
            "health checks need telemetry; build the cluster with "
            "ClusterConfig(telemetry=True)")
    ctx = CheckContext(
        registry=telemetry.registry,
        slo=slo,
        experiment=slo.experiment,
        label=label,
        nodes=getattr(cluster, "node_count", 1 + cluster.config.nclients),
        queue_depth=cluster.config.server_queue_depth,
    )
    return PointHealth(
        label=label,
        results=run_checks(ctx),
        stats=stats_dict(cluster),
        sim_us=cluster.sim.now,
    )


def load_policy(slo_path: Optional[str], experiment: str) -> SloPolicy:
    """Resolve the SLO for ``experiment``: file layers over defaults."""
    if slo_path:
        return resolve_slo(load_slo_file(slo_path), experiment,
                           source=slo_path)
    return resolve_slo(None, experiment)


def _figure_points(experiment: str, scale: str, slo: SloPolicy,
                   point_index: Optional[int],
                   progress: Optional[Callable[[str], None]] = None,
                   ) -> list[PointHealth]:
    from repro.experiments.figures import figure_grid
    from repro.experiments.sweep import _build_cluster, run_point

    grid = figure_grid(experiment, scale)
    if point_index is not None:
        if not 0 <= point_index < len(grid):
            raise ValueError(
                f"--point must be in [0, {len(grid)}) for "
                f"{experiment}/{scale}")
        grid = [grid[point_index]]
    points = []
    for label, point in grid:
        cluster = _build_cluster({**point.cluster, "telemetry": True})
        run_point(point, cluster=cluster)
        ph = health_of_cluster(cluster, slo, label=label)
        points.append(ph)
        if progress:
            progress(f"{label}: {ph.status.name}")
    return points


def _chaos_point(scale: str, slo: SloPolicy, seed: int, crashes: int,
                 progress: Optional[Callable[[str], None]] = None,
                 ) -> list[PointHealth]:
    from repro.experiments.chaos import run_chaos_soak

    outcome = run_chaos_soak(scale, seed=seed, crashes=crashes,
                             telemetry=True)
    ph = health_of_cluster(outcome.cluster, slo,
                           label=f"chaos seed={seed} crashes={crashes}")
    # The soak's own invariants ride along as a tenth verdict: lost
    # acknowledged writes or duplicate non-idempotent executions are
    # CRITICAL regardless of any SLO file.
    if not outcome.completed or outcome.lost_writes \
            or outcome.duplicate_executions:
        status, message = Status.CRITICAL, "soak invariants violated"
    else:
        status, message = Status.OK, "exactly-once and durability held"
    ph.results.append(CheckResult(
        "soak", status,
        f"{message}: {outcome.verified_files} files verified, "
        f"{outcome.lost_writes} lost writes, "
        f"{outcome.duplicate_executions} duplicate executions",
        {"completed": outcome.completed,
         "verified_files": outcome.verified_files,
         "lost_writes": outcome.lost_writes,
         "duplicate_executions": outcome.duplicate_executions}))
    if progress:
        progress(f"{ph.label}: {ph.status.name}")
    return [ph]


def run_health(
    experiment: str,
    scale: str = "quick",
    slo_path: Optional[str] = None,
    point: Optional[int] = None,
    seed: int = 2007,
    crashes: int = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> HealthReport:
    """Run ``experiment`` with telemetry on and grade every point.

    ``experiment`` is a figure name (``fig5``..``fig12``) or ``chaos``.
    ``point`` restricts a figure to one grid index.  ``crashes`` only
    applies to the chaos soak.
    """
    slo = load_policy(slo_path, experiment)
    if experiment == "chaos":
        points = _chaos_point(scale, slo, seed, crashes, progress)
    elif experiment in FIGURES:
        points = _figure_points(experiment, scale, slo, point, progress)
    else:
        raise ValueError(
            f"unknown experiment {experiment!r}; pick one of "
            f"{', '.join(FIGURES)} or chaos")
    return HealthReport(experiment=experiment, scale=scale, slo=slo,
                        points=points)
