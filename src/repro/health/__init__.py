"""Operator-grade health checks and SLO gates (DESIGN.md §14).

The ``check-hca`` idiom turned into a subsystem: a registry of pluggable
checks (:mod:`repro.health.checks`) grades a run's metrics registry
against a layered SLO policy (:mod:`repro.health.slo`), a runner
(:mod:`repro.health.runner`) attaches the checks to any figure grid,
the chaos soak or a pre-built cluster, and sinks
(:mod:`repro.health.sinks`) render the verdicts for humans, CI or an
OTLP collector.  Exit codes are Nagios: 0 OK / 1 WARN / 2 CRITICAL.

Surface: ``python -m repro health --experiment figN [--slo slo.toml]
[--sink stdout|json|otel]``.
"""

from repro.health.checks import (
    CHECKS,
    CheckContext,
    CheckResult,
    Status,
    register_check,
    run_checks,
)
from repro.health.runner import (
    HealthReport,
    PointHealth,
    health_of_cluster,
    load_policy,
    run_health,
)
from repro.health.sinks import SINKS
from repro.health.slo import DEFAULT_SLO, SloPolicy, load_slo_file, resolve_slo

__all__ = [
    "CHECKS",
    "CheckContext",
    "CheckResult",
    "DEFAULT_SLO",
    "HealthReport",
    "PointHealth",
    "SINKS",
    "SloPolicy",
    "Status",
    "health_of_cluster",
    "load_policy",
    "load_slo_file",
    "register_check",
    "resolve_slo",
    "run_checks",
    "run_health",
]
