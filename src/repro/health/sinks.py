"""Report sinks: where a :class:`HealthReport` goes.

Three formats behind one ``render(report) -> str`` protocol:

* ``stdout`` — the operator view: one verdict table per point plus a
  one-line summary, colorless and column-aligned (``format_table``);
* ``json`` — the machine view: the full report including each check's
  evidence dict **and** the per-point ``stats_dict`` registry dump, so
  CI artifacts carry everything needed to diagnose a WARN offline;
* ``otel`` — an OTLP-flavored line protocol (one metric data point per
  line) keyed on *simulated* time only — no wallclock anywhere, per the
  repo's purity rules.

Sinks format; they never print or open files.  The CLI decides where
the bytes land.
"""

from __future__ import annotations

import json

from repro.analysis.stats import format_table
from repro.health.runner import HealthReport

__all__ = ["SINKS", "render_json", "render_otel", "render_stdout"]


def render_stdout(report: HealthReport) -> str:
    """Human verdict tables, one per graded point."""
    blocks = []
    for point in report.points:
        rows = [[r.status.name, r.check, r.message] for r in point.results]
        table = format_table(["status", "check", "detail"], rows)
        blocks.append(f"== {report.experiment} {point.label} "
                      f"[{point.status.name}] ==\n{table}")
    worst = report.status
    failing = report.failing()
    if failing:
        names = ", ".join(sorted({r.check for _, r in failing}))
        summary = (f"{report.experiment}/{report.scale}: {worst.name} "
                   f"({len(failing)} non-OK verdicts: {names}) "
                   f"slo={report.slo.source}")
    else:
        summary = (f"{report.experiment}/{report.scale}: OK "
                   f"({len(report.points)} points, "
                   f"{len(report.points[0].results) if report.points else 0} "
                   f"checks each) slo={report.slo.source}")
    blocks.append(summary)
    return "\n\n".join(blocks)


def render_json(report: HealthReport) -> str:
    """The whole report as JSON: verdicts, evidence, registry dumps."""
    payload = {
        "experiment": report.experiment,
        "scale": report.scale,
        "status": report.status.name,
        "exit_code": report.exit_code,
        "slo_source": report.slo.source,
        "points": [
            {
                "label": p.label,
                "status": p.status.name,
                "sim_us": p.sim_us,
                "checks": [
                    {
                        "check": r.check,
                        "status": r.status.name,
                        "message": r.message,
                        "evidence": r.evidence,
                    }
                    for r in p.results
                ],
                "stats": p.stats,
            }
            for p in report.points
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"


def _otel_attrs(attrs: dict) -> str:
    return ",".join(f'{k}="{v}"' for k, v in attrs.items())


def render_otel(report: HealthReport) -> str:
    """OTLP-flavored lines: one gauge data point per check verdict.

    ``repro.health.status{...} <0|1|2> <sim_us>`` plus one line per
    numeric evidence value.  Timestamps are simulated microseconds (the
    point's end time) — deliberately not wallclock, so two runs of the
    same seed produce byte-identical output.
    """
    lines = []
    for point in report.points:
        base = {"experiment": report.experiment, "scale": report.scale,
                "point": point.label}
        ts = int(point.sim_us)
        for r in point.results:
            attrs = _otel_attrs({**base, "check": r.check})
            lines.append(
                f"repro.health.status{{{attrs}}} {int(r.status)} {ts}")
            for key, value in r.evidence.items():
                if isinstance(value, bool) or not isinstance(
                        value, (int, float)):
                    continue
                ev = _otel_attrs({**base, "check": r.check, "key": key})
                lines.append(f"repro.health.evidence{{{ev}}} {value} {ts}")
    return "\n".join(lines) + "\n"


SINKS = {
    "stdout": render_stdout,
    "json": render_json,
    "otel": render_otel,
}
