"""SLO policies: the thresholds the health checks grade against.

A policy is a nested mapping ``check name -> threshold name -> value``.
Three layers merge, most specific last:

* :data:`DEFAULT_SLO` — conservative built-ins tuned so a clean quick
  run of any registry figure is all-OK (``None`` disables a rule);
* the SLO file's top-level ``[checks.*]`` tables;
* the SLO file's ``[figures.<experiment>.checks.*]`` tables, so one
  committed file can hold fleet-wide limits plus per-figure overrides
  (fig11's 64-client points legitimately run hotter than fig5's).

Files are TOML (stdlib ``tomllib``) or JSON, selected by extension.
The latency check additionally resolves per-verb overrides through
``verbs.<VERB>.<key>`` inside its own table.
"""

from __future__ import annotations

import json
from copy import deepcopy
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["DEFAULT_SLO", "SloPolicy", "load_slo_file", "resolve_slo"]

#: Built-in thresholds.  A value of ``None`` disables the rule; a check
#: compares its observed value against ``*_warn`` / ``*_crit`` with
#: ``>=`` semantics (counters and rates only go up).
DEFAULT_SLO: dict[str, dict[str, Any]] = {
    "hca": {
        # One adapter per node is structural; missing HCAs are CRITICAL
        # (the check-hca idiom), surplus is WARN.
        "expected_hcas": None,          # None = nodes in the cluster
        "qp_errors_warn": 1,            # any QP parked in ERROR
        "qp_errors_crit": None,
        "rnr_events_warn": None,
        "rnr_events_crit": None,
    },
    "srq": {
        "low_watermark_hits_warn": 1,   # pool drained to the repost line
        "low_watermark_hits_crit": None,
        "exhaustions_warn": 1,          # RNR path actually taken
        "exhaustions_crit": None,
        "min_available_crit": 0,        # pool fully drained at some point
    },
    "credits": {
        "stall_rate_warn": 0.25,        # stalled acquisitions / calls sent
        "stall_rate_crit": None,
    },
    "drc": {
        # Coverage is judged only when the wire actually retransmitted.
        "min_hit_rate": None,           # (replays+drops)/retransmits floor
        "missing_with_retransmits": "WARN",
    },
    "registration": {
        "fmr_fallback_rate_warn": 0.01,  # fallbacks / maps
        "fmr_fallback_rate_crit": 0.25,
        "regcache_min_hit_rate": None,   # hits / (hits+misses) floor
        "protection_faults_warn": 1,
        "protection_faults_crit": None,
    },
    "dispatcher": {
        "queue_peak_warn_frac": 0.8,    # of the configured bound
        "queue_waits_warn": 1,
        "queue_waits_crit": None,
        "failed_calls_crit": 1,         # dispatches that raised
        "nfsd_errors_warn": None,
    },
    "latency": {
        # Base limits apply to every verb; ``verbs.<VERB>.<key>``
        # overrides per verb.  All disabled by default — the SLO file
        # carries the real numbers.
        "p50_warn_us": None,
        "p99_warn_us": None,
        "p99_crit_us": None,
        "verbs": {},
    },
    "security": {
        "warned_warn": 1,
        "throttled_warn": 1,
        "quarantined_warn": 1,
        "quarantined_crit": None,
        "exposure_bytes_warn": None,    # pinned advertised bytes, now
        "exposure_bytes_crit": None,
        "pinned_peak_warn_bytes": None,
    },
    "faults": {
        "reconnects_warn": 1,           # redials = healed QP deaths
        "reconnects_crit": None,
        "retransmit_rate_warn": 0.05,   # retransmits / calls sent
        "retransmit_rate_crit": 0.75,   # retransmit storm
        "crashes_warn": 1,
        "crashes_crit": None,
    },
}


def _deep_merge(base: dict, overlay: dict) -> dict:
    """Recursive dict merge; overlay scalars win, dicts merge."""
    out = dict(base)
    for key, value in overlay.items():
        if isinstance(value, dict) and isinstance(out.get(key), dict):
            out[key] = _deep_merge(out[key], value)
        else:
            out[key] = value
    return out


def load_slo_file(path: str) -> dict:
    """Parse a ``.toml`` or ``.json`` SLO file into the raw layer dict."""
    if path.endswith(".toml"):
        import tomllib

        with open(path, "rb") as fh:
            return tomllib.load(fh)
    with open(path) as fh:
        return json.load(fh)


@dataclass(frozen=True)
class SloPolicy:
    """Resolved thresholds for one experiment."""

    checks: dict[str, dict[str, Any]] = field(default_factory=dict)
    source: str = "defaults"
    experiment: str = ""

    def get(self, check: str, key: str, default: Any = None) -> Any:
        return self.checks.get(check, {}).get(key, default)

    def verb(self, verb: str, key: str) -> Optional[float]:
        """Latency limit for ``verb``: per-verb override, then base."""
        table = self.checks.get("latency", {})
        override = table.get("verbs", {}).get(verb, {}).get(key)
        return override if override is not None else table.get(key)


def resolve_slo(data: Optional[dict], experiment: str,
                source: str = "defaults") -> SloPolicy:
    """Merge defaults ← file ``[checks]`` ← ``[figures.<exp>.checks]``."""
    checks = deepcopy(DEFAULT_SLO)
    if data:
        checks = _deep_merge(checks, data.get("checks", {}))
        figure = data.get("figures", {}).get(experiment, {})
        checks = _deep_merge(checks, figure.get("checks", {}))
    return SloPolicy(checks=checks, source=source, experiment=experiment)
