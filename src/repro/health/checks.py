"""The pluggable health-check registry (the ``check-hca`` idiom).

Each check is a function ``(CheckContext) -> CheckResult`` registered
under a stable name with :func:`register_check`; :func:`run_checks`
executes every registered check in registration order.  A check reads
**only** the metrics registry (plus the small :class:`CheckContext`
facts the runner derives once) and grades what it sees against the
resolved :class:`~repro.health.slo.SloPolicy` — it never touches live
cluster objects, so the same check runs identically against a figure
point, the chaos soak, a fig12 adversary campaign or a synthetic
registry in a unit test.

Every result carries an *evidence* dict: the raw numbers the verdict
was computed from, so a WARN in CI is diagnosable from the JSON sink
alone.  Status values are Nagios-graded: OK(0) / WARN(1) / CRITICAL(2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.health.slo import SloPolicy

__all__ = [
    "CHECKS",
    "CheckContext",
    "CheckResult",
    "Status",
    "register_check",
    "run_checks",
]


class Status(enum.IntEnum):
    """Nagios-style verdicts; ``int(status)`` is the exit code."""

    OK = 0
    WARN = 1
    CRITICAL = 2


@dataclass
class CheckResult:
    """One check's verdict plus the numbers behind it."""

    check: str
    status: Status
    message: str
    evidence: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - presentation
        return f"[{self.status.name}] {self.check}: {self.message}"


@dataclass
class CheckContext:
    """What a check may read: the registry, the SLO, and derived facts.

    ``nodes`` / ``queue_depth`` / ``srq_configured`` are derived once by
    the runner from the cluster config (tests construct them directly),
    so the check functions stay registry-pure.
    """

    registry: Any                       # repro.telemetry.registry.Registry
    slo: SloPolicy
    experiment: str = ""
    label: str = ""
    nodes: int = 0                      # cluster nodes (server + clients)
    queue_depth: Optional[int] = None   # dispatcher bound (None = unbounded)


#: name -> check function, in registration order (= report order).
CHECKS: dict[str, Callable[[CheckContext], CheckResult]] = {}


_CheckFn = Callable[[CheckContext], CheckResult]


def register_check(name: str) -> Callable[[_CheckFn], _CheckFn]:
    """Decorator: add a check under ``name``; names are unique."""
    def deco(fn: _CheckFn) -> _CheckFn:
        if name in CHECKS:
            raise ValueError(f"health check {name!r} already registered")
        CHECKS[name] = fn
        return fn
    return deco


def run_checks(ctx: CheckContext) -> list[CheckResult]:
    """Every registered check, in registration order."""
    return [fn(ctx) for fn in CHECKS.values()]


# -- registry readers -------------------------------------------------------
def _sum(registry: Any, name: str) -> float:
    family = registry.get(name)
    if family is None:
        return 0.0
    return float(sum(child.value for _, child in family.items()))


def _has(registry: Any, name: str) -> bool:
    return registry.get(name) is not None


def _by_label(registry: Any, name: str, key: str) -> dict[str, float]:
    family = registry.get(name)
    if family is None:
        return {}
    return {labels[key]: child.value for labels, child in family.items()}


def _grade(value: float, warn: Optional[float],
           crit: Optional[float]) -> Status:
    """``>=`` comparison against optional thresholds (None disables)."""
    if crit is not None and value >= crit:
        return Status.CRITICAL
    if warn is not None and value >= warn:
        return Status.WARN
    return Status.OK


def _worst(*statuses: Status) -> Status:
    return max(statuses, default=Status.OK)


# -- the checks -------------------------------------------------------------
@register_check("hca")
def check_hca(ctx: CheckContext) -> CheckResult:
    """Adapter presence and queue-pair error states (check-hca)."""
    slo, reg = ctx.slo, ctx.registry
    hcas = len(_by_label(reg, "hca_qps", "node"))
    expected = slo.get("hca", "expected_hcas")
    if expected is None:
        expected = ctx.nodes
    qps = _sum(reg, "hca_qps")
    qp_errors = _sum(reg, "hca_qps_error")
    rnr = _sum(reg, "hca_rnr_events")
    evidence = {"hcas": hcas, "expected_hcas": expected, "qps": qps,
                "qp_errors": qp_errors, "rnr_events": rnr}
    if expected and hcas < expected:
        return CheckResult("hca", Status.CRITICAL,
                           f"{hcas} HCAs present, expected {expected}",
                           evidence)
    status = _worst(
        Status.WARN if expected and hcas > expected else Status.OK,
        _grade(qp_errors, slo.get("hca", "qp_errors_warn"),
               slo.get("hca", "qp_errors_crit")),
        _grade(rnr, slo.get("hca", "rnr_events_warn"),
               slo.get("hca", "rnr_events_crit")),
    )
    return CheckResult(
        "hca", status,
        f"{hcas} HCAs, {qps:.0f} QPs ({qp_errors:.0f} in ERROR), "
        f"{rnr:.0f} RNR events", evidence)


@register_check("srq")
def check_srq(ctx: CheckContext) -> CheckResult:
    """Shared receive pool: watermark crossings and exhaustion."""
    slo, reg = ctx.slo, ctx.registry
    if not _has(reg, "srq_entries"):
        return CheckResult("srq", Status.OK, "no shared receive pool",
                           {"configured": False})
    entries = _sum(reg, "srq_entries")
    min_avail = _sum(reg, "srq_min_available")
    wm_hits = _sum(reg, "srq_low_watermark_hits")
    exhaustions = _sum(reg, "srq_exhaustions")
    evidence = {
        "configured": True, "entries": entries,
        "min_available": min_avail,
        "low_watermark": _sum(reg, "srq_low_watermark"),
        "low_watermark_hits": wm_hits, "exhaustions": exhaustions,
        "takes": _sum(reg, "srq_takes"),
        "recycles": _sum(reg, "srq_recycles"),
        "registered_bytes": _sum(reg, "srq_registered_bytes"),
    }
    min_avail_crit = slo.get("srq", "min_available_crit")
    status = _worst(
        _grade(wm_hits, slo.get("srq", "low_watermark_hits_warn"),
               slo.get("srq", "low_watermark_hits_crit")),
        _grade(exhaustions, slo.get("srq", "exhaustions_warn"),
               slo.get("srq", "exhaustions_crit")),
        Status.CRITICAL if (min_avail_crit is not None
                            and min_avail <= min_avail_crit) else Status.OK,
    )
    return CheckResult(
        "srq", status,
        f"pool {entries:.0f} entries, low-water {min_avail:.0f}, "
        f"{wm_hits:.0f} watermark hits, {exhaustions:.0f} exhaustions",
        evidence)


@register_check("credits")
def check_credits(ctx: CheckContext) -> CheckResult:
    """Client credit gate: how often calls stalled on the grant."""
    slo, reg = ctx.slo, ctx.registry
    waits = _sum(reg, "rpc_credit_waits")
    calls = _sum(reg, "rpc_calls_sent")
    rate = waits / calls if calls else 0.0
    evidence = {"credit_waits": waits, "calls_sent": calls,
                "stall_rate": rate,
                "outstanding_peak": max(
                    _by_label(reg, "rpc_credit_outstanding_peak",
                              "mount").values(), default=0.0)}
    status = _grade(rate, slo.get("credits", "stall_rate_warn"),
                    slo.get("credits", "stall_rate_crit"))
    return CheckResult(
        "credits", status,
        f"{waits:.0f} stalls over {calls:.0f} calls "
        f"({rate * 100:.1f}% stall rate)", evidence)


@register_check("drc")
def check_drc(ctx: CheckContext) -> CheckResult:
    """Duplicate request cache coverage of actual retransmissions."""
    slo, reg = ctx.slo, ctx.registry
    retransmits = _sum(reg, "rpc_retransmits")
    configured = _has(reg, "drc_inserts")
    inserts = _sum(reg, "drc_inserts")
    replays = _sum(reg, "drc_replays")
    drops = _sum(reg, "drc_drops")
    hits = replays + drops
    evidence = {"configured": configured, "inserts": inserts,
                "replays": replays, "drops": drops,
                "retransmits": retransmits}
    if not configured:
        if retransmits > 0:
            level = slo.get("drc", "missing_with_retransmits", "WARN")
            return CheckResult(
                "drc", Status[level],
                f"{retransmits:.0f} retransmits with no DRC configured",
                evidence)
        return CheckResult("drc", Status.OK, "no DRC (and no retransmits)",
                           evidence)
    floor = slo.get("drc", "min_hit_rate")
    if floor is not None and retransmits > 0:
        rate = hits / retransmits
        evidence["hit_rate"] = rate
        if rate < floor:
            return CheckResult(
                "drc", Status.WARN,
                f"duplicate coverage {rate * 100:.1f}% of "
                f"{retransmits:.0f} retransmits (floor {floor * 100:.0f}%)",
                evidence)
    return CheckResult(
        "drc", Status.OK,
        f"{inserts:.0f} inserts, {replays:.0f} replays, "
        f"{drops:.0f} in-progress drops", evidence)


@register_check("registration")
def check_registration(ctx: CheckContext) -> CheckResult:
    """Registration pressure: FMR fallbacks, regcache hit rate, NAKs."""
    slo, reg = ctx.slo, ctx.registry
    maps = _sum(reg, "fmr_maps")
    fallbacks = _sum(reg, "fmr_fallbacks")
    fb_rate = fallbacks / maps if maps else 0.0
    hits = _sum(reg, "regcache_hits")
    misses = _sum(reg, "regcache_misses")
    hit_rate = hits / (hits + misses) if hits + misses else None
    faults = _sum(reg, "tpt_protection_faults")
    evidence = {
        "tpt_registrations": _sum(reg, "tpt_registrations"),
        "tpt_live_entries": _sum(reg, "tpt_live_entries"),
        "fmr_maps": maps, "fmr_fallbacks": fallbacks,
        "fmr_fallback_rate": fb_rate,
        "regcache_hits": hits, "regcache_misses": misses,
        "regcache_hit_rate": hit_rate,
        "protection_faults": faults,
    }
    statuses = [
        _grade(fb_rate, slo.get("registration", "fmr_fallback_rate_warn"),
               slo.get("registration", "fmr_fallback_rate_crit"))
        if maps else Status.OK,
        _grade(faults, slo.get("registration", "protection_faults_warn"),
               slo.get("registration", "protection_faults_crit")),
    ]
    floor = slo.get("registration", "regcache_min_hit_rate")
    if floor is not None and hit_rate is not None and hit_rate < floor:
        statuses.append(Status.WARN)
    parts = [f"{faults:.0f} protection faults"]
    if maps:
        parts.append(f"fmr fallback rate {fb_rate * 100:.1f}%")
    if hit_rate is not None:
        parts.append(f"regcache hit rate {hit_rate * 100:.1f}%")
    return CheckResult("registration", _worst(*statuses),
                       ", ".join(parts), evidence)


@register_check("dispatcher")
def check_dispatcher(ctx: CheckContext) -> CheckResult:
    """Server run queue: peak depth vs bound, full-queue waits, errors."""
    slo, reg = ctx.slo, ctx.registry
    # Worst single dispatcher, not the sum: on a sharded deployment each
    # stack has its own bounded run queue, and ``ctx.queue_depth`` is
    # the per-stack bound.
    family = reg.get("rpc_queue_peak")
    peak = max((child.value for _, child in family.items()), default=0.0) \
        if family is not None else 0.0
    waits = _sum(reg, "rpc_queue_waits")
    failed = _sum(reg, "rpc_server_failed")
    nfsd_errors = _sum(reg, "nfsd_errors")
    evidence = {"queue_peak": peak, "queue_depth": ctx.queue_depth,
                "queue_waits": waits, "failed_calls": failed,
                "nfsd_errors": nfsd_errors,
                "calls_served": _sum(reg, "rpc_server_calls")}
    statuses = [
        _grade(waits, slo.get("dispatcher", "queue_waits_warn"),
               slo.get("dispatcher", "queue_waits_crit")),
        _grade(failed, None, slo.get("dispatcher", "failed_calls_crit")),
        _grade(nfsd_errors, slo.get("dispatcher", "nfsd_errors_warn"), None),
    ]
    frac = slo.get("dispatcher", "queue_peak_warn_frac")
    if ctx.queue_depth and frac is not None and peak >= frac * ctx.queue_depth:
        statuses.append(Status.WARN)
    bound = ctx.queue_depth if ctx.queue_depth else "unbounded"
    return CheckResult(
        "dispatcher", _worst(*statuses),
        f"run-queue peak {peak:.0f} (bound {bound}), {waits:.0f} full "
        f"waits, {failed:.0f} failed dispatches", evidence)


@register_check("latency")
def check_latency(ctx: CheckContext) -> CheckResult:
    """Per-verb p50/p99 against the SLO's latency limits."""
    slo, reg = ctx.slo, ctx.registry
    family = reg.get("nfs_client_latency_us")
    if family is None:
        return CheckResult("latency", Status.OK, "no latency histograms",
                           {"verbs": {}})
    # Merge mounts per verb (the exact recorders, not bucket sums).
    from repro.analysis.latency import LatencyRecorder

    merged: dict[str, LatencyRecorder] = {}
    for labels, child in family.items():
        rec = merged.setdefault(labels["verb"], LatencyRecorder())
        rec.extend(child.recorder)
    status = Status.OK
    offenders: list[str] = []
    verbs_out = {}
    for verb in sorted(merged):
        s = merged[verb].summarize()
        limits = {
            "p50_warn_us": slo.verb(verb, "p50_warn_us"),
            "p99_warn_us": slo.verb(verb, "p99_warn_us"),
            "p99_crit_us": slo.verb(verb, "p99_crit_us"),
        }
        verbs_out[verb] = {"count": s.count, "p50_us": s.p50,
                           "p99_us": s.p99, "limits": limits}
        verb_status = _worst(
            _grade(s.p50, limits["p50_warn_us"], None),
            _grade(s.p99, limits["p99_warn_us"], limits["p99_crit_us"]),
        )
        if verb_status is not Status.OK:
            offenders.append(
                f"{verb} p50={s.p50:.0f}us p99={s.p99:.0f}us "
                f"({verb_status.name})")
        status = _worst(status, verb_status)
    message = ("; ".join(offenders) if offenders
               else f"{len(verbs_out)} verbs within SLO")
    return CheckResult("latency", status, message, {"verbs": verbs_out})


@register_check("security")
def check_security(ctx: CheckContext) -> CheckResult:
    """Policy escalations and pinned advertised (pending-DONE) bytes."""
    slo, reg = ctx.slo, ctx.registry
    if not _has(reg, "security_naks"):
        return CheckResult("security", Status.OK, "no security policy",
                           {"configured": False})
    warned = _sum(reg, "security_warnings")
    throttled = _sum(reg, "security_throttles")
    quarantined = _sum(reg, "security_quarantined_mounts")
    exposure = _sum(reg, "security_exposure_bytes")
    evidence = {
        "configured": True,
        "naks": _sum(reg, "security_naks"),
        "malformed_wrs": _sum(reg, "security_malformed_wrs"),
        "bad_calls": _sum(reg, "security_bad_calls"),
        "lease_reclaims": _sum(reg, "security_lease_reclaims"),
        "quota_evictions": _sum(reg, "security_quota_evictions"),
        "warned": warned, "throttled": throttled,
        "quarantined": quarantined,
        "redials_refused": _sum(reg, "security_redials_refused"),
        "exposure_bytes": exposure,
    }
    status = _worst(
        _grade(warned, slo.get("security", "warned_warn"), None),
        _grade(throttled, slo.get("security", "throttled_warn"), None),
        _grade(quarantined, slo.get("security", "quarantined_warn"),
               slo.get("security", "quarantined_crit")),
        _grade(exposure, slo.get("security", "exposure_bytes_warn"),
               slo.get("security", "exposure_bytes_crit")),
    )
    return CheckResult(
        "security", status,
        f"{warned:.0f} warned / {throttled:.0f} throttled / "
        f"{quarantined:.0f} quarantined, {exposure:.0f} B pinned",
        evidence)


@register_check("mux")
def check_mux(ctx: CheckContext) -> CheckResult:
    """QP multiplexing: lane FIFO integrity and channel-pool shape."""
    slo, reg = ctx.slo, ctx.registry
    if not _has(reg, "mux_channels"):
        return CheckResult("mux", Status.OK, "no QP multiplexing",
                           {"configured": False})
    channels = _sum(reg, "mux_channels")
    lanes = _sum(reg, "mux_lanes")
    violations = _sum(reg, "lane_order_violations")
    evidence = {"configured": True, "channels": channels, "lanes": lanes,
                "order_violations": violations,
                "connections": _sum(reg, "server_connections")}
    # Any out-of-order delivery inside a lane breaks the contract RC
    # ordering is supposed to guarantee — always CRITICAL.
    status = Status.CRITICAL if violations > 0 else Status.OK
    ratio_warn = slo.get("mux", "channels_per_lane_warn")
    if (status is Status.OK and ratio_warn is not None and lanes
            and channels / lanes >= ratio_warn):
        status = Status.WARN
    return CheckResult(
        "mux", status,
        f"{channels:.0f} shared QPs carrying {lanes:.0f} lanes, "
        f"{violations:.0f} FIFO violations", evidence)


@register_check("shards")
def check_shards(ctx: CheckContext) -> CheckResult:
    """Mount redirector placement balance across server shards."""
    slo, reg = ctx.slo, ctx.registry
    per_shard = _by_label(reg, "shard_mounts", "server")
    if not per_shard:
        return CheckResult("shards", Status.OK, "single server (no shards)",
                           {"configured": False})
    lo, hi = min(per_shard.values()), max(per_shard.values())
    imbalance = hi - lo
    evidence = {"configured": True, "shards": len(per_shard),
                "mounts_per_shard": per_shard, "imbalance": imbalance}
    limit = slo.get("shards", "imbalance_warn", 1)
    status = Status.WARN if imbalance > limit else Status.OK
    return CheckResult(
        "shards", status,
        f"{len(per_shard)} shards, {lo:.0f}-{hi:.0f} mounts each "
        f"(imbalance {imbalance:.0f})", evidence)


@register_check("faults")
def check_faults(ctx: CheckContext) -> CheckResult:
    """Recovery machinery: redials, retransmit storms, crash-restarts."""
    slo, reg = ctx.slo, ctx.registry
    reconnects = _sum(reg, "rpc_reconnects")
    retransmits = _sum(reg, "rpc_retransmits")
    calls = _sum(reg, "rpc_calls_sent")
    rate = retransmits / calls if calls else 0.0
    crashes = _sum(reg, "faults_server_crashes")
    evidence = {
        "reconnects": reconnects, "retransmits": retransmits,
        "calls_sent": calls, "retransmit_rate": rate,
        "calls_recovered": _sum(reg, "rpc_calls_recovered"),
        "server_crashes": crashes,
        "server_stalls": _sum(reg, "faults_server_stalls"),
        "messages_dropped": _sum(reg, "faults_messages_dropped"),
        "qp_kills": _sum(reg, "faults_qp_kills"),
    }
    status = _worst(
        _grade(reconnects, slo.get("faults", "reconnects_warn"),
               slo.get("faults", "reconnects_crit")),
        _grade(rate, slo.get("faults", "retransmit_rate_warn"),
               slo.get("faults", "retransmit_rate_crit")),
        _grade(crashes, slo.get("faults", "crashes_warn"),
               slo.get("faults", "crashes_crit")),
    )
    return CheckResult(
        "faults", status,
        f"{reconnects:.0f} redials, {retransmits:.0f} retransmits "
        f"({rate * 100:.1f}%), {crashes:.0f} crash-restarts", evidence)
