"""Server-side misbehavior scoring and the WARN → throttle → quarantine ladder.

The hardened data plane funnels every per-client misbehavior signal —
protection NAKs from the HCA (by cause), malformed RPC/RDMA headers,
lease reclaims, quota evictions and bad RPC calls — into one
:class:`SecurityPolicy` score.  Crossing the configured thresholds
(:class:`repro.core.config.RpcRdmaConfig`) escalates:

``WARN``
    Recorded only; the client keeps full service.  Operators see it in
    ``repro stats``.
``throttle``
    Every subsequent call from the client is delayed by
    ``throttle_delay_us`` before dispatch, bounding the rate at which a
    misbehaving mount can consume server resources.
``quarantine``
    The client's server transports are disconnected (which reclaims
    everything it pinned, per ``_reclaim_on_disconnect``) and its node
    name is banned: the cluster's redial path refuses new connections.

The policy is pure bookkeeping plus, at quarantine time, spawned
``disconnect()`` processes; it charges no CPU and draws no randomness,
so a run where no client ever misbehaves is event-identical to a run
without the policy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.sim import Counter, Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import RpcRdmaConfig

__all__ = ["SecurityPolicy", "client_of_qp"]

#: ProtectionError causes we break NAKs down by (matches TPT accounting).
NAK_CAUSES = ("stag", "access", "bounds")


def client_of_qp(qp) -> str:
    """The node name behind a QP (HCAs are named ``<node>.hca``)."""
    name = qp.hca.name
    return name.split(".")[0] if "." in name else name


class SecurityPolicy:
    """Per-client misbehavior ledger with escalating responses."""

    def __init__(self, sim: Simulator, config: "RpcRdmaConfig",
                 quarantine_enabled: bool = True, name: str = "secpolicy"):
        self.sim = sim
        self.config = config
        self.quarantine_enabled = quarantine_enabled
        self.name = name
        self.scores: dict[str, int] = {}
        self.naks_by_cause: dict[str, int] = {c: 0 for c in NAK_CAUSES}
        self.naks_by_client: dict[str, int] = {}
        self.warned: set[str] = set()
        self.throttled: set[str] = set()
        self.quarantined: set[str] = set()
        self.banned: set[str] = set()
        #: client -> that client's server-side transports (for eviction).
        self._transports: dict[str, list] = {}
        self.naks = Counter(f"{name}.naks")
        self.malformed_wrs = Counter(f"{name}.malformed")
        self.lease_reclaims = Counter(f"{name}.lease_reclaims")
        self.quota_evictions = Counter(f"{name}.quota_evictions")
        self.bad_calls = Counter(f"{name}.bad_calls")
        self.warnings = Counter(f"{name}.warnings")
        self.throttles = Counter(f"{name}.throttles")
        self.quarantines = Counter(f"{name}.quarantines")
        self.redials_refused = Counter(f"{name}.redials_refused")

    # -- wiring ------------------------------------------------------------
    def register_transport(self, client: str, transport) -> None:
        """Associate a server transport with the client it serves."""
        self._transports.setdefault(client, []).append(transport)

    # -- signal intake ------------------------------------------------------
    def record_nak(self, offender_qp, exc) -> None:
        """HCA hook: this server NAKed a remote op from ``offender_qp``."""
        client = client_of_qp(offender_qp)
        cause = getattr(exc, "cause", "stag")
        self.naks.add()
        self.naks_by_cause[cause] = self.naks_by_cause.get(cause, 0) + 1
        self.naks_by_client[client] = self.naks_by_client.get(client, 0) + 1
        self._score(client)

    def record_malformed(self, client: str) -> None:
        """A receive that failed RPC/RDMA header decode (garbage WR)."""
        self.malformed_wrs.add()
        self._score(client)

    def record_lease_reclaim(self, client: str, nbytes: int) -> None:
        """An exposure lease expired before the client's RDMA_DONE."""
        self.lease_reclaims.add(nbytes)
        self._score(client)

    def record_quota_eviction(self, client: str, nbytes: int) -> None:
        """Admission control evicted the client's oldest exposure."""
        self.quota_evictions.add(nbytes)
        self._score(client)

    def record_bad_call(self, client: Optional[str]) -> None:
        """The RPC layer rejected a call (unknown program, decode error)."""
        self.bad_calls.add()
        if client is not None:
            self._score(client)

    # -- escalation ---------------------------------------------------------
    def _score(self, client: str) -> None:
        score = self.scores.get(client, 0) + 1
        self.scores[client] = score
        cfg = self.config
        if (cfg.misbehavior_warn is not None and score >= cfg.misbehavior_warn
                and client not in self.warned):
            self.warned.add(client)
            self.warnings.add()
        if (cfg.misbehavior_throttle is not None
                and score >= cfg.misbehavior_throttle
                and client not in self.throttled):
            self.throttled.add(client)
            self.throttles.add()
        if (cfg.misbehavior_quarantine is not None
                and score >= cfg.misbehavior_quarantine
                and client not in self.quarantined):
            self.quarantine(client)

    def quarantine(self, client: str) -> None:
        """Evict the client's mounts and refuse its redials from now on."""
        if client in self.quarantined:
            return
        self.quarantined.add(client)
        self.banned.add(client)
        self.quarantines.add()
        if not self.quarantine_enabled:
            return
        for transport in self._transports.get(client, []):
            if not transport.failed:
                self.sim.process(transport.disconnect(),
                                 name=f"{self.name}.evict")

    # -- queries ------------------------------------------------------------
    def is_banned(self, client: str) -> bool:
        return client in self.banned

    def throttle_penalty_us(self, client: str) -> float:
        """Extra dispatch delay for this client's next call (0 if clean)."""
        if client in self.throttled:
            return self.config.throttle_delay_us
        return 0.0

    def exposure_bytes_by_client(self) -> dict[str, int]:
        """Currently exposed (pending-DONE) bytes per client."""
        out: dict[str, int] = {}
        for client, transports in self._transports.items():
            total = 0
            for t in transports:
                pending = getattr(t, "pending_done", None)
                if pending:
                    total += sum(r.length for rs in pending.values()
                                 for r in rs)
            out[client] = total
        return out
