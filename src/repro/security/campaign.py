"""Adversary campaigns: long-running attacks against a live cluster.

A *campaign* mixes malicious mounts in with legitimate IOzone-style
traffic on one simulated deployment and measures both sides of the
fight: what the attackers achieve (stag-guess hits, pinned-buffer
growth, garbage absorbed) and what the victims pay (read bandwidth,
p99 latency, server CPU) — with the §4.1 mitigations toggled by the
cluster's hardening knobs (leases, exposure quotas, misbehavior
quarantine, AES payloads).

Timeline of one campaign of duration ``D`` (all knobs in
:class:`CampaignParams`):

* ``t=0``       legitimate mounts and the DONE-withholder start
  steady-state read loops over pre-written files;
* ``t=0.25·D``  the stag-guessing adversary starts firing (optionally
  biased toward stags the server has ever exposed — an attacker with
  partial knowledge);
* ``t=0.4·D``   the flood adversary starts its garbage bursts;
* ``t=0.5·D``   the stale-chunk replay adversary (which until now
  behaved like an honest mount) replays its recorded windows;
* ``t=D``       legitimate loops wind down; metrics are captured, then
  the malicious connections are drained so teardown leak checks stay
  meaningful.

Against the Read-Write design the withholding and replay attacks
degrade to ordinary traffic by construction — the server exposes no
stags and controls its own buffer lifetime — which is exactly the
paper's security argument, measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.analysis.latency import LatencyRecorder
from repro.core import ReadWriteClient
from repro.errors import TransportError
from repro.nfs import NfsClient
from repro.payload import Payload
from repro.security.adversary import (
    DoneWithholdingClient,
    FloodAdversary,
    StagGuessingAdversary,
    StaleChunkReplayAdversary,
)
from repro.sim import AllOf

__all__ = ["CampaignParams", "CampaignResult", "run_campaign"]

ADVERSARIES = ("withhold", "guess", "replay", "flood")


@dataclass(frozen=True)
class CampaignParams:
    """One adversary campaign."""

    #: steady-state window (µs) the legitimate mounts are measured over.
    duration_us: float = 60_000.0
    #: which attacks to run alongside the legitimate traffic.
    adversaries: tuple = ADVERSARIES
    record_bytes: int = 128 * 1024
    file_bytes: int = 1 << 20
    #: stag-guess attempts (50 % biased to ever-exposed stags when
    #: ``informed_guesser`` — the partial-knowledge attacker).
    guesses: int = 64
    informed_guesser: bool = True
    #: flood rounds (each = ``8`` garbage sends + one wild RDMA Read).
    flood_bursts: int = 6
    #: legitimate reads the replay adversary performs while it is still
    #: indistinguishable from an honest mount.
    replay_reads: int = 4
    #: settle time between the replayer's last honest read and its
    #: replay burst, so in-flight DONEs retire first — a replay of a
    #: window the client itself just read is not a leak.
    replay_grace_us: float = 2_000.0
    seed: int = 1337

    def __post_init__(self):
        if self.duration_us <= 0:
            raise ValueError("duration_us must be positive")
        for adv in self.adversaries:
            if adv not in ADVERSARIES:
                raise ValueError(f"unknown adversary {adv!r}")


@dataclass
class CampaignResult:
    """Scalar outcomes of one campaign (everything a figure needs)."""

    # victims
    legit_ops: int = 0
    legit_read_mb_s: float = 0.0
    legit_p99_us: float = 0.0
    legit_p99_late_us: float = 0.0      # p99 of the attacked half
    server_cpu: float = 0.0
    # attack surface
    pinned_peak_bytes: int = 0
    pinned_final_bytes: int = 0
    protection_naks: int = 0
    # per-adversary outcomes
    guess_attempts: int = 0
    guess_hits: int = 0
    replay_count: int = 0
    replay_hits: int = 0
    flood_garbage: int = 0
    malformed_wrs: int = 0
    # mitigation activity
    lease_reclaimed_bytes: int = 0
    quota_evicted_bytes: int = 0
    quarantined: int = 0
    redials_refused: int = 0
    aes_crypt_bytes: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class _MalMount:
    """One malicious client's wiring."""

    node: object
    transport: object
    nfs: Optional[NfsClient] = None
    server_transports: list = field(default_factory=list)


def _add_mal_node(cluster, name: str):
    profile = cluster.config.profile
    return cluster.fabric.add_node(
        name,
        cpu_config=profile.client_cpu,
        hca_config=profile.client_hca,
        link_config=profile.link,
        interrupt_cost_us=profile.interrupt_cost_us,
    )


def _qp_factory(cluster, node, servers: list, with_ready: bool = False):
    """Redial closure for raw adversaries: honors quarantine bans and
    tracks every server transport it creates so the campaign can drain
    them at teardown.  ``with_ready`` returns ``(qp, ready_event)`` for
    adversaries whose sends must land (the flooder) rather than fire
    into an RNR wall."""

    def factory():
        policy = cluster.security_policy
        if policy is not None and policy.is_banned(node.name):
            policy.redials_refused.add()
            raise TransportError(f"{node.name}: redial refused (quarantined)")
        qp_c, qp_s = cluster.fabric.connect(node, cluster.server_node)
        server = cluster._make_server_transport(qp_s)
        servers.append(server)
        if with_ready:
            return qp_c, server.ready
        return qp_c

    return factory


def _mal_client_mount(cluster, node, client_cls, servers: list) -> _MalMount:
    """A full NFS mount for a protocol-speaking adversary."""
    qp_c, qp_s = cluster.fabric.connect(node, cluster.server_node)
    strategy = cluster._make_strategy(cluster.config.strategy, node)
    client = client_cls(node, qp_c, cluster.rpcrdma, strategy)
    server = cluster._make_server_transport(qp_s)
    servers.append(server)
    client.peer_ready = server.ready
    client.reconnector = cluster._redial
    nfs = NfsClient(client, cluster.nfs_server.root_handle(),
                    name=f"{node.name}.nfs")
    return _MalMount(node=node, transport=client, nfs=nfs,
                     server_transports=servers)


def run_campaign(cluster, params: CampaignParams) -> CampaignResult:
    """Run one campaign against ``cluster``; returns scalar outcomes.

    The cluster must use an RDMA transport.  Its own mounts are the
    legitimate victims; malicious mounts are added on fresh nodes.
    """
    if not cluster.config.is_rdma:
        raise ValueError("campaigns require an RDMA cluster")
    sim = cluster.sim
    is_rr = cluster.config.transport == "rdma-rr"
    payload = Payload.tile(bytes(range(256)), params.record_bytes)
    records = max(1, params.file_bytes // params.record_bytes)
    mal_servers: list = []

    # -- malicious mounts --------------------------------------------------
    # Withhold/replay are Read-Read protocol attacks; against Read-Write
    # they degrade to ordinary clients (nothing to pin, nothing to
    # replay) — the comparison fig12 exists to show.
    withholder = replayer = guesser = flooder = None
    if "withhold" in params.adversaries:
        cls = DoneWithholdingClient if is_rr else ReadWriteClient
        withholder = _mal_client_mount(cluster, _add_mal_node(cluster, "malwh"),
                                       cls, mal_servers)
    if "replay" in params.adversaries:
        cls = StaleChunkReplayAdversary if is_rr else ReadWriteClient
        replayer = _mal_client_mount(cluster, _add_mal_node(cluster, "malrp"),
                                     cls, mal_servers)
    if "guess" in params.adversaries:
        node = _add_mal_node(cluster, "malsg")
        guesser = StagGuessingAdversary(
            node, _qp_factory(cluster, node, mal_servers), seed=params.seed)
    if "flood" in params.adversaries:
        node = _add_mal_node(cluster, "malfl")
        flooder = FloodAdversary(
            node, _qp_factory(cluster, node, mal_servers, with_ready=True),
            seed=params.seed + 1)

    # -- setup: pre-write every file (untimed) -----------------------------
    def write_file(nfs, tag: str) -> Generator:
        fh, _ = yield from nfs.create(nfs.root, f"campaign.{tag}")
        for i in range(records):
            yield from nfs.write(fh, i * params.record_bytes, payload)
        yield from nfs.commit(fh)
        return fh

    def setup() -> Generator:
        legit = []
        for m, mount in enumerate(cluster.mounts):
            legit.append((mount, (yield from write_file(mount.nfs, f"l{m}"))))
        mal = {}
        for tag, mm in (("wh", withholder), ("rp", replayer)):
            if mm is not None:
                mal[tag] = (mm, (yield from write_file(mm.nfs, tag)))
        return legit, mal

    legit_handles, mal_handles = cluster.run(setup())

    cluster.reset_utilization_windows()
    t0 = sim.now
    t_end = t0 + params.duration_us
    mid = t0 + params.duration_us / 2
    recorder = LatencyRecorder("legit")
    late = LatencyRecorder("legit-late")
    legit_ops = [0]
    legit_end = [t0]

    # -- victim traffic ----------------------------------------------------
    def legit_loop(mount, fh) -> Generator:
        i = 0
        while sim.now < t_end:
            start = sim.now
            data, _, _ = yield from mount.nfs.read(
                fh, (i % records) * params.record_bytes, params.record_bytes)
            if len(data) != params.record_bytes:
                raise AssertionError("short read in campaign")
            elapsed = sim.now - start
            recorder.record(elapsed)
            if start >= mid:
                late.record(elapsed)
            legit_ops[0] += 1
            legit_end[0] = max(legit_end[0], sim.now)
            i += 1

    # -- attacks -----------------------------------------------------------
    def withhold_loop() -> Generator:
        mm, fh = mal_handles["wh"]
        i = 0
        try:
            while sim.now < t_end:
                yield from mm.nfs.read(
                    fh, (i % records) * params.record_bytes,
                    params.record_bytes)
                i += 1
        except TransportError:
            return  # evicted and refused redial: the defense worked

    def replay_loop() -> Generator:
        mm, fh = mal_handles["rp"]
        try:
            for i in range(params.replay_reads):
                yield from mm.nfs.read(
                    fh, (i % records) * params.record_bytes,
                    params.record_bytes)
        except TransportError:
            return
        yield sim.timeout(max(mid - sim.now, params.replay_grace_us))
        if isinstance(mm.transport, StaleChunkReplayAdversary):
            yield from mm.transport.replay(
                _qp_factory(cluster, mm.node, mal_servers))

    def guess_loop() -> Generator:
        yield sim.timeout(params.duration_us * 0.25)
        targets = (cluster.server_node.hca.tpt.stags_exposed_ever
                   if params.informed_guesser else None)
        try:
            yield from guesser.run(params.guesses, target_stags=targets)
        except TransportError:
            return

    def flood_loop() -> Generator:
        yield sim.timeout(params.duration_us * 0.4)
        yield from flooder.run(params.flood_bursts)

    procs = [sim.process(legit_loop(mount, fh), name="campaign.legit")
             for mount, fh in legit_handles]
    if withholder is not None:
        procs.append(sim.process(withhold_loop(), name="campaign.withhold"))
    if replayer is not None:
        procs.append(sim.process(replay_loop(), name="campaign.replay"))
    if guesser is not None:
        procs.append(sim.process(guess_loop(), name="campaign.guess"))
    if flooder is not None:
        procs.append(sim.process(flood_loop(), name="campaign.flood"))

    def drive() -> Generator:
        yield AllOf(sim, procs)

    cluster.run(drive())
    # Victim bandwidth is measured over the *victims'* window — the
    # attacks may drain long after the legitimate loops wind down.
    elapsed = legit_end[0] - t0

    # -- capture (before draining the malicious connections) ---------------
    result = CampaignResult()
    result.legit_ops = legit_ops[0]
    result.legit_read_mb_s = (
        legit_ops[0] * params.record_bytes / elapsed if elapsed else 0.0)
    result.legit_p99_us = recorder.summarize().p99
    result.legit_p99_late_us = late.summarize().p99
    result.server_cpu = cluster.server_cpu_utilization()

    tpt = cluster.server_node.hca.tpt
    result.protection_naks = tpt.protection_faults.events
    pinned_final = 0
    pinned_peak = 0
    for transport in cluster.server_transports:
        pending = getattr(transport, "pending_done", None)
        if pending is not None:
            pinned_final += sum(r.length for rs in pending.values()
                                for r in rs)
            pinned_peak = max(pinned_peak,
                              getattr(transport, "exposed_bytes_peak", 0))
        result.malformed_wrs += transport.malformed_received.events
        leases = getattr(transport, "lease_reclaims", None)
        if leases is not None:
            result.lease_reclaimed_bytes += int(leases.value)
        quota = getattr(transport, "quota_evictions", None)
        if quota is not None:
            result.quota_evicted_bytes += int(quota.value)
    result.pinned_final_bytes = pinned_final
    result.pinned_peak_bytes = pinned_peak

    if guesser is not None:
        result.guess_attempts = guesser.attempts.events
        result.guess_hits = guesser.successes.events
    if replayer is not None and isinstance(
            replayer.transport, StaleChunkReplayAdversary):
        result.replay_count = replayer.transport.replays.events
        result.replay_hits = replayer.transport.replay_hits.events
    if flooder is not None:
        result.flood_garbage = flooder.garbage_sent.events

    policy = cluster.security_policy
    if policy is not None:
        result.quarantined = len(policy.quarantined)
        result.redials_refused = policy.redials_refused.events

    if cluster.rpcrdma.aes_payload:
        result.aes_crypt_bytes = int(
            cluster.server_node.cpu.crypt_bytes.value)

    # -- drain: disconnect every malicious connection so the sanitizer's
    # teardown leak check sees only what the mitigations failed to
    # reclaim on the *legitimate* transports (which is: nothing).
    def drain() -> Generator:
        for server in mal_servers:
            if server in cluster.server_transports:
                cluster.server_transports.remove(server)
            yield from server.disconnect()

    cluster.run(drain())
    return result
