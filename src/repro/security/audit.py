"""Exposure auditing and the executable Table 1.

``probe_primitive_properties`` reproduces the paper's Table 1 by
*probing* the verbs substrate rather than asserting constants: it runs
four miniature exchanges and observes whether the receive buffer had to
be exposed, pre-posted, steering-tagged and rendezvoused for each
primitive class.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ib import (
    AccessFlags,
    Fabric,
    RdmaWriteWR,
    RecvWR,
    Segment,
    SendWR,
)
from repro.sim import Simulator

__all__ = [
    "PrimitiveProperties",
    "audit_server_exposure",
    "probe_primitive_properties",
    "stag_guess_success_probability",
]


@dataclass(frozen=True)
class PrimitiveProperties:
    """One row-group of Table 1."""

    primitive: str                  # "channel" | "memory"
    receive_buffer_exposed: bool
    receive_buffer_pre_posted: bool
    steering_tag: bool
    rendezvous: bool


def probe_primitive_properties() -> list[PrimitiveProperties]:
    """Derive Table 1 by exercising the verbs layer."""
    sim = Simulator()
    fabric = Fabric(sim, seed=404)
    a = fabric.add_node("probe-a")
    b = fabric.add_node("probe-b")
    qa, qb = fabric.connect(a, b)

    def setup():
        send_src = a.arena.alloc(4096)
        recv_dst = b.arena.alloc(4096)
        recv_mr = yield from b.hca.tpt.register(recv_dst, AccessFlags.LOCAL_WRITE)
        write_dst = b.arena.alloc(4096)
        write_mr = yield from b.hca.tpt.register(write_dst, AccessFlags.REMOTE_WRITE)
        src_mr = yield from a.hca.tpt.register(send_src, AccessFlags.LOCAL_WRITE)
        return recv_mr, write_mr, src_mr

    recv_mr, write_mr, src_mr = sim.run_until_complete(sim.process(setup()))

    # -- channel semantics probe ---------------------------------------------
    # 1. A send with no pre-posted receive goes RNR (pre-posting required).
    probe_send = SendWR(sim, inline=b"probe")

    def send_no_recv():
        yield from a.hca.post_send(qa, probe_send)
        yield sim.timeout(30.0)  # long enough for the first RNR event

    sim.run_until_complete(sim.process(send_no_recv()))
    channel_preposted_required = a.hca.rnr_events.events > 0
    # Let it land now.
    qb.post_recv(RecvWR(sim, [Segment(recv_mr.stag, recv_mr.addr, 4096)]))
    sim.run(until=sim.now + 10_000.0)

    # 2. The receive buffer's MR carries no remote rights (not exposed),
    #    and the sender never named a steering tag or buffer address.
    channel_exposed = recv_mr.access.remote
    channel_needs_stag = False      # SendWR carries no remote segment at all
    channel_rendezvous = False      # nothing about B's memory was exchanged

    # -- memory semantics probe ---------------------------------------------
    # An RDMA Write requires a rendezvoused (stag, addr) naming an MR with
    # remote rights; receive-side posting is NOT required.
    wr = RdmaWriteWR(
        sim,
        local=[Segment(src_mr.stag, src_mr.addr, 8)],
        remote=Segment(write_mr.stag, write_mr.addr, 8),
    )
    posted_recvs_before = qb.recv_queue_depth

    def do_write():
        yield from a.hca.post_send(qa, wr)
        yield wr.completion

    sim.run_until_complete(sim.process(do_write()))
    memory_ok_without_recv = wr.cqe.ok and qb.recv_queue_depth == posted_recvs_before
    memory_exposed = write_mr.access.remote
    memory_needs_stag = True        # the WR literally carries the stag
    memory_rendezvous = True        # stag+addr had to be communicated first

    return [
        PrimitiveProperties(
            primitive="channel",
            receive_buffer_exposed=bool(channel_exposed),
            receive_buffer_pre_posted=bool(channel_preposted_required),
            steering_tag=channel_needs_stag,
            rendezvous=channel_rendezvous,
        ),
        PrimitiveProperties(
            primitive="memory",
            receive_buffer_exposed=bool(memory_exposed),
            receive_buffer_pre_posted=not memory_ok_without_recv,
            steering_tag=memory_needs_stag,
            rendezvous=memory_rendezvous,
        ),
    ]


def audit_server_exposure(server_node, server_transports) -> dict:
    """Attack-surface snapshot of an NFS server (DESIGN.md invariant 3).

    ``server_node`` may be a single node or a sequence of nodes — a
    sharded deployment exposes regions on *every* server HCA, so the
    audit walks each TPT and sums.  (The single-node form silently
    missed K-1 nodes' exposures on multi-node clusters.)

    Receive-buffer accounting is pool-aware: transports that share one
    :class:`~repro.ib.srq.SharedReceivePool` contribute its registered
    bytes *once* (keyed by pool identity), while per-connection rings
    are summed per transport.  Before the shared pool existed every
    transport owned its ring, so the naive per-transport sum was exact;
    after PR 4 it would overcount the shared pool ``n``-fold.
    """
    nodes = (list(server_node) if isinstance(server_node, (list, tuple))
             else [server_node])
    tpts = [node.hca.tpt for node in nodes]
    exposed_now = [mr for tpt in tpts for mr in tpt.remotely_exposed()]
    pending = 0
    pending_bytes = 0
    recv_bytes = 0
    shared_pools: set[int] = set()
    for transport in server_transports:
        if hasattr(transport, "pending_done"):
            pending += len(transport.pending_done)
            pending_bytes += sum(
                r.length
                for regions in transport.pending_done.values()
                for r in regions
            )
        srq = getattr(transport, "srq", None)
        if srq is not None:
            if id(srq) not in shared_pools:
                shared_pools.add(id(srq))
                recv_bytes += srq.registered_bytes
            continue
        pool = getattr(transport, "recv_pool", None)
        if pool is not None:
            recv_bytes += pool.count * pool.size
    return {
        "exposed_regions_now": len(exposed_now),
        "exposed_bytes_now": sum(mr.length for mr in exposed_now),
        "stags_exposed_ever": sum(len(tpt.stags_exposed_ever)
                                  for tpt in tpts),
        "protection_faults": sum(tpt.protection_faults.events
                                 for tpt in tpts),
        "pending_done_ops": pending,
        "pending_done_bytes": pending_bytes,
        "recv_registered_bytes": recv_bytes,
        "recv_shared_pools": len(shared_pools),
        "server_nodes_audited": len(nodes),
    }


def stag_guess_success_probability(exposed_stags: int) -> float:
    """Odds one uniform 32-bit guess names an exposed stag."""
    return exposed_stags / 2**32
