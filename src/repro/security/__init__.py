"""Security evaluation: the §4.1 threat model, executable.

The paper's security argument is comparative: the Read-Read design
exposes server steering tags and puts server buffer lifetime in client
hands; the Read-Write design exposes nothing on the server and the
client's exposure is only toward the (trusted) server.
:mod:`repro.security.adversary` implements the malicious clients the
paper describes — steering-tag guessers, RDMA_DONE withholders,
out-of-bounds readers, stale-chunk replayers, garbage flooders — and
:mod:`repro.security.audit` measures the attack surface and reproduces
Table 1's primitive-property matrix by probing the verbs layer.

:mod:`repro.security.campaign` runs those adversaries as long-lived
malicious mounts mixed with legitimate traffic, and
:mod:`repro.security.policy` is the server-side misbehavior ledger that
the hardened data plane (leases, quotas, quarantine) reports into.
"""

from repro.security.adversary import (
    DoneWithholdingClient,
    FloodAdversary,
    OutOfBoundsProbe,
    StagGuessingAdversary,
    StaleChunkReplayAdversary,
)
from repro.security.audit import (
    PrimitiveProperties,
    audit_server_exposure,
    probe_primitive_properties,
    stag_guess_success_probability,
)
from repro.security.campaign import CampaignParams, CampaignResult, run_campaign
from repro.security.policy import SecurityPolicy

__all__ = [
    "CampaignParams",
    "CampaignResult",
    "DoneWithholdingClient",
    "FloodAdversary",
    "OutOfBoundsProbe",
    "PrimitiveProperties",
    "SecurityPolicy",
    "StagGuessingAdversary",
    "StaleChunkReplayAdversary",
    "audit_server_exposure",
    "probe_primitive_properties",
    "run_campaign",
    "stag_guess_success_probability",
]
