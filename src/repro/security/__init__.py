"""Security evaluation: the §4.1 threat model, executable.

The paper's security argument is comparative: the Read-Read design
exposes server steering tags and puts server buffer lifetime in client
hands; the Read-Write design exposes nothing on the server and the
client's exposure is only toward the (trusted) server.
:mod:`repro.security.adversary` implements the malicious clients the
paper describes — steering-tag guessers, RDMA_DONE withholders,
out-of-bounds readers — and :mod:`repro.security.audit` measures the
attack surface and reproduces Table 1's primitive-property matrix by
probing the verbs layer.
"""

from repro.security.adversary import (
    DoneWithholdingClient,
    OutOfBoundsProbe,
    StagGuessingAdversary,
)
from repro.security.audit import (
    PrimitiveProperties,
    audit_server_exposure,
    probe_primitive_properties,
    stag_guess_success_probability,
)

__all__ = [
    "DoneWithholdingClient",
    "OutOfBoundsProbe",
    "PrimitiveProperties",
    "StagGuessingAdversary",
    "audit_server_exposure",
    "probe_primitive_properties",
    "stag_guess_success_probability",
]
