"""Malicious clients from §4.1, runnable against either transport design.

``StagGuessingAdversary``
    "Since the steering tags are 32-bits in length, a misbehaving or
    malicious client might attempt to guess them and thereby possibly
    read a buffer for which it did not have access."  The adversary
    reuses its legitimate RC connection to fire RDMA Reads at random
    steering tags.  Every guess lands in the target's TPT check; against
    the Read-Write server there is nothing to hit, ever.

``DoneWithholdingClient``
    "A malicious or malfunctioning client may never send the RDMA Done
    message, essentially tying up the server resources."  A Read-Read
    client whose ``_send_done`` is a no-op: the server's exposed regions
    accumulate without bound.

``OutOfBoundsProbe``
    A client that *was* legitimately handed a chunk but tries to read
    beyond its advertised window — exercising the TPT's bounds checks.
"""

from __future__ import annotations

from typing import Generator

from repro.core.readread import ReadReadClient
from repro.ib.fabric import IBNode
from repro.ib.memory import AccessFlags
from repro.ib.verbs import QPError, QueuePair, RdmaReadWR, Segment
from repro.sim import Counter, DeterministicRNG

__all__ = ["DoneWithholdingClient", "OutOfBoundsProbe", "StagGuessingAdversary"]


class StagGuessingAdversary:
    """Fires RDMA Reads at guessed steering tags over a live RC QP.

    Each guess that draws a NAK kills the QP (as real RC semantics
    demand), so the adversary reconnects — modeled by the caller handing
    over a fresh QP factory.  Success statistics are recorded either way.
    """

    def __init__(self, node: IBNode, qp_factory, seed: int = 1337,
                 probe_bytes: int = 4096):
        self.node = node
        self.qp_factory = qp_factory
        self.rng = DeterministicRNG(seed, "stag-adversary")
        self.probe_bytes = probe_bytes
        self.attempts = Counter("adversary.attempts")
        self.successes = Counter("adversary.successes")
        self.naks = Counter("adversary.naks")
        self.stolen: list[bytes] = []

    def run(self, guesses: int, target_stags=None) -> Generator:
        """Process: make ``guesses`` attempts; optionally bias draws to a
        candidate list (models an attacker with partial knowledge)."""
        scratch = self.node.arena.alloc(self.probe_bytes)

        def reg():
            return (yield from self.node.hca.tpt.register(
                scratch, AccessFlags.LOCAL_WRITE))

        lmr = yield from reg()
        qp = self.qp_factory()
        for _ in range(guesses):
            if target_stags is not None and self.rng.uniform() < 0.5:
                stag = self.rng.choice(list(target_stags))
            else:
                stag = self.rng.integers(1, 2**32)
            addr = self.rng.integers(0x1000_0000, 0x1100_0000)
            wr = RdmaReadWR(
                self.node.sim,
                local=[Segment(lmr.stag, lmr.addr, self.probe_bytes)],
                remote=Segment(stag, addr, self.probe_bytes),
            )
            self.attempts.add()
            try:
                yield from self.node.hca.post_send(qp, wr)
            except QPError:
                qp = self.qp_factory()  # reconnect after a NAK killed it
                yield from self.node.hca.post_send(qp, wr)
            yield wr.completion
            if wr.cqe.ok:
                self.successes.add()
                self.stolen.append(scratch.peek(0, self.probe_bytes))
            else:
                self.naks.add()
                if qp.state.name == "ERROR":
                    qp = self.qp_factory()

    @property
    def hit_rate(self) -> float:
        return (self.successes.events / self.attempts.events
                if self.attempts.events else 0.0)


class DoneWithholdingClient(ReadReadClient):
    """A Read-Read client that never signals RDMA_DONE (§4.1).

    Functionally complete from the application's point of view — reads
    return correct data — while silently pinning the server's exposed
    buffers forever.
    """

    design = "read-read-withholding"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.dones_suppressed = Counter(f"{self.name}.suppressed")

    def _send_done(self, xid: int) -> Generator:
        self.dones_suppressed.add()
        return
        yield  # pragma: no cover


class OutOfBoundsProbe:
    """Reads past the end of a legitimately received chunk."""

    def __init__(self, node: IBNode, qp: QueuePair):
        self.node = node
        self.qp = qp
        self.rejected = Counter("oob.rejected")
        self.leaked = Counter("oob.leaked")

    def probe(self, segment: Segment, overrun_bytes: int) -> Generator:
        """Process: attempt to read ``overrun_bytes`` past the window."""
        scratch = self.node.arena.alloc(segment.length + overrun_bytes)
        lmr = yield from self.node.hca.tpt.register(scratch, AccessFlags.LOCAL_WRITE)
        wr = RdmaReadWR(
            self.node.sim,
            local=[Segment(lmr.stag, lmr.addr, segment.length + overrun_bytes)],
            remote=Segment(segment.stag, segment.addr,
                           segment.length + overrun_bytes),
        )
        yield from self.node.hca.post_send(self.qp, wr)
        yield wr.completion
        if wr.cqe.ok:
            self.leaked.add(segment.length + overrun_bytes)
        else:
            self.rejected.add()
        return wr.cqe
