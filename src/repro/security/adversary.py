"""Malicious clients from §4.1, runnable against either transport design.

``StagGuessingAdversary``
    "Since the steering tags are 32-bits in length, a misbehaving or
    malicious client might attempt to guess them and thereby possibly
    read a buffer for which it did not have access."  The adversary
    reuses its legitimate RC connection to fire RDMA Reads at random
    steering tags.  Every guess lands in the target's TPT check; against
    the Read-Write server there is nothing to hit, ever.

``DoneWithholdingClient``
    "A malicious or malfunctioning client may never send the RDMA Done
    message, essentially tying up the server resources."  A Read-Read
    client whose ``_send_done`` is a no-op: the server's exposed regions
    accumulate without bound.

``OutOfBoundsProbe``
    A client that *was* legitimately handed a chunk but tries to read
    beyond its advertised window — exercising the TPT's bounds checks.

``StaleChunkReplayAdversary``
    A Read-Read client that behaves perfectly — fetches chunks, sends
    its DONEs — while recording every chunk window it was handed, then
    replays RDMA Reads against those retired stags across registration
    epochs (the use-after-DONE / stag-reuse attack).

``FloodAdversary``
    Bursts of garbage inline sends (undecodable RPC/RDMA headers) mixed
    with wild RDMA Reads: the resource-exhaustion/fuzzing client that
    the misbehavior-score → quarantine ladder exists for.

Every attack work request is tagged ``wr.adversarial = True`` so the
runtime sanitizer treats the TPT's NAK as the *expected* outcome rather
than a stale-stag invariant violation.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.readread import ReadReadClient
from repro.errors import TransportError
from repro.ib.fabric import IBNode
from repro.ib.memory import AccessFlags
from repro.ib.verbs import QPError, QueuePair, RdmaReadWR, Segment, SendWR
from repro.sim import Counter, DeterministicRNG

__all__ = [
    "DoneWithholdingClient",
    "FloodAdversary",
    "OutOfBoundsProbe",
    "StagGuessingAdversary",
    "StaleChunkReplayAdversary",
]


class StagGuessingAdversary:
    """Fires RDMA Reads at guessed steering tags over a live RC QP.

    Each guess that draws a NAK kills the QP (as real RC semantics
    demand), so the adversary reconnects — modeled by the caller handing
    over a fresh QP factory.  Success statistics are recorded either way.
    """

    def __init__(self, node: IBNode, qp_factory, seed: int = 1337,
                 probe_bytes: int = 4096):
        self.node = node
        self.qp_factory = qp_factory
        self.rng = DeterministicRNG(seed, "stag-adversary")
        self.probe_bytes = probe_bytes
        self.attempts = Counter("adversary.attempts")
        self.successes = Counter("adversary.successes")
        self.naks = Counter("adversary.naks")
        self.stolen: list[bytes] = []

    def run(self, guesses: int, target_stags=None) -> Generator:
        """Process: make ``guesses`` attempts; optionally bias draws to a
        candidate list (models an attacker with partial knowledge)."""
        scratch = self.node.arena.alloc(self.probe_bytes)

        def reg():
            return (yield from self.node.hca.tpt.register(
                scratch, AccessFlags.LOCAL_WRITE))

        lmr = yield from reg()
        qp = self.qp_factory()
        for _ in range(guesses):
            if target_stags and self.rng.uniform() < 0.5:
                stag = self.rng.choice(list(target_stags))
            else:
                stag = self.rng.integers(1, 2**32)
            addr = self.rng.integers(0x1000_0000, 0x1100_0000)
            wr = RdmaReadWR(
                self.node.sim,
                local=[Segment(lmr.stag, lmr.addr, self.probe_bytes)],
                remote=Segment(stag, addr, self.probe_bytes),
            )
            wr.adversarial = True
            self.attempts.add()
            try:
                yield from self.node.hca.post_send(qp, wr)
            except QPError:
                qp = self.qp_factory()  # reconnect after a NAK killed it
                yield from self.node.hca.post_send(qp, wr)
            yield wr.completion
            if wr.cqe.ok:
                self.successes.add()
                self.stolen.append(scratch.peek(0, self.probe_bytes))
            else:
                self.naks.add()
                if qp.state.name == "ERROR":
                    qp = self.qp_factory()

    @property
    def hit_rate(self) -> float:
        return (self.successes.events / self.attempts.events
                if self.attempts.events else 0.0)


class DoneWithholdingClient(ReadReadClient):
    """A Read-Read client that never signals RDMA_DONE (§4.1).

    Functionally complete from the application's point of view — reads
    return correct data — while silently pinning the server's exposed
    buffers forever.
    """

    design = "read-read-withholding"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.dones_suppressed = Counter(f"{self.name}.suppressed")

    def _send_done(self, xid: int) -> Generator:
        self.dones_suppressed.add()
        return
        yield  # pragma: no cover


class OutOfBoundsProbe:
    """Reads past the end of a legitimately received chunk."""

    def __init__(self, node: IBNode, qp: QueuePair):
        self.node = node
        self.qp = qp
        self.rejected = Counter("oob.rejected")
        self.leaked = Counter("oob.leaked")

    def probe(self, segment: Segment, overrun_bytes: int) -> Generator:
        """Process: attempt to read ``overrun_bytes`` past the window."""
        scratch = self.node.arena.alloc(segment.length + overrun_bytes)
        lmr = yield from self.node.hca.tpt.register(scratch, AccessFlags.LOCAL_WRITE)
        wr = RdmaReadWR(
            self.node.sim,
            local=[Segment(lmr.stag, lmr.addr, segment.length + overrun_bytes)],
            remote=Segment(segment.stag, segment.addr,
                           segment.length + overrun_bytes),
        )
        wr.adversarial = True
        yield from self.node.hca.post_send(self.qp, wr)
        yield wr.completion
        if wr.cqe.ok:
            self.leaked.add(segment.length + overrun_bytes)
        else:
            self.rejected.add()
        return wr.cqe


class StaleChunkReplayAdversary(ReadReadClient):
    """Fetch legitimately, DONE promptly — then replay the stale stags.

    Unlike the withholder this client is indistinguishable from an
    honest mount while its RPCs run: every chunk is fetched and every
    DONE sent on time.  But it squirrels away the ``(stag, addr, len)``
    of every window the server ever advertised and later replays RDMA
    Reads against them.  Once the server has deregistered (DONE, lease
    reclaim, or quota eviction) the TPT epoch has moved on and each
    replay must draw a NAK; a hit would mean the window outlived its
    grant — exactly the stag-reuse-across-epochs hole.
    """

    design = "read-read-replay"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: every chunk window the server ever handed us, in order.
        self.recorded: list[Segment] = []
        self.replays = Counter(f"{self.name}.replays")
        self.replay_naks = Counter(f"{self.name}.replay_naks")
        self.replay_hits = Counter(f"{self.name}.replay_hits")

    def _fetch_via_bounce(self, segments, length: int) -> Generator:
        self.recorded.extend(segments)
        return (yield from super()._fetch_via_bounce(segments, length))

    def replay(self, qp_factory, limit: Optional[int] = None) -> Generator:
        """Process: replay recorded windows over a fresh attack QP.

        Runs on its own QP so the NAK-per-replay churn does not kill the
        legitimate-looking mount connection.  Stops early if the factory
        refuses to redial (quarantine).
        """
        targets = self.recorded if limit is None else self.recorded[:limit]
        if not targets:
            return
        scratch = self.node.arena.alloc(max(s.length for s in targets))
        lmr = yield from self.node.hca.tpt.register(scratch, AccessFlags.LOCAL_WRITE)
        try:
            qp = qp_factory()
        except TransportError:
            return
        for seg in targets:
            wr = RdmaReadWR(
                self.node.sim,
                local=[Segment(lmr.stag, lmr.addr, seg.length)],
                remote=Segment(seg.stag, seg.addr, seg.length),
            )
            wr.adversarial = True
            self.replays.add()
            try:
                yield from self.node.hca.post_send(qp, wr)
            except QPError:
                try:
                    qp = qp_factory()
                except TransportError:
                    return
                yield from self.node.hca.post_send(qp, wr)
            yield wr.completion
            if wr.cqe.ok:
                self.replay_hits.add(seg.length)
            else:
                self.replay_naks.add()
                if qp.state.name == "ERROR":
                    try:
                        qp = qp_factory()
                    except TransportError:
                        return


#: 48 zero bytes: version field 0 != RPC/RDMA version, so the server's
#: header decode deterministically raises XdrError — malformed on every
#: delivery without needing a random fuzzer.
_GARBAGE = bytes(48)


class FloodAdversary:
    """Garbage-send bursts plus wild RDMA Reads: the quarantine trigger.

    Each burst delivers ``burst`` undecodable inline sends (the server
    burns a receive + decode attempt on every one and scores the client
    as malformed) followed by one wild adversarial RDMA Read whose NAK
    kills the QP.  The adversary redials through ``qp_factory`` and
    keeps going until the factory refuses — which is how mount eviction
    plus redial refusal terminates the campaign against a quarantined
    client.
    """

    def __init__(self, node: IBNode, qp_factory, seed: int = 4242,
                 burst: int = 8):
        self.node = node
        self.qp_factory = qp_factory
        self.rng = DeterministicRNG(seed, "flood-adversary")
        self.burst = burst
        self.garbage_sent = Counter("flood.garbage")
        self.wild_reads = Counter("flood.wild_reads")
        self.naks = Counter("flood.naks")
        self.redials = Counter("flood.redials")
        self.redials_refused = Counter("flood.refused")

    def _redial(self) -> Generator:
        """Process: dial a fresh QP; returns None once redials are refused.

        The factory may return a bare QP or ``(qp, ready_event)``; with
        the latter the flooder waits for the server side to post its
        receives — garbage must *land* to burn server cycles, an RNR
        drop costs the victim nothing.
        """
        try:
            dialed = self.qp_factory()
        except TransportError:
            self.redials_refused.add()
            return None
        self.redials.add()
        if isinstance(dialed, tuple):
            qp, ready = dialed
            yield ready
            return qp
        return dialed

    def run(self, bursts: int) -> Generator:
        """Process: ``bursts`` rounds of garbage + one wild read each."""
        scratch = self.node.arena.alloc(4096)
        lmr = yield from self.node.hca.tpt.register(scratch, AccessFlags.LOCAL_WRITE)
        qp = yield from self._redial()
        if qp is None:
            return
        for _ in range(bursts):
            for _ in range(self.burst):
                wr = SendWR(self.node.sim, inline=_GARBAGE)
                wr.adversarial = True
                try:
                    yield from self.node.hca.post_send(qp, wr)
                except QPError:
                    qp = yield from self._redial()
                    if qp is None:
                        return
                    yield from self.node.hca.post_send(qp, wr)
                yield wr.completion
                if wr.cqe.ok:
                    self.garbage_sent.add()
            # Wild read: guaranteed NAK, guaranteed dead QP.
            stag = self.rng.integers(1, 2**32)
            addr = self.rng.integers(0x1000_0000, 0x1100_0000)
            wr = RdmaReadWR(
                self.node.sim,
                local=[Segment(lmr.stag, lmr.addr, 4096)],
                remote=Segment(stag, addr, 4096),
            )
            wr.adversarial = True
            self.wild_reads.add()
            try:
                yield from self.node.hca.post_send(qp, wr)
            except QPError:
                qp = yield from self._redial()
                if qp is None:
                    return
                yield from self.node.hca.post_send(qp, wr)
            yield wr.completion
            if not wr.cqe.ok:
                self.naks.add()
            if qp.state.name == "ERROR":
                qp = yield from self._redial()
                if qp is None:
                    return
