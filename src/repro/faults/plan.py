"""Declarative, deterministic fault schedules.

A :class:`FaultPlan` is a frozen value object describing *what* goes
wrong and *when*; the :class:`repro.faults.injector.FaultInjector` turns
it into hook installations and scheduled processes against a built
cluster.  Everything stochastic (which message drops, how long a delay
spike lasts) derives from the plan's seed through
:class:`repro.sim.DeterministicRNG`, so a failing chaos run reproduces
from ``(cluster seed, plan seed)`` alone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.sim import DeterministicRNG

__all__ = [
    "DelaySpike",
    "DiskFault",
    "FaultPlan",
    "MessageLoss",
    "QpKill",
    "ServerCrash",
    "ServerStall",
]


@dataclass(frozen=True)
class MessageLoss:
    """Probabilistic loss of channel messages (Sends) arriving at a node.

    ``rate`` is the per-message drop probability while the window
    [``start_us``, ``end_us``) is open; ``node`` restricts the loss to
    one node's ingress (``"server"``, ``"client0"``, ...) or, when
    None, applies to every armed port.
    """

    rate: float
    start_us: float = 0.0
    end_us: float = math.inf
    node: Optional[str] = None

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("loss rate must be a probability")
        if self.end_us < self.start_us:
            raise ValueError("loss window ends before it starts")


@dataclass(frozen=True)
class DelaySpike:
    """Probabilistic extra latency (congestion burst) on transfers.

    Each affected transfer is held for an exponentially distributed
    extra delay with mean ``mean_delay_us``.
    """

    rate: float
    mean_delay_us: float
    start_us: float = 0.0
    end_us: float = math.inf
    node: Optional[str] = None

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("spike rate must be a probability")
        if self.mean_delay_us <= 0:
            raise ValueError("spike delay must be positive")


@dataclass(frozen=True)
class QpKill:
    """Scheduled fatal QP error on one mount's connection (both ends)."""

    at_us: float
    client_index: int = 0


@dataclass(frozen=True)
class DiskFault:
    """Arm ``count`` transient medium errors from ``at_us`` onward.

    ``disk_index`` pins the faults to one spindle of the RAID set;
    None lets whichever disk is accessed next absorb them.  Ignored on
    the tmpfs backend (no spindles to fail).
    """

    at_us: float
    count: int = 1
    disk_index: Optional[int] = None

    def __post_init__(self):
        if self.count < 1:
            raise ValueError("disk fault count must be positive")


@dataclass(frozen=True)
class ServerStall:
    """Seize every server core for a window (GC pause / livelock)."""

    at_us: float
    duration_us: float

    def __post_init__(self):
        if self.duration_us <= 0:
            raise ValueError("stall duration must be positive")


@dataclass(frozen=True)
class ServerCrash:
    """Crash-restart: every connection dies, then the server is
    unresponsive (all cores held) for ``restart_us`` while it reboots."""

    at_us: float
    restart_us: float = 50_000.0

    def __post_init__(self):
        if self.restart_us <= 0:
            raise ValueError("restart window must be positive")


@dataclass(frozen=True)
class FaultPlan:
    """The full schedule; empty tuples everywhere = no faults."""

    seed: int = 2007
    message_loss: tuple[MessageLoss, ...] = ()
    delay_spikes: tuple[DelaySpike, ...] = ()
    qp_kills: tuple[QpKill, ...] = ()
    disk_faults: tuple[DiskFault, ...] = ()
    server_stalls: tuple[ServerStall, ...] = ()
    server_crashes: tuple[ServerCrash, ...] = field(default=())

    @property
    def empty(self) -> bool:
        return not (self.message_loss or self.delay_spikes or self.qp_kills
                    or self.disk_faults or self.server_stalls
                    or self.server_crashes)

    @classmethod
    def chaos(
        cls,
        seed: int,
        duration_us: float,
        nclients: int = 1,
        loss_rate: float = 0.01,
        qp_kills: int = 3,
        disk_faults: int = 2,
        delay_rate: float = 0.0,
        mean_delay_us: float = 200.0,
        stalls: int = 0,
        stall_us: float = 20_000.0,
        crashes: int = 0,
        restart_us: float = 50_000.0,
    ) -> "FaultPlan":
        """A randomized soak schedule, fully determined by ``seed``.

        Scheduled faults land in the middle 80% of ``duration_us`` so
        the workload is actually in flight when they strike.
        """
        rng = DeterministicRNG(seed, "fault-plan")

        def when() -> float:
            return rng.uniform(0.1 * duration_us, 0.9 * duration_us)

        kills = tuple(
            QpKill(at_us=when(), client_index=rng.integers(0, max(1, nclients)))
            for _ in range(qp_kills)
        )
        disks = tuple(DiskFault(at_us=when()) for _ in range(disk_faults))
        loss = (MessageLoss(rate=loss_rate, end_us=duration_us),) if loss_rate > 0 else ()
        spikes = (
            (DelaySpike(rate=delay_rate, mean_delay_us=mean_delay_us,
                        end_us=duration_us),)
            if delay_rate > 0 else ()
        )
        stall_specs = tuple(
            ServerStall(at_us=when(), duration_us=stall_us) for _ in range(stalls)
        )
        # Crash draws come LAST so plans built with crashes=0 stay
        # bit-identical to plans built before the parameter existed.
        crash_specs = tuple(
            ServerCrash(at_us=when(), restart_us=restart_us)
            for _ in range(crashes)
        )
        return cls(
            seed=seed,
            message_loss=loss,
            delay_spikes=spikes,
            qp_kills=tuple(sorted(kills, key=lambda k: k.at_us)),
            disk_faults=tuple(sorted(disks, key=lambda d: d.at_us)),
            server_stalls=stall_specs,
            server_crashes=tuple(sorted(crash_specs, key=lambda c: c.at_us)),
        )
