"""Arms a :class:`FaultPlan` against a built cluster.

The injector is the single implementation behind every hook point:

* ``ib/link.py`` — it *is* a :class:`LinkFaultHook`; installed on the
  server's and every client's port it answers the drop/delay queries
  the wire and the HCA delivery path make.
* ``ib/verbs.py`` — scheduled :meth:`QueuePair.enter_error` on both
  ends of a mount's connection (:class:`QpKill`, :class:`ServerCrash`).
* ``fs/disk.py`` — transient-error arming consumed by the disk driver's
  retry loop (:class:`DiskFault`).
* ``osmodel`` — whole-server stall windows via :meth:`CPU.stall`
  (:class:`ServerStall`, the crash-restart window).

Nothing here runs unless :meth:`FaultInjector.arm` is called, and every
draw comes from a child of the plan's seed, so armed runs are exactly
reproducible and unarmed runs are untouched.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.plan import FaultPlan
from repro.ib.link import DuplexLink, LinkFaultHook
from repro.ib.verbs import QPState, QueuePair
from repro.sim import Counter, DeterministicRNG

__all__ = ["FaultInjector"]


class FaultInjector(LinkFaultHook):
    """Deterministic executor for a :class:`FaultPlan`.

    ``cluster`` is duck-typed: anything exposing ``sim``, ``mounts``,
    ``server_node``, ``client_nodes`` and (optionally) ``raid`` works.
    """

    def __init__(self, cluster, plan: FaultPlan):
        self.cluster = cluster
        self.plan = plan
        self.sim = cluster.sim
        self.rng = DeterministicRNG(plan.seed, "fault-injector")
        self._loss_rng = self.rng.child("loss")
        self._delay_rng = self.rng.child("delay")
        self._armed = False
        #: port -> node name, for node-scoped loss/delay specs.
        self._port_nodes: dict[int, str] = {}
        #: deterministic targeted drops (tests): node name -> messages.
        self._forced_drops: dict[str, int] = {}
        #: armed-but-unconsumed transient disk errors.
        self._disk_errors_any = 0
        self._disk_errors_by_name: dict[str, int] = {}
        self.messages_dropped = Counter("faults.msg_dropped")
        self.delay_spikes_injected = Counter("faults.delay_spikes")
        self.qp_kills_fired = Counter("faults.qp_kills")
        self.disk_errors_armed = Counter("faults.disk_errors")
        self.stalls_fired = Counter("faults.stalls")
        self.crashes_fired = Counter("faults.crashes")

    # -- telemetry ---------------------------------------------------------
    def _instant(self, name: str, node: str, **args) -> None:
        """Mark a fired fault on the trace timeline (no-op when off)."""
        telemetry = self.sim.telemetry
        if telemetry is not None and telemetry.tracer is not None:
            telemetry.tracer.instant(name, "fault", node, "faults", **args)

    # -- lifecycle --------------------------------------------------------
    def arm(self) -> None:
        """Install hooks and schedule every planned fault."""
        if self._armed:
            raise RuntimeError("fault plan already armed")
        self._armed = True
        nodes = [self.cluster.server_node, *self.cluster.client_nodes]
        for node in nodes:
            port = node.hca.port
            self._port_nodes[id(port)] = node.name
            port.fault_hook = self
        raid = getattr(self.cluster, "raid", None)
        if raid is not None:
            for disk in raid.disks:
                disk.fault_hook = self
        for spec in self.plan.qp_kills:
            self.sim.process(self._qp_kill(spec), name="faults.qpkill")
        for spec in self.plan.disk_faults:
            self.sim.process(self._disk_fault(spec), name="faults.disk")
        for spec in self.plan.server_stalls:
            self.sim.process(self._stall(spec), name="faults.stall")
        for spec in self.plan.server_crashes:
            self.sim.process(self._crash(spec), name="faults.crash")

    def disarm(self) -> None:
        """Remove the hooks (scheduled one-shot faults may still fire)."""
        for node in [self.cluster.server_node, *self.cluster.client_nodes]:
            if node.hca.port.fault_hook is self:
                node.hca.port.fault_hook = None
        raid = getattr(self.cluster, "raid", None)
        if raid is not None:
            for disk in raid.disks:
                if disk.fault_hook is self:
                    disk.fault_hook = None
        self._armed = False

    # -- LinkFaultHook interface ------------------------------------------
    def drop_message(self, link: DuplexLink) -> bool:
        node = self._port_nodes.get(id(link))
        if node is None:
            return False
        forced = self._forced_drops.get(node, 0)
        if forced > 0:
            self._forced_drops[node] = forced - 1
            self.messages_dropped.add()
            self._instant("fault.msg_drop", node, forced=True)
            return True
        now = self.sim.now
        for spec in self.plan.message_loss:
            if spec.node is not None and spec.node != node:
                continue
            if not spec.start_us <= now < spec.end_us:
                continue
            if self._loss_rng.uniform() < spec.rate:
                self.messages_dropped.add()
                self._instant("fault.msg_drop", node, forced=False)
                return True
        return False

    def transfer_delay_us(self, link: DuplexLink, nbytes: int) -> float:
        node = self._port_nodes.get(id(link))
        if node is None:
            return 0.0
        now = self.sim.now
        for spec in self.plan.delay_spikes:
            if spec.node is not None and spec.node != node:
                continue
            if not spec.start_us <= now < spec.end_us:
                continue
            if self._delay_rng.uniform() < spec.rate:
                self.delay_spikes_injected.add()
                delay = self._delay_rng.exponential(spec.mean_delay_us)
                self._instant("fault.delay_spike", node, delay_us=delay)
                return delay
        return 0.0

    # -- disk hook ---------------------------------------------------------
    def disk_error(self, disk) -> bool:
        pending = self._disk_errors_by_name.get(disk.name, 0)
        if pending > 0:
            self._disk_errors_by_name[disk.name] = pending - 1
            return True
        if self._disk_errors_any > 0:
            self._disk_errors_any -= 1
            return True
        return False

    # -- test helpers ------------------------------------------------------
    def drop_next(self, node: str, count: int = 1) -> None:
        """Deterministically drop the next ``count`` messages arriving at
        ``node`` — the surgical variant of :class:`MessageLoss`."""
        self._forced_drops[node] = self._forced_drops.get(node, 0) + count

    # -- scheduled faults ---------------------------------------------------
    def _wait_until(self, at_us: float):
        return self.sim.timeout(max(0.0, at_us - self.sim.now))

    def _kill_connection(self, qp: Optional[QueuePair], cause: str) -> bool:
        if qp is None or qp.state is QPState.ERROR:
            return False
        peer = qp.peer
        qp.enter_error(cause)
        if peer is not None and peer.state is not QPState.ERROR:
            peer.enter_error(f"{cause} (remote)")
        return True

    def _qp_kill(self, spec):
        yield self._wait_until(spec.at_us)
        mounts = self.cluster.mounts
        mount = mounts[spec.client_index % len(mounts)]
        qp = getattr(mount.transport, "qp", None)
        if self._kill_connection(qp, "injected fault: qp kill"):
            self.qp_kills_fired.add()
            self._instant("fault.qp_kill", mount.node.name)

    def _disk_fault(self, spec):
        yield self._wait_until(spec.at_us)
        raid = getattr(self.cluster, "raid", None)
        if raid is None:
            return  # tmpfs backend: nothing to fail
        if spec.disk_index is None:
            self._disk_errors_any += spec.count
        else:
            disk = raid.disks[spec.disk_index % len(raid.disks)]
            self._disk_errors_by_name[disk.name] = (
                self._disk_errors_by_name.get(disk.name, 0) + spec.count
            )
        self.disk_errors_armed.add(spec.count)

    def _stall(self, spec):
        yield self._wait_until(spec.at_us)
        self.stalls_fired.add()
        self._instant("fault.server_stall", "server", duration_us=spec.duration_us)
        yield from self.cluster.server_node.cpu.stall(spec.duration_us)

    def _crash(self, spec):
        yield self._wait_until(spec.at_us)
        self.crashes_fired.add()
        self._instant("fault.server_crash", "server", restart_us=spec.restart_us)
        # Every connection dies with the server...
        for mount in self.cluster.mounts:
            self._kill_connection(getattr(mount.transport, "qp", None),
                                  "injected fault: server crash")
        # ...and the node is unresponsive until it has rebooted; clients
        # redialing during the window queue behind the restart.
        yield from self.cluster.server_node.cpu.stall(spec.restart_us)

    # -- reporting ----------------------------------------------------------
    def summary(self) -> dict[str, int]:
        disks = []
        raid = getattr(self.cluster, "raid", None)
        if raid is not None:
            disks = raid.disks
        return {
            "messages dropped": self.messages_dropped.events,
            "delay spikes": self.delay_spikes_injected.events,
            "qp kills": self.qp_kills_fired.events,
            "disk errors armed": int(self.disk_errors_armed.value),
            "disk errors hit": sum(d.transient_errors.events for d in disks),
            "server stalls": self.stalls_fired.events,
            "server crashes": self.crashes_fired.events,
        }
