"""Deterministic fault injection for the simulated cluster.

Declare *what* breaks in a :class:`FaultPlan`; a :class:`FaultInjector`
arms it against a built cluster, installing hooks in the wire
(`ib/link.py`), the HCA delivery path, the disks (`fs/disk.py`) and the
server CPU (`osmodel`), and scheduling one-shot faults (QP kills,
crash-restart windows).  Everything is seeded, nothing is installed
unless armed, and an unarmed run schedules zero extra events.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    DelaySpike,
    DiskFault,
    FaultPlan,
    MessageLoss,
    QpKill,
    ServerCrash,
    ServerStall,
)

__all__ = [
    "DelaySpike",
    "DiskFault",
    "FaultInjector",
    "FaultPlan",
    "MessageLoss",
    "QpKill",
    "ServerCrash",
    "ServerStall",
]
