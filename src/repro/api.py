"""The stable public surface of the reproduction.

Embedding scripts (and everything under ``examples/``) import from
here instead of reaching into internal modules::

    from repro.api import ClusterConfig, connect

    nfs = connect(ClusterConfig.rdma_rw(strategy="cache")).mount()
    fh, _ = nfs.create(nfs.root, "hello.dat")
    nfs.write(fh, 0, b"hello, rdma world!")

Three layers:

* :class:`ClusterConfig` + its builders (``rdma_rw``/``rdma_rr``/
  ``tcp``) describe a *single-server* deployment — the paper's testbed
  shape — and stay the one-node sugar.  :class:`TopologyConfig` is the
  scale-out form: ``TopologyConfig(servers=K, data_servers=M,
  mux=MuxConfig(), ...)`` shards mounts across K server nodes (placed
  by the build-time mount redirector), stripes file data across M data
  servers, and multiplexes mounts onto shared QPs.  :func:`connect`
  accepts either and wires it.
* :class:`Deployment` owns the simulated cluster; each
  :class:`MountHandle` exposes the NFSv3 verbs *synchronously* — every
  call steps the simulator until the reply arrives, so callers never
  touch ``cluster.run`` or generator plumbing.  Multi-verb atomic
  scripts still can: :meth:`Deployment.run` accepts a generator.
* Errors surface as the typed hierarchy in :mod:`repro.errors`
  (``ReproError`` and friends, re-exported here).

Workload drivers and the experiment registry are re-exported so a
single import serves benchmark scripts too.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import NfsStatusError, PoolExhausted, ReproError, TransportError
from repro.experiments.cluster import Cluster, ClusterConfig, default_srq_entries
from repro.experiments.registry import EXPERIMENTS, run as run_experiment
from repro.experiments.topology import (
    TOPOLOGY_KEYS,
    MultiCluster,
    TopologyConfig,
)
from repro.ib.mux import MuxConfig, default_mux_qps
from repro.workloads import (
    IozoneParams,
    OltpParams,
    PostmarkParams,
    run_iozone,
    run_oltp,
    run_postmark,
)

__all__ = [
    "Cluster",
    "ClusterConfig",
    "Deployment",
    "EXPERIMENTS",
    "IozoneParams",
    "MountHandle",
    "MultiCluster",
    "MuxConfig",
    "NfsStatusError",
    "OltpParams",
    "PoolExhausted",
    "PostmarkParams",
    "ReproError",
    "TopologyConfig",
    "TransportError",
    "connect",
    "default_mux_qps",
    "default_srq_entries",
    "run_experiment",
    "run_iozone",
    "run_oltp",
    "run_postmark",
]

#: The NFSv3 verb surface MountHandle exposes synchronously (each is a
#: generator method on :class:`repro.nfs.client.NfsClient`).
_VERBS = frozenset({
    "null", "getattr", "setattr", "lookup", "access", "readlink", "read",
    "write", "create", "mkdir", "symlink", "mknod", "link", "remove",
    "rmdir", "rename", "readdir", "readdirplus", "fsinfo", "pathconf",
    "fsstat", "commit", "read_large", "write_large", "walk",
})


class MountHandle:
    """One client's mount, with synchronous NFS verbs.

    ``handle.read(fh, 0, 4096)`` runs the simulator until the RPC
    completes and returns the verb's result tuple.  NFS-level failures
    raise :class:`~repro.errors.NfsStatusError` (carrying the NFS3
    status), transport loss raises
    :class:`~repro.errors.TransportError` subclasses.
    """

    def __init__(self, cluster: Cluster, mount) -> None:
        self._cluster = cluster
        self.mount = mount

    @property
    def root(self):
        """The mount's root file handle."""
        return self.mount.nfs.root

    @property
    def nfs(self):
        """The underlying generator-based client (for ``Deployment.run``)."""
        return self.mount.nfs

    @property
    def node(self):
        return self.mount.node

    def __getattr__(self, name: str):
        if name not in _VERBS:
            raise AttributeError(
                f"{type(self).__name__!r} object has no attribute {name!r}"
            )
        verb = getattr(self.mount.nfs, name)
        cluster = self._cluster

        def call(*args, **kwargs):
            return cluster.run(verb(*args, **kwargs))

        call.__name__ = name
        call.__doc__ = verb.__doc__
        return call

    def __dir__(self):
        return sorted(set(super().__dir__()) | _VERBS)


class Deployment:
    """A wired simulated NFS deployment: cluster + synchronous mounts.

    Accepts either deployment description:

    * :class:`ClusterConfig` (or its field kwargs) — the historical
      single-server surface, wired as a :class:`Cluster`;
    * :class:`TopologyConfig` (or kwargs containing any topology field:
      ``servers``, ``data_servers``, ``mux``, ``client_hosts``,
      ``stripe_unit_bytes``, ``credits``) — wired as a
      :class:`~repro.experiments.topology.MultiCluster`, with mounts
      placed across server shards by the build-time redirector.
    """

    def __init__(self, config=None, **kwargs) -> None:
        if config is not None and kwargs:
            raise ValueError("pass a config object or field kwargs, not both")
        if config is None and any(k in kwargs for k in TOPOLOGY_KEYS):
            config = TopologyConfig(**kwargs)
        elif config is None:
            config = ClusterConfig(**kwargs)
        if isinstance(config, TopologyConfig):
            self.cluster = MultiCluster(config)
        elif isinstance(config, ClusterConfig):
            self.cluster = Cluster(config)
        else:
            raise TypeError(
                f"expected ClusterConfig or TopologyConfig, got "
                f"{type(config).__name__}")
        self.mounts = [MountHandle(self.cluster, m) for m in self.cluster.mounts]

    def mount(self, index: int = 0) -> MountHandle:
        """The ``index``-th client's mount handle.

        On a sharded deployment the mount was already steered to its
        server node by the redirector at build time; ``shard_of`` tells
        you where it landed.
        """
        return self.mounts[index]

    def shard_of(self, index: int = 0) -> int:
        """Which server shard holds mount ``index`` (0 on single-node)."""
        redirector = getattr(self.cluster, "redirector", None)
        if redirector is None:
            return 0
        placed = redirector.index_of(index)
        return 0 if placed is None else placed

    def run(self, generator):
        """Escape hatch: run a multi-verb generator script atomically."""
        return self.cluster.run(generator)

    @property
    def sim(self):
        return self.cluster.sim

    @property
    def config(self) -> ClusterConfig:
        """The single-node knobs (the base config on a MultiCluster)."""
        return self.cluster.config

    @property
    def topology(self) -> Optional[TopologyConfig]:
        """The scale-out description, or ``None`` on a single-node wire."""
        return getattr(self.cluster, "topology", None)


def connect(config=None, **kwargs) -> Deployment:
    """Build and wire a deployment — the one-line entry point.

    Accepts a prebuilt :class:`ClusterConfig` (e.g. from the
    ``rdma_rw``/``tcp`` builders), a :class:`TopologyConfig` for
    multi-node serving, or either config's field kwargs directly.
    """
    return Deployment(config, **kwargs)
