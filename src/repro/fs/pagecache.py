"""LRU page cache: the 4 GB / 8 GB server memory of Fig 10.

Tracks *residency and dirtiness* of (file, page) keys under a byte
budget; page contents live with the owning file system (one copy in the
whole simulation).  The capacity is the experiment's headline variable:
with 4 GB, three 1 GB client files fit and aggregate read bandwidth
peaks, a fourth starts LRU-thrashing a sequential scan (the worst case
for LRU) and throughput falls toward spindle speed; with 8 GB the knee
moves out past seven clients.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.sim import Counter

__all__ = ["PageCache", "PageKey"]

#: (fileid, page_index)
PageKey = tuple[int, int]


class PageCache:
    """Byte-budgeted LRU over fixed-size pages with dirty tracking."""

    def __init__(self, capacity_bytes: int, page_bytes: int = 64 * 1024,
                 name: str = "pagecache"):
        if page_bytes < 4096:
            raise ValueError("page size below 4 KB")
        if capacity_bytes < page_bytes:
            raise ValueError("cache smaller than one page")
        self.capacity_bytes = capacity_bytes
        self.page_bytes = page_bytes
        self.name = name
        self._lru: OrderedDict[PageKey, bool] = OrderedDict()  # key -> dirty
        self.hits = Counter(f"{name}.hits")
        self.misses = Counter(f"{name}.misses")
        self.evictions = Counter(f"{name}.evictions")
        self.writebacks = Counter(f"{name}.writebacks")

    # -- inspection ---------------------------------------------------------
    @property
    def resident_pages(self) -> int:
        return len(self._lru)

    @property
    def resident_bytes(self) -> int:
        return len(self._lru) * self.page_bytes

    @property
    def max_pages(self) -> int:
        return self.capacity_bytes // self.page_bytes

    def is_resident(self, key: PageKey) -> bool:
        return key in self._lru

    def dirty_pages(self, fileid: Optional[int] = None) -> list[PageKey]:
        return [
            k for k, dirty in self._lru.items()
            if dirty and (fileid is None or k[0] == fileid)
        ]

    # -- access -----------------------------------------------------------
    def touch(self, key: PageKey) -> bool:
        """Record an access; True on hit (and promote to MRU)."""
        if key in self._lru:
            self._lru.move_to_end(key)
            self.hits.add()
            return True
        self.misses.add()
        return False

    def insert(self, key: PageKey, dirty: bool = False) -> list[tuple[PageKey, bool]]:
        """Make ``key`` resident; returns evicted (key, was_dirty) pairs.

        The caller owns the consequences of dirty evictions (write-back
        timing against the backing device).
        """
        if key in self._lru:
            self._lru.move_to_end(key)
            self._lru[key] = self._lru[key] or dirty
            return []
        evicted: list[tuple[PageKey, bool]] = []
        while len(self._lru) >= self.max_pages:
            old_key, was_dirty = self._lru.popitem(last=False)
            self.evictions.add()
            if was_dirty:
                self.writebacks.add()
            evicted.append((old_key, was_dirty))
        self._lru[key] = dirty
        return evicted

    def mark_clean(self, key: PageKey) -> None:
        if key in self._lru:
            self._lru[key] = False

    def invalidate(self, fileid: int) -> int:
        """Drop every page of one file (unlink); returns pages dropped."""
        doomed = [k for k in self._lru if k[0] == fileid]
        for k in doomed:
            del self._lru[k]
        return len(doomed)

    def hit_ratio(self) -> float:
        total = self.hits.events + self.misses.events
        return self.hits.events / total if total else 0.0
