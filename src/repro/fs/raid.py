"""RAID-0 striping across spindles (the paper's 8-disk array, §5.3).

A request is split at stripe-unit boundaries and the per-disk pieces
proceed in parallel; the request completes when the slowest piece does.
Aggregate streaming bandwidth therefore approaches
``ndisks × streaming_mb_s`` (≈240 MB/s for the paper's array) — the
floor the multi-client curves fall to once the page cache stops
absorbing reads.
"""

from __future__ import annotations

from typing import Generator

from repro.fs.disk import Disk, DiskConfig
from repro.sim import AllOf, DeterministicRNG, Simulator

__all__ = ["Raid0"]


class Raid0:
    """Byte-addressed striped volume over homogeneous disks."""

    def __init__(
        self,
        sim: Simulator,
        ndisks: int = 8,
        disk_config: DiskConfig = DiskConfig(),
        stripe_unit_bytes: int = 64 * 1024,
        rng: DeterministicRNG | None = None,
        name: str = "raid0",
    ):
        if ndisks < 1:
            raise ValueError("RAID-0 needs at least one disk")
        if stripe_unit_bytes < 4096:
            raise ValueError("stripe unit unreasonably small")
        self.sim = sim
        self.name = name
        self.stripe_unit = stripe_unit_bytes
        rng = rng or DeterministicRNG(1203, name)
        self.disks = [
            Disk(sim, disk_config, rng.child(f"d{i}"), name=f"{name}.d{i}")
            for i in range(ndisks)
        ]

    def _pieces(self, offset: int, nbytes: int):
        """Split [offset, offset+nbytes) into (disk, disk_offset, len)."""
        su = self.stripe_unit
        n = len(self.disks)
        pos = offset
        remaining = nbytes
        while remaining > 0:
            stripe = pos // su
            within = pos % su
            take = min(su - within, remaining)
            disk_index = stripe % n
            # Byte offset on the member disk: full stripes laid down so far.
            disk_offset = (stripe // n) * su + within
            yield self.disks[disk_index], disk_offset, take
            pos += take
            remaining -= take

    def _fan_out(self, offset: int, nbytes: int, op: str) -> Generator:
        telemetry = self.sim.telemetry
        span = None
        if telemetry is not None and telemetry.tracer is not None:
            tracer = telemetry.tracer
            span = tracer.begin(f"raid.{op}", "disk", "server", self.name,
                                parent=tracer.task_span(), bytes=nbytes)
        try:
            procs = []
            for disk, disk_offset, take in self._pieces(offset, nbytes):
                method = disk.read if op == "read" else disk.write
                procs.append(self.sim.process(method(disk_offset, take)))
            if procs:
                yield AllOf(self.sim, procs)
        finally:
            if span is not None:
                span.end()

    def read(self, offset: int, nbytes: int) -> Generator:
        """Process: striped read; returns when the slowest piece lands."""
        yield from self._fan_out(offset, nbytes, "read")

    def write(self, offset: int, nbytes: int) -> Generator:
        yield from self._fan_out(offset, nbytes, "write")

    @property
    def streaming_mb_s(self) -> float:
        return sum(d.config.streaming_mb_s for d in self.disks)
