"""Extent-based file system over RAID with a page cache (the paper's
"eight HighPoint SCSI disks with RAID-0 stripping, formatted with the
XFS file system", §5.3).

Files get contiguous extents on the striped volume; reads and writes go
through the LRU page cache.  Writes are *unstable* (NFSv3 semantics):
they dirty cache pages and return; a background flusher and the COMMIT
procedure push them to the spindles.  Under memory pressure, dirty
evictions force synchronous write-back, throttling writers to aggregate
spindle bandwidth — and sequential re-reads that overflow the cache
collapse to spindle bandwidth too, which is the mechanism behind the
Fig 10a decline beyond three clients.

Page *contents* are stored once, interned (identical pages share one
object), so gigabyte-scale working sets stay cheap in host memory while
every byte served remains verifiable.
"""

from __future__ import annotations

from typing import Generator

from repro.fs.api import FileKind, FsError, FsStat
from repro.fs.namespace import NamespaceFs, _Inode
from repro.fs.pagecache import PageCache, PageKey
from repro.fs.raid import Raid0
from repro.osmodel import CPU
from repro.payload import Payload, PayloadLike, join_parts
from repro.sim import Simulator

__all__ = ["BlockFs"]


class BlockFs(NamespaceFs):
    """XFS-like extent FS on a striped volume, fronted by a page cache."""

    def __init__(
        self,
        sim: Simulator,
        cpu: CPU,
        raid: Raid0,
        cache_bytes: int,
        page_bytes: int = 64 * 1024,
        extent_bytes: int = 64 << 20,
        flush_interval_us: float = 200_000.0,
        flush_batch_pages: int = 64,
        per_op_cpu_us: float = 2.5,
        name: str = "blockfs",
    ):
        super().__init__(sim, cpu, capacity_bytes=1 << 40,
                         per_op_cpu_us=per_op_cpu_us, name=name)
        if extent_bytes % page_bytes:
            raise ValueError("extent size must be a page multiple")
        self.raid = raid
        self.cache = PageCache(cache_bytes, page_bytes, name=f"{name}.cache")
        self.page_bytes = page_bytes
        self.extent_bytes = extent_bytes
        #: page contents are ``bytes`` or :class:`Payload`, possibly
        #: shorter than ``page_bytes`` (the missing tail is zero); pages
        #: that are entirely zero are simply absent.
        self._content: dict[PageKey, PayloadLike] = {}
        self._intern_pool: dict = {}
        self._extents: dict[int, list[int]] = {}
        self._next_free = 0
        self.flush_interval_us = flush_interval_us
        self.flush_batch_pages = flush_batch_pages
        if flush_interval_us > 0:
            sim.process(self._flusher(), name=f"{name}.flusher")

    # -- layout -----------------------------------------------------------
    def _disk_offset(self, key: PageKey) -> int:
        fileid, page = key
        pages_per_extent = self.extent_bytes // self.page_bytes
        extent_index = page // pages_per_extent
        extents = self._extents.setdefault(fileid, [])
        while len(extents) <= extent_index:
            extents.append(self._next_free)
            self._next_free += self.extent_bytes
        return extents[extent_index] + (page % pages_per_extent) * self.page_bytes

    # -- content ----------------------------------------------------------
    def _page_slice(self, key: PageKey, within: int, take: int) -> PayloadLike:
        """``take`` bytes of a page starting at ``within``, zero-padded."""
        page = self._content.get(key)
        if page is None:
            return Payload.zeros(take)
        avail = len(page) - within
        if avail >= take:
            return page[within:within + take]
        if avail <= 0:
            return Payload.zeros(take)
        return join_parts([page[within:], Payload.zeros(take - avail)])

    def _store_page(self, key: PageKey, data: PayloadLike) -> None:
        if isinstance(data, Payload):
            if data.nruns > 32:
                data = data.tobytes()
        elif isinstance(data, bytearray):
            data = bytes(data)
        zero = data.is_zeros() if isinstance(data, Payload) else not any(data)
        if zero:
            self._content.pop(key, None)
            return
        token = data.key() if isinstance(data, Payload) else data
        pooled = self._intern_pool.setdefault(token, data)
        self._content[key] = pooled

    # -- cache/disk interaction ------------------------------------------
    def _absorb_evictions(self, evicted) -> Generator:
        """Write back dirty evictees synchronously (memory pressure)."""
        for key, was_dirty in evicted:
            if was_dirty:
                yield from self.raid.write(self._disk_offset(key), self.page_bytes)

    def _flusher(self) -> Generator:
        """Background write-back, pdflush style."""
        while True:
            yield self.sim.timeout(self.flush_interval_us)
            dirty = self.cache.dirty_pages()[: self.flush_batch_pages]
            for key in dirty:
                yield from self.raid.write(self._disk_offset(key), self.page_bytes)
                self.cache.mark_clean(key)

    # -- data operations ------------------------------------------------------
    def read(self, fileid: int, offset: int, length: int) -> Generator:
        inode = self._get(fileid)
        if inode.attrs.kind is not FileKind.REGULAR:
            raise FsError("INVAL", "read of non-file")
        token = self._data_span("read", fileid=fileid, bytes=length)
        try:
            return (yield from self._read_inner(inode, fileid, offset, length))
        finally:
            self._end_span(token)

    def _read_inner(self, inode, fileid: int, offset: int, length: int) -> Generator:
        yield from self._tick()
        length = max(0, min(length, inode.attrs.size - offset))
        first = offset // self.page_bytes
        last = (offset + length - 1) // self.page_bytes if length else first - 1
        # Classify pages, then fetch misses in contiguous disk runs.
        miss_run: list[PageKey] = []
        for page in range(first, last + 1):
            key = (fileid, page)
            if self.cache.touch(key):
                if miss_run:
                    yield from self._fetch_run(miss_run)
                    miss_run = []
            else:
                miss_run.append(key)
        if miss_run:
            yield from self._fetch_run(miss_run)
        parts: list[PayloadLike] = []
        pos = offset
        stop = offset + length
        while pos < stop:
            page, within = divmod(pos, self.page_bytes)
            take = min(self.page_bytes - within, stop - pos)
            parts.append(self._page_slice((fileid, page), within, take))
            pos += take
        data = join_parts(parts)
        yield from self.cpu.copy(len(data))
        inode.attrs.atime = self.sim.now
        return data, offset + length >= inode.attrs.size

    def _fetch_run(self, keys: list[PageKey]) -> Generator:
        """One striped read covering a contiguous run of missed pages."""
        base = self._disk_offset(keys[0])
        yield from self.raid.read(base, len(keys) * self.page_bytes)
        for key in keys:
            evicted = self.cache.insert(key, dirty=False)
            yield from self._absorb_evictions(evicted)

    def write(self, fileid: int, offset: int, data: bytes) -> Generator:
        inode = self._get(fileid)
        if inode.attrs.kind is not FileKind.REGULAR:
            raise FsError("INVAL", "write of non-file")
        token = self._data_span("write", fileid=fileid, bytes=len(data))
        try:
            return (yield from self._write_inner(inode, fileid, offset, data))
        finally:
            self._end_span(token)

    def _write_inner(self, inode, fileid: int, offset: int, data: bytes) -> Generator:
        yield from self._tick()
        yield from self.cpu.copy(len(data))
        end = offset + len(data)
        pos = offset
        while pos < end:
            page, within = divmod(pos, self.page_bytes)
            take = min(self.page_bytes - within, end - pos)
            key = (fileid, page)
            chunk = data[pos - offset: pos - offset + take]
            if take == self.page_bytes:
                new_page = chunk
            else:
                # Read-modify-write a partial page (fetch if not resident
                # and previously written).
                if not self.cache.touch(key) and key in self._content:
                    yield from self.raid.read(self._disk_offset(key), self.page_bytes)
                head = self._page_slice(key, 0, within) if within else b""
                old = self._content.get(key)
                tail_len = (len(old) if old is not None else 0) - (within + take)
                tail = (self._page_slice(key, within + take, tail_len)
                        if tail_len > 0 else b"")
                new_page = join_parts([head, chunk, tail])
            self._store_page(key, new_page)
            evicted = self.cache.insert(key, dirty=True)
            yield from self._absorb_evictions(evicted)
            pos += take
        if end > inode.attrs.size:
            self.used_bytes += end - inode.attrs.size
            inode.attrs.size = end
        inode.attrs.mtime = self.sim.now
        return len(data)

    def commit(self, fileid: int) -> Generator:
        token = self._data_span("commit", fileid=fileid)
        try:
            yield from self._tick()
            for key in self.cache.dirty_pages(fileid):
                yield from self.raid.write(self._disk_offset(key), self.page_bytes)
                self.cache.mark_clean(key)
        finally:
            self._end_span(token)

    def fsstat(self) -> Generator:
        yield from self._tick()
        total = 1 << 40
        return FsStat(
            total_bytes=total,
            free_bytes=total - self.used_bytes,
            total_files=1 << 20,
            free_files=(1 << 20) - len(self._inodes),
        )

    # -- namespace data hooks ---------------------------------------------
    def _drop_data(self, inode: _Inode) -> None:
        fileid = inode.attrs.fileid
        self.cache.invalidate(fileid)
        doomed = [k for k in self._content if k[0] == fileid]
        for k in doomed:
            del self._content[k]
        self._extents.pop(fileid, None)
        self.used_bytes -= inode.attrs.size

    def _resize_data(self, inode: _Inode, size: int) -> None:
        fileid = inode.attrs.fileid
        if size < inode.attrs.size:
            first_dead = (size + self.page_bytes - 1) // self.page_bytes
            doomed = [k for k in self._content if k[0] == fileid and k[1] >= first_dead]
            for k in doomed:
                del self._content[k]
        self.used_bytes += size - inode.attrs.size
