"""Rotating-disk model: the HighPoint SCSI spindles of §5.3.

Each disk serializes requests on its own queue and charges seek +
rotational + transfer time.  Sequential accesses (the IOzone pattern)
skip the seek, so a spindle sustains its streaming rate — 30 MB/s in
the paper's testbed — while random access collapses toward seek-bound
throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.sim import Counter, DeterministicRNG, Resource, Simulator, UtilizationMeter

__all__ = ["Disk", "DiskConfig"]


@dataclass(frozen=True)
class DiskConfig:
    """2007-era SCSI spindle."""

    streaming_mb_s: float = 30.0
    avg_seek_us: float = 8000.0
    rotational_half_us: float = 4150.0       # 7200 RPM half-rotation
    #: accesses within this byte distance of a tracked stream head count
    #: as sequential and skip seek + rotation.
    sequential_window_bytes: int = 2 << 20
    #: concurrent sequential streams the drive/scheduler tracks (elevator
    #: scheduling + readahead keep several interleaved scans seek-free).
    stream_heads: int = 8
    #: recovery time charged per injected transient error (bus reset +
    #: command reissue); only paid when a fault hook reports an error.
    error_retry_us: float = 30_000.0

    def transfer_us(self, nbytes: int) -> float:
        return nbytes / self.streaming_mb_s


class Disk:
    """One spindle: FIFO request queue plus position-dependent service."""

    def __init__(self, sim: Simulator, config: DiskConfig, rng: DeterministicRNG,
                 name: str = "disk"):
        self.sim = sim
        self.config = config
        self.rng = rng
        self.name = name
        self.queue = Resource(sim, capacity=1, name=f"{name}.q")
        self.meter = UtilizationMeter(sim, capacity=1.0, name=name)
        self.bytes_read = Counter(f"{name}.read")
        self.bytes_written = Counter(f"{name}.written")
        from collections import deque
        self._heads = deque([0], maxlen=config.stream_heads)
        self.seeks = Counter(f"{name}.seeks")
        #: optional fault hook (``disk_error(disk) -> bool``); a True
        #: return injects one transient medium error, which the driver
        #: layer here absorbs with a retry — callers never see it.
        self.fault_hook = None
        self.transient_errors = Counter(f"{name}.transient_errors")

    def _service_us(self, offset: int, nbytes: int) -> float:
        cfg = self.config
        service = cfg.transfer_us(nbytes)
        for i, head in enumerate(self._heads):
            if abs(offset - head) <= cfg.sequential_window_bytes:
                # Continuation of a tracked stream: no positioning cost.
                self._heads[i] = offset + nbytes
                break
        else:
            # Random access: seek (jittered) plus half a rotation.
            service += cfg.avg_seek_us * self.rng.uniform(0.6, 1.4)
            service += cfg.rotational_half_us
            self.seeks.add()
            self._heads.append(offset + nbytes)
        return service

    def _access(self, offset: int, nbytes: int) -> Generator:
        if nbytes < 0 or offset < 0:
            raise ValueError("negative disk access")
        req = self.queue.request()
        yield req
        self.meter.acquire()
        try:
            while self.fault_hook is not None and self.fault_hook.disk_error(self):
                # Transient medium error: charge the recovery window and
                # reissue.  The request eventually succeeds, so no
                # acknowledged write is ever lost to an injected fault.
                self.transient_errors.add()
                yield self.sim.timeout(self.config.error_retry_us)
            yield self.sim.timeout(self._service_us(offset, nbytes))
        finally:
            self.meter.release()
            self.queue.release(req)

    def read(self, offset: int, nbytes: int) -> Generator:
        """Process: read ``nbytes`` at byte ``offset`` (timing only)."""
        yield from self._access(offset, nbytes)
        self.bytes_read.add(nbytes)

    def write(self, offset: int, nbytes: int) -> Generator:
        yield from self._access(offset, nbytes)
        self.bytes_written.add(nbytes)

    def utilization(self) -> float:
        return self.meter.utilization()
