"""Shared namespace machinery for the in-memory and disk-backed FSes.

Directories, lookup, create/remove/rename, symlinks and attributes are
identical between tmpfs and the extent FS; only the data path differs.
:class:`NamespaceFs` holds the common state machine; subclasses provide
``read``/``write``/``commit``/``fsstat`` and may hook inode removal to
reclaim data storage.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.fs.api import (
    DirEntry,
    FileKind,
    FileSystem,
    FsAttributes,
    FsError,
    FsStat,
)
from repro.fs.sparse import SparseFile
from repro.osmodel import CPU
from repro.sim import Simulator

__all__ = ["NamespaceFs", "_Inode"]


@dataclass
class _Inode:
    attrs: FsAttributes
    data: SparseFile = field(default_factory=SparseFile)
    entries: Optional[dict] = None          # name -> fileid (directories)
    target: Optional[str] = None            # symlinks
    parent: int = 0


class NamespaceFs(FileSystem):
    """Namespace + attributes; data operations live in subclasses."""

    def __init__(self, sim: Simulator, cpu: CPU, capacity_bytes: int = 1 << 34,
                 per_op_cpu_us: float = 1.5, name: str = "fs"):
        self.sim = sim
        self.cpu = cpu
        self.capacity_bytes = capacity_bytes
        self.per_op_cpu_us = per_op_cpu_us
        self.name = name
        self._ids = itertools.count(self.root_id)
        self._inodes: dict[int, _Inode] = {}
        root = self._new_inode(FileKind.DIRECTORY, mode=0o755)
        assert root == self.root_id
        self.used_bytes = 0

    # -- internals -----------------------------------------------------------
    def _new_inode(self, kind: FileKind, mode: int) -> int:
        fileid = next(self._ids)
        attrs = FsAttributes(
            fileid=fileid, kind=kind, mode=mode,
            atime=self.sim.now, mtime=self.sim.now, ctime=self.sim.now,
            nlink=2 if kind is FileKind.DIRECTORY else 1,
        )
        inode = _Inode(attrs=attrs)
        if kind is FileKind.DIRECTORY:
            inode.entries = {}
        self._inodes[fileid] = inode
        return fileid

    def _get(self, fileid: int) -> _Inode:
        inode = self._inodes.get(fileid)
        if inode is None:
            raise FsError("STALE", f"no inode {fileid}")
        return inode

    def _get_dir(self, fileid: int) -> _Inode:
        inode = self._get(fileid)
        if inode.attrs.kind is not FileKind.DIRECTORY:
            raise FsError("NOTDIR", f"inode {fileid}")
        return inode

    def _tick(self) -> Generator:
        yield from self.cpu.consume(self.per_op_cpu_us)

    # -- telemetry ------------------------------------------------------------
    def _data_span(self, op: str, **args):
        """Open a ``disk``-category span for a data operation.

        Returns an opaque token for :meth:`_end_span`, or ``None`` when
        telemetry is off.  The span is pushed as the current task span so
        nested device work (RAID stripes) parents under it.
        """
        telemetry = self.sim.telemetry
        if telemetry is None or telemetry.tracer is None:
            return None
        tracer = telemetry.tracer
        span = tracer.begin(f"{self.name}.{op}", "disk", "server", self.name,
                            parent=tracer.task_span(), **args)
        prev = tracer.push_task(span)
        return tracer, span, prev

    def _end_span(self, token) -> None:
        if token is None:
            return
        tracer, span, prev = token
        tracer.pop_task(prev)
        span.end()

    # -- namespace -----------------------------------------------------------
    def lookup(self, dir_id: int, name: str) -> Generator:
        yield from self._tick()
        entries = self._get_dir(dir_id).entries
        if name == ".":
            return dir_id
        if name == "..":
            return self._get(dir_id).parent or self.root_id
        if name not in entries:
            raise FsError("NOENT", name)
        return entries[name]

    def create(self, dir_id: int, name: str, mode: int = 0o644) -> Generator:
        yield from self._tick()
        parent = self._get_dir(dir_id)
        if name in parent.entries:
            raise FsError("EXIST", name)
        fileid = self._new_inode(FileKind.REGULAR, mode)
        self._inodes[fileid].parent = dir_id
        parent.entries[name] = fileid
        parent.attrs.mtime = self.sim.now
        return fileid

    def mkdir(self, dir_id: int, name: str, mode: int = 0o755) -> Generator:
        yield from self._tick()
        parent = self._get_dir(dir_id)
        if name in parent.entries:
            raise FsError("EXIST", name)
        fileid = self._new_inode(FileKind.DIRECTORY, mode)
        self._inodes[fileid].parent = dir_id
        parent.entries[name] = fileid
        parent.attrs.nlink += 1
        return fileid

    def symlink(self, dir_id: int, name: str, target: str) -> Generator:
        yield from self._tick()
        parent = self._get_dir(dir_id)
        if name in parent.entries:
            raise FsError("EXIST", name)
        fileid = self._new_inode(FileKind.SYMLINK, 0o777)
        inode = self._inodes[fileid]
        inode.target = target
        inode.parent = dir_id
        inode.attrs.size = len(target)
        parent.entries[name] = fileid
        return fileid

    def link(self, dir_id: int, name: str, fileid: int) -> Generator:
        yield from self._tick()
        parent = self._get_dir(dir_id)
        if name in parent.entries:
            raise FsError("EXIST", name)
        inode = self._get(fileid)
        if inode.attrs.kind is FileKind.DIRECTORY:
            raise FsError("ISDIR", "hard link to directory")
        parent.entries[name] = fileid
        inode.attrs.nlink += 1
        inode.attrs.ctime = self.sim.now
        parent.attrs.mtime = self.sim.now

    def mknod(self, dir_id: int, name: str, mode: int = 0o644) -> Generator:
        yield from self._tick()
        parent = self._get_dir(dir_id)
        if name in parent.entries:
            raise FsError("EXIST", name)
        fileid = self._new_inode(FileKind.SPECIAL, mode)
        self._inodes[fileid].parent = dir_id
        parent.entries[name] = fileid
        return fileid

    def readlink(self, fileid: int) -> Generator:
        yield from self._tick()
        inode = self._get(fileid)
        if inode.attrs.kind is not FileKind.SYMLINK:
            raise FsError("INVAL", "not a symlink")
        return inode.target

    def remove(self, dir_id: int, name: str) -> Generator:
        yield from self._tick()
        parent = self._get_dir(dir_id)
        fileid = parent.entries.get(name)
        if fileid is None:
            raise FsError("NOENT", name)
        inode = self._get(fileid)
        if inode.attrs.kind is FileKind.DIRECTORY:
            raise FsError("ISDIR", name)
        del parent.entries[name]
        inode.attrs.nlink -= 1
        if inode.attrs.nlink <= 0:
            self._drop_data(inode)
            del self._inodes[fileid]
        else:
            inode.attrs.ctime = self.sim.now

    def rmdir(self, dir_id: int, name: str) -> Generator:
        yield from self._tick()
        parent = self._get_dir(dir_id)
        fileid = parent.entries.get(name)
        if fileid is None:
            raise FsError("NOENT", name)
        child = self._get_dir(fileid)
        if child.entries:
            raise FsError("NOTEMPTY", name)
        del parent.entries[name]
        del self._inodes[fileid]
        parent.attrs.nlink -= 1

    def rename(self, from_dir: int, from_name: str, to_dir: int, to_name: str) -> Generator:
        yield from self._tick()
        src = self._get_dir(from_dir)
        dst = self._get_dir(to_dir)
        fileid = src.entries.get(from_name)
        if fileid is None:
            raise FsError("NOENT", from_name)
        if to_name in dst.entries and dst.entries[to_name] != fileid:
            existing = self._get(dst.entries[to_name])
            if existing.attrs.kind is FileKind.DIRECTORY and existing.entries:
                raise FsError("NOTEMPTY", to_name)
            del self._inodes[dst.entries[to_name]]
        del src.entries[from_name]
        dst.entries[to_name] = fileid
        self._inodes[fileid].parent = to_dir

    def readdir(self, dir_id: int) -> Generator:
        yield from self._tick()
        inode = self._get_dir(dir_id)
        return [
            DirEntry(name=name, fileid=fid, kind=self._get(fid).attrs.kind)
            for name, fid in sorted(inode.entries.items())
        ]

    # -- attributes -----------------------------------------------------------
    def getattr(self, fileid: int) -> Generator:
        yield from self._tick()
        return self._get(fileid).attrs

    def setattr(self, fileid: int, size=None, mode=None) -> Generator:
        yield from self._tick()
        inode = self._get(fileid)
        if mode is not None:
            inode.attrs.mode = mode
        if size is not None:
            if inode.attrs.kind is not FileKind.REGULAR:
                raise FsError("INVAL", "resize of non-file")
            self._resize_data(inode, size)
            inode.attrs.size = size
            inode.attrs.mtime = self.sim.now
        inode.attrs.ctime = self.sim.now
        return inode.attrs


    # -- data hooks (subclass responsibilities) ------------------------------
    def _drop_data(self, inode: _Inode) -> None:
        """Reclaim data storage when an inode is unlinked."""
        self.used_bytes -= len(inode.data)
        inode.data.clear()

    def _resize_data(self, inode: _Inode, size: int) -> None:
        """Grow/shrink an inode's data to ``size`` bytes.

        Sparse store: growth just moves the logical length (new bytes
        are holes), shrink drops whole pages — no zero-fill either way.
        """
        old = len(inode.data)
        inode.data.truncate(size)
        self.used_bytes += size - old
