"""Backend file systems: the substrates NFS serves from.

The paper's two testbeds store data differently and that difference
drives two sets of results:

* **tmpfs** (Figs 5–8): a memory file system — service time is pure
  CPU/memcpy, so the transport and registration machinery dominate.
* **XFS on an 8-spindle RAID-0** (Fig 10): real disks at ≈30 MB/s each
  behind a server page cache of 4 or 8 GB — aggregate throughput is
  page-cache hit rate × memory speed + miss rate × spindle bandwidth,
  which is exactly the shape of the multi-client curves.

All file systems implement the same generator-based interface
(:class:`repro.fs.api.FileSystem`) so the NFS server is
backend-agnostic.
"""

from repro.fs.api import DirEntry, FileKind, FileSystem, FsAttributes, FsError, FsStat
from repro.fs.tmpfs import TmpFs
from repro.fs.disk import Disk, DiskConfig
from repro.fs.raid import Raid0
from repro.fs.pagecache import PageCache
from repro.fs.blockfs import BlockFs

__all__ = [
    "DirEntry",
    "FileKind",
    "BlockFs",
    "Disk",
    "DiskConfig",
    "FileSystem",
    "FsAttributes",
    "FsError",
    "FsStat",
    "PageCache",
    "Raid0",
    "TmpFs",
]
