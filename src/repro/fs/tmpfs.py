"""tmpfs: the memory file system behind the Solaris experiments (§5.1).

Service time is memcpy plus a small per-operation CPU charge; there is
no stable storage, so COMMIT is free — exactly the conditions under
which the transport and registration machinery become the bottleneck,
which is why the paper benchmarks on tmpfs when isolating them.
"""

from __future__ import annotations

from typing import Generator

from repro.fs.api import FileKind, FsError, FsStat
from repro.fs.namespace import NamespaceFs
from repro.osmodel import CPU
from repro.sim import Simulator

__all__ = ["TmpFs"]


class TmpFs(NamespaceFs):
    """In-memory POSIX-ish file system with real byte storage."""

    def __init__(self, sim: Simulator, cpu: CPU, capacity_bytes: int = 1 << 34,
                 per_op_cpu_us: float = 1.5, name: str = "tmpfs"):
        super().__init__(sim, cpu, capacity_bytes, per_op_cpu_us, name)

    def read(self, fileid: int, offset: int, length: int) -> Generator:
        inode = self._get(fileid)
        if inode.attrs.kind is not FileKind.REGULAR:
            raise FsError("INVAL", "read of non-file")
        token = self._data_span("read", fileid=fileid, bytes=length)
        try:
            yield from self._tick()
            data = inode.data.read(offset, length)
            # One pass over the data: page-cache -> transport buffer.  The
            # simulated memcpy is charged in full even though the host only
            # moves a payload descriptor.
            yield from self.cpu.copy(len(data))
        finally:
            self._end_span(token)
        inode.attrs.atime = self.sim.now
        eof = offset + length >= len(inode.data)
        return data, eof

    def write(self, fileid: int, offset: int, data) -> Generator:
        inode = self._get(fileid)
        if inode.attrs.kind is not FileKind.REGULAR:
            raise FsError("INVAL", "write of non-file")
        token = self._data_span("write", fileid=fileid, bytes=len(data))
        try:
            yield from self._tick()
            end = offset + len(data)
            grow = max(0, end - len(inode.data))
            if self.used_bytes + grow > self.capacity_bytes:
                raise FsError("NOSPC", "tmpfs full")
            if grow:
                self.used_bytes += grow
            yield from self.cpu.copy(len(data))
        finally:
            self._end_span(token)
        inode.data.write(offset, data)
        inode.attrs.size = len(inode.data)
        inode.attrs.mtime = self.sim.now
        return len(data)

    def commit(self, fileid: int) -> Generator:
        # Memory file system: nothing to stabilise.
        yield from self._tick()

    def fsstat(self) -> Generator:
        yield from self._tick()
        return FsStat(
            total_bytes=self.capacity_bytes,
            free_bytes=self.capacity_bytes - self.used_bytes,
            total_files=1 << 20,
            free_files=(1 << 20) - len(self._inodes),
        )
