"""The file-system interface the NFS server programs against.

All operations are simulation processes (generators) because disk-backed
implementations take time; results use NFS-ish vocabulary (file ids are
inode numbers, attributes mirror fattr3) so the NFS layer is a thin
codec over this interface.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Generator, Optional

__all__ = ["DirEntry", "FileKind", "FileSystem", "FsAttributes", "FsError", "FsStat"]


class FsError(Exception):
    """Carries an NFS-style status code."""

    def __init__(self, status: str, detail: str = ""):
        super().__init__(f"{status}: {detail}" if detail else status)
        self.status = status


class FileKind(enum.Enum):
    REGULAR = "reg"
    DIRECTORY = "dir"
    SYMLINK = "lnk"
    SPECIAL = "spc"          # FIFOs/devices (NFS MKNOD targets)


@dataclass
class FsAttributes:
    """The subset of fattr3 the evaluation touches."""

    fileid: int
    kind: FileKind
    size: int = 0
    mode: int = 0o644
    nlink: int = 1
    uid: int = 0
    gid: int = 0
    atime: float = 0.0
    mtime: float = 0.0
    ctime: float = 0.0


@dataclass
class FsStat:
    """FSSTAT-style totals."""

    total_bytes: int
    free_bytes: int
    total_files: int
    free_files: int


@dataclass
class DirEntry:
    name: str
    fileid: int
    kind: FileKind


class FileSystem(abc.ABC):
    """Generator-based VFS; every method is a simulation process.

    File identity is the integer ``fileid`` (inode number); the NFS
    layer wraps these in opaque file handles.  ``root_id`` names the
    root directory.
    """

    root_id: int = 1

    @abc.abstractmethod
    def getattr(self, fileid: int) -> Generator:
        """→ FsAttributes"""

    @abc.abstractmethod
    def setattr(self, fileid: int, size: Optional[int] = None,
                mode: Optional[int] = None) -> Generator:
        """→ FsAttributes (truncate/chmod subset)"""

    @abc.abstractmethod
    def lookup(self, dir_id: int, name: str) -> Generator:
        """→ fileid"""

    @abc.abstractmethod
    def create(self, dir_id: int, name: str, mode: int = 0o644) -> Generator:
        """→ fileid of the new regular file (EXIST if taken)"""

    @abc.abstractmethod
    def mkdir(self, dir_id: int, name: str, mode: int = 0o755) -> Generator:
        """→ fileid of the new directory"""

    @abc.abstractmethod
    def symlink(self, dir_id: int, name: str, target: str) -> Generator:
        """→ fileid of the new symlink"""

    @abc.abstractmethod
    def link(self, dir_id: int, name: str, fileid: int) -> Generator:
        """Hard-link ``fileid`` under a new name (nlink bookkeeping)."""

    @abc.abstractmethod
    def mknod(self, dir_id: int, name: str, mode: int = 0o644) -> Generator:
        """→ fileid of a new special node (FIFO/device stand-in)."""

    @abc.abstractmethod
    def readlink(self, fileid: int) -> Generator:
        """→ target path string"""

    @abc.abstractmethod
    def read(self, fileid: int, offset: int, length: int) -> Generator:
        """→ (bytes, eof)"""

    @abc.abstractmethod
    def write(self, fileid: int, offset: int, data: bytes) -> Generator:
        """→ bytes written"""

    @abc.abstractmethod
    def commit(self, fileid: int) -> Generator:
        """Flush unstable writes to stable storage."""

    @abc.abstractmethod
    def remove(self, dir_id: int, name: str) -> Generator:
        """Unlink a file/symlink."""

    @abc.abstractmethod
    def rmdir(self, dir_id: int, name: str) -> Generator:
        """Remove an empty directory."""

    @abc.abstractmethod
    def rename(self, from_dir: int, from_name: str, to_dir: int, to_name: str) -> Generator:
        """Atomic rename."""

    @abc.abstractmethod
    def readdir(self, dir_id: int) -> Generator:
        """→ list[DirEntry]"""

    @abc.abstractmethod
    def fsstat(self) -> Generator:
        """→ FsStat"""
