"""Page-granular sparse file storage.

The seed kept every inode's contents in one flat ``bytearray`` and
zero-filled growth with ``bytearray.extend`` — 28% of a fig 5 run's
host time spent materialising simulated zeros.  :class:`SparseFile`
stores only the pages that have ever been written, as immutable
``bytes``-or-:class:`~repro.payload.Payload` snippets, so

* growth past EOF and hole creation are O(1),
* truncate is O(pages touched),
* holes read back as zero without existing anywhere, and
* zero-copy payloads written through the transport land in the page
  map *as descriptors* — a 1 MB tiled record occupies a handful of
  run tuples, not a megabyte.

A stored page may be shorter than ``page_bytes``; the missing tail is
implicitly zero.  ``size`` is the logical file length (the NFS
attribute); :attr:`resident_bytes` counts bytes actually present in
the page map — the sparse-accounting number the tests pin down.
"""

from __future__ import annotations

from repro.payload import Payload, PayloadLike, join_parts

__all__ = ["SparseFile"]

#: Pages whose composed payload fragments exceed this many runs get
#: materialised to flat bytes — bounds run-list growth under adversarial
#: small-write patterns while keeping the common paths descriptor-only.
_MAX_PAGE_RUNS = 32


def _is_zero(content: PayloadLike) -> bool:
    if isinstance(content, Payload):
        return content.is_zeros()
    return not any(content)


class SparseFile:
    """A logically contiguous file stored as a sparse page map."""

    __slots__ = ("page_bytes", "size", "_pages")

    def __init__(self, page_bytes: int = 64 * 1024):
        if page_bytes <= 0:
            raise ValueError("page_bytes must be positive")
        self.page_bytes = page_bytes
        self.size = 0
        self._pages: dict[int, PayloadLike] = {}

    def __len__(self) -> int:
        return self.size

    @property
    def resident_bytes(self) -> int:
        """Real bytes held by the page map.

        Holes cost nothing, and virtual payload runs (tiles/zeros) count
        only their materialised portions — a tiled megabyte stored as a
        descriptor is ~free.
        """
        return sum(c.resident_bytes if isinstance(c, Payload) else len(c)
                   for c in self._pages.values())

    @property
    def resident_pages(self) -> int:
        return len(self._pages)

    # ------------------------------------------------------------ read
    def read(self, offset: int, length: int) -> PayloadLike:
        """Content of ``[offset, offset+length)`` clamped to EOF.

        Returns ``bytes`` or a :class:`Payload`; holes come back as
        zero-filled virtual runs, never materialised.
        """
        stop = min(offset + max(0, length), self.size)
        if offset >= stop:
            return b""
        pb = self.page_bytes
        parts: list[PayloadLike] = []
        pos = offset
        while pos < stop:
            pageno, within = divmod(pos, pb)
            take = min(pb - within, stop - pos)
            page = self._pages.get(pageno)
            if page is None:
                parts.append(Payload.zeros(take))
            else:
                avail = len(page) - within
                if avail <= 0:
                    parts.append(Payload.zeros(take))
                elif avail >= take:
                    parts.append(page[within:within + take])
                else:
                    parts.append(page[within:])
                    parts.append(Payload.zeros(take - avail))
            pos += take
        return join_parts(parts)

    # ------------------------------------------------------------ write
    def write(self, offset: int, data: PayloadLike) -> None:
        """Store ``data`` at ``offset``; grows ``size`` past EOF in O(1)."""
        if offset < 0:
            raise ValueError("negative offset")
        length = len(data)
        if length == 0:
            self.size = max(self.size, offset)
            return
        pb = self.page_bytes
        pos = 0
        while pos < length:
            pageno, within = divmod(offset + pos, pb)
            take = min(pb - within, length - pos)
            chunk = data[pos:pos + take]
            self._store(pageno, within, chunk, take)
            pos += take
        self.size = max(self.size, offset + length)

    def _store(self, pageno: int, within: int, chunk: PayloadLike, take: int) -> None:
        old = self._pages.get(pageno)
        if within == 0 and (old is None or len(old) <= take):
            new = chunk
        else:
            head = old[:within] if old is not None else b""
            parts: list[PayloadLike] = [head]
            if len(head) < within:
                parts.append(Payload.zeros(within - len(head)))
            parts.append(chunk)
            if old is not None and len(old) > within + take:
                parts.append(old[within + take:])
            new = join_parts(parts)
        if isinstance(new, Payload) and new.nruns > _MAX_PAGE_RUNS:
            new = new.tobytes()
        if isinstance(new, bytearray):
            new = bytes(new)
        if _is_zero(new):
            self._pages.pop(pageno, None)
        else:
            self._pages[pageno] = new

    # ------------------------------------------------------------ resize
    def truncate(self, size: int) -> None:
        """Set the logical length; O(pages dropped) down, O(1) up."""
        if size < 0:
            raise ValueError("negative size")
        if size < self.size:
            pb = self.page_bytes
            last, within = divmod(size, pb)
            for pageno in [p for p in self._pages if p > last]:
                del self._pages[pageno]
            if within == 0:
                self._pages.pop(last, None)
            else:
                page = self._pages.get(last)
                if page is not None and len(page) > within:
                    clipped = page[:within]
                    if _is_zero(clipped):
                        del self._pages[last]
                    else:
                        self._pages[last] = clipped
        self.size = size

    def clear(self) -> None:
        self._pages.clear()
        self.size = 0
