"""Deterministic random-number utilities.

Every stochastic component (disk seek jitter, OLTP think times, adversary
steering-tag guesses) draws from a :class:`DeterministicRNG` derived from
a root seed plus the component's name, so (a) whole-cluster runs are
reproducible from a single seed and (b) adding a new component never
perturbs the streams of existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["DeterministicRNG", "derive_seed"]


def derive_seed(root_seed: int, *names: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a name path."""
    h = hashlib.blake2b(digest_size=8)
    h.update(root_seed.to_bytes(8, "little", signed=False))
    for name in names:
        h.update(b"\x00")
        h.update(name.encode("utf-8"))
    return int.from_bytes(h.digest(), "little")


class DeterministicRNG:
    """Thin facade over :class:`numpy.random.Generator` with named children."""

    def __init__(self, seed: int, *names: str):
        self.seed = derive_seed(seed, *names) if names else seed
        self._gen = np.random.default_rng(self.seed)

    def child(self, *names: str) -> "DeterministicRNG":
        """Independent stream for a named sub-component."""
        return DeterministicRNG(derive_seed(self.seed, *names))

    # -- draws -----------------------------------------------------------
    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._gen.uniform(low, high))

    def exponential(self, mean: float) -> float:
        return float(self._gen.exponential(mean))

    def integers(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high)``."""
        return int(self._gen.integers(low, high))

    def choice(self, seq):
        return seq[int(self._gen.integers(0, len(seq)))]

    def bytes(self, n: int) -> bytes:
        return self._gen.bytes(n)

    def shuffle(self, seq: list) -> None:
        self._gen.shuffle(seq)

    def lognormal(self, mean: float, sigma: float) -> float:
        return float(self._gen.lognormal(mean, sigma))
