"""Build-on-import helper for the compiled simulation core.

The extension (:mod:`repro.sim._cengine`) is a single C file compiled
with the host toolchain when first needed — no binaries are committed,
no build system is required beyond ``cc`` and the CPython headers that
ship with the interpreter.  When the toolchain is missing or the build
fails, :func:`load_cengine` returns ``None`` and
:mod:`repro.sim.engine` silently falls back to the pure-python core
(unless ``REPRO_SIM_CORE=c`` demanded the compiled one).

The shared object is cached next to the source (or, when the source
tree is read-only, under ``~/.cache/repro``) and rebuilt whenever the
C file is newer than the cached build.
"""

from __future__ import annotations

import importlib.machinery
import importlib.util
import os
import shutil
import subprocess
import sysconfig
import tempfile
from pathlib import Path
from types import ModuleType
from typing import Optional

_SOURCE = Path(__file__).with_name("_cengine.c")
_EXT_SUFFIX = importlib.machinery.EXTENSION_SUFFIXES[0]


def _cache_path() -> Path:
    """Fallback build location for read-only checkouts."""
    root = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache")
    tag = sysconfig.get_config_var("SOABI") or "abi"
    return Path(root) / "repro" / f"_cengine.{tag}{_EXT_SUFFIX}"


def _candidates() -> list[Path]:
    return [_SOURCE.with_name(f"_cengine{_EXT_SUFFIX}"), _cache_path()]


def _is_fresh(so: Path) -> bool:
    try:
        return so.stat().st_mtime >= _SOURCE.stat().st_mtime
    except OSError:
        return False


def _compile(so: Path) -> bool:
    """Compile the extension to `so`; True on success."""
    cc = (os.environ.get("CC")
          or sysconfig.get_config_var("CC")
          or "cc").split()[0]
    if shutil.which(cc) is None:
        cc = next((c for c in ("cc", "gcc", "clang") if shutil.which(c)), "")
        if not cc:
            return False
    include = sysconfig.get_paths()["include"]
    try:
        so.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(suffix=_EXT_SUFFIX, dir=so.parent)
        os.close(fd)
        cmd = [cc, "-O2", "-fPIC", "-shared", "-fno-strict-aliasing",
               f"-I{include}", str(_SOURCE), "-o", tmp]
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=300)
        if proc.returncode != 0:
            os.unlink(tmp)
            if os.environ.get("REPRO_SIM_CORE", "").strip().lower() == "c":
                raise ImportError(
                    f"compiled sim core build failed:\n{proc.stderr[-2000:]}")
            return False
        os.replace(tmp, so)   # atomic: concurrent builders race safely
        return True
    except (OSError, subprocess.SubprocessError):
        return False


def _load_from(so: Path) -> Optional[ModuleType]:
    spec = importlib.util.spec_from_file_location("repro.sim._cengine", so)
    if spec is None or spec.loader is None:
        return None
    module = importlib.util.module_from_spec(spec)
    try:
        spec.loader.exec_module(module)
    except ImportError:
        return None
    return module


def load_cengine(require: bool = False) -> Optional[ModuleType]:
    """Return the compiled core module, building it if necessary.

    ``require=True`` (``REPRO_SIM_CORE=c``) turns every failure into an
    ImportError instead of a silent ``None``.
    """
    if not _SOURCE.exists():
        if require:
            raise ImportError(f"compiled sim core source missing: {_SOURCE}")
        return None
    for so in _candidates():
        if _is_fresh(so):
            module = _load_from(so)
            if module is not None:
                return module
    for so in _candidates():
        if _compile(so):
            module = _load_from(so)
            if module is not None:
                return module
    if require:
        raise ImportError(
            "REPRO_SIM_CORE=c but the compiled sim core could not be "
            "built or loaded (is a C toolchain installed?)")
    return None
