"""Simulation-kernel core selector: compiled engine with pure-python fallback.

Two interchangeable cores implement the event loop:

* :mod:`repro.sim._pyengine` — the pure-python reference (always works);
* :mod:`repro.sim._cengine` — an optional CPython extension compiling
  the same hot core (Event/Timeout/Process/Simulator plus the bucketed
  calendar queue) to C.  Built on demand by :mod:`repro.sim._build`
  when a C toolchain is available.

Selection happens once, at import, via ``REPRO_SIM_CORE``:

``auto`` (default)
    use the compiled core when it imports (building it first if
    possible), otherwise fall back to pure python silently;
``python``
    force the pure-python core (golden-equivalence tests use this);
``c``
    require the compiled core; raise ImportError if it cannot be
    built/loaded (CI uses this to catch silently-broken builds).

The contract between the cores is *bit-identical schedules*: events
fire in ``(time, scheduling order)`` under both, so every figure table
is byte-for-byte the same whichever core ran it.  ``repro check``
(sanitized + schedule-perturbed grids) and the golden tests enforce
this; ``tests/test_compiled_core.py`` compares the cores directly.

Condition events (:class:`AllOf` / :class:`AnyOf`) are defined *here*,
against whichever ``Event`` was selected, so compiled and fallback runs
agree on their behaviour without duplicating the logic in C.
"""

from __future__ import annotations

import os
from typing import Iterable

from repro.sim import _pyengine
from repro.sim._pyengine import (  # noqa: F401  (re-exported surface)
    Event as PyEvent,
    Interrupt,
    Process as PyProcess,
    SimulationError,
    Simulator as PurePythonSimulator,
    Timeout as PyTimeout,
    _Wakeup,
)

__all__ = [
    "ACTIVE_CORE",
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "PurePythonSimulator",
    "SimulationError",
    "Simulator",
    "Timeout",
]

#: which core is live: ``"c"`` or ``"python"``.
ACTIVE_CORE = "python"

Event = _pyengine.Event
Timeout = _pyengine.Timeout
Process = _pyengine.Process
Simulator = _pyengine.Simulator

_requested = os.environ.get("REPRO_SIM_CORE", "auto").strip().lower()
if _requested not in ("auto", "python", "c"):
    raise ImportError(
        f"REPRO_SIM_CORE={_requested!r} not understood (auto|python|c)")

if _requested in ("auto", "c"):
    try:
        from repro.sim import _build

        _cengine = _build.load_cengine(require=_requested == "c")
    except ImportError:
        if _requested == "c":
            raise
        _cengine = None
    if _cengine is not None:
        Event = _cengine.Event
        Timeout = _cengine.Timeout
        Process = _cengine.Process
        Simulator = _cengine.Simulator
        ACTIVE_CORE = "c"
        # The pure-python engine (still used by PerturbedSimulator) must
        # accept compiled events as yield targets: model code constructs
        # Event/AllOf/AnyOf from the selected classes regardless of
        # which simulator instance they are bound to.
        _pyengine._EVENT_TYPES = (_pyengine.Event, _cengine.Event)


class _ConditionBase(Event):
    """Shared machinery for :class:`AllOf` / :class:`AnyOf`.

    Subclasses the *selected* Event so compiled-core processes accept
    conditions as yield targets; the logic itself is core-agnostic (it
    only touches the shared Event surface).
    """

    __slots__ = ("_events", "_pending")

    def __init__(self, sim, events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        for ev in self._events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
        self._pending = 0
        already = []
        for ev in self._events:
            if ev._processed:
                already.append(ev)
            else:
                self._pending += 1
                ev.callbacks.append(self._on_fire)
        for ev in already:
            if self._triggered:
                break
            self._consume(ev)
        if self._pending == 0 and not self._triggered:
            self._finish()

    def _on_fire(self, ev: Event) -> None:
        self._pending -= 1
        if self._triggered:
            if not ev._ok:
                ev._defused = True
            return
        self._consume(ev)

    def _consume(self, ev: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _finish(self) -> None:
        self.succeed({ev: ev._value for ev in self._events if ev._triggered and ev._ok})


class AllOf(_ConditionBase):
    """Fires when every constituent event has fired (fails fast on failure)."""

    __slots__ = ()

    def _consume(self, ev: Event) -> None:
        if not ev._ok:
            ev._defused = True
            self.fail(ev._value if isinstance(ev._value, BaseException) else SimulationError(str(ev._value)))
            return
        if self._pending == 0:
            self._finish()


class AnyOf(_ConditionBase):
    """Fires when the first constituent event fires."""

    __slots__ = ()

    def _consume(self, ev: Event) -> None:
        if not ev._ok:
            ev._defused = True
            self.fail(ev._value if isinstance(ev._value, BaseException) else SimulationError(str(ev._value)))
            return
        self._finish()


if ACTIVE_CORE == "c":
    # The compiled Simulator's all_of/any_of delegate to these classes.
    _cengine.set_conditions(AllOf, AnyOf)
