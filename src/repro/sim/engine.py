"""Event loop, events and processes for the simulation kernel.

The engine is deliberately small: a binary heap of ``(time, seq, event)``
entries, an :class:`Event` primitive that fires exactly once, and a
:class:`Process` wrapper that drives a generator by subscribing it to
whatever event it yields.  Determinism is guaranteed by the monotone
``seq`` tiebreaker: two events scheduled for the same instant always fire
in scheduling order, so repeated runs with the same seed are bit-identical.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation API (not for modeled failures)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` carries an arbitrary payload describing why the process was
    interrupted (e.g. a timeout watchdog or a connection teardown).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event is *triggered* when given a value (or failure) and a position
    in the schedule; it is *processed* once its callbacks have run.
    Processes wait on events by yielding them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[[Event], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        self._defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimulationError("event value inspected before trigger")
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value inspected before trigger")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully ``delay`` microseconds from now."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed; waiters see ``exception`` raised."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("Event.fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.sim._schedule(self, delay)
        return self

    def defused(self) -> "Event":
        """Mark a failed event as handled out-of-band (no crash at top level)."""
        self._defused = True
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.sim.now:.3f}>"


class _Wakeup:
    """Minimal pre-triggered carrier for process boot and interrupt.

    Duck-types the slice of the :class:`Event` surface the scheduler
    touches (``callbacks``/``_ok``/``_value``/``_defused``/``_processed``)
    without the full Event construction cost — these are allocated once
    per process, on the engine's hottest path.
    """

    __slots__ = ("callbacks", "_value", "_ok", "_defused", "_processed")

    def __init__(self, callback, value: Any = None, ok: bool = True):
        self.callbacks = [callback]
        self._value = value
        self._ok = ok
        self._defused = not ok
        self._processed = False


class Timeout(Event):
    """An event that fires ``delay`` microseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        # Inlined Event.__init__ + trigger: a timeout is born fired, so
        # skip the un-triggered intermediate state entirely.
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._triggered = True
        self._processed = False
        self._defused = False
        self.delay = delay
        sim._schedule(self, delay)


class Process(Event):
    """Drives a generator; the process *is* an event that fires on return.

    The generator may yield any :class:`Event`.  When that event fires the
    generator is resumed with the event's value (or the failure exception
    is thrown into it).  The process event itself succeeds with the
    generator's return value, or fails with its uncaught exception.
    """

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"Process requires a generator, got {type(generator).__name__}")
        super().__init__(sim)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Bootstrap: resume once at the current instant (same heap slot
        # and seq a full boot Event would consume, minus its allocation).
        boot = _Wakeup(self._resume)
        sim._schedule(boot, 0.0)
        self._waiting_on = boot

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant."""
        if self._triggered:
            raise SimulationError("cannot interrupt a finished process")
        if self._waiting_on is None:
            raise SimulationError("cannot interrupt a process that is currently running")
        # Detach from whatever it was waiting on.
        target = self._waiting_on
        if target.callbacks is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._waiting_on = None
        carrier = _Wakeup(self._resume, Interrupt(cause), ok=False)
        self.sim._schedule(carrier, 0.0)
        self._waiting_on = carrier

    # -- internal -------------------------------------------------------
    def _resume(self, trigger: Event) -> None:
        self.sim.active_process = self
        self._waiting_on = None
        while True:
            try:
                if trigger._ok:
                    target = self._generator.send(trigger._value)
                else:
                    trigger._defused = True
                    target = self._generator.throw(trigger._value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self.fail(exc)
                return
            if not isinstance(target, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded {type(target).__name__}, expected Event"
                )
                try:
                    self._generator.throw(exc)
                except StopIteration as stop:
                    self.succeed(stop.value)
                except BaseException as err:
                    self.fail(err)
                return
            if target.sim is not self.sim:
                self.fail(SimulationError("yielded event belongs to a different Simulator"))
                return
            if target._processed:
                # Already fired: resume immediately with its outcome.
                trigger = target
                continue
            target.callbacks.append(self._resume)
            self._waiting_on = target
            return


class _ConditionBase(Event):
    """Shared machinery for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("_events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        for ev in self._events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
        self._pending = 0
        already = []
        for ev in self._events:
            if ev._processed:
                already.append(ev)
            else:
                self._pending += 1
                ev.callbacks.append(self._on_fire)
        for ev in already:
            if self._triggered:
                break
            self._consume(ev)
        if self._pending == 0 and not self._triggered:
            self._finish()

    def _on_fire(self, ev: Event) -> None:
        self._pending -= 1
        if self._triggered:
            if not ev._ok:
                ev._defused = True
            return
        self._consume(ev)

    def _consume(self, ev: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _finish(self) -> None:
        self.succeed({ev: ev._value for ev in self._events if ev._triggered and ev._ok})


class AllOf(_ConditionBase):
    """Fires when every constituent event has fired (fails fast on failure)."""

    __slots__ = ()

    def _consume(self, ev: Event) -> None:
        if not ev._ok:
            ev._defused = True
            self.fail(ev._value if isinstance(ev._value, BaseException) else SimulationError(str(ev._value)))
            return
        if self._pending == 0:
            self._finish()


class AnyOf(_ConditionBase):
    """Fires when the first constituent event fires."""

    __slots__ = ()

    def _consume(self, ev: Event) -> None:
        if not ev._ok:
            ev._defused = True
            self.fail(ev._value if isinstance(ev._value, BaseException) else SimulationError(str(ev._value)))
            return
        self._finish()


class Simulator:
    """The event loop.  ``now`` is simulated time in microseconds."""

    def __init__(self):
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0
        #: total events processed — the simulator's own work metric,
        #: reported by ``python -m repro bench`` as events/sec.
        self.steps = 0
        #: observability root (repro.telemetry.Telemetry) or None.  This
        #: is the single disable flag: every instrumented site does one
        #: attribute load + ``is None`` test when telemetry is off.
        self.telemetry = None
        #: the Process currently being resumed; the span tracer keys its
        #: task-span map on this to nest same-process spans.
        self.active_process = None
        #: runtime invariant checker (repro.check.Sanitizer) or None.
        #: Same overhead contract as ``telemetry``: one attribute load
        #: plus ``is None`` per instrumented site when off; when on it
        #: only reads sim state, so results stay bit-identical.
        self.sanitizer = None

    # -- construction helpers -------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        heapq.heappush(self._queue, (self.now + delay, self._seq, event))
        self._seq += 1

    # -- execution --------------------------------------------------------
    def step(self, _heappop=heapq.heappop) -> None:
        """Process the single next event in the schedule."""
        when, _, event = _heappop(self._queue)
        self.now = when
        self.steps += 1
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        assert callbacks is not None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            exc = event._value
            raise exc if isinstance(exc, BaseException) else SimulationError(repr(exc))

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or simulated time reaches ``until``."""
        if until is not None and until < self.now:
            raise SimulationError(f"run(until={until}) is in the past (now={self.now})")
        queue = self._queue
        step = self.step
        while queue:
            if until is not None and queue[0][0] > until:
                self.now = until
                return
            step()
        if until is not None:
            self.now = until

    def run_until_complete(self, process: Process, limit: float = float("inf")) -> Any:
        """Run until ``process`` finishes; return its value or raise its error."""
        queue = self._queue
        step = self.step
        if limit == float("inf"):
            # Hot path: no time-limit comparison per event.
            while not process._triggered:
                if not queue:
                    raise SimulationError(f"deadlock: {process.name!r} never completed")
                step()
        else:
            while not process._triggered:
                if not queue:
                    raise SimulationError(f"deadlock: {process.name!r} never completed")
                if queue[0][0] > limit:
                    raise SimulationError(
                        f"time limit {limit} exceeded waiting for {process.name!r}")
                step()
        if not process.ok:
            raise process.value
        return process.value

    @property
    def queue_size(self) -> int:
        return len(self._queue)
