/* Compiled simulation-kernel core.
 *
 * A CPython extension implementing the hot half of repro.sim:
 * Event, Timeout, Process, the _Wakeup boot/interrupt carrier and the
 * Simulator event loop.  Semantics are defined by the pure-python
 * reference (repro.sim._pyengine); the contract between the two cores
 * is BIT-IDENTICAL schedules — events fire in (time, scheduling order)
 * under both.  repro.sim.engine selects between them at import
 * (REPRO_SIM_CORE=auto|python|c) and tests/test_compiled_core.py plus
 * the golden grids enforce the equivalence.
 *
 * Queue layout (the compiled analogue of _pyengine's dict-of-buckets):
 *
 *   nowq  — FIFO array of events scheduled for exactly `now`.  The
 *           workload's dense same-instant bursts land here: append and
 *           popleft are O(1) with no per-entry allocation.
 *   heap  — binary min-heap of {when, seq, event} C structs for future
 *           instants; `seq` is a monotone push counter.
 *
 * Pop precedence is heap-entries-at-now first, then the nowq, then
 * advance time.  That reproduces the reference FIFO exactly: every
 * heap entry at instant T was pushed *before* time advanced to T
 * (scheduling at T once now==T lands in the nowq instead), so heap@T
 * entries precede all nowq entries in scheduling order, and `seq`
 * orders the heap entries among themselves.
 *
 * Python subclasses of Event (resource Requests, the AllOf/AnyOf
 * conditions built by repro.sim.engine) work unchanged: the types are
 * subclassable and every field the pure-python engine touches
 * (callbacks, _value, _ok, _triggered, _processed, _defused, sim) is
 * an ordinary writable attribute.  Events bound to a pure-python
 * simulator (e.g. the schedule-perturbation checker) degrade
 * gracefully: triggering routes through sim._schedule whenever sim is
 * not a compiled Simulator.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>

/* ------------------------------------------------------------------ */
/* module-level state (single interpreter; mirrors _pyengine globals)  */

static PyObject *SimulationError;   /* from repro.sim._pyengine */
static PyObject *InterruptExc;      /* from repro.sim._pyengine */
static PyObject *cond_allof;        /* set by engine via set_conditions */
static PyObject *cond_anyof;
static PyObject *str_throw;         /* interned "throw"                 */
static PyObject *str_value;         /* interned "value"                 */

/* ------------------------------------------------------------------ */
/* object structs                                                      */

typedef struct {
    PyObject_HEAD
    PyObject *sim;          /* Simulator (or python sim) owning this    */
    PyObject *callbacks;    /* list while pending, None once processed  */
    PyObject *value;        /* _value                                   */
    char ok, triggered, processed, defused;
} EventObject;

/* _Wakeup shares EventObject's layout so the scheduler fires both
 * through the same struct accesses; `sim` stays None. */
typedef EventObject WakeupObject;

typedef struct {
    EventObject ev;
    double delay;
} TimeoutObject;

typedef struct ProcessObject ProcessObject;

/* lightweight bound-callback: calling it resumes its process */
typedef struct {
    PyObject_HEAD
    ProcessObject *proc;
} ResumeObject;

struct ProcessObject {
    EventObject ev;
    PyObject *generator;
    PyObject *waiting_on;   /* Event/Wakeup or None                     */
    PyObject *name;
    PyObject *resume_cb;    /* cached ResumeObject                      */
};

typedef struct {
    double when;
    unsigned long long seq;
    PyObject *ev;
} HeapEntry;

typedef struct {
    PyObject_HEAD
    double now;
    long long steps;
    unsigned long long seq;
    PyObject *telemetry;
    PyObject *active_process;
    PyObject *sanitizer;
    /* same-instant FIFO */
    PyObject **nowq;
    Py_ssize_t nq_head, nq_len, nq_cap;
    /* future instants */
    HeapEntry *heap;
    Py_ssize_t hlen, hcap;
} SimObject;

static PyTypeObject Event_Type;
static PyTypeObject Wakeup_Type;
static PyTypeObject Timeout_Type;
static PyTypeObject Process_Type;
static PyTypeObject Resume_Type;
static PyTypeObject Simulator_Type;

static int resume_process(ProcessObject *p, EventObject *trigger);

/* raise `exc_type` with a formatted message (cold error paths only) */
static void
raise_formatted(PyObject *exc_type, const char *format, ...)
{
    va_list va;
    va_start(va, format);
    PyObject *msg = PyUnicode_FromFormatV(format, va);
    va_end(va);
    if (msg != NULL) {
        PyErr_SetObject(exc_type, msg);
        Py_DECREF(msg);
    }
}

/* repr-style formatting helper: a new float object (or NULL) */
static PyObject *
float_obj(double v)
{
    return PyFloat_FromDouble(v);
}

/* ------------------------------------------------------------------ */
/* scheduler internals                                                 */

static int
nowq_reserve(SimObject *sim)
{
    if (sim->nq_head > 0) {
        memmove(sim->nowq, sim->nowq + sim->nq_head,
                (size_t)(sim->nq_len - sim->nq_head) * sizeof(PyObject *));
        sim->nq_len -= sim->nq_head;
        sim->nq_head = 0;
        if (sim->nq_len < sim->nq_cap)
            return 0;
    }
    Py_ssize_t cap = sim->nq_cap ? sim->nq_cap * 2 : 64;
    PyObject **q = PyMem_Realloc(sim->nowq, (size_t)cap * sizeof(PyObject *));
    if (q == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    sim->nowq = q;
    sim->nq_cap = cap;
    return 0;
}

static int
heap_push(SimObject *sim, double when, PyObject *ev)
{
    if (sim->hlen == sim->hcap) {
        Py_ssize_t cap = sim->hcap ? sim->hcap * 2 : 64;
        HeapEntry *h = PyMem_Realloc(sim->heap, (size_t)cap * sizeof(HeapEntry));
        if (h == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        sim->heap = h;
        sim->hcap = cap;
    }
    HeapEntry *heap = sim->heap;
    Py_ssize_t i = sim->hlen++;
    unsigned long long seq = sim->seq++;
    while (i > 0) {
        Py_ssize_t parent = (i - 1) >> 1;
        if (heap[parent].when < when ||
            (heap[parent].when == when && heap[parent].seq < seq))
            break;
        heap[i] = heap[parent];
        i = parent;
    }
    heap[i].when = when;
    heap[i].seq = seq;
    heap[i].ev = Py_NewRef(ev);
    return 0;
}

/* pop the heap minimum; the caller owns the returned reference */
static PyObject *
heap_pop(SimObject *sim)
{
    HeapEntry *heap = sim->heap;
    PyObject *ev = heap[0].ev;
    Py_ssize_t n = --sim->hlen;
    if (n > 0) {
        HeapEntry last = heap[n];
        Py_ssize_t i = 0;
        for (;;) {
            Py_ssize_t child = 2 * i + 1;
            if (child >= n)
                break;
            Py_ssize_t right = child + 1;
            if (right < n &&
                (heap[right].when < heap[child].when ||
                 (heap[right].when == heap[child].when &&
                  heap[right].seq < heap[child].seq)))
                child = right;
            if (last.when < heap[child].when ||
                (last.when == heap[child].when && last.seq < heap[child].seq))
                break;
            heap[i] = heap[child];
            i = child;
        }
        heap[i] = last;
    }
    return ev;
}

/* schedule onto a compiled simulator */
static int
schedule_c(SimObject *sim, PyObject *ev, double delay)
{
    if (delay < 0.0) {
        PyObject *d = float_obj(delay);
        raise_formatted(SimulationError,
                        "cannot schedule into the past (delay=%R)", d);
        Py_XDECREF(d);
        return -1;
    }
    double when = sim->now + delay;
    if (when == sim->now) {
        if (sim->nq_len == sim->nq_cap && nowq_reserve(sim) < 0)
            return -1;
        sim->nowq[sim->nq_len++] = Py_NewRef(ev);
        return 0;
    }
    return heap_push(sim, when, ev);
}

/* schedule onto whatever simulator `sim` is */
static int
schedule_any(PyObject *sim, PyObject *ev, double delay)
{
    if (PyObject_TypeCheck(sim, &Simulator_Type))
        return schedule_c((SimObject *)sim, ev, delay);
    PyObject *r = PyObject_CallMethod(sim, "_schedule", "Od", ev, delay);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* ------------------------------------------------------------------ */
/* Event                                                               */

static int
event_init(EventObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *sim;
    static char *kwlist[] = {"sim", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O", kwlist, &sim))
        return -1;
    PyObject *cb = PyList_New(0);
    if (cb == NULL)
        return -1;
    Py_XSETREF(self->sim, Py_NewRef(sim));
    Py_XSETREF(self->callbacks, cb);
    Py_XSETREF(self->value, Py_NewRef(Py_None));
    self->ok = 1;
    self->triggered = 0;
    self->processed = 0;
    self->defused = 0;
    return 0;
}

static int
event_traverse(EventObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->sim);
    Py_VISIT(self->callbacks);
    Py_VISIT(self->value);
    return 0;
}

static int
event_clear(EventObject *self)
{
    Py_CLEAR(self->sim);
    Py_CLEAR(self->callbacks);
    Py_CLEAR(self->value);
    return 0;
}

static void
event_dealloc(EventObject *self)
{
    PyTypeObject *tp = Py_TYPE(self);
    PyObject_GC_UnTrack(self);
    event_clear(self);
    tp->tp_free((PyObject *)self);
}

/* shared trigger: set state and schedule; 0/-1 */
static int
event_trigger(EventObject *self, PyObject *value, int ok, double delay)
{
    if (self->triggered) {
        PyErr_SetString(SimulationError, "event already triggered");
        return -1;
    }
    self->triggered = 1;
    self->ok = (char)ok;
    Py_XSETREF(self->value, Py_NewRef(value));
    return schedule_any(self->sim, (PyObject *)self, delay);
}

/* parse the (x, delay=0.0) calling convention shared by succeed/fail */
static int
parse_trigger_args(const char *meth, const char *argname,
                   PyObject *const *args, Py_ssize_t nargs, PyObject *kwnames,
                   PyObject **x, double *delay)
{
    if (nargs > 2) {
        PyErr_Format(PyExc_TypeError, "%s() takes at most 2 arguments", meth);
        return -1;
    }
    if (nargs >= 1)
        *x = args[0];
    if (nargs == 2) {
        *delay = PyFloat_AsDouble(args[1]);
        if (*delay == -1.0 && PyErr_Occurred())
            return -1;
    }
    if (kwnames != NULL) {
        Py_ssize_t nkw = PyTuple_GET_SIZE(kwnames);
        for (Py_ssize_t i = 0; i < nkw; i++) {
            PyObject *name = PyTuple_GET_ITEM(kwnames, i);
            PyObject *v = args[nargs + i];
            if (PyUnicode_CompareWithASCIIString(name, argname) == 0) {
                if (nargs >= 1) {
                    PyErr_Format(PyExc_TypeError,
                                 "%s() got multiple values for '%s'",
                                 meth, argname);
                    return -1;
                }
                *x = v;
            }
            else if (PyUnicode_CompareWithASCIIString(name, "delay") == 0) {
                *delay = PyFloat_AsDouble(v);
                if (*delay == -1.0 && PyErr_Occurred())
                    return -1;
            }
            else {
                PyErr_Format(PyExc_TypeError,
                             "%s() got an unexpected keyword argument %R",
                             meth, name);
                return -1;
            }
        }
    }
    return 0;
}

static PyObject *
event_succeed(EventObject *self, PyObject *const *args, Py_ssize_t nargs,
              PyObject *kwnames)
{
    PyObject *value = Py_None;
    double delay = 0.0;
    if (parse_trigger_args("succeed", "value", args, nargs, kwnames,
                           &value, &delay) < 0)
        return NULL;
    if (event_trigger(self, value, 1, delay) < 0)
        return NULL;
    return Py_NewRef((PyObject *)self);
}

static PyObject *
event_fail(EventObject *self, PyObject *const *args, Py_ssize_t nargs,
           PyObject *kwnames)
{
    PyObject *exc = NULL;
    double delay = 0.0;
    if (parse_trigger_args("fail", "exception", args, nargs, kwnames,
                           &exc, &delay) < 0)
        return NULL;
    if (exc == NULL) {
        PyErr_SetString(PyExc_TypeError,
                        "fail() missing required argument: 'exception'");
        return NULL;
    }
    if (self->triggered) {
        PyErr_SetString(SimulationError, "event already triggered");
        return NULL;
    }
    if (!PyExceptionInstance_Check(exc)) {
        PyErr_SetString(SimulationError,
                        "Event.fail() requires an exception instance");
        return NULL;
    }
    if (event_trigger(self, exc, 0, delay) < 0)
        return NULL;
    return Py_NewRef((PyObject *)self);
}

static PyObject *
event_defused_meth(EventObject *self, PyObject *Py_UNUSED(ignored))
{
    self->defused = 1;
    return Py_NewRef((PyObject *)self);
}

static PyObject *
event_get_triggered(EventObject *self, void *closure)
{
    return PyBool_FromLong(self->triggered);
}

static PyObject *
event_get_processed(EventObject *self, void *closure)
{
    return PyBool_FromLong(self->processed);
}

static PyObject *
event_get_ok(EventObject *self, void *closure)
{
    if (!self->triggered) {
        PyErr_SetString(SimulationError, "event value inspected before trigger");
        return NULL;
    }
    return PyBool_FromLong(self->ok);
}

static PyObject *
event_get_value(EventObject *self, void *closure)
{
    if (!self->triggered) {
        PyErr_SetString(SimulationError, "event value inspected before trigger");
        return NULL;
    }
    return Py_NewRef(self->value ? self->value : Py_None);
}

static PyObject *
event_repr(EventObject *self)
{
    const char *state = self->processed ? "processed"
                      : (self->triggered ? "triggered" : "pending");
    return PyUnicode_FromFormat("<%s %s>", Py_TYPE(self)->tp_name, state);
}

static PyMemberDef event_members[] = {
    {"sim", T_OBJECT, offsetof(EventObject, sim), 0, "owning simulator"},
    {"callbacks", T_OBJECT, offsetof(EventObject, callbacks), 0,
     "pending callback list (None once processed)"},
    {"_value", T_OBJECT, offsetof(EventObject, value), 0, NULL},
    {"_ok", T_BOOL, offsetof(EventObject, ok), 0, NULL},
    {"_triggered", T_BOOL, offsetof(EventObject, triggered), 0, NULL},
    {"_processed", T_BOOL, offsetof(EventObject, processed), 0, NULL},
    {"_defused", T_BOOL, offsetof(EventObject, defused), 0, NULL},
    {NULL},
};

static PyGetSetDef event_getset[] = {
    {"triggered", (getter)event_get_triggered, NULL, NULL, NULL},
    {"processed", (getter)event_get_processed, NULL, NULL, NULL},
    {"ok", (getter)event_get_ok, NULL, NULL, NULL},
    {"value", (getter)event_get_value, NULL, NULL, NULL},
    {NULL},
};

static PyMethodDef event_methods[] = {
    {"succeed", (PyCFunction)(void (*)(void))event_succeed,
     METH_FASTCALL | METH_KEYWORDS,
     "Trigger the event successfully `delay` microseconds from now."},
    {"fail", (PyCFunction)(void (*)(void))event_fail,
     METH_FASTCALL | METH_KEYWORDS,
     "Trigger the event as failed; waiters see the exception raised."},
    {"defused", (PyCFunction)event_defused_meth, METH_NOARGS,
     "Mark a failed event as handled out-of-band."},
    {NULL},
};

static PyTypeObject Event_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._cengine.Event",
    .tp_basicsize = sizeof(EventObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "A one-shot occurrence in simulated time (compiled core).",
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)event_init,
    .tp_dealloc = (destructor)event_dealloc,
    .tp_traverse = (traverseproc)event_traverse,
    .tp_clear = (inquiry)event_clear,
    .tp_repr = (reprfunc)event_repr,
    .tp_members = event_members,
    .tp_getset = event_getset,
    .tp_methods = event_methods,
};

/* ------------------------------------------------------------------ */
/* _Wakeup                                                             */

static WakeupObject *
wakeup_new(PyObject *callback, PyObject *value, int ok)
{
    WakeupObject *w = PyObject_GC_New(WakeupObject, &Wakeup_Type);
    if (w == NULL)
        return NULL;
    w->sim = Py_NewRef(Py_None);
    w->value = Py_NewRef(value);
    w->ok = (char)ok;
    w->triggered = 1;
    w->processed = 0;
    w->defused = (char)!ok;
    w->callbacks = PyList_New(1);
    if (w->callbacks == NULL) {
        Py_DECREF(w);
        return NULL;
    }
    PyList_SET_ITEM(w->callbacks, 0, Py_NewRef(callback));
    PyObject_GC_Track((PyObject *)w);
    return w;
}

static void
wakeup_dealloc(WakeupObject *self)
{
    if (PyObject_GC_IsTracked((PyObject *)self))
        PyObject_GC_UnTrack(self);
    event_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyTypeObject Wakeup_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._cengine._Wakeup",
    .tp_basicsize = sizeof(WakeupObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Pre-triggered boot/interrupt carrier (compiled core).",
    .tp_dealloc = (destructor)wakeup_dealloc,
    .tp_traverse = (traverseproc)event_traverse,
    .tp_clear = (inquiry)event_clear,
    .tp_members = event_members,
};

/* ------------------------------------------------------------------ */
/* Timeout                                                             */

static int
timeout_setup(TimeoutObject *self, PyObject *sim, PyObject *delay_obj,
              PyObject *value)
{
    double delay = PyFloat_AsDouble(delay_obj);
    if (delay == -1.0 && PyErr_Occurred())
        return -1;
    if (delay < 0.0) {
        raise_formatted(SimulationError, "negative timeout delay %R", delay_obj);
        return -1;
    }
    PyObject *cb = PyList_New(0);
    if (cb == NULL)
        return -1;
    EventObject *ev = &self->ev;
    Py_XSETREF(ev->sim, Py_NewRef(sim));
    Py_XSETREF(ev->callbacks, cb);
    Py_XSETREF(ev->value, Py_NewRef(value));
    ev->ok = 1;
    ev->triggered = 1;   /* a timeout is born fired */
    ev->processed = 0;
    ev->defused = 0;
    self->delay = delay;
    return schedule_any(sim, (PyObject *)self, delay);
}

static int
timeout_init(TimeoutObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *sim, *delay_obj, *value = Py_None;
    static char *kwlist[] = {"sim", "delay", "value", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OO|O", kwlist,
                                     &sim, &delay_obj, &value))
        return -1;
    return timeout_setup(self, sim, delay_obj, value);
}

static PyMemberDef timeout_members[] = {
    {"delay", T_DOUBLE, offsetof(TimeoutObject, delay), READONLY, NULL},
    {NULL},
};

static PyTypeObject Timeout_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._cengine.Timeout",
    .tp_basicsize = sizeof(TimeoutObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "An event that fires `delay` microseconds after creation.",
    .tp_base = &Event_Type,
    .tp_init = (initproc)timeout_init,
    .tp_dealloc = (destructor)event_dealloc,
    .tp_traverse = (traverseproc)event_traverse,
    .tp_clear = (inquiry)event_clear,
    .tp_members = timeout_members,
};

/* ------------------------------------------------------------------ */
/* ResumeCallback                                                      */

static PyObject *
resume_call(ResumeObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *trigger;
    if (!PyArg_ParseTuple(args, "O", &trigger))
        return NULL;
    if (resume_process(self->proc, (EventObject *)trigger) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static int
resume_traverse(ResumeObject *self, visitproc visit, void *arg)
{
    Py_VISIT((PyObject *)self->proc);
    return 0;
}

static int
resume_clear(ResumeObject *self)
{
    Py_CLEAR(self->proc);
    return 0;
}

static void
resume_dealloc(ResumeObject *self)
{
    if (PyObject_GC_IsTracked((PyObject *)self))
        PyObject_GC_UnTrack(self);
    resume_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyTypeObject Resume_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._cengine._ResumeCallback",
    .tp_basicsize = sizeof(ResumeObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_call = (ternaryfunc)resume_call,
    .tp_dealloc = (destructor)resume_dealloc,
    .tp_traverse = (traverseproc)resume_traverse,
    .tp_clear = (inquiry)resume_clear,
};

/* ------------------------------------------------------------------ */
/* Process                                                             */

static int
process_init(ProcessObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *sim, *generator, *name = NULL;
    static char *kwlist[] = {"sim", "generator", "name", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "OO|O", kwlist,
                                     &sim, &generator, &name))
        return -1;
    if (!PyObject_HasAttrString(generator, "send") ||
        !PyObject_HasAttrString(generator, "throw")) {
        raise_formatted(SimulationError,
                        "Process requires a generator, got %s",
                        Py_TYPE(generator)->tp_name);
        return -1;
    }
    PyObject *cb = PyList_New(0);
    if (cb == NULL)
        return -1;
    EventObject *ev = &self->ev;
    Py_XSETREF(ev->sim, Py_NewRef(sim));
    Py_XSETREF(ev->callbacks, cb);
    Py_XSETREF(ev->value, Py_NewRef(Py_None));
    ev->ok = 1;
    ev->triggered = 0;
    ev->processed = 0;
    ev->defused = 0;
    Py_XSETREF(self->generator, Py_NewRef(generator));
    if (name == NULL || name == Py_None ||
        (PyUnicode_Check(name) && PyUnicode_GET_LENGTH(name) == 0)) {
        PyObject *gname = PyObject_GetAttrString(generator, "__name__");
        if (gname == NULL) {
            PyErr_Clear();
            gname = PyUnicode_FromString("process");
            if (gname == NULL)
                return -1;
        }
        Py_XSETREF(self->name, gname);
    }
    else {
        Py_XSETREF(self->name, Py_NewRef(name));
    }
    ResumeObject *rc = PyObject_GC_New(ResumeObject, &Resume_Type);
    if (rc == NULL)
        return -1;
    rc->proc = (ProcessObject *)Py_NewRef((PyObject *)self);
    PyObject_GC_Track((PyObject *)rc);
    Py_XSETREF(self->resume_cb, (PyObject *)rc);
    /* Bootstrap: resume once at the current instant. */
    WakeupObject *boot = wakeup_new(self->resume_cb, Py_None, 1);
    if (boot == NULL)
        return -1;
    if (schedule_any(sim, (PyObject *)boot, 0.0) < 0) {
        Py_DECREF(boot);
        return -1;
    }
    Py_XSETREF(self->waiting_on, (PyObject *)boot);
    return 0;
}

static int
process_traverse(ProcessObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->generator);
    Py_VISIT(self->waiting_on);
    Py_VISIT(self->name);
    Py_VISIT(self->resume_cb);
    return event_traverse(&self->ev, visit, arg);
}

static int
process_clear(ProcessObject *self)
{
    Py_CLEAR(self->generator);
    Py_CLEAR(self->waiting_on);
    Py_CLEAR(self->name);
    Py_CLEAR(self->resume_cb);
    return event_clear(&self->ev);
}

static void
process_dealloc(ProcessObject *self)
{
    PyTypeObject *tp = Py_TYPE(self);
    PyObject_GC_UnTrack(self);
    process_clear(self);
    tp->tp_free((PyObject *)self);
}

static PyObject *
process_get_is_alive(ProcessObject *self, void *closure)
{
    return PyBool_FromLong(!self->ev.triggered);
}

static PyObject *
process_get_resume(ProcessObject *self, void *closure)
{
    return Py_NewRef(self->resume_cb);
}

static PyObject *
process_interrupt(ProcessObject *self, PyObject *const *args, Py_ssize_t nargs,
                  PyObject *kwnames)
{
    PyObject *cause = Py_None;
    if (nargs > 1) {
        PyErr_SetString(PyExc_TypeError, "interrupt() takes at most 1 argument");
        return NULL;
    }
    if (nargs == 1)
        cause = args[0];
    if (kwnames != NULL) {
        Py_ssize_t nkw = PyTuple_GET_SIZE(kwnames);
        for (Py_ssize_t i = 0; i < nkw; i++) {
            PyObject *name = PyTuple_GET_ITEM(kwnames, i);
            if (PyUnicode_CompareWithASCIIString(name, "cause") == 0)
                cause = args[nargs + i];
            else {
                PyErr_Format(PyExc_TypeError,
                             "interrupt() got an unexpected keyword argument %R",
                             name);
                return NULL;
            }
        }
    }
    if (self->ev.triggered) {
        PyErr_SetString(SimulationError, "cannot interrupt a finished process");
        return NULL;
    }
    if (self->waiting_on == NULL || self->waiting_on == Py_None) {
        PyErr_SetString(SimulationError,
                        "cannot interrupt a process that is currently running");
        return NULL;
    }
    /* detach from whatever it was waiting on */
    EventObject *target = (EventObject *)self->waiting_on;
    PyObject *cbs = target->callbacks;
    if (cbs != NULL && cbs != Py_None && PyList_Check(cbs)) {
        Py_ssize_t n = PyList_GET_SIZE(cbs);
        for (Py_ssize_t i = 0; i < n; i++) {
            if (PyList_GET_ITEM(cbs, i) == self->resume_cb) {
                if (PyList_SetSlice(cbs, i, i + 1, NULL) < 0)
                    return NULL;
                break;
            }
        }
    }
    Py_XSETREF(self->waiting_on, Py_NewRef(Py_None));
    PyObject *irq = PyObject_CallFunctionObjArgs(InterruptExc, cause, NULL);
    if (irq == NULL)
        return NULL;
    WakeupObject *carrier = wakeup_new(self->resume_cb, irq, 0);
    Py_DECREF(irq);
    if (carrier == NULL)
        return NULL;
    if (schedule_any(self->ev.sim, (PyObject *)carrier, 0.0) < 0) {
        Py_DECREF(carrier);
        return NULL;
    }
    Py_XSETREF(self->waiting_on, (PyObject *)carrier);
    Py_RETURN_NONE;
}

/* trigger the process event as failed with the currently-raised
 * exception (mirrors `except BaseException as exc: self.fail(exc)`) */
static int
process_fail_current(ProcessObject *self)
{
    PyObject *etype, *evalue, *etb;
    PyErr_Fetch(&etype, &evalue, &etb);
    if (etype == NULL) {
        PyErr_SetString(PyExc_SystemError, "process failure without exception");
        return -1;
    }
    PyErr_NormalizeException(&etype, &evalue, &etb);
    if (etb != NULL)
        PyException_SetTraceback(evalue, etb);
    int rc = event_trigger(&self->ev, evalue, 0, 0.0);
    Py_DECREF(etype);
    Py_DECREF(evalue);
    Py_XDECREF(etb);
    return rc;
}

/* a StopIteration is pending: trigger the process with its .value */
static int
process_finish_stopiteration(ProcessObject *self)
{
    PyObject *etype, *evalue, *etb;
    PyErr_Fetch(&etype, &evalue, &etb);
    PyErr_NormalizeException(&etype, &evalue, &etb);
    Py_XDECREF(etype);
    Py_XDECREF(etb);
    PyObject *retval = evalue ? PyObject_GetAttr(evalue, str_value) : NULL;
    Py_XDECREF(evalue);
    if (retval == NULL) {
        if (PyErr_Occurred())
            return -1;
        retval = Py_NewRef(Py_None);
    }
    int rc = event_trigger(&self->ev, retval, 1, 0.0);
    Py_DECREF(retval);
    return rc;
}

/* The engine's hottest path: drive the generator until it waits again.
 * Mirrors _pyengine.Process._resume statement for statement. */
static int
resume_process(ProcessObject *self, EventObject *trigger)
{
    PyObject *sim = self->ev.sim;
    if (PyObject_TypeCheck(sim, &Simulator_Type)) {
        SimObject *csim = (SimObject *)sim;
        Py_XSETREF(csim->active_process, Py_NewRef((PyObject *)self));
    }
    else if (PyObject_SetAttrString(sim, "active_process",
                                    (PyObject *)self) < 0) {
        return -1;
    }
    Py_XSETREF(self->waiting_on, Py_NewRef(Py_None));
    PyObject *gen = self->generator;
    /* keep self alive: triggering it may drop the last external ref */
    PyObject *self_ref = Py_NewRef((PyObject *)self);
    PyObject *trigger_ref = Py_NewRef((PyObject *)trigger);
    int rc = 0;
    for (;;) {
        PyObject *target = NULL;
        if (trigger->ok) {
            PySendResult sr = PyIter_Send(gen,
                                          trigger->value ? trigger->value
                                                         : Py_None,
                                          &target);
            Py_CLEAR(trigger_ref);
            if (sr == PYGEN_RETURN) {
                rc = event_trigger(&self->ev, target, 1, 0.0);
                Py_DECREF(target);
                break;
            }
            if (sr == PYGEN_ERROR) {
                rc = process_fail_current(self);
                break;
            }
        }
        else {
            trigger->defused = 1;
            target = PyObject_CallMethodOneArg(gen, str_throw,
                                               trigger->value ? trigger->value
                                                              : Py_None);
            Py_CLEAR(trigger_ref);
            if (target == NULL) {
                rc = PyErr_ExceptionMatches(PyExc_StopIteration)
                         ? process_finish_stopiteration(self)
                         : process_fail_current(self);
                break;
            }
        }
        /* `target` is the yielded object (owned reference) */
        if (!PyObject_TypeCheck(target, &Event_Type)) {
            PyObject *msg = PyUnicode_FromFormat(
                "process %R yielded %s, expected Event",
                self->name, Py_TYPE(target)->tp_name);
            Py_DECREF(target);
            if (msg == NULL) {
                rc = -1;
                break;
            }
            PyObject *err = PyObject_CallFunctionObjArgs(SimulationError,
                                                         msg, NULL);
            Py_DECREF(msg);
            if (err == NULL) {
                rc = -1;
                break;
            }
            /* throw the complaint into the generator; whatever comes
             * back, the process ends here — a further yield is not
             * re-examined, exactly as in the reference engine. */
            PyObject *res = PyObject_CallMethodOneArg(gen, str_throw, err);
            Py_DECREF(err);
            if (res != NULL) {
                Py_DECREF(res);
                rc = 0;
            }
            else {
                rc = PyErr_ExceptionMatches(PyExc_StopIteration)
                         ? process_finish_stopiteration(self)
                         : process_fail_current(self);
            }
            break;
        }
        EventObject *tev = (EventObject *)target;
        if (tev->sim != self->ev.sim) {
            Py_DECREF(target);
            PyObject *err = PyObject_CallFunction(
                SimulationError, "s",
                "yielded event belongs to a different Simulator");
            if (err == NULL) {
                rc = -1;
                break;
            }
            rc = event_trigger(&self->ev, err, 0, 0.0);
            Py_DECREF(err);
            break;
        }
        if (tev->processed) {
            /* already fired: resume immediately with its outcome */
            trigger = tev;
            trigger_ref = target;   /* stays alive across the send */
            continue;
        }
        if (tev->callbacks != NULL && PyList_Check(tev->callbacks))
            rc = PyList_Append(tev->callbacks, self->resume_cb);
        else {
            PyObject *r = PyObject_CallMethod(tev->callbacks ? tev->callbacks
                                                             : Py_None,
                                              "append", "O", self->resume_cb);
            rc = (r == NULL) ? -1 : 0;
            Py_XDECREF(r);
        }
        if (rc < 0) {
            Py_DECREF(target);
            break;
        }
        Py_XSETREF(self->waiting_on, target);
        break;
    }
    Py_DECREF(self_ref);
    return rc;
}

static PyMemberDef process_members[] = {
    {"name", T_OBJECT, offsetof(ProcessObject, name), 0, NULL},
    {"_generator", T_OBJECT, offsetof(ProcessObject, generator), READONLY, NULL},
    {"_waiting_on", T_OBJECT, offsetof(ProcessObject, waiting_on), 0, NULL},
    {NULL},
};

static PyGetSetDef process_getset[] = {
    {"is_alive", (getter)process_get_is_alive, NULL, NULL, NULL},
    {"_resume", (getter)process_get_resume, NULL, NULL, NULL},
    {NULL},
};

static PyMethodDef process_methods[] = {
    {"interrupt", (PyCFunction)(void (*)(void))process_interrupt,
     METH_FASTCALL | METH_KEYWORDS,
     "Throw Interrupt into the process at the current instant."},
    {NULL},
};

static PyTypeObject Process_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._cengine.Process",
    .tp_basicsize = sizeof(ProcessObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Drives a generator; the process *is* an event that fires on return.",
    .tp_base = &Event_Type,
    .tp_init = (initproc)process_init,
    .tp_dealloc = (destructor)process_dealloc,
    .tp_traverse = (traverseproc)process_traverse,
    .tp_clear = (inquiry)process_clear,
    .tp_members = process_members,
    .tp_getset = process_getset,
    .tp_methods = process_methods,
};

/* ------------------------------------------------------------------ */
/* Simulator                                                           */

static int
sim_init(SimObject *self, PyObject *args, PyObject *kwds)
{
    if ((args && PyTuple_GET_SIZE(args)) || (kwds && PyDict_GET_SIZE(kwds))) {
        PyErr_SetString(PyExc_TypeError, "Simulator() takes no arguments");
        return -1;
    }
    self->now = 0.0;
    self->steps = 0;
    self->seq = 0;
    Py_XSETREF(self->telemetry, Py_NewRef(Py_None));
    Py_XSETREF(self->active_process, Py_NewRef(Py_None));
    Py_XSETREF(self->sanitizer, Py_NewRef(Py_None));
    return 0;
}

static int
sim_traverse(SimObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->telemetry);
    Py_VISIT(self->active_process);
    Py_VISIT(self->sanitizer);
    for (Py_ssize_t i = self->nq_head; i < self->nq_len; i++)
        Py_VISIT(self->nowq[i]);
    for (Py_ssize_t i = 0; i < self->hlen; i++)
        Py_VISIT(self->heap[i].ev);
    return 0;
}

static int
sim_clear(SimObject *self)
{
    Py_CLEAR(self->telemetry);
    Py_CLEAR(self->active_process);
    Py_CLEAR(self->sanitizer);
    Py_ssize_t head = self->nq_head, len = self->nq_len;
    self->nq_head = self->nq_len = 0;
    for (Py_ssize_t i = head; i < len; i++)
        Py_CLEAR(self->nowq[i]);
    Py_ssize_t hlen = self->hlen;
    self->hlen = 0;
    for (Py_ssize_t i = 0; i < hlen; i++)
        Py_CLEAR(self->heap[i].ev);
    return 0;
}

static void
sim_dealloc(SimObject *self)
{
    PyTypeObject *tp = Py_TYPE(self);
    PyObject_GC_UnTrack(self);
    sim_clear(self);
    PyMem_Free(self->nowq);
    PyMem_Free(self->heap);
    tp->tp_free((PyObject *)self);
}

/* fire one event: run callbacks, propagate undefused failures.
 * Steals the reference to `evobj`.  0/-1. */
static int
sim_fire(SimObject *self, PyObject *evobj)
{
    EventObject *ev = (EventObject *)evobj;
    self->steps++;
    PyObject *callbacks = ev->callbacks;     /* take over the reference */
    ev->callbacks = Py_NewRef(Py_None);
    ev->processed = 1;
    if (callbacks == NULL || !PyList_Check(callbacks)) {
        Py_XDECREF(callbacks);
        Py_DECREF(evobj);
        PyErr_SetString(PyExc_AssertionError,
                        "event fired with no callback list");
        return -1;
    }
    for (Py_ssize_t i = 0; i < PyList_GET_SIZE(callbacks); i++) {
        PyObject *cb = Py_NewRef(PyList_GET_ITEM(callbacks, i));
        int rc;
        if (Py_TYPE(cb) == &Resume_Type)
            rc = resume_process(((ResumeObject *)cb)->proc, ev);
        else {
            PyObject *r = PyObject_CallOneArg(cb, evobj);
            rc = (r == NULL) ? -1 : 0;
            Py_XDECREF(r);
        }
        Py_DECREF(cb);
        if (rc < 0) {
            Py_DECREF(callbacks);
            Py_DECREF(evobj);
            return -1;
        }
    }
    Py_DECREF(callbacks);
    if (!ev->ok && !ev->defused) {
        PyObject *exc = ev->value;
        if (exc != NULL && PyExceptionInstance_Check(exc))
            PyErr_SetObject((PyObject *)Py_TYPE(exc), exc);
        else {
            PyObject *r = PyObject_Repr(exc ? exc : Py_None);
            if (r != NULL) {
                PyErr_SetObject(SimulationError, r);
                Py_DECREF(r);
            }
        }
        Py_DECREF(evobj);
        return -1;
    }
    Py_DECREF(evobj);
    return 0;
}

/* pick the next event, advancing `now` when the instant drains.  The
 * caller owns the returned reference; NULL (no exception) = empty. */
static PyObject *
sim_next_event(SimObject *self)
{
    if (self->hlen && self->heap[0].when == self->now)
        return heap_pop(self);
    if (self->nq_head < self->nq_len) {
        PyObject *ev = self->nowq[self->nq_head++];
        if (self->nq_head == self->nq_len)
            self->nq_head = self->nq_len = 0;
        return ev;
    }
    if (self->hlen) {
        self->now = self->heap[0].when;
        return heap_pop(self);
    }
    return NULL;
}

static PyObject *
sim_event_meth(SimObject *self, PyObject *Py_UNUSED(ignored))
{
    EventObject *e = (EventObject *)Event_Type.tp_alloc(&Event_Type, 0);
    if (e == NULL)
        return NULL;
    e->callbacks = PyList_New(0);
    if (e->callbacks == NULL) {
        Py_DECREF(e);
        return NULL;
    }
    e->sim = Py_NewRef((PyObject *)self);
    e->value = Py_NewRef(Py_None);
    e->ok = 1;
    e->triggered = e->processed = e->defused = 0;
    return (PyObject *)e;
}

static PyObject *
sim_timeout_meth(SimObject *self, PyObject *const *args, Py_ssize_t nargs,
                 PyObject *kwnames)
{
    PyObject *delay_obj = NULL, *value = Py_None;
    if (nargs >= 1)
        delay_obj = args[0];
    if (nargs >= 2)
        value = args[1];
    if (kwnames != NULL) {
        Py_ssize_t nkw = PyTuple_GET_SIZE(kwnames);
        for (Py_ssize_t i = 0; i < nkw; i++) {
            PyObject *name = PyTuple_GET_ITEM(kwnames, i);
            PyObject *v = args[nargs + i];
            if (PyUnicode_CompareWithASCIIString(name, "delay") == 0)
                delay_obj = v;
            else if (PyUnicode_CompareWithASCIIString(name, "value") == 0)
                value = v;
            else {
                PyErr_Format(PyExc_TypeError,
                             "timeout() got an unexpected keyword argument %R",
                             name);
                return NULL;
            }
        }
    }
    if (delay_obj == NULL) {
        PyErr_SetString(PyExc_TypeError,
                        "timeout() missing required argument: 'delay'");
        return NULL;
    }
    TimeoutObject *t = (TimeoutObject *)Timeout_Type.tp_alloc(&Timeout_Type, 0);
    if (t == NULL)
        return NULL;
    if (timeout_setup(t, (PyObject *)self, delay_obj, value) < 0) {
        Py_DECREF(t);
        return NULL;
    }
    return (PyObject *)t;
}

static PyObject *
sim_process_meth(SimObject *self, PyObject *const *args, Py_ssize_t nargs,
                 PyObject *kwnames)
{
    PyObject *generator = NULL, *name = NULL;
    if (nargs >= 1)
        generator = args[0];
    if (nargs >= 2)
        name = args[1];
    if (kwnames != NULL) {
        Py_ssize_t nkw = PyTuple_GET_SIZE(kwnames);
        for (Py_ssize_t i = 0; i < nkw; i++) {
            PyObject *kw = PyTuple_GET_ITEM(kwnames, i);
            PyObject *v = args[nargs + i];
            if (PyUnicode_CompareWithASCIIString(kw, "generator") == 0)
                generator = v;
            else if (PyUnicode_CompareWithASCIIString(kw, "name") == 0)
                name = v;
            else {
                PyErr_Format(PyExc_TypeError,
                             "process() got an unexpected keyword argument %R",
                             kw);
                return NULL;
            }
        }
    }
    if (generator == NULL) {
        PyErr_SetString(PyExc_TypeError,
                        "process() missing required argument: 'generator'");
        return NULL;
    }
    PyObject *argtuple = name != NULL
        ? PyTuple_Pack(3, (PyObject *)self, generator, name)
        : PyTuple_Pack(2, (PyObject *)self, generator);
    if (argtuple == NULL)
        return NULL;
    PyObject *proc = PyObject_Call((PyObject *)&Process_Type, argtuple, NULL);
    Py_DECREF(argtuple);
    return proc;
}

static PyObject *
sim_all_of(SimObject *self, PyObject *events)
{
    if (cond_allof == NULL) {
        PyErr_SetString(PyExc_RuntimeError,
                        "condition classes not registered (engine import incomplete)");
        return NULL;
    }
    return PyObject_CallFunctionObjArgs(cond_allof, (PyObject *)self, events, NULL);
}

static PyObject *
sim_any_of(SimObject *self, PyObject *events)
{
    if (cond_anyof == NULL) {
        PyErr_SetString(PyExc_RuntimeError,
                        "condition classes not registered (engine import incomplete)");
        return NULL;
    }
    return PyObject_CallFunctionObjArgs(cond_anyof, (PyObject *)self, events, NULL);
}

static PyObject *
sim_schedule_meth(SimObject *self, PyObject *const *args, Py_ssize_t nargs,
                  PyObject *kwnames)
{
    PyObject *ev = NULL;
    double delay = 0.0;
    if (parse_trigger_args("_schedule", "event", args, nargs, kwnames,
                           &ev, &delay) < 0)
        return NULL;
    if (ev == NULL) {
        PyErr_SetString(PyExc_TypeError,
                        "_schedule() missing required argument: 'event'");
        return NULL;
    }
    if (schedule_c(self, ev, delay) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
sim_step(SimObject *self, PyObject *Py_UNUSED(ignored))
{
    PyObject *ev = sim_next_event(self);
    if (ev == NULL) {
        PyErr_SetString(PyExc_IndexError, "step on an empty schedule");
        return NULL;
    }
    if (sim_fire(self, ev) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
sim_run(SimObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *until_obj = Py_None;
    static char *kwlist[] = {"until", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|O", kwlist, &until_obj))
        return NULL;
    int has_until = until_obj != Py_None;
    double until = 0.0;
    if (has_until) {
        until = PyFloat_AsDouble(until_obj);
        if (until == -1.0 && PyErr_Occurred())
            return NULL;
        if (until < self->now) {
            PyObject *n = float_obj(self->now);
            raise_formatted(SimulationError,
                            "run(until=%S) is in the past (now=%S)",
                            until_obj, n);
            Py_XDECREF(n);
            return NULL;
        }
    }
    for (;;) {
        PyObject *ev;
        if (self->hlen && self->heap[0].when == self->now)
            ev = heap_pop(self);
        else if (self->nq_head < self->nq_len) {
            ev = self->nowq[self->nq_head++];
            if (self->nq_head == self->nq_len)
                self->nq_head = self->nq_len = 0;
        }
        else if (self->hlen) {
            if (has_until && self->heap[0].when > until) {
                self->now = until;
                Py_RETURN_NONE;
            }
            self->now = self->heap[0].when;
            ev = heap_pop(self);
        }
        else
            break;
        if (sim_fire(self, ev) < 0)
            return NULL;
    }
    if (has_until)
        self->now = until;
    Py_RETURN_NONE;
}

static PyObject *
sim_run_until_complete(SimObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *proc_obj;
    double limit = Py_HUGE_VAL;
    static char *kwlist[] = {"process", "limit", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O|d", kwlist,
                                     &proc_obj, &limit))
        return NULL;
    if (!PyObject_TypeCheck(proc_obj, &Event_Type)) {
        PyErr_Format(PyExc_TypeError,
                     "run_until_complete() requires a Process, got %.100s",
                     Py_TYPE(proc_obj)->tp_name);
        return NULL;
    }
    EventObject *proc = (EventObject *)proc_obj;
    PyObject *name = PyObject_TypeCheck(proc_obj, &Process_Type)
        ? ((ProcessObject *)proc_obj)->name : Py_None;
    while (!proc->triggered) {
        PyObject *ev;
        if (self->hlen && self->heap[0].when == self->now)
            ev = heap_pop(self);
        else if (self->nq_head < self->nq_len) {
            ev = self->nowq[self->nq_head++];
            if (self->nq_head == self->nq_len)
                self->nq_head = self->nq_len = 0;
        }
        else if (self->hlen) {
            if (self->heap[0].when > limit) {
                PyObject *l = float_obj(limit);
                raise_formatted(SimulationError,
                                "time limit %S exceeded waiting for %R",
                                l, name);
                Py_XDECREF(l);
                return NULL;
            }
            self->now = self->heap[0].when;
            ev = heap_pop(self);
        }
        else {
            raise_formatted(SimulationError, "deadlock: %R never completed",
                            name);
            return NULL;
        }
        if (sim_fire(self, ev) < 0)
            return NULL;
    }
    if (!proc->ok) {
        PyObject *exc = proc->value;
        if (exc != NULL && PyExceptionInstance_Check(exc))
            PyErr_SetObject((PyObject *)Py_TYPE(exc), exc);
        else
            PyErr_SetString(SimulationError, "process failed without exception");
        return NULL;
    }
    return Py_NewRef(proc->value ? proc->value : Py_None);
}

static PyObject *
sim_get_queue_size(SimObject *self, void *closure)
{
    return PyLong_FromSsize_t(self->hlen + (self->nq_len - self->nq_head));
}

static PyMemberDef sim_members[] = {
    {"now", T_DOUBLE, offsetof(SimObject, now), 0, "simulated time (us)"},
    {"steps", T_LONGLONG, offsetof(SimObject, steps), 0,
     "total events processed"},
    {"telemetry", T_OBJECT, offsetof(SimObject, telemetry), 0, NULL},
    {"active_process", T_OBJECT, offsetof(SimObject, active_process), 0, NULL},
    {"sanitizer", T_OBJECT, offsetof(SimObject, sanitizer), 0, NULL},
    {NULL},
};

static PyGetSetDef sim_getset[] = {
    {"queue_size", (getter)sim_get_queue_size, NULL, NULL, NULL},
    {NULL},
};

static PyMethodDef sim_methods[] = {
    {"event", (PyCFunction)sim_event_meth, METH_NOARGS, NULL},
    {"timeout", (PyCFunction)(void (*)(void))sim_timeout_meth,
     METH_FASTCALL | METH_KEYWORDS, NULL},
    {"process", (PyCFunction)(void (*)(void))sim_process_meth,
     METH_FASTCALL | METH_KEYWORDS, NULL},
    {"all_of", (PyCFunction)sim_all_of, METH_O, NULL},
    {"any_of", (PyCFunction)sim_any_of, METH_O, NULL},
    {"_schedule", (PyCFunction)(void (*)(void))sim_schedule_meth,
     METH_FASTCALL | METH_KEYWORDS, NULL},
    {"step", (PyCFunction)sim_step, METH_NOARGS,
     "Process the single next event in the schedule."},
    {"run", (PyCFunction)(void (*)(void))sim_run,
     METH_VARARGS | METH_KEYWORDS,
     "Run until the queue drains or simulated time reaches `until`."},
    {"run_until_complete", (PyCFunction)(void (*)(void))sim_run_until_complete,
     METH_VARARGS | METH_KEYWORDS,
     "Run until `process` finishes; return its value or raise its error."},
    {NULL},
};

static PyTypeObject Simulator_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._cengine.Simulator",
    .tp_basicsize = sizeof(SimObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "The event loop (compiled core).  `now` is simulated time in us.",
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)sim_init,
    .tp_dealloc = (destructor)sim_dealloc,
    .tp_traverse = (traverseproc)sim_traverse,
    .tp_clear = (inquiry)sim_clear,
    .tp_members = sim_members,
    .tp_getset = sim_getset,
    .tp_methods = sim_methods,
};

/* ------------------------------------------------------------------ */
/* contention primitives (compiled halves of repro.sim.resources)      */
/*
 * Request/Resource/Store mirror the pure-python reference classes in
 * repro.sim.resources statement for statement; resources.py swaps them
 * in when this core is active.  Equivalence argument: the waiter heap
 * is keyed by the strict total order (priority, seq) — the same key
 * Request.__lt__ gives heapq — so grant order is identical, and every
 * grant goes through event_trigger with delay 0, i.e. the same
 * _schedule call the python classes make.
 */

static PyTypeObject Request_Type;
static PyTypeObject Resource_Type;
static PyTypeObject Store_Type;

typedef struct {
    EventObject ev;
    PyObject *resource;
    long long priority;
    unsigned long long seq;     /* _seq: grant-order tiebreak */
} RequestObject;

typedef struct {
    PyObject_HEAD
    PyObject *sim;
    PyObject *name;
    long long capacity;
    unsigned long long seq;     /* ticket counter */
    PyObject *in_use;           /* set of granted RequestObjects */
    RequestObject **waiting;    /* min-heap by (priority, seq); owned refs */
    Py_ssize_t wlen, wcap;
} ResourceObject;

/* compacting FIFO of owned references (items / getters / putters) */
typedef struct {
    PyObject **buf;
    Py_ssize_t head, len, cap;
} ObjFifo;

typedef struct {
    PyObject_HEAD
    PyObject *sim;
    PyObject *name;
    double capacity;
    ObjFifo items;
    ObjFifo getters;            /* pending get() events */
    ObjFifo putters;            /* (event, item) tuples waiting for room */
} StoreObject;

/* allocate a plain pending Event bound to `sim` (fast path, no init) */
static EventObject *
event_new_for(PyObject *sim)
{
    EventObject *e = (EventObject *)Event_Type.tp_alloc(&Event_Type, 0);
    if (e == NULL)
        return NULL;
    e->callbacks = PyList_New(0);
    if (e->callbacks == NULL) {
        Py_DECREF(e);
        return NULL;
    }
    e->sim = Py_NewRef(sim);
    e->value = Py_NewRef(Py_None);
    e->ok = 1;
    e->triggered = e->processed = e->defused = 0;
    return e;
}

/* ---- ObjFifo ----------------------------------------------------- */

static Py_ssize_t
objfifo_count(const ObjFifo *f)
{
    return f->len - f->head;
}

static int
objfifo_reserve(ObjFifo *f)
{
    if (f->head > 0) {
        memmove(f->buf, f->buf + f->head,
                (size_t)(f->len - f->head) * sizeof(PyObject *));
        f->len -= f->head;
        f->head = 0;
        if (f->len < f->cap)
            return 0;
    }
    Py_ssize_t cap = f->cap ? f->cap * 2 : 16;
    PyObject **b = PyMem_Realloc(f->buf, (size_t)cap * sizeof(PyObject *));
    if (b == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    f->buf = b;
    f->cap = cap;
    return 0;
}

static int
objfifo_push(ObjFifo *f, PyObject *o)
{
    if (f->len == f->cap && objfifo_reserve(f) < 0)
        return -1;
    f->buf[f->len++] = Py_NewRef(o);
    return 0;
}

/* pop the oldest entry; the caller owns the returned reference */
static PyObject *
objfifo_pop(ObjFifo *f)
{
    PyObject *o = f->buf[f->head++];
    if (f->head == f->len)
        f->head = f->len = 0;
    return o;
}

static void
objfifo_clear(ObjFifo *f)
{
    Py_ssize_t head = f->head, len = f->len;
    f->head = f->len = 0;
    for (Py_ssize_t i = head; i < len; i++)
        Py_CLEAR(f->buf[i]);
}

/* ---- Request ----------------------------------------------------- */

static int
request_lt(const RequestObject *a, const RequestObject *b)
{
    return a->priority < b->priority ||
           (a->priority == b->priority && a->seq < b->seq);
}

/* fast-path constructor used by Resource.request (skips tp_init) */
static RequestObject *
request_new_fast(ResourceObject *res, long long priority)
{
    RequestObject *req = (RequestObject *)Request_Type.tp_alloc(&Request_Type, 0);
    if (req == NULL)
        return NULL;
    req->ev.callbacks = PyList_New(0);
    if (req->ev.callbacks == NULL) {
        Py_DECREF(req);
        return NULL;
    }
    req->ev.sim = Py_NewRef(res->sim);
    req->ev.value = Py_NewRef(Py_None);
    req->ev.ok = 1;
    req->ev.triggered = req->ev.processed = req->ev.defused = 0;
    req->resource = Py_NewRef((PyObject *)res);
    req->priority = priority;
    req->seq = ++res->seq;
    return req;
}

static int
request_init(RequestObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *resource;
    long long priority = 0;
    static char *kwlist[] = {"resource", "priority", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O|L", kwlist,
                                     &resource, &priority))
        return -1;
    PyObject *sim;
    unsigned long long seq;
    if (PyObject_TypeCheck(resource, &Resource_Type)) {
        ResourceObject *r = (ResourceObject *)resource;
        sim = Py_NewRef(r->sim);
        seq = ++r->seq;
    }
    else {
        sim = PyObject_GetAttrString(resource, "sim");
        if (sim == NULL)
            return -1;
        PyObject *ticket = PyObject_CallMethod(resource, "_ticket", NULL);
        if (ticket == NULL) {
            Py_DECREF(sim);
            return -1;
        }
        seq = PyLong_AsUnsignedLongLong(ticket);
        Py_DECREF(ticket);
        if (PyErr_Occurred()) {
            Py_DECREF(sim);
            return -1;
        }
    }
    PyObject *cb = PyList_New(0);
    if (cb == NULL) {
        Py_DECREF(sim);
        return -1;
    }
    EventObject *ev = &self->ev;
    Py_XSETREF(ev->sim, sim);
    Py_XSETREF(ev->callbacks, cb);
    Py_XSETREF(ev->value, Py_NewRef(Py_None));
    ev->ok = 1;
    ev->triggered = ev->processed = ev->defused = 0;
    Py_XSETREF(self->resource, Py_NewRef(resource));
    self->priority = priority;
    self->seq = seq;
    return 0;
}

static int
request_traverse(RequestObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->resource);
    return event_traverse(&self->ev, visit, arg);
}

static int
request_clear(RequestObject *self)
{
    Py_CLEAR(self->resource);
    return event_clear(&self->ev);
}

static void
request_dealloc(RequestObject *self)
{
    PyTypeObject *tp = Py_TYPE(self);
    PyObject_GC_UnTrack(self);
    request_clear(self);
    tp->tp_free((PyObject *)self);
}

static PyObject *
request_richcompare(PyObject *a, PyObject *b, int op)
{
    if (op == Py_EQ || op == Py_NE) {
        int same = (a == b);
        return PyBool_FromLong(op == Py_EQ ? same : !same);
    }
    if (op != Py_LT ||
        !PyObject_TypeCheck(a, &Request_Type) ||
        !PyObject_TypeCheck(b, &Request_Type))
        Py_RETURN_NOTIMPLEMENTED;
    return PyBool_FromLong(request_lt((RequestObject *)a, (RequestObject *)b));
}

static int resource_cancel_impl(ResourceObject *res, PyObject *request);

static PyObject *
request_cancel(RequestObject *self, PyObject *Py_UNUSED(ignored))
{
    if (self->resource != NULL &&
        PyObject_TypeCheck(self->resource, &Resource_Type)) {
        if (resource_cancel_impl((ResourceObject *)self->resource,
                                 (PyObject *)self) < 0)
            return NULL;
        Py_RETURN_NONE;
    }
    return PyObject_CallMethod(self->resource ? self->resource : Py_None,
                               "_cancel", "O", self);
}

static PyMemberDef request_members[] = {
    {"resource", T_OBJECT, offsetof(RequestObject, resource), 0,
     "the Resource this request claims"},
    {"priority", T_LONGLONG, offsetof(RequestObject, priority), 0, NULL},
    {"_seq", T_ULONGLONG, offsetof(RequestObject, seq), 0, NULL},
    {NULL},
};

static PyMethodDef request_methods[] = {
    {"cancel", (PyCFunction)request_cancel, METH_NOARGS,
     "Withdraw an ungranted request (granted requests must release)."},
    {NULL},
};

static PyTypeObject Request_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._cengine.Request",
    .tp_basicsize = sizeof(RequestObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "A pending claim on a Resource; fires when granted.",
    .tp_base = &Event_Type,
    .tp_init = (initproc)request_init,
    .tp_dealloc = (destructor)request_dealloc,
    .tp_traverse = (traverseproc)request_traverse,
    .tp_clear = (inquiry)request_clear,
    .tp_richcompare = request_richcompare,
    .tp_members = request_members,
    .tp_methods = request_methods,
};

/* ---- Resource ---------------------------------------------------- */

static int
wheap_push(ResourceObject *r, RequestObject *req)
{
    if (r->wlen == r->wcap) {
        Py_ssize_t cap = r->wcap ? r->wcap * 2 : 16;
        RequestObject **w = PyMem_Realloc(
            r->waiting, (size_t)cap * sizeof(RequestObject *));
        if (w == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        r->waiting = w;
        r->wcap = cap;
    }
    RequestObject **heap = r->waiting;
    Py_ssize_t i = r->wlen++;
    while (i > 0) {
        Py_ssize_t parent = (i - 1) >> 1;
        if (request_lt(heap[parent], req))
            break;
        heap[i] = heap[parent];
        i = parent;
    }
    heap[i] = (RequestObject *)Py_NewRef((PyObject *)req);
    return 0;
}

/* pop the minimum waiter; the caller owns the returned reference */
static RequestObject *
wheap_pop(ResourceObject *r)
{
    RequestObject **heap = r->waiting;
    RequestObject *top = heap[0];
    Py_ssize_t n = --r->wlen;
    if (n > 0) {
        RequestObject *last = heap[n];
        Py_ssize_t i = 0;
        for (;;) {
            Py_ssize_t child = 2 * i + 1;
            if (child >= n)
                break;
            Py_ssize_t right = child + 1;
            if (right < n && request_lt(heap[right], heap[child]))
                child = right;
            if (request_lt(last, heap[child]))
                break;
            heap[i] = heap[child];
            i = child;
        }
        heap[i] = last;
    }
    return top;
}

static int
resource_init(ResourceObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *sim, *name = NULL;
    long long capacity = 1;
    static char *kwlist[] = {"sim", "capacity", "name", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O|LO", kwlist,
                                     &sim, &capacity, &name))
        return -1;
    if (capacity < 1) {
        raise_formatted(SimulationError,
                        "Resource capacity must be >= 1, got %lld", capacity);
        return -1;
    }
    PyObject *in_use = PySet_New(NULL);
    if (in_use == NULL)
        return -1;
    PyObject *nm = name != NULL ? Py_NewRef(name) : PyUnicode_FromString("");
    if (nm == NULL) {
        Py_DECREF(in_use);
        return -1;
    }
    Py_XSETREF(self->sim, Py_NewRef(sim));
    Py_XSETREF(self->name, nm);
    Py_XSETREF(self->in_use, in_use);
    self->capacity = capacity;
    self->seq = 0;
    Py_ssize_t wlen = self->wlen;   /* re-init: drop stale waiters */
    self->wlen = 0;
    for (Py_ssize_t i = 0; i < wlen; i++)
        Py_CLEAR(self->waiting[i]);
    return 0;
}

static int
resource_traverse(ResourceObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->sim);
    Py_VISIT(self->name);
    Py_VISIT(self->in_use);
    for (Py_ssize_t i = 0; i < self->wlen; i++)
        Py_VISIT((PyObject *)self->waiting[i]);
    return 0;
}

static int
resource_clear(ResourceObject *self)
{
    Py_CLEAR(self->sim);
    Py_CLEAR(self->name);
    Py_CLEAR(self->in_use);
    Py_ssize_t wlen = self->wlen;
    self->wlen = 0;
    for (Py_ssize_t i = 0; i < wlen; i++)
        Py_CLEAR(self->waiting[i]);
    return 0;
}

static void
resource_dealloc(ResourceObject *self)
{
    PyTypeObject *tp = Py_TYPE(self);
    PyObject_GC_UnTrack(self);
    resource_clear(self);
    PyMem_Free(self->waiting);
    tp->tp_free((PyObject *)self);
}

static PyObject *
resource_request(ResourceObject *self, PyObject *const *args, Py_ssize_t nargs,
                 PyObject *kwnames)
{
    long long priority = 0;
    if (nargs > 1) {
        PyErr_SetString(PyExc_TypeError, "request() takes at most 1 argument");
        return NULL;
    }
    PyObject *prio_obj = nargs == 1 ? args[0] : NULL;
    if (kwnames != NULL) {
        Py_ssize_t nkw = PyTuple_GET_SIZE(kwnames);
        for (Py_ssize_t i = 0; i < nkw; i++) {
            PyObject *name = PyTuple_GET_ITEM(kwnames, i);
            if (PyUnicode_CompareWithASCIIString(name, "priority") == 0) {
                if (prio_obj != NULL) {
                    PyErr_SetString(PyExc_TypeError,
                                    "request() got multiple values for 'priority'");
                    return NULL;
                }
                prio_obj = args[nargs + i];
            }
            else {
                PyErr_Format(PyExc_TypeError,
                             "request() got an unexpected keyword argument %R",
                             name);
                return NULL;
            }
        }
    }
    if (prio_obj != NULL) {
        priority = PyLong_AsLongLong(prio_obj);
        if (priority == -1 && PyErr_Occurred())
            return NULL;
    }
    RequestObject *req = request_new_fast(self, priority);
    if (req == NULL)
        return NULL;
    if (PySet_GET_SIZE(self->in_use) < self->capacity && self->wlen == 0) {
        if (PySet_Add(self->in_use, (PyObject *)req) < 0 ||
            event_trigger(&req->ev, (PyObject *)self, 1, 0.0) < 0) {
            Py_DECREF(req);
            return NULL;
        }
    }
    else if (wheap_push(self, req) < 0) {
        Py_DECREF(req);
        return NULL;
    }
    return (PyObject *)req;
}

static PyObject *
resource_release(ResourceObject *self, PyObject *request)
{
    int had = PySet_Discard(self->in_use, request);
    if (had < 0)
        return NULL;
    if (had == 0) {
        if (self->name != NULL && PyUnicode_Check(self->name) &&
            PyUnicode_GET_LENGTH(self->name) > 0)
            raise_formatted(SimulationError,
                            "release of request not held on %U", self->name);
        else
            PyErr_SetString(SimulationError,
                            "release of request not held on resource");
        return NULL;
    }
    while (self->wlen > 0) {
        RequestObject *nxt = wheap_pop(self);
        if (nxt->ev.triggered) {   /* cancelled: lazy removal */
            Py_DECREF(nxt);
            continue;
        }
        if (PySet_Add(self->in_use, (PyObject *)nxt) < 0 ||
            event_trigger(&nxt->ev, (PyObject *)self, 1, 0.0) < 0) {
            Py_DECREF(nxt);
            return NULL;
        }
        Py_DECREF(nxt);
        break;
    }
    Py_RETURN_NONE;
}

static int
resource_cancel_impl(ResourceObject *self, PyObject *request)
{
    int granted = PySet_Contains(self->in_use, request);
    if (granted < 0)
        return -1;
    if (granted) {
        PyErr_SetString(SimulationError,
                        "cancel of a granted request; use release()");
        return -1;
    }
    if (!PyObject_TypeCheck(request, &Event_Type)) {
        PyErr_Format(PyExc_TypeError, "cancel of a non-request %.100s",
                     Py_TYPE(request)->tp_name);
        return -1;
    }
    EventObject *ev = (EventObject *)request;
    if (!ev->triggered) {
        PyObject *exc = PyObject_CallFunction(SimulationError, "s",
                                              "request cancelled");
        if (exc == NULL)
            return -1;
        int rc = event_trigger(ev, exc, 0, 0.0);
        Py_DECREF(exc);
        if (rc < 0)
            return -1;
        ev->defused = 1;
    }
    return 0;
}

static PyObject *
resource_cancel_meth(ResourceObject *self, PyObject *request)
{
    if (resource_cancel_impl(self, request) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
resource_ticket(ResourceObject *self, PyObject *Py_UNUSED(ignored))
{
    return PyLong_FromUnsignedLongLong(++self->seq);
}

static PyObject *
resource_get_count(ResourceObject *self, void *closure)
{
    return PyLong_FromSsize_t(self->in_use ? PySet_GET_SIZE(self->in_use) : 0);
}

static PyObject *
resource_get_queue_length(ResourceObject *self, void *closure)
{
    return PyLong_FromSsize_t(self->wlen);
}

static PyMemberDef resource_members[] = {
    {"sim", T_OBJECT, offsetof(ResourceObject, sim), 0, NULL},
    {"capacity", T_LONGLONG, offsetof(ResourceObject, capacity), 0, NULL},
    {"name", T_OBJECT, offsetof(ResourceObject, name), 0, NULL},
    {NULL},
};

static PyGetSetDef resource_getset[] = {
    {"count", (getter)resource_get_count, NULL, "units currently granted", NULL},
    {"queue_length", (getter)resource_get_queue_length, NULL, NULL, NULL},
    {NULL},
};

static PyMethodDef resource_methods[] = {
    {"request", (PyCFunction)(void (*)(void))resource_request,
     METH_FASTCALL | METH_KEYWORDS,
     "Claim one unit; returned event fires when the unit is granted."},
    {"release", (PyCFunction)resource_release, METH_O,
     "Return a granted unit and wake the next waiter."},
    {"_cancel", (PyCFunction)resource_cancel_meth, METH_O, NULL},
    {"_ticket", (PyCFunction)resource_ticket, METH_NOARGS, NULL},
    {NULL},
};

static PyTypeObject Resource_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._cengine.Resource",
    .tp_basicsize = sizeof(ResourceObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Counted semaphore with FIFO/priority queueing (compiled core).",
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)resource_init,
    .tp_dealloc = (destructor)resource_dealloc,
    .tp_traverse = (traverseproc)resource_traverse,
    .tp_clear = (inquiry)resource_clear,
    .tp_members = resource_members,
    .tp_getset = resource_getset,
    .tp_methods = resource_methods,
};

/* ---- Store ------------------------------------------------------- */

static int
store_init(StoreObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *sim, *name = NULL;
    double capacity = Py_HUGE_VAL;
    static char *kwlist[] = {"sim", "capacity", "name", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "O|dO", kwlist,
                                     &sim, &capacity, &name))
        return -1;
    PyObject *nm = name != NULL ? Py_NewRef(name) : PyUnicode_FromString("");
    if (nm == NULL)
        return -1;
    Py_XSETREF(self->sim, Py_NewRef(sim));
    Py_XSETREF(self->name, nm);
    self->capacity = capacity;
    objfifo_clear(&self->items);     /* re-init: drop stale contents */
    objfifo_clear(&self->getters);
    objfifo_clear(&self->putters);
    return 0;
}

static int
store_traverse(StoreObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->sim);
    Py_VISIT(self->name);
    for (Py_ssize_t i = self->items.head; i < self->items.len; i++)
        Py_VISIT(self->items.buf[i]);
    for (Py_ssize_t i = self->getters.head; i < self->getters.len; i++)
        Py_VISIT(self->getters.buf[i]);
    for (Py_ssize_t i = self->putters.head; i < self->putters.len; i++)
        Py_VISIT(self->putters.buf[i]);
    return 0;
}

static int
store_clear(StoreObject *self)
{
    Py_CLEAR(self->sim);
    Py_CLEAR(self->name);
    objfifo_clear(&self->items);
    objfifo_clear(&self->getters);
    objfifo_clear(&self->putters);
    return 0;
}

static void
store_dealloc(StoreObject *self)
{
    PyTypeObject *tp = Py_TYPE(self);
    PyObject_GC_UnTrack(self);
    store_clear(self);
    PyMem_Free(self->items.buf);
    PyMem_Free(self->getters.buf);
    PyMem_Free(self->putters.buf);
    tp->tp_free((PyObject *)self);
}

static PyObject *
store_put(StoreObject *self, PyObject *item)
{
    EventObject *ev = event_new_for(self->sim);
    if (ev == NULL)
        return NULL;
    if (objfifo_count(&self->getters) > 0) {
        PyObject *getter = objfifo_pop(&self->getters);
        int rc = event_trigger((EventObject *)getter, item, 1, 0.0);
        Py_DECREF(getter);
        if (rc < 0 || event_trigger(ev, Py_None, 1, 0.0) < 0) {
            Py_DECREF(ev);
            return NULL;
        }
    }
    else if ((double)objfifo_count(&self->items) < self->capacity) {
        if (objfifo_push(&self->items, item) < 0 ||
            event_trigger(ev, Py_None, 1, 0.0) < 0) {
            Py_DECREF(ev);
            return NULL;
        }
    }
    else {
        PyObject *pair = PyTuple_Pack(2, (PyObject *)ev, item);
        if (pair == NULL || objfifo_push(&self->putters, pair) < 0) {
            Py_XDECREF(pair);
            Py_DECREF(ev);
            return NULL;
        }
        Py_DECREF(pair);
    }
    return (PyObject *)ev;
}

/* a slot opened: move the oldest blocked putter's item in.  0/-1. */
static int
store_refill_from_putters(StoreObject *self)
{
    if (objfifo_count(&self->putters) == 0)
        return 0;
    PyObject *pair = objfifo_pop(&self->putters);
    int rc = objfifo_push(&self->items, PyTuple_GET_ITEM(pair, 1));
    if (rc == 0)
        rc = event_trigger((EventObject *)PyTuple_GET_ITEM(pair, 0),
                           Py_None, 1, 0.0);
    Py_DECREF(pair);
    return rc;
}

static PyObject *
store_get(StoreObject *self, PyObject *Py_UNUSED(ignored))
{
    EventObject *ev = event_new_for(self->sim);
    if (ev == NULL)
        return NULL;
    if (objfifo_count(&self->items) > 0) {
        PyObject *item = objfifo_pop(&self->items);
        if (store_refill_from_putters(self) < 0) {
            Py_DECREF(item);
            Py_DECREF(ev);
            return NULL;
        }
        int rc = event_trigger(ev, item, 1, 0.0);
        Py_DECREF(item);
        if (rc < 0) {
            Py_DECREF(ev);
            return NULL;
        }
    }
    else if (objfifo_push(&self->getters, (PyObject *)ev) < 0) {
        Py_DECREF(ev);
        return NULL;
    }
    return (PyObject *)ev;
}

static PyObject *
store_try_get(StoreObject *self, PyObject *Py_UNUSED(ignored))
{
    if (objfifo_count(&self->items) == 0)
        return PyTuple_Pack(2, Py_False, Py_None);
    PyObject *item = objfifo_pop(&self->items);
    if (store_refill_from_putters(self) < 0) {
        Py_DECREF(item);
        return NULL;
    }
    PyObject *out = PyTuple_Pack(2, Py_True, item);
    Py_DECREF(item);
    return out;
}

static Py_ssize_t
store_length(StoreObject *self)
{
    return objfifo_count(&self->items);
}

static PyObject *
store_get_items(StoreObject *self, void *closure)
{
    Py_ssize_t n = objfifo_count(&self->items);
    PyObject *t = PyTuple_New(n);
    if (t == NULL)
        return NULL;
    for (Py_ssize_t i = 0; i < n; i++)
        PyTuple_SET_ITEM(t, i,
                         Py_NewRef(self->items.buf[self->items.head + i]));
    return t;
}

static PySequenceMethods store_as_sequence = {
    .sq_length = (lenfunc)store_length,
};

static PyMemberDef store_members[] = {
    {"sim", T_OBJECT, offsetof(StoreObject, sim), 0, NULL},
    {"capacity", T_DOUBLE, offsetof(StoreObject, capacity), 0, NULL},
    {"name", T_OBJECT, offsetof(StoreObject, name), 0, NULL},
    {NULL},
};

static PyGetSetDef store_getset[] = {
    {"items", (getter)store_get_items, NULL,
     "current contents, oldest first", NULL},
    {NULL},
};

static PyMethodDef store_methods[] = {
    {"put", (PyCFunction)store_put, METH_O,
     "Deposit `item`; fires immediately unless the store is full."},
    {"get", (PyCFunction)store_get, METH_NOARGS,
     "Withdraw the oldest item; fires (with the item) when available."},
    {"try_get", (PyCFunction)store_try_get, METH_NOARGS,
     "Non-blocking withdraw: (True, item) or (False, None)."},
    {NULL},
};

static PyTypeObject Store_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._cengine.Store",
    .tp_basicsize = sizeof(StoreObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "FIFO of items with blocking get and optionally bounded put.",
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)store_init,
    .tp_dealloc = (destructor)store_dealloc,
    .tp_traverse = (traverseproc)store_traverse,
    .tp_clear = (inquiry)store_clear,
    .tp_as_sequence = &store_as_sequence,
    .tp_members = store_members,
    .tp_getset = store_getset,
    .tp_methods = store_methods,
};

/* ------------------------------------------------------------------ */
/* instrumentation (compiled halves of repro.sim.trace)                */

typedef struct {
    PyObject_HEAD
    PyObject *name;
    double value;
    long long events;
} CounterObject;

typedef struct {
    PyObject_HEAD
    PyObject *sim;
    PyObject *name;
    double capacity, level, last_change, area, t0;
} MeterObject;

static PyTypeObject Counter_Type;
static PyTypeObject Meter_Type;

/* read sim.now: direct struct access for the compiled Simulator */
static int
get_sim_now(PyObject *sim, double *out)
{
    if (PyObject_TypeCheck(sim, &Simulator_Type)) {
        *out = ((SimObject *)sim)->now;
        return 0;
    }
    PyObject *n = PyObject_GetAttrString(sim, "now");
    if (n == NULL)
        return -1;
    *out = PyFloat_AsDouble(n);
    Py_DECREF(n);
    return (*out == -1.0 && PyErr_Occurred()) ? -1 : 0;
}

/* ---- Counter ----------------------------------------------------- */

static int
counter_init(CounterObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *name = NULL;
    static char *kwlist[] = {"name", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|O", kwlist, &name))
        return -1;
    PyObject *nm = name != NULL ? Py_NewRef(name) : PyUnicode_FromString("");
    if (nm == NULL)
        return -1;
    Py_XSETREF(self->name, nm);
    self->value = 0.0;
    self->events = 0;
    return 0;
}

static int
counter_traverse(CounterObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->name);
    return 0;
}

static int
counter_clear(CounterObject *self)
{
    Py_CLEAR(self->name);
    return 0;
}

static void
counter_dealloc(CounterObject *self)
{
    PyTypeObject *tp = Py_TYPE(self);
    PyObject_GC_UnTrack(self);
    counter_clear(self);
    tp->tp_free((PyObject *)self);
}

static PyObject *
counter_add(CounterObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    double amount = 1.0;
    if (nargs > 1) {
        PyErr_SetString(PyExc_TypeError, "add() takes at most 1 argument");
        return NULL;
    }
    if (nargs == 1) {
        amount = PyFloat_AsDouble(args[0]);
        if (amount == -1.0 && PyErr_Occurred())
            return NULL;
    }
    if (amount < 0.0) {
        raise_formatted(SimulationError, "Counter %R decremented", self->name);
        return NULL;
    }
    self->value += amount;
    self->events++;
    Py_RETURN_NONE;
}

static PyObject *
counter_rate(CounterObject *self, PyObject *elapsed_obj)
{
    double elapsed = PyFloat_AsDouble(elapsed_obj);
    if (elapsed == -1.0 && PyErr_Occurred())
        return NULL;
    return PyFloat_FromDouble(elapsed > 0.0 ? self->value / elapsed : 0.0);
}

static PyMemberDef counter_members[] = {
    {"name", T_OBJECT, offsetof(CounterObject, name), 0, NULL},
    {"value", T_DOUBLE, offsetof(CounterObject, value), 0, NULL},
    {"events", T_LONGLONG, offsetof(CounterObject, events), 0, NULL},
    {NULL},
};

static PyMethodDef counter_methods[] = {
    {"add", (PyCFunction)(void (*)(void))counter_add, METH_FASTCALL,
     "Tally `amount` (default 1.0); negative amounts are rejected."},
    {"rate", (PyCFunction)counter_rate, METH_O,
     "Value per microsecond over `elapsed` microseconds."},
    {NULL},
};

static PyTypeObject Counter_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._cengine.Counter",
    .tp_basicsize = sizeof(CounterObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "A monotonically growing tally (compiled core).",
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)counter_init,
    .tp_dealloc = (destructor)counter_dealloc,
    .tp_traverse = (traverseproc)counter_traverse,
    .tp_clear = (inquiry)counter_clear,
    .tp_members = counter_members,
    .tp_methods = counter_methods,
};

/* ---- UtilizationMeter -------------------------------------------- */

static int
meter_init(MeterObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *sim, *name = NULL;
    double capacity;
    static char *kwlist[] = {"sim", "capacity", "name", NULL};
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "Od|O", kwlist,
                                     &sim, &capacity, &name))
        return -1;
    if (capacity <= 0.0) {
        PyErr_SetString(SimulationError,
                        "UtilizationMeter capacity must be positive");
        return -1;
    }
    double now;
    if (get_sim_now(sim, &now) < 0)
        return -1;
    PyObject *nm = name != NULL ? Py_NewRef(name) : PyUnicode_FromString("");
    if (nm == NULL)
        return -1;
    Py_XSETREF(self->sim, Py_NewRef(sim));
    Py_XSETREF(self->name, nm);
    self->capacity = capacity;
    self->level = 0.0;
    self->last_change = now;
    self->area = 0.0;
    self->t0 = now;
    return 0;
}

static int
meter_traverse(MeterObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->sim);
    Py_VISIT(self->name);
    return 0;
}

static int
meter_clear(MeterObject *self)
{
    Py_CLEAR(self->sim);
    Py_CLEAR(self->name);
    return 0;
}

static void
meter_dealloc(MeterObject *self)
{
    PyTypeObject *tp = Py_TYPE(self);
    PyObject_GC_UnTrack(self);
    meter_clear(self);
    tp->tp_free((PyObject *)self);
}

static int
meter_settle(MeterObject *self)
{
    double now;
    if (get_sim_now(self->sim, &now) < 0)
        return -1;
    self->area += self->level * (now - self->last_change);
    self->last_change = now;
    return 0;
}

static int
meter_parse_units(const char *meth, PyObject *const *args, Py_ssize_t nargs,
                  double *units)
{
    *units = 1.0;
    if (nargs > 1) {
        PyErr_Format(PyExc_TypeError, "%s() takes at most 1 argument", meth);
        return -1;
    }
    if (nargs == 1) {
        *units = PyFloat_AsDouble(args[0]);
        if (*units == -1.0 && PyErr_Occurred())
            return -1;
    }
    return 0;
}

static PyObject *
meter_acquire(MeterObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    double units;
    if (meter_parse_units("acquire", args, nargs, &units) < 0 ||
        meter_settle(self) < 0)
        return NULL;
    self->level += units;
    if (self->level > self->capacity + 1e-9) {
        PyObject *lv = float_obj(self->level);
        PyObject *cap = float_obj(self->capacity);
        if (lv != NULL && cap != NULL)
            raise_formatted(SimulationError,
                            "UtilizationMeter %R over capacity: %S > %S",
                            self->name, lv, cap);
        Py_XDECREF(lv);
        Py_XDECREF(cap);
        return NULL;
    }
    Py_RETURN_NONE;
}

static PyObject *
meter_release(MeterObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    double units;
    if (meter_parse_units("release", args, nargs, &units) < 0 ||
        meter_settle(self) < 0)
        return NULL;
    self->level -= units;
    if (self->level < -1e-9) {
        raise_formatted(SimulationError,
                        "UtilizationMeter %R released below zero", self->name);
        return NULL;
    }
    Py_RETURN_NONE;
}

static PyObject *
meter_reset_window(MeterObject *self, PyObject *Py_UNUSED(ignored))
{
    if (meter_settle(self) < 0)
        return NULL;
    self->area = 0.0;
    self->t0 = self->last_change;
    Py_RETURN_NONE;
}

static PyObject *
meter_busy_time(MeterObject *self, PyObject *Py_UNUSED(ignored))
{
    if (meter_settle(self) < 0)
        return NULL;
    return PyFloat_FromDouble(self->area);
}

static PyObject *
meter_utilization(MeterObject *self, PyObject *Py_UNUSED(ignored))
{
    if (meter_settle(self) < 0)
        return NULL;
    double elapsed = self->last_change - self->t0;
    if (elapsed <= 0.0)
        return PyFloat_FromDouble(0.0);
    return PyFloat_FromDouble(self->area / (elapsed * self->capacity));
}

static PyMemberDef meter_members[] = {
    {"sim", T_OBJECT, offsetof(MeterObject, sim), 0, NULL},
    {"capacity", T_DOUBLE, offsetof(MeterObject, capacity), 0, NULL},
    {"name", T_OBJECT, offsetof(MeterObject, name), 0, NULL},
    {"_level", T_DOUBLE, offsetof(MeterObject, level), 0, NULL},
    {"_last_change", T_DOUBLE, offsetof(MeterObject, last_change), 0, NULL},
    {"_area", T_DOUBLE, offsetof(MeterObject, area), 0, NULL},
    {"_t0", T_DOUBLE, offsetof(MeterObject, t0), 0, NULL},
    {NULL},
};

static PyMethodDef meter_methods[] = {
    {"acquire", (PyCFunction)(void (*)(void))meter_acquire, METH_FASTCALL,
     "Raise the busy level by `units` (default 1.0)."},
    {"release", (PyCFunction)(void (*)(void))meter_release, METH_FASTCALL,
     "Lower the busy level by `units` (default 1.0)."},
    {"reset_window", (PyCFunction)meter_reset_window, METH_NOARGS,
     "Start a fresh measurement window at the current instant."},
    {"busy_time", (PyCFunction)meter_busy_time, METH_NOARGS,
     "Integrated unit-microseconds of busy time in the window."},
    {"utilization", (PyCFunction)meter_utilization, METH_NOARGS,
     "Mean fraction of capacity busy over the window, in [0, 1]."},
    {NULL},
};

static PyTypeObject Meter_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._cengine.UtilizationMeter",
    .tp_basicsize = sizeof(MeterObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Time-weighted integral of a busy-unit level (compiled core).",
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)meter_init,
    .tp_dealloc = (destructor)meter_dealloc,
    .tp_traverse = (traverseproc)meter_traverse,
    .tp_clear = (inquiry)meter_clear,
    .tp_members = meter_members,
    .tp_methods = meter_methods,
};

/* ------------------------------------------------------------------ */
/* module                                                              */

static PyObject *
mod_set_conditions(PyObject *mod, PyObject *args)
{
    PyObject *allof, *anyof;
    if (!PyArg_ParseTuple(args, "OO", &allof, &anyof))
        return NULL;
    Py_XSETREF(cond_allof, Py_NewRef(allof));
    Py_XSETREF(cond_anyof, Py_NewRef(anyof));
    Py_RETURN_NONE;
}

static PyMethodDef module_methods[] = {
    {"set_conditions", mod_set_conditions, METH_VARARGS,
     "Register the AllOf/AnyOf classes built against the compiled Event."},
    {NULL},
};

static struct PyModuleDef cengine_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.sim._cengine",
    .m_doc = "Compiled simulation-kernel core (see repro.sim.engine).",
    .m_size = -1,
    .m_methods = module_methods,
};

PyMODINIT_FUNC
PyInit__cengine(void)
{
    PyObject *pyengine = PyImport_ImportModule("repro.sim._pyengine");
    if (pyengine == NULL)
        return NULL;
    SimulationError = PyObject_GetAttrString(pyengine, "SimulationError");
    InterruptExc = PyObject_GetAttrString(pyengine, "Interrupt");
    Py_DECREF(pyengine);
    if (SimulationError == NULL || InterruptExc == NULL)
        return NULL;
    str_throw = PyUnicode_InternFromString("throw");
    str_value = PyUnicode_InternFromString("value");
    if (str_throw == NULL || str_value == NULL)
        return NULL;
    /* defining tp_richcompare suppresses tp_hash inheritance; Request
     * compares by (priority, seq) but hashes by identity, like the
     * pure-python class (__lt__ only). */
    Request_Type.tp_hash = PyBaseObject_Type.tp_hash;
    if (PyType_Ready(&Event_Type) < 0 ||
        PyType_Ready(&Wakeup_Type) < 0 ||
        PyType_Ready(&Timeout_Type) < 0 ||
        PyType_Ready(&Resume_Type) < 0 ||
        PyType_Ready(&Process_Type) < 0 ||
        PyType_Ready(&Simulator_Type) < 0 ||
        PyType_Ready(&Request_Type) < 0 ||
        PyType_Ready(&Resource_Type) < 0 ||
        PyType_Ready(&Store_Type) < 0 ||
        PyType_Ready(&Counter_Type) < 0 ||
        PyType_Ready(&Meter_Type) < 0)
        return NULL;
    PyObject *mod = PyModule_Create(&cengine_module);
    if (mod == NULL)
        return NULL;
    if (PyModule_AddObjectRef(mod, "Event", (PyObject *)&Event_Type) < 0 ||
        PyModule_AddObjectRef(mod, "_Wakeup", (PyObject *)&Wakeup_Type) < 0 ||
        PyModule_AddObjectRef(mod, "Timeout", (PyObject *)&Timeout_Type) < 0 ||
        PyModule_AddObjectRef(mod, "Process", (PyObject *)&Process_Type) < 0 ||
        PyModule_AddObjectRef(mod, "Simulator", (PyObject *)&Simulator_Type) < 0 ||
        PyModule_AddObjectRef(mod, "Request", (PyObject *)&Request_Type) < 0 ||
        PyModule_AddObjectRef(mod, "Resource", (PyObject *)&Resource_Type) < 0 ||
        PyModule_AddObjectRef(mod, "Store", (PyObject *)&Store_Type) < 0 ||
        PyModule_AddObjectRef(mod, "Counter", (PyObject *)&Counter_Type) < 0 ||
        PyModule_AddObjectRef(mod, "UtilizationMeter", (PyObject *)&Meter_Type) < 0 ||
        PyModule_AddObjectRef(mod, "SimulationError", SimulationError) < 0 ||
        PyModule_AddObjectRef(mod, "Interrupt", InterruptExc) < 0) {
        Py_DECREF(mod);
        return NULL;
    }
    return mod;
}
