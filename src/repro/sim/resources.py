"""Contention primitives built on the event kernel.

``Resource``
    A counted semaphore with FIFO (optionally priority) queueing.  Used
    for CPU cores, disk spindles, HCA DMA engines and link arbitration.

``Store``
    An unbounded (or bounded) FIFO of Python objects.  Used for task
    queues, NIC receive rings and socket buffers.

``Container``
    A continuous level with blocking get/put.  Used for credit pools and
    page-cache capacity accounting.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any

from repro.sim import engine as _engine
from repro.sim.engine import Event, SimulationError, Simulator

__all__ = ["Container", "Request", "Resource", "Store"]

# The classes below are the pure-python reference.  When the compiled
# core is live, the module tail swaps in the _cengine implementations
# (same semantics, same grant order — see the equivalence notes in
# _cengine.c); these definitions remain the fallback and the oracle the
# compiled ones are tested against.


class Request(Event):
    """A pending claim on a :class:`Resource`; fires when granted."""

    __slots__ = ("resource", "priority", "_seq")

    def __init__(self, resource: "Resource", priority: int):
        super().__init__(resource.sim)
        self.resource = resource
        self.priority = priority
        self._seq = resource._ticket()

    def __lt__(self, other: "Request") -> bool:
        return (self.priority, self._seq) < (other.priority, other._seq)

    def cancel(self) -> None:
        """Withdraw an ungranted request (granted requests must release)."""
        self.resource._cancel(self)


class Resource:
    """Counted semaphore.  ``capacity`` units; requests queue when busy.

    Typical use inside a process generator::

        req = cpu.request()
        yield req
        try:
            yield sim.timeout(service_time)
        finally:
            cpu.release(req)
    """

    __slots__ = ("sim", "capacity", "name", "_in_use", "_waiting", "_seq")

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"Resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use: set[Request] = set()
        self._waiting: list[Request] = []
        self._seq = 0

    def _ticket(self) -> int:
        self._seq += 1
        return self._seq

    @property
    def count(self) -> int:
        """Units currently granted."""
        return len(self._in_use)

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self, priority: int = 0) -> Request:
        """Claim one unit; returned event fires when the unit is granted."""
        req = Request(self, priority)
        if len(self._in_use) < self.capacity and not self._waiting:
            self._in_use.add(req)
            req.succeed(self)
        else:
            heapq.heappush(self._waiting, req)
        return req

    def release(self, request: Request) -> None:
        """Return a granted unit and wake the next waiter."""
        if request not in self._in_use:
            raise SimulationError(f"release of request not held on {self.name or 'resource'}")
        self._in_use.remove(request)
        while self._waiting:
            nxt = heapq.heappop(self._waiting)
            if nxt.triggered:  # cancelled
                continue
            self._in_use.add(nxt)
            nxt.succeed(self)
            break

    def _cancel(self, request: Request) -> None:
        if request in self._in_use:
            raise SimulationError("cancel of a granted request; use release()")
        if not request.triggered:
            # Lazy removal: mark triggered-as-failed, skipped on pop.
            request.fail(SimulationError("request cancelled"))
            request.defused()


class Store:
    """FIFO of items with blocking ``get`` and optionally bounded ``put``."""

    __slots__ = ("sim", "capacity", "name", "_items", "_getters", "_putters")

    def __init__(self, sim: Simulator, capacity: float = float("inf"), name: str = ""):
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        """Deposit ``item``; fires immediately unless the store is full."""
        ev = Event(self.sim)
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed(None)
        elif len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed(None)
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        """Withdraw the oldest item; fires (with the item) when available."""
        ev = Event(self.sim)
        if self._items:
            item = self._items.popleft()
            if self._putters:
                pev, pitem = self._putters.popleft()
                self._items.append(pitem)
                pev.succeed(None)
            ev.succeed(item)
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking withdraw: ``(True, item)`` or ``(False, None)``."""
        if not self._items:
            return False, None
        item = self._items.popleft()
        if self._putters:
            pev, pitem = self._putters.popleft()
            self._items.append(pitem)
            pev.succeed(None)
        return True, item


class Container:
    """A continuous quantity with blocking get/put (credits, capacities)."""

    __slots__ = ("sim", "capacity", "name", "_level", "_getters", "_putters")

    def __init__(
        self,
        sim: Simulator,
        capacity: float = float("inf"),
        init: float = 0.0,
        name: str = "",
    ):
        if init < 0 or init > capacity:
            raise SimulationError(f"Container init {init} outside [0, {capacity}]")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._level = init
        self._getters: deque[tuple[Event, float]] = deque()
        self._putters: deque[tuple[Event, float]] = deque()

    @property
    def level(self) -> float:
        return self._level

    def get(self, amount: float) -> Event:
        """Withdraw ``amount``; fires once the level covers it (FIFO)."""
        if amount < 0:
            raise SimulationError("Container.get of negative amount")
        ev = Event(self.sim)
        self._getters.append((ev, amount))
        self._drain()
        return ev

    def put(self, amount: float) -> Event:
        """Deposit ``amount``; fires once it fits under ``capacity`` (FIFO)."""
        if amount < 0:
            raise SimulationError("Container.put of negative amount")
        ev = Event(self.sim)
        self._putters.append((ev, amount))
        self._drain()
        return ev

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                ev, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.popleft()
                    self._level += amount
                    ev.succeed(None)
                    progressed = True
            if self._getters:
                ev, amount = self._getters[0]
                if self._level >= amount:
                    self._getters.popleft()
                    self._level -= amount
                    ev.succeed(None)
                    progressed = True


PurePythonRequest = Request
PurePythonResource = Resource
PurePythonStore = Store

if _engine.ACTIVE_CORE == "c":
    # Compiled hot path: Resource.request/release and Store.put/get are
    # among the most-called model entry points, so the C core provides
    # them too.  Container stays pure python (cold: credit pools).
    Request = _engine._cengine.Request
    Resource = _engine._cengine.Resource
    Store = _engine._cengine.Store
