"""Discrete-event simulation kernel.

A small, deterministic, generator-based DES in the style of SimPy,
purpose-built for the NFS/RDMA reproduction.  Simulated time is a float
in **microseconds**.  Processes are Python generators that ``yield``
:class:`~repro.sim.engine.Event` objects; the engine resumes them when
the event fires.

Public surface::

    sim = Simulator()
    proc = sim.process(my_generator())
    sim.run(until=1e6)

Resources (:mod:`repro.sim.resources`) provide contention primitives:
``Resource`` (counted semaphore with FIFO/priority queueing), ``Store``
(item queue) and ``Container`` (continuous level).  ``repro.sim.trace``
provides time-weighted utilization and counter instrumentation used by
the analysis layer to compute CPU utilization and bandwidth.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.resources import Container, Resource, Store
from repro.sim.rng import DeterministicRNG
from repro.sim.trace import Counter, Tracer, UtilizationMeter

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Counter",
    "DeterministicRNG",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
    "Tracer",
    "UtilizationMeter",
]
