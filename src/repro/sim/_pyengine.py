"""Pure-python event loop, events and processes for the simulation kernel.

This module is the reference core: always importable, no compiled code.
:mod:`repro.sim.engine` selects between this and the optional C core
(:mod:`repro.sim._cengine`) at import time; both must produce
**bit-identical** schedules (the golden tables and ``repro check``
schedule-invariance runs pin that equivalence).

Scheduling uses a *bucketed calendar queue* instead of one global
``(time, seq, event)`` heap.  The workload's timestamp distribution is
near-monotonic with dense same-instant bursts (a CQE fan-out, a credit
grant, a teardown drain all schedule many events for *now*), so the
queue keys a dict of per-instant buckets — one list per occupied
timestamp, FIFO within the bucket — and keeps only the *distinct*
timestamps in a small float heap.  A burst of K same-instant events
costs one heap push + one heap pop total, not K of each, and no
``(time, seq)`` tuples are allocated at all: within a bucket, list
order *is* scheduling order, which is exactly the engine's documented
FIFO tiebreak.  ``run``/``run_until_complete`` drain the open bucket in
a batched inner loop, touching the heap only when the instant changes.

Determinism is unchanged from the heap engine: events fire in
``(time, scheduling order)`` — two events scheduled for the same
instant always fire in scheduling order, so repeated runs with the same
seed are bit-identical.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
]

_NO_BUCKET = float("nan")  # compares unequal to every timestamp


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation API (not for modeled failures)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` carries an arbitrary payload describing why the process was
    interrupted (e.g. a timeout watchdog or a connection teardown).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event is *triggered* when given a value (or failure) and a position
    in the schedule; it is *processed* once its callbacks have run.
    Processes wait on events by yielding them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[[Event], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        self._defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimulationError("event value inspected before trigger")
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value inspected before trigger")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully ``delay`` microseconds from now."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed; waiters see ``exception`` raised."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("Event.fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.sim._schedule(self, delay)
        return self

    def defused(self) -> "Event":
        """Mark a failed event as handled out-of-band (no crash at top level)."""
        self._defused = True
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.sim.now:.3f}>"


class _Wakeup:
    """Minimal pre-triggered carrier for process boot and interrupt.

    Duck-types the slice of the :class:`Event` surface the scheduler
    touches (``callbacks``/``_ok``/``_value``/``_defused``/``_processed``)
    without the full Event construction cost — these are allocated once
    per process, on the engine's hottest path.
    """

    __slots__ = ("callbacks", "_value", "_ok", "_defused", "_processed")

    def __init__(self, callback, value: Any = None, ok: bool = True):
        self.callbacks = [callback]
        self._value = value
        self._ok = ok
        self._defused = not ok
        self._processed = False


class Timeout(Event):
    """An event that fires ``delay`` microseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        # Inlined Event.__init__ + trigger: a timeout is born fired, so
        # skip the un-triggered intermediate state entirely.
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._triggered = True
        self._processed = False
        self._defused = False
        self.delay = delay
        sim._schedule(self, delay)


class Process(Event):
    """Drives a generator; the process *is* an event that fires on return.

    The generator may yield any :class:`Event`.  When that event fires the
    generator is resumed with the event's value (or the failure exception
    is thrown into it).  The process event itself succeeds with the
    generator's return value, or fails with its uncaught exception.
    """

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"Process requires a generator, got {type(generator).__name__}")
        super().__init__(sim)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Bootstrap: resume once at the current instant (same schedule slot
        # a full boot Event would consume, minus its allocation).
        boot = _Wakeup(self._resume)
        sim._schedule(boot, 0.0)
        self._waiting_on = boot

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant."""
        if self._triggered:
            raise SimulationError("cannot interrupt a finished process")
        if self._waiting_on is None:
            raise SimulationError("cannot interrupt a process that is currently running")
        # Detach from whatever it was waiting on.
        target = self._waiting_on
        if target.callbacks is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._waiting_on = None
        carrier = _Wakeup(self._resume, Interrupt(cause), ok=False)
        self.sim._schedule(carrier, 0.0)
        self._waiting_on = carrier

    # -- internal -------------------------------------------------------
    def _resume(self, trigger: Event) -> None:
        self.sim.active_process = self
        self._waiting_on = None
        while True:
            try:
                if trigger._ok:
                    target = self._generator.send(trigger._value)
                else:
                    trigger._defused = True
                    target = self._generator.throw(trigger._value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self.fail(exc)
                return
            if not isinstance(target, _EVENT_TYPES):
                exc = SimulationError(
                    f"process {self.name!r} yielded {type(target).__name__}, expected Event"
                )
                try:
                    self._generator.throw(exc)
                except StopIteration as stop:
                    self.succeed(stop.value)
                except BaseException as err:
                    self.fail(err)
                return
            if target.sim is not self.sim:
                self.fail(SimulationError("yielded event belongs to a different Simulator"))
                return
            if target._processed:
                # Already fired: resume immediately with its outcome.
                trigger = target
                continue
            target.callbacks.append(self._resume)
            self._waiting_on = target
            return


#: Classes accepted as yield targets.  :mod:`repro.sim.engine` widens
#: this to include the C core's Event when that core is loaded, so a
#: pure-python simulator (e.g. the perturbation checker) keeps working
#: even when model code constructs events from the compiled classes.
_EVENT_TYPES: tuple = (Event,)


class Simulator:
    """The event loop.  ``now`` is simulated time in microseconds.

    The schedule is a bucketed calendar (see the module docstring):

    ``_buckets``
        dict mapping each occupied *future* timestamp to its FIFO list.
    ``_times``
        heap of the distinct timestamps present in ``_buckets``.
    ``_open`` / ``_oi`` / ``_open_when``
        the bucket currently being drained, the index of the next
        unfired event in it, and its timestamp.  Events scheduled for
        exactly the open instant append here so same-instant FIFO order
        spans events scheduled both before and during the instant.
    """

    def __init__(self):
        self.now: float = 0.0
        self._buckets: dict[float, list] = {}
        self._times: list[float] = []
        self._open: list = []
        self._oi: int = 0
        self._open_when: float = _NO_BUCKET
        #: total events processed — the simulator's own work metric,
        #: reported by ``python -m repro bench`` as events/sec.
        self.steps = 0
        #: observability root (repro.telemetry.Telemetry) or None.  This
        #: is the single disable flag: every instrumented site does one
        #: attribute load + ``is None`` test when telemetry is off.
        self.telemetry = None
        #: the Process currently being resumed; the span tracer keys its
        #: task-span map on this to nest same-process spans.
        self.active_process = None
        #: runtime invariant checker (repro.check.Sanitizer) or None.
        #: Same overhead contract as ``telemetry``: one attribute load
        #: plus ``is None`` per instrumented site when off; when on it
        #: only reads sim state, so results stay bit-identical.
        self.sanitizer = None

    # -- construction helpers -------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]):
        from repro.sim.engine import AllOf

        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]):
        from repro.sim.engine import AnyOf

        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        when = self.now + delay
        if when == self._open_when:
            # Same-instant burst: extend the bucket being drained.
            self._open.append(event)
            return
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [event]
            heappush(self._times, when)
        else:
            bucket.append(event)

    # -- execution --------------------------------------------------------
    def step(self) -> None:
        """Process the single next event in the schedule."""
        oi = self._oi
        open_ = self._open
        if oi >= len(open_):
            when = heappop(self._times)  # IndexError when queue empty
            open_ = self._buckets.pop(when)
            self._open = open_
            self._open_when = when
            self.now = when
            oi = 0
        event = open_[oi]
        open_[oi] = None  # release the reference as soon as it fires
        self._oi = oi + 1
        self.steps += 1
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        assert callbacks is not None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            exc = event._value
            raise exc if isinstance(exc, BaseException) else SimulationError(repr(exc))

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or simulated time reaches ``until``.

        The hot loop drains the open bucket in place: the time-limit
        test happens once per *instant* (bucket), not once per event.
        """
        if until is not None and until < self.now:
            raise SimulationError(f"run(until={until}) is in the past (now={self.now})")
        times = self._times
        buckets = self._buckets
        while True:
            open_ = self._open
            oi = self._oi
            if oi >= len(open_):
                if not times:
                    break
                when = times[0]
                if until is not None and when > until:
                    self.now = until
                    return
                heappop(times)
                open_ = buckets.pop(when)
                self._open = open_
                self._open_when = when
                self.now = when
                oi = 0
            # Batched same-instant drain: callbacks may append to the
            # open bucket, so the bound is re-read every iteration.
            while oi < len(open_):
                event = open_[oi]
                open_[oi] = None
                oi += 1
                self._oi = oi
                self.steps += 1
                callbacks = event.callbacks
                event.callbacks = None
                event._processed = True
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    exc = event._value
                    raise exc if isinstance(exc, BaseException) else SimulationError(repr(exc))
            if self._open is not open_ or self._oi != oi:
                continue  # a callback re-entered run(); resync from instance state
        if until is not None:
            self.now = until

    def run_until_complete(self, process: Process, limit: float = float("inf")) -> Any:
        """Run until ``process`` finishes; return its value or raise its error."""
        times = self._times
        buckets = self._buckets
        while not process._triggered:
            open_ = self._open
            oi = self._oi
            if oi >= len(open_):
                if not times:
                    raise SimulationError(f"deadlock: {process.name!r} never completed")
                when = times[0]
                if when > limit:
                    raise SimulationError(
                        f"time limit {limit} exceeded waiting for {process.name!r}")
                heappop(times)
                open_ = buckets.pop(when)
                self._open = open_
                self._open_when = when
                self.now = when
                oi = 0
            event = open_[oi]
            open_[oi] = None
            self._oi = oi + 1
            self.steps += 1
            callbacks = event.callbacks
            event.callbacks = None
            event._processed = True
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                exc = event._value
                raise exc if isinstance(exc, BaseException) else SimulationError(repr(exc))
        if not process.ok:
            raise process.value
        return process.value

    @property
    def queue_size(self) -> int:
        pending = len(self._open) - self._oi
        for bucket in self._buckets.values():
            pending += len(bucket)
        return pending
