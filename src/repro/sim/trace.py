"""Instrumentation: counters, utilization meters and an event tracer.

Utilization accounting is time-weighted: a :class:`UtilizationMeter`
integrates ``busy_units`` over simulated time, which is how the analysis
layer turns CPU-core occupancy into the CPU-utilization percentages the
paper plots (Figs 6–9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.sim import engine as _engine
from repro.sim.engine import SimulationError, Simulator

__all__ = ["Counter", "Tracer", "UtilizationMeter"]

# Counter and UtilizationMeter below are the pure-python reference; the
# module tail swaps in the compiled versions when the C core is live
# (meters settle on every resource acquire/release, making them one of
# the hottest non-kernel paths in the fig6-9 CPU-utilization figures).


class Counter:
    """A monotonically growing tally with byte/op helpers."""

    __slots__ = ("name", "value", "events")

    def __init__(self, name: str = ""):
        self.name = name
        self.value: float = 0.0
        self.events: int = 0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise SimulationError(f"Counter {self.name!r} decremented")
        self.value += amount
        self.events += 1

    def rate(self, elapsed: float) -> float:
        """Value per microsecond over ``elapsed`` microseconds."""
        return self.value / elapsed if elapsed > 0 else 0.0


class UtilizationMeter:
    """Time-weighted integral of a busy-unit level (e.g. busy CPU cores)."""

    __slots__ = ("sim", "capacity", "name", "_level", "_last_change", "_area", "_t0")

    def __init__(self, sim: Simulator, capacity: float, name: str = ""):
        if capacity <= 0:
            raise SimulationError("UtilizationMeter capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._level = 0.0
        self._last_change = sim.now
        self._area = 0.0
        self._t0 = sim.now

    def _settle(self) -> None:
        now = self.sim.now
        self._area += self._level * (now - self._last_change)
        self._last_change = now

    def acquire(self, units: float = 1.0) -> None:
        self._settle()
        self._level += units
        if self._level > self.capacity + 1e-9:
            raise SimulationError(
                f"UtilizationMeter {self.name!r} over capacity: {self._level} > {self.capacity}"
            )

    def release(self, units: float = 1.0) -> None:
        self._settle()
        self._level -= units
        if self._level < -1e-9:
            raise SimulationError(f"UtilizationMeter {self.name!r} released below zero")

    def reset_window(self) -> None:
        """Start a fresh measurement window at the current instant."""
        self._settle()
        self._area = 0.0
        self._t0 = self.sim.now

    def busy_time(self) -> float:
        """Integrated unit-microseconds of busy time in the window."""
        self._settle()
        return self._area

    def utilization(self) -> float:
        """Mean fraction of capacity busy over the window, in [0, 1]."""
        self._settle()
        elapsed = self.sim.now - self._t0
        if elapsed <= 0:
            return 0.0
        return self._area / (elapsed * self.capacity)


@dataclass
class TraceRecord:
    time: float
    category: str
    payload: Any


@dataclass
class Tracer:
    """Optional structured event log; disabled by default for speed."""

    enabled: bool = False
    records: list = field(default_factory=list)
    #: plain insertion-ordered dict — iteration order follows first-emit
    #: order, which varies across code paths; report through
    #: :meth:`sorted_counts` so output never depends on it.
    counts: dict = field(default_factory=dict)

    def emit(self, sim: Simulator, category: str, payload: Any = None) -> None:
        self.counts[category] = self.counts.get(category, 0) + 1
        if self.enabled:
            self.records.append(TraceRecord(sim.now, category, payload))

    def count(self, category: str) -> int:
        return self.counts.get(category, 0)

    def sorted_counts(self) -> list[tuple[str, int]]:
        """Report-time view: (category, count) sorted by category name."""
        return sorted(self.counts.items())

    def of(self, category: str) -> list:
        return [r for r in self.records if r.category == category]

    def clear(self) -> None:
        self.records.clear()
        self.counts.clear()


PurePythonCounter = Counter
PurePythonUtilizationMeter = UtilizationMeter

if _engine.ACTIVE_CORE == "c":
    Counter = _engine._cengine.Counter
    UtilizationMeter = _engine._cengine.UtilizationMeter
