"""FileBench OLTP personality (the paper's Fig 8).

The online-transaction-processing mix: a population of reader threads
doing random reads against a shared datafile, a smaller set of writer
threads doing random writes, and a log writer appending small stable
records.  Per the paper, the mean I/O size is tuned to 128 KB.  Reported
metrics match Fig 8's axes: operations per second (bars) and client CPU
microseconds per operation (lines).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.cluster import Cluster
from repro.payload import Payload
from repro.sim import AllOf, DeterministicRNG

__all__ = ["OltpParams", "OltpResult", "run_oltp"]


@dataclass(frozen=True)
class OltpParams:
    """One OLTP run."""

    readers: int = 50
    writers: int = 10
    log_writers: int = 1
    mean_io_bytes: int = 128 * 1024
    datafile_bytes: int = 64 << 20
    log_append_bytes: int = 16 * 1024
    ops_per_thread: int = 40
    seed: int = 42


@dataclass
class OltpResult:
    ops_total: int
    elapsed_us: float
    ops_per_s: float
    client_cpu_us_per_op: float
    bytes_read: int
    bytes_written: int


def _io_size(rng: DeterministicRNG, mean: int) -> int:
    """Lognormal-ish spread around the tuned mean, 4 KB aligned."""
    size = int(rng.exponential(mean * 0.35) + mean * 0.65)
    return max(4096, (size // 4096) * 4096)


def run_oltp(cluster: Cluster, params: OltpParams) -> OltpResult:
    sim = cluster.sim
    mount = cluster.mounts[0]
    nfs = mount.nfs
    rng = DeterministicRNG(params.seed, "oltp")
    stats = {"ops": 0, "read": 0, "written": 0}

    def setup():
        data_fh, _ = yield from nfs.create(nfs.root, "oltp.datafile")
        # Prime the datafile so reads hit real bytes; write in big strides.
        stride = 1 << 20
        block = Payload.tile(bytes(range(256)), stride)
        pos = 0
        while pos < params.datafile_bytes:
            yield from nfs.write(data_fh, pos, block)
            pos += stride
        log_fh, _ = yield from nfs.create(nfs.root, "oltp.log")
        return data_fh, log_fh

    data_fh, log_fh = cluster.run(setup())
    max_off = params.datafile_bytes

    def reader(tid: int):
        trng = rng.child(f"r{tid}")
        buf = (mount.node.arena.alloc(params.mean_io_bytes * 4)
               if cluster.config.is_rdma else None)
        for _ in range(params.ops_per_thread):
            size = _io_size(trng, params.mean_io_bytes)
            offset = trng.integers(0, max(1, (max_off - size) // 4096)) * 4096
            data, _, _ = yield from nfs.read(data_fh, offset, size, read_buffer=buf)
            stats["ops"] += 1
            stats["read"] += len(data)

    def writer(tid: int):
        trng = rng.child(f"w{tid}")
        pattern = bytes(range(256))
        for _ in range(params.ops_per_thread):
            size = _io_size(trng, params.mean_io_bytes)
            offset = trng.integers(0, max(1, (max_off - size) // 4096)) * 4096
            yield from nfs.write(data_fh, offset, Payload.tile(pattern, size))
            stats["ops"] += 1
            stats["written"] += size

    def log_writer(tid: int):
        pos = 0
        payload = Payload.zeros(params.log_append_bytes)
        for _ in range(params.ops_per_thread):
            yield from nfs.write(log_fh, pos, payload, stable=True)
            pos += params.log_append_bytes
            stats["ops"] += 1
            stats["written"] += params.log_append_bytes

    cluster.reset_utilization_windows()
    t0 = sim.now
    procs = (
        [sim.process(reader(i), name=f"oltp.r{i}") for i in range(params.readers)]
        + [sim.process(writer(i), name=f"oltp.w{i}") for i in range(params.writers)]
        + [sim.process(log_writer(i), name=f"oltp.l{i}")
           for i in range(params.log_writers)]
    )

    def barrier():
        yield AllOf(sim, procs)

    cluster.run(barrier())
    elapsed = sim.now - t0
    client_busy_us = sum(
        n.cpu.meter.busy_time() for n in cluster.client_nodes
    )
    ops = stats["ops"]
    return OltpResult(
        ops_total=ops,
        elapsed_us=elapsed,
        ops_per_s=ops / (elapsed / 1e6) if elapsed else 0.0,
        client_cpu_us_per_op=client_busy_us / ops if ops else 0.0,
        bytes_read=stats["read"],
        bytes_written=stats["written"],
    )
