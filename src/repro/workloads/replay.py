"""Trace-driven replay: record a run's op mix, play it back as load.

The SPECsfs idea applied to the simulator's own traces: any run with
span tracing on leaves a stream of ``nfs.*`` client spans (READ and
WRITE additionally carry their offset and count).  :func:`record_trace`
compresses that stream into an :class:`OpTrace` — a per-verb operation
mix plus quantized offset/size distributions, a few hundred bytes of
JSON however long the source run was — and :func:`run_replay` plays the
trace back against any cluster as a closed-loop workload.

Replay is deterministic: every draw (next verb, offset, size) comes
from a :class:`~repro.sim.DeterministicRNG` seeded by the params, so
the same trace on the same cluster config produces bit-identical
results — which makes a recorded trace a *portable scenario*: record
once on the baseline, replay against a different transport, strategy
or fault plan and compare like with like.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.latency import LatencyRecorder
from repro.experiments.cluster import Cluster
from repro.payload import Payload
from repro.sim import AllOf, DeterministicRNG

__all__ = ["OpTrace", "ReplayParams", "ReplayResult", "record_trace",
           "run_replay"]

TRACE_FORMAT = "repro-optrace-v1"

#: Distributions longer than this are quantized to this many points.
MAX_DIST_POINTS = 32


def _compress(values: list[int],
              max_points: int = MAX_DIST_POINTS) -> list[list[int]]:
    """``[[value, count], ...]`` sorted by value, at most ``max_points``.

    Over-long distributions are grouped into contiguous equal-width
    (by unique-value index) buckets; each bucket is represented by its
    weighted-mean value.  Deterministic: no sampling, no hashing order.
    """
    counts = sorted(Counter(values).items())
    if len(counts) <= max_points:
        return [[int(v), int(c)] for v, c in counts]
    out = []
    n = len(counts)
    for b in range(max_points):
        lo, hi = b * n // max_points, (b + 1) * n // max_points
        bucket = counts[lo:hi]
        if not bucket:
            continue
        weight = sum(c for _, c in bucket)
        mean = sum(v * c for v, c in bucket) / weight
        out.append([int(round(mean)), int(weight)])
    return out


def _draw(rng: DeterministicRNG, dist: list[list[int]]) -> int:
    """Weighted draw from a ``[[value, count], ...]`` distribution."""
    total = sum(c for _, c in dist)
    pick = rng.integers(0, total)
    for value, count in dist:
        pick -= count
        if pick < 0:
            return value
    return dist[-1][0]


@dataclass
class OpTrace:
    """A compact op-mix trace: verb weights + size/offset distributions."""

    mix: dict = field(default_factory=dict)    # verb -> op count
    dists: dict = field(default_factory=dict)  # verb -> {"offset": [[v,c]..],
    #                                                      "count": [[v,c]..]}
    source: str = ""
    ops_total: int = 0

    # -- persistence ------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps({
            "format": TRACE_FORMAT,
            "source": self.source,
            "ops_total": self.ops_total,
            "mix": self.mix,
            "dists": self.dists,
        }, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "OpTrace":
        data = json.loads(text)
        if data.get("format") != TRACE_FORMAT:
            raise ValueError(
                f"not a {TRACE_FORMAT} trace: {data.get('format')!r}")
        return cls(mix=data["mix"], dists=data["dists"],
                   source=data.get("source", ""),
                   ops_total=data.get("ops_total", 0))

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "OpTrace":
        with open(path) as fh:
            return cls.from_json(fh.read())

    # -- replay helpers ---------------------------------------------------
    def max_extent(self, verb: str) -> int:
        """Largest offset+count the trace saw for ``verb`` (0 if none)."""
        d = self.dists.get(verb, {})
        offsets = d.get("offset") or [[0, 0]]
        sizes = d.get("count") or [[0, 0]]
        return max(v for v, _ in offsets) + max(v for v, _ in sizes)


def record_trace(tracer, source: str = "") -> OpTrace:
    """Compress a tracer's ``nfs.*`` client spans into an :class:`OpTrace`.

    Takes any :class:`~repro.telemetry.spans.SpanTracer` (typically
    ``cluster.telemetry.tracer`` after a run).  Only closed client-side
    NFS op spans count; offsets/counts come from the span args the
    client records on READ and WRITE.
    """
    mix: Counter = Counter()
    offsets: dict[str, list[int]] = {}
    sizes: dict[str, list[int]] = {}
    for span in tracer.spans:
        if span.cat != "client" or not span.name.startswith("nfs."):
            continue
        verb = span.name[4:]
        mix[verb] += 1
        if "offset" in span.args:
            offsets.setdefault(verb, []).append(int(span.args["offset"]))
        if "count" in span.args:
            sizes.setdefault(verb, []).append(int(span.args["count"]))
    dists = {}
    for verb in sorted(set(offsets) | set(sizes)):
        entry = {}
        if verb in offsets:
            entry["offset"] = _compress(offsets[verb])
        if verb in sizes:
            entry["count"] = _compress(sizes[verb])
        dists[verb] = entry
    return OpTrace(mix=dict(sorted(mix.items())), dists=dists,
                   source=source, ops_total=sum(mix.values()))


@dataclass(frozen=True)
class ReplayParams:
    """One replay run.

    ``ops_per_thread`` of None replays the trace's own op count split
    across the threads.
    """

    ops_per_thread: Optional[int] = None
    nthreads: int = 1
    seed: int = 2007
    #: ceiling on the pre-populated working file (keeps replays of
    #: traces with huge read extents bounded).
    file_bytes_cap: int = 8 << 20


@dataclass
class ReplayResult:
    ops_total: int
    elapsed_us: float
    ops_per_s: float
    verb_counts: dict
    bytes_read: int
    bytes_written: int
    latency: object = None          # LatencySummary over all replayed ops
    skipped_verbs: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Plain-data table for determinism comparisons."""
        lat = self.latency
        return {
            "ops_total": self.ops_total,
            "elapsed_us": self.elapsed_us,
            "ops_per_s": self.ops_per_s,
            "verb_counts": dict(sorted(self.verb_counts.items())),
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "skipped_verbs": dict(sorted(self.skipped_verbs.items())),
            "latency_us": {
                "count": lat.count, "mean": lat.mean, "p50": lat.p50,
                "p99": lat.p99, "max": lat.maximum,
            } if lat is not None else None,
        }


def _populate(nfs, fh, size: int):
    """Fill the working file to ``size`` bytes in 1 MB strides."""
    stride = 1 << 20
    pos = 0
    while pos < size:
        chunk = min(stride, size - pos)
        yield from nfs.write(fh, pos, Payload.zeros(chunk))
        pos += chunk


def run_replay(cluster: Cluster, trace: OpTrace,
               params: ReplayParams = ReplayParams()) -> ReplayResult:
    """Play ``trace`` back against ``cluster`` as a closed-loop workload.

    Threads round-robin over the cluster's mounts.  Each drawn op maps
    onto the corresponding :class:`~repro.nfs.client.NfsClient` call;
    verbs with no replay mapping (or setup-only verbs like NULL) are
    dropped from the mix and reported in ``skipped_verbs``.
    """
    sim = cluster.sim
    mix = {v: c for v, c in trace.mix.items() if c > 0}
    supported = {"READ", "WRITE", "CREATE", "REMOVE", "LOOKUP", "GETATTR",
                 "SETATTR", "ACCESS", "READDIR", "READDIRPLUS", "COMMIT",
                 "FSSTAT", "FSINFO", "PATHCONF"}
    skipped = {v: c for v, c in mix.items() if v not in supported}
    mix = [(v, c) for v, c in sorted(mix.items()) if v in supported]
    if not mix:
        raise ValueError("trace has no replayable operations")
    total_weight = sum(c for _, c in mix)
    ops_per_thread = (params.ops_per_thread
                      if params.ops_per_thread is not None
                      else max(1, trace.ops_total // params.nthreads))
    extent = max(trace.max_extent("READ"), trace.max_extent("WRITE"),
                 4096)
    file_bytes = min(extent, params.file_bytes_cap)
    stats = {"ops": 0, "read": 0, "written": 0}
    verb_counts: Counter = Counter()
    latency = LatencyRecorder("replay")
    rng = DeterministicRNG(params.seed, "replay")

    def _offset(trng, verb: str, count: int) -> int:
        dist = trace.dists.get(verb, {}).get("offset")
        off = _draw(trng, dist) if dist else 0
        # Clamp into the working file so every read hits real bytes.
        return max(0, min(off, file_bytes - count))

    def _count(trng, verb: str) -> int:
        dist = trace.dists.get(verb, {}).get("count")
        n = _draw(trng, dist) if dist else 4096
        return max(1, min(n, file_bytes))

    def worker(index: int):
        trng = rng.child(f"t{index}")
        mount = cluster.mounts[index % len(cluster.mounts)]
        nfs = mount.nfs
        fh, _ = yield from nfs.create(nfs.root, f"replay-{index}")
        yield from _populate(nfs, fh, file_bytes)
        buf = (mount.node.arena.alloc(file_bytes)
               if cluster.config.is_rdma else None)
        spare: list[str] = []
        serial = 0
        for opno in range(ops_per_thread):
            pick = trng.integers(0, total_weight)
            for verb, weight in mix:
                pick -= weight
                if pick < 0:
                    break
            t0 = sim.now
            if verb == "READ":
                n = _count(trng, verb)
                data, _, _ = yield from nfs.read(
                    fh, _offset(trng, verb, n), n, read_buffer=buf)
                stats["read"] += len(data)
            elif verb == "WRITE":
                n = _count(trng, verb)
                yield from nfs.write(fh, _offset(trng, verb, n),
                                     Payload.zeros(n))
                stats["written"] += n
            elif verb == "CREATE":
                name = f"replay-{index}-s{serial}"
                serial += 1
                yield from nfs.create(nfs.root, name)
                spare.append(name)
            elif verb == "REMOVE":
                if not spare:
                    name = f"replay-{index}-s{serial}"
                    serial += 1
                    yield from nfs.create(nfs.root, name)
                    spare.append(name)
                yield from nfs.remove(nfs.root, spare.pop())
            elif verb == "LOOKUP":
                yield from nfs.lookup(nfs.root, f"replay-{index}")
            elif verb == "GETATTR":
                yield from nfs.getattr(fh)
            elif verb == "SETATTR":
                yield from nfs.setattr(fh, mode=0o644)
            elif verb == "ACCESS":
                yield from nfs.access(fh)
            elif verb == "READDIR":
                yield from nfs.readdir(nfs.root)
            elif verb == "READDIRPLUS":
                yield from nfs.readdirplus(nfs.root)
            elif verb == "COMMIT":
                yield from nfs.commit(fh)
            elif verb == "FSSTAT":
                yield from nfs.fsstat()
            elif verb == "FSINFO":
                yield from nfs.fsinfo()
            elif verb == "PATHCONF":
                yield from nfs.pathconf()
            latency.record(sim.now - t0)
            verb_counts[verb] += 1
            stats["ops"] += 1

    cluster.reset_utilization_windows()
    t0 = sim.now
    procs = [sim.process(worker(i), name=f"replay.t{i}")
             for i in range(params.nthreads)]

    def barrier():
        yield AllOf(sim, procs)

    cluster.run(barrier())
    elapsed = sim.now - t0
    return ReplayResult(
        ops_total=stats["ops"],
        elapsed_us=elapsed,
        ops_per_s=stats["ops"] / (elapsed / 1e6) if elapsed else 0.0,
        verb_counts=dict(verb_counts),
        bytes_read=stats["read"],
        bytes_written=stats["written"],
        latency=latency.summarize(),
        skipped_verbs=skipped,
    )
