"""PostMark-style small-file workload.

The classic mail/news-server benchmark: create a pool of small files,
run a transaction mix of (read | append | create | delete) against it,
then delete the pool.  Unlike IOzone this is metadata- and
small-op-heavy — nearly everything fits the RPC/RDMA inline path, so it
measures the *per-operation* costs (header processing, credits,
interrupts, dispatcher) rather than bulk-transfer machinery, and shows
where client-side caching (attributes, names) pays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.analysis.latency import LatencyRecorder, LatencySummary
from repro.experiments.cluster import Cluster
from repro.nfs.cache import CachingNfsClient, ClientCacheConfig
from repro.payload import Payload
from repro.sim import AllOf, DeterministicRNG

__all__ = ["PostmarkParams", "PostmarkResult", "run_postmark"]


@dataclass(frozen=True)
class PostmarkParams:
    """One PostMark run."""

    initial_files: int = 100
    transactions: int = 400
    min_file_bytes: int = 512
    max_file_bytes: int = 16 * 1024
    read_bias: float = 0.5        # read vs append within data transactions
    create_bias: float = 0.5      # create vs delete within namespace txns
    data_txn_fraction: float = 0.7
    nthreads: int = 4
    use_client_cache: bool = False
    seed: int = 93


@dataclass
class PostmarkResult:
    transactions: int
    elapsed_us: float
    txns_per_s: float
    created: int
    deleted: int
    bytes_read: int
    bytes_written: int
    latency: LatencySummary


def run_postmark(cluster: Cluster, params: PostmarkParams) -> PostmarkResult:
    sim = cluster.sim
    mount = cluster.mounts[0]
    nfs = mount.nfs
    cache: Optional[CachingNfsClient] = None
    if params.use_client_cache:
        cache = CachingNfsClient(nfs, sim, ClientCacheConfig())
    rng = DeterministicRNG(params.seed, "postmark")
    stats = {"created": 0, "deleted": 0, "read": 0, "written": 0, "txns": 0}
    latency = LatencyRecorder("postmark")
    pool: list[tuple[str, object]] = []       # (name, fh)
    name_seq = [0]

    def fresh_name() -> str:
        name_seq[0] += 1
        return f"pm{name_seq[0]:06d}"

    def file_size(trng) -> int:
        return trng.integers(params.min_file_bytes, params.max_file_bytes + 1)

    def lookup_attrs(fh) -> Generator:
        if cache is not None:
            return (yield from cache.getattr(fh))
        return (yield from nfs.getattr(fh))

    def setup() -> Generator:
        d, _ = yield from nfs.mkdir(nfs.root, "postmark")
        srng = rng.child("setup")
        for _ in range(params.initial_files):
            name = fresh_name()
            fh, _ = yield from nfs.create(d, name)
            size = file_size(srng)
            yield from nfs.write(fh, 0, Payload.zeros(size))
            stats["written"] += size
            pool.append((name, fh))
        return d

    directory = cluster.run(setup())

    def worker(tid: int) -> Generator:
        trng = rng.child(f"t{tid}")
        for _ in range(params.transactions // params.nthreads):
            t0 = sim.now
            if trng.uniform() < params.data_txn_fraction and pool:
                name, fh = pool[trng.integers(0, len(pool))]
                attrs = yield from lookup_attrs(fh)
                if trng.uniform() < params.read_bias:
                    data, _, _ = yield from nfs.read(fh, 0, max(1, attrs.size))
                    stats["read"] += len(data)
                else:
                    chunk = bytes(trng.integers(128, 2048))
                    yield from nfs.write(fh, attrs.size, chunk)
                    stats["written"] += len(chunk)
            elif trng.uniform() < params.create_bias or not pool:
                name = fresh_name()
                fh, _ = yield from nfs.create(directory, name)
                size = file_size(trng)
                yield from nfs.write(fh, 0, Payload.zeros(size))
                stats["written"] += size
                stats["created"] += 1
                pool.append((name, fh))
            else:
                idx = trng.integers(0, len(pool))
                name, fh = pool.pop(idx)
                yield from nfs.remove(directory, name)
                stats["deleted"] += 1
                if cache is not None:
                    cache.invalidate_attrs(fh.fileid)
            stats["txns"] += 1
            latency.record(sim.now - t0)

    t0 = sim.now
    procs = [sim.process(worker(t), name=f"postmark.t{t}")
             for t in range(params.nthreads)]

    def barrier():
        yield AllOf(sim, procs)

    cluster.run(barrier())
    elapsed = sim.now - t0
    return PostmarkResult(
        transactions=stats["txns"],
        elapsed_us=elapsed,
        txns_per_s=stats["txns"] / (elapsed / 1e6) if elapsed else 0.0,
        created=stats["created"],
        deleted=stats["deleted"],
        bytes_read=stats["read"],
        bytes_written=stats["written"],
        latency=latency.summarize(),
    )
