"""IOzone-style multi-threaded sequential I/O (the paper's Figs 5–7, 9, 10).

Semantics follow ``iozone -t``: every thread owns its own file, all
threads barrier between the write and read phases, records are written
and read sequentially, and direct I/O bypasses client caching (on the
RDMA transports each record is a freshly registered application buffer
— the zero-copy path whose registration cost the paper studies).

``ops_per_thread`` scales a run down: steady-state bandwidth on a
memory backend does not depend on file length, so benchmarks cover a
prefix of the file instead of all of it (EXPERIMENTS.md discusses the
scaling).  Set it to ``None`` to touch every record, which Fig 10's
cache-capacity effects require.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.analysis.latency import LatencyRecorder, LatencySummary
from repro.experiments.cluster import Cluster, Mount
from repro.payload import Payload
from repro.sim import AllOf

__all__ = ["IozoneParams", "IozoneResult", "run_iozone"]


@dataclass(frozen=True)
class IozoneParams:
    """One IOzone invocation."""

    nthreads: int = 1                     # threads per mount
    record_bytes: int = 128 * 1024
    file_bytes: int = 128 << 20
    ops_per_thread: Optional[int] = 128   # None = cover the whole file
    direct_io: bool = True
    stable_writes: bool = False
    #: COMMIT every file after the write phase so read-phase timing is
    #: not polluted by write-back (iozone closes files between phases).
    sync_between_phases: bool = True
    pattern: bytes = bytes(range(256))

    def records_per_thread(self) -> int:
        total = self.file_bytes // self.record_bytes
        if self.ops_per_thread is None:
            return total
        return min(total, self.ops_per_thread)

    def record_payload(self) -> Payload:
        """The record as a zero-copy pattern descriptor (never expanded)."""
        return Payload.tile(self.pattern, self.record_bytes)


@dataclass
class IozoneResult:
    """Aggregate phase results (MB/s == bytes/µs)."""

    write_mb_s: float
    read_mb_s: float
    write_elapsed_us: float
    read_elapsed_us: float
    bytes_per_phase: int
    client_cpu_read: float      # mean client CPU utilization, read phase
    client_cpu_write: float
    server_cpu_read: float
    read_latency: LatencySummary = LatencySummary.empty()
    write_latency: LatencySummary = LatencySummary.empty()


def run_iozone(cluster: Cluster, params: IozoneParams) -> IozoneResult:
    """Drive the cluster with one IOzone run; returns aggregate numbers."""
    sim = cluster.sim
    records = params.records_per_thread()
    payload = params.record_payload()
    nthreads_total = params.nthreads * len(cluster.mounts)
    bytes_per_phase = records * params.record_bytes * nthreads_total

    def thread_files() -> Generator:
        """Create every thread's file up front (setup, untimed)."""
        handles = []
        for m, mount in enumerate(cluster.mounts):
            for t in range(params.nthreads):
                fh, _ = yield from mount.nfs.create(
                    mount.nfs.root, f"iozone.m{m}.t{t}"
                )
                handles.append((mount, fh))
        return handles

    handles = cluster.run(thread_files())

    latencies = {"write": LatencyRecorder("write"), "read": LatencyRecorder("read")}

    def io_thread(mount: Mount, fh, phase: str) -> Generator:
        nfs = mount.nfs
        rec = params.record_bytes
        recorder = latencies[phase]
        if params.direct_io and cluster.config.is_rdma:
            app_buffer = mount.node.arena.alloc(rec)
        else:
            app_buffer = None
        for i in range(records):
            offset = i * rec
            t0 = sim.now
            if phase == "write":
                if app_buffer is not None:
                    app_buffer.fill(payload)
                yield from nfs.write(fh, offset, payload,
                                     stable=params.stable_writes,
                                     write_buffer=app_buffer)
            else:
                data, _, _ = yield from nfs.read(fh, offset, rec,
                                                 read_buffer=app_buffer)
                if len(data) != rec:
                    raise AssertionError(
                        f"short read: {len(data)} != {rec} at offset {offset}"
                    )
            recorder.record(sim.now - t0)

    def phase(name: str) -> Generator:
        procs = [
            sim.process(io_thread(mount, fh, name), name=f"iozone.{name}")
            for mount, fh in handles
        ]
        yield AllOf(sim, procs)

    # -- write phase -----------------------------------------------------
    cluster.reset_utilization_windows()
    t0 = sim.now
    cluster.run(phase("write"))
    write_elapsed = sim.now - t0
    client_cpu_write = cluster.client_cpu_utilization()

    if params.sync_between_phases:
        def sync_all() -> Generator:
            for mount, fh in handles:
                yield from mount.nfs.commit(fh)

        cluster.run(sync_all())

    # -- read phase (barriered, like iozone -t) ----------------------------
    cluster.reset_utilization_windows()
    t0 = sim.now
    cluster.run(phase("read"))
    read_elapsed = sim.now - t0
    client_cpu_read = cluster.client_cpu_utilization()
    server_cpu_read = cluster.server_cpu_utilization()

    return IozoneResult(
        write_mb_s=bytes_per_phase / write_elapsed if write_elapsed else 0.0,
        read_mb_s=bytes_per_phase / read_elapsed if read_elapsed else 0.0,
        write_elapsed_us=write_elapsed,
        read_elapsed_us=read_elapsed,
        bytes_per_phase=bytes_per_phase,
        client_cpu_read=client_cpu_read,
        client_cpu_write=client_cpu_write,
        server_cpu_read=server_cpu_read,
        read_latency=latencies["read"].summarize(),
        write_latency=latencies["write"].summarize(),
    )
