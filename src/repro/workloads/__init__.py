"""Workload generators: the benchmarks of §5.

:mod:`repro.workloads.iozone` reproduces the IOzone multi-threaded
sequential write/read runs (record-size sweeps, direct I/O, per-thread
files) behind Figs 5–7, 9 and 10; :mod:`repro.workloads.filebench`
reproduces the FileBench OLTP personality behind Fig 8;
:mod:`repro.workloads.replay` records any traced run into a compact
op-mix trace and plays it back deterministically.
"""

from repro.workloads.iozone import IozoneParams, IozoneResult, run_iozone
from repro.workloads.filebench import OltpParams, OltpResult, run_oltp
from repro.workloads.postmark import PostmarkParams, PostmarkResult, run_postmark
from repro.workloads.replay import (
    OpTrace,
    ReplayParams,
    ReplayResult,
    record_trace,
    run_replay,
)

__all__ = [
    "IozoneParams",
    "IozoneResult",
    "OltpParams",
    "OltpResult",
    "OpTrace",
    "PostmarkParams",
    "PostmarkResult",
    "ReplayParams",
    "ReplayResult",
    "record_trace",
    "run_postmark",
    "run_iozone",
    "run_oltp",
    "run_replay",
]
