"""Zero-copy payload descriptors for the simulated data plane.

The paper's whole argument is that a transport should move *data* with
descriptors (steering tags, chunk lists) and touch bytes only at the
edges.  The simulator takes the same stance about itself: NFS READ and
WRITE payloads travel as :class:`Payload` descriptors — a run-list of
either real ``bytes`` or *virtual tile runs* ``(pattern, offset,
length)`` whose byte ``i`` is ``pattern[(offset + i) % len(pattern)]``
— so marshalling, page-cache insertion and RDMA scatter/gather never
materialise or copy payload bytes on the host.  Simulated copy costs
(``cpu.copy``) are charged exactly as before from ``len(payload)``;
only the *host-side* byte shuffling disappears.

A ``Payload`` behaves like an immutable byte string for everything the
data plane needs: ``len()``, slicing (O(runs), zero-copy), ``+`` /
:meth:`concat` (O(runs)), equality against ``bytes`` or another
payload, and lazy :meth:`tobytes` for the few edges that genuinely
need octets (inline RPC headers, test assertions).

Invariant (the "slice law" the property tests pin down)::

    p[i:j].tobytes() == p.tobytes()[i:j]
"""

from __future__ import annotations

from typing import Iterable, Union

__all__ = ["Payload", "PayloadLike", "as_payload", "join_parts"]

PayloadLike = Union[bytes, bytearray, memoryview, "Payload"]

#: Merge adjacent real-byte runs only below this size: merging copies,
#: so it must stay cheap; above it, keeping two runs is the zero-copy
#: move.
_MERGE_BYTES = 512

#: Run tags. A run is ``(_BYTES, data)`` with ``data`` bytes-like, or
#: ``(_TILE, pattern, offset, length)`` with ``offset`` already reduced
#: modulo ``len(pattern)``.
_BYTES = 0
_TILE = 1

_ZERO_PATTERN = b"\x00"


def _tile_bytes(pattern: bytes, offset: int, length: int) -> bytes:
    """Materialise one tile run."""
    if pattern == _ZERO_PATTERN:
        return bytes(length)
    plen = len(pattern)
    offset %= plen
    reps = (offset + length + plen - 1) // plen
    return bytes((pattern * reps)[offset:offset + length])


class Payload:
    """Immutable byte-string stand-in backed by a run list."""

    __slots__ = ("_runs", "_length")

    def __init__(self, runs: Iterable[tuple] = ()):
        merged: list[tuple] = []
        length = 0
        for run in runs:
            if run[0] == _TILE:
                _, pattern, offset, nbytes = run
                if nbytes <= 0:
                    continue
                plen = len(pattern)
                offset %= plen
                if merged and merged[-1][0] == _TILE:
                    _, lp, loff, llen = merged[-1]
                    if lp == pattern and (loff + llen) % plen == offset:
                        merged[-1] = (_TILE, pattern, loff, llen + nbytes)
                        length += nbytes
                        continue
                merged.append((_TILE, pattern, offset, nbytes))
                length += nbytes
            else:
                data = run[1]
                n = len(data)
                if n == 0:
                    continue
                if (merged and merged[-1][0] == _BYTES
                        and len(merged[-1][1]) + n <= _MERGE_BYTES):
                    merged[-1] = (_BYTES, bytes(merged[-1][1]) + bytes(data))
                else:
                    merged.append((_BYTES, data))
                length += n
        self._runs = tuple(merged)
        self._length = length

    # ------------------------------------------------------------ build
    @classmethod
    def zeros(cls, length: int) -> "Payload":
        """A hole: ``length`` zero bytes, O(1) storage."""
        if length <= 0:
            return _EMPTY
        return cls(((_TILE, _ZERO_PATTERN, 0, length),))

    @classmethod
    def tile(cls, pattern: PayloadLike, length: int, offset: int = 0) -> "Payload":
        """``length`` bytes of ``pattern`` repeated, starting at ``offset``."""
        pattern = bytes(pattern)
        if not pattern:
            raise ValueError("tile pattern must be non-empty")
        if length <= 0:
            return _EMPTY
        if not any(pattern):
            return cls.zeros(length)
        return cls(((_TILE, pattern, offset, length),))

    @classmethod
    def wrap(cls, data: PayloadLike) -> "Payload":
        """View ``data`` as a Payload without copying it."""
        if isinstance(data, Payload):
            return data
        if isinstance(data, bytearray):
            data = bytes(data)      # freeze: payloads are immutable
        if len(data) == 0:
            return _EMPTY
        return cls(((_BYTES, data),))

    @classmethod
    def concat(cls, parts: Iterable[PayloadLike]) -> "Payload":
        runs: list[tuple] = []
        for part in parts:
            if isinstance(part, Payload):
                runs.extend(part._runs)
            elif len(part):
                if isinstance(part, bytearray):
                    part = bytes(part)
                runs.append((_BYTES, part))
        return cls(runs)

    # ------------------------------------------------------------ sizes
    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    @property
    def nruns(self) -> int:
        return len(self._runs)

    @property
    def resident_bytes(self) -> int:
        """Host bytes actually held (real runs only) — the zero-copy score."""
        return sum(len(r[1]) for r in self._runs if r[0] == _BYTES)

    def is_zeros(self) -> bool:
        """True iff every byte is zero (O(real bytes), no materialisation)."""
        for run in self._runs:
            if run[0] == _TILE:
                if any(run[1]):
                    return False
            elif any(run[1]):
                return False
        return True

    # ------------------------------------------------------------ views
    def slice(self, start: int, stop: int) -> "Payload":
        start = max(0, min(start, self._length))
        stop = max(start, min(stop, self._length))
        if start == 0 and stop == self._length:
            return self
        want = stop - start
        if want == 0:
            return _EMPTY
        runs: list[tuple] = []
        pos = 0
        for run in self._runs:
            rlen = run[3] if run[0] == _TILE else len(run[1])
            if pos + rlen <= start:
                pos += rlen
                continue
            lo = max(0, start - pos)
            hi = min(rlen, stop - pos)
            if run[0] == _TILE:
                runs.append((_TILE, run[1], run[2] + lo, hi - lo))
            else:
                runs.append((_BYTES, run[1][lo:hi]))
            pos += rlen
            if pos >= stop:
                break
        return Payload(runs)

    def __getitem__(self, item):
        if isinstance(item, slice):
            start, stop, step = item.indices(self._length)
            if step != 1:
                raise ValueError("Payload slices must be contiguous (step 1)")
            return self.slice(start, stop)
        if item < 0:
            item += self._length
        if not 0 <= item < self._length:
            raise IndexError("Payload index out of range")
        pos = 0
        for run in self._runs:
            rlen = run[3] if run[0] == _TILE else len(run[1])
            if item < pos + rlen:
                off = item - pos
                if run[0] == _TILE:
                    return run[1][(run[2] + off) % len(run[1])]
                return run[1][off]
            pos += rlen
        raise IndexError("Payload index out of range")   # pragma: no cover

    def __add__(self, other: PayloadLike) -> "Payload":
        return Payload.concat((self, other))

    def __radd__(self, other: PayloadLike) -> "Payload":
        return Payload.concat((other, self))

    # ------------------------------------------------------------ bytes
    def tobytes(self) -> bytes:
        """Materialise — the only O(length) operation; edges only."""
        if not self._runs:
            return b""
        if len(self._runs) == 1:
            run = self._runs[0]
            if run[0] == _BYTES:
                return bytes(run[1])
            return _tile_bytes(run[1], run[2], run[3])
        return b"".join(
            bytes(r[1]) if r[0] == _BYTES else _tile_bytes(r[1], r[2], r[3])
            for r in self._runs
        )

    __bytes__ = tobytes

    def key(self) -> tuple:
        """Hashable content token (for page interning)."""
        return tuple(
            (r[0], bytes(r[1])) if r[0] == _BYTES else (r[0], r[1], r[2], r[3])
            for r in self._runs
        )

    def __eq__(self, other) -> bool:
        if isinstance(other, Payload):
            if self._length != other._length:
                return False
            if self._runs == other._runs:
                return True
            return self.tobytes() == other.tobytes()
        if isinstance(other, (bytes, bytearray, memoryview)):
            if self._length != len(other):
                return False
            return self.tobytes() == bytes(other)
        return NotImplemented

    __hash__ = None  # content hashing would defeat laziness; use .key()

    def __repr__(self) -> str:   # pragma: no cover - debugging aid
        return f"Payload(len={self._length}, runs={len(self._runs)})"


_EMPTY = Payload()


def as_payload(data: PayloadLike) -> Payload:
    return Payload.wrap(data)


def join_parts(parts: list) -> PayloadLike:
    """Join byte-plane fragments: stays ``bytes`` when every part is
    real bytes (header paths), lifts to :class:`Payload` otherwise."""
    parts = [p for p in parts if len(p)]
    if not parts:
        return b""
    if len(parts) == 1:
        return parts[0]
    if all(isinstance(p, (bytes, bytearray, memoryview)) for p in parts):
        return b"".join(bytes(p) for p in parts)
    return Payload.concat(parts)
