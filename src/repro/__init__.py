"""repro — NFS over RDMA for Security, Performance and Scalability.

A full reproduction of the ICPP 2007 paper by Noronha, Chai, Talpey and
Panda as an executable system: the Read-Write and Read-Read RPC/RDMA
transport designs, four memory-registration strategies, an NFSv3
client/server, and every substrate they need (a byte-real simulated
InfiniBand verbs layer, TCP/IPoIB/GigE, file systems, disks, page
caches) on a deterministic discrete-event kernel.

Start with the public facade, :mod:`repro.api`::

    from repro.api import ClusterConfig, connect
    nfs = connect(ClusterConfig.rdma_rw(strategy="cache")).mount()
    fh, _ = nfs.create(nfs.root, "hello.dat")

or from a shell: ``python -m repro list``.

See README.md for the architecture map, DESIGN.md for the hardware
substitution argument, and EXPERIMENTS.md for paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
