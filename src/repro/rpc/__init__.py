"""ONC RPC: XDR codec, call/reply messages, dispatch and transports.

NFS speaks Sun RPC; the paper's contribution is an RPC *transport*
(RPC/RDMA), so the RPC layer here is transport-agnostic: the NFS client
issues :class:`RpcCall` objects through any :class:`RpcClientTransport`
(TCP in :mod:`repro.rpc.tcp_transport`, the two RDMA designs in
:mod:`repro.core`), and the server dispatches them to registered
program handlers through the Fig 1 task-queue state machine.

Bulk data travels in explicit side-channels on the call/reply objects
(``write_payload`` / ``read_payload``) plus *hints* about expected reply
sizes — exactly the information the Read-Write design needs from the
upper layer to advertise write/reply chunks in the RPC call.
"""

from repro.rpc.xdr import XdrDecoder, XdrEncoder, XdrError
from repro.rpc.msg import (
    MSG_ACCEPTED,
    MSG_DENIED,
    RpcCall,
    RpcError,
    RpcReply,
)
from repro.rpc.svc import RpcProgramHandler, RpcServer
from repro.rpc.transport import RpcClientTransport, RpcServerTransport
from repro.rpc.tcp_transport import TcpRpcClient, TcpRpcServerTransport

__all__ = [
    "MSG_ACCEPTED",
    "MSG_DENIED",
    "RpcCall",
    "RpcClientTransport",
    "RpcError",
    "RpcProgramHandler",
    "RpcReply",
    "RpcServer",
    "RpcServerTransport",
    "TcpRpcClient",
    "TcpRpcServerTransport",
    "XdrDecoder",
    "XdrEncoder",
    "XdrError",
]
