"""Per-lane accounting for multiplexed connections (DESIGN.md §15).

When QP sharing is on (:mod:`repro.ib.mux`), one RC connection carries
many mounts as *virtual lanes*.  The connection-level credit window —
:class:`~repro.core.credits.CreditManager` on the client, the SRQ-aware
:class:`~repro.core.flowcontrol.SrqCreditPolicy` on the server — stays
the hard safety cap (receives never overrun); what it cannot provide is
*fairness between lanes*, and it cannot audit that each lane's traffic
stays FIFO on the shared queue pair.  The :class:`LaneLedger` is the
server-side half of both jobs: it tracks per-lane sequence numbers
(RC delivers in order, and a lane never migrates between QPs, so the
sequence observed at the server must be non-decreasing — any regression
is a demux bug and increments :attr:`~LaneLedger.order_violations`),
per-lane in-flight counts, and carves the connection grant into equal
per-lane slices echoed in version-2 reply headers.
"""

from __future__ import annotations

from repro.sim import Counter

__all__ = ["LaneLedger", "lane_grant"]


def lane_grant(connection_grant: int, active_lanes: int) -> int:
    """Equal slice of the connection window, never starving a lane."""
    return max(1, connection_grant // max(1, active_lanes))


class LaneLedger:
    """Server-side per-lane bookkeeping over one shared connection."""

    def __init__(self, name: str = "lanes"):
        self.name = name
        #: sequence regressions seen on any lane — must stay zero.
        self.order_violations = Counter(f"{name}.order_violations")
        #: total lane-tagged calls observed.
        self.calls = Counter(f"{name}.calls")
        #: lane id -> highest sequence number seen.
        self._last_seq: dict[int, int] = {}
        #: lane id -> calls received minus replies sent.
        self._inflight: dict[int, int] = {}

    def on_call(self, lane: int, seq: int) -> None:
        """Record an arriving call; flag out-of-order lane sequences.

        Retransmissions legitimately replay an already-seen sequence
        number (equal is fine); only a strictly *older* sequence after a
        newer one means the shared queue reordered a lane.
        """
        last = self._last_seq.get(lane)
        if last is not None and seq < last:
            self.order_violations.add()
        else:
            self._last_seq[lane] = seq
        self._inflight[lane] = self._inflight.get(lane, 0) + 1
        self.calls.add()

    def on_reply(self, lane: int) -> None:
        pending = self._inflight.get(lane, 0)
        if pending > 0:
            self._inflight[lane] = pending - 1

    @property
    def active_lanes(self) -> int:
        return len(self._last_seq)

    def inflight(self, lane: int) -> int:
        return self._inflight.get(lane, 0)

    def grant_for(self, lane: int, connection_grant: int) -> int:
        """The per-lane credit slice advertised in a version-2 reply."""
        return lane_grant(connection_grant, self.active_lanes)
