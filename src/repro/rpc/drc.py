"""Duplicate request cache: exactly-once semantics for retried RPCs.

NFS over TCP/UDP retransmits calls the client believes lost; without a
DRC the server would re-execute non-idempotent procedures (CREATE,
REMOVE, RENAME...) and return spurious errors.  The DRC remembers, per
(xid, program, procedure), whether a request is in progress (duplicate
dropped — the original's reply is coming) or completed (cached reply
replayed without re-execution).

Entries age out LRU beyond ``max_entries``, the classic bounded-DRC
design (and its classic caveat: a retransmit older than the cache
horizon can re-execute; tests pin the horizon behavior).
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from typing import Optional, Union

from repro.rpc.msg import RpcReply
from repro.sim import Counter

__all__ = ["DrcDecision", "DuplicateRequestCache"]

#: Cache key: (xid, prog, proc).
_Key = tuple[int, int, int]


class DrcDecision(enum.Enum):
    NEW = "new"                  # never seen: execute it
    IN_PROGRESS = "in-progress"  # duplicate of a running request: drop
    REPLAY = "replay"            # completed: replay the cached reply


class _InProgress:
    __slots__ = ()


_IN_PROGRESS = _InProgress()


class DuplicateRequestCache:
    """Bounded LRU of request outcomes."""

    def __init__(self, max_entries: int = 1024, name: str = "drc"):
        if max_entries < 1:
            raise ValueError("DRC needs at least one entry")
        self.max_entries = max_entries
        self.name = name
        self._entries: OrderedDict[_Key, Union[_InProgress, RpcReply]] = OrderedDict()
        self.replays = Counter(f"{name}.replays")
        self.drops = Counter(f"{name}.drops")
        self.inserts = Counter(f"{name}.inserts")

    def check(self, xid: int, prog: int, proc: int) -> tuple[DrcDecision, Optional[RpcReply]]:
        """Classify an arriving call; REPLAY includes the cached reply."""
        key = (xid, prog, proc)
        entry = self._entries.get(key)
        if entry is None:
            return DrcDecision.NEW, None
        self._entries.move_to_end(key)
        if isinstance(entry, _InProgress):
            self.drops.add()
            return DrcDecision.IN_PROGRESS, None
        self.replays.add()
        return DrcDecision.REPLAY, entry

    def begin(self, xid: int, prog: int, proc: int) -> None:
        """Record a request as executing."""
        key = (xid, prog, proc)
        self._entries[key] = _IN_PROGRESS
        self._entries.move_to_end(key)
        self.inserts.add()
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def complete(self, xid: int, prog: int, proc: int, reply: RpcReply) -> None:
        """Record the outcome for future replays."""
        key = (xid, prog, proc)
        if key in self._entries:
            self._entries[key] = reply

    def __len__(self) -> int:
        return len(self._entries)
