"""Duplicate request cache: exactly-once semantics for retried RPCs.

NFS over TCP/UDP retransmits calls the client believes lost; without a
DRC the server would re-execute non-idempotent procedures (CREATE,
REMOVE, RENAME...) and return spurious errors.  The DRC remembers, per
(xid, program, procedure), whether a request is in progress (duplicate
dropped — the original's reply is coming) or completed (cached reply
replayed without re-execution).

A duplicate of an *in-progress* request may additionally park its reply
path as a waiter: when the original completes, the cached reply is
replayed through every parked responder.  This covers the reconnect
race — the original connection died mid-execution, the client retried
over a fresh one, and the retry's responder is the only live path back.

Entries age out LRU beyond ``max_entries``, the classic bounded-DRC
design (and its classic caveat: a retransmit older than the cache
horizon can re-execute; tests pin the horizon behavior).
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from typing import Optional, Union

from repro.rpc.msg import RpcReply
from repro.sim import Counter

__all__ = ["DrcDecision", "DuplicateRequestCache"]

#: Cache key: (xid, prog, proc).
_Key = tuple[int, int, int]


class DrcDecision(enum.Enum):
    NEW = "new"                  # never seen: execute it
    IN_PROGRESS = "in-progress"  # duplicate of a running request: drop
    REPLAY = "replay"            # completed: replay the cached reply


class _InProgress:
    """Marker for an executing request, plus parked duplicate responders."""

    __slots__ = ("waiters",)

    def __init__(self):
        self.waiters: list = []


class DuplicateRequestCache:
    """Bounded LRU of request outcomes."""

    def __init__(self, max_entries: int = 1024, name: str = "drc"):
        if max_entries < 1:
            raise ValueError("DRC needs at least one entry")
        self.max_entries = max_entries
        self.name = name
        self._entries: OrderedDict[_Key, Union[_InProgress, RpcReply]] = OrderedDict()
        self.replays = Counter(f"{name}.replays")
        self.drops = Counter(f"{name}.drops")
        self.inserts = Counter(f"{name}.inserts")

    def check(self, xid: int, prog: int, proc: int) -> tuple[DrcDecision, Optional[RpcReply]]:
        """Classify an arriving call; REPLAY includes the cached reply."""
        key = (xid, prog, proc)
        entry = self._entries.get(key)
        if entry is None:
            return DrcDecision.NEW, None
        self._entries.move_to_end(key)
        if isinstance(entry, _InProgress):
            self.drops.add()
            return DrcDecision.IN_PROGRESS, None
        self.replays.add()
        return DrcDecision.REPLAY, entry

    def begin(self, xid: int, prog: int, proc: int) -> None:
        """Record a request as executing."""
        key = (xid, prog, proc)
        self._entries[key] = _InProgress()
        self._entries.move_to_end(key)
        self.inserts.add()
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def add_waiter(self, xid: int, prog: int, proc: int, respond) -> bool:
        """Park a duplicate's responder until the original completes.

        Returns False if the entry is not (or no longer) in progress —
        the caller should re-check instead of parking.
        """
        entry = self._entries.get((xid, prog, proc))
        if not isinstance(entry, _InProgress):
            return False
        entry.waiters.append(respond)
        return True

    def complete(self, xid: int, prog: int, proc: int, reply: RpcReply) -> list:
        """Record the outcome; returns responders parked by duplicates."""
        key = (xid, prog, proc)
        entry = self._entries.get(key)
        if key in self._entries:
            self._entries[key] = reply
        return entry.waiters if isinstance(entry, _InProgress) else []

    def __len__(self) -> int:
        return len(self._entries)
