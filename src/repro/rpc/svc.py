"""Server-side RPC dispatch: the Fig 1 task-queue state machine.

Incoming calls are queued to a pool of NFS daemon threads ("Server task
queue" in the paper's architecture figure).  Each worker decodes the
call, runs the registered program handler (which descends into the
file-system substrate), then hands the reply back to the transport's
``respond`` continuation — the point at which the Read-Write design
registers reply buffers and issues RDMA Writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional

from repro.osmodel import CPU, KernelThreadPool
from repro.rpc.drc import DrcDecision, DuplicateRequestCache
from repro.rpc.msg import RpcCall, RpcError, RpcReply
from repro.sim import Counter, Simulator

__all__ = ["RpcProgramHandler", "RpcServer", "RpcServerCosts"]

#: A program handler: a generator taking the call and returning RpcReply.
RpcProgramHandler = Callable[[RpcCall], Generator]


@dataclass(frozen=True)
class RpcServerCosts:
    """Per-operation CPU demands of the RPC layer itself."""

    decode_cpu_us: float = 3.0
    encode_cpu_us: float = 3.0


class RpcServer:
    """Dispatches RPC calls to program handlers on a kernel thread pool."""

    def __init__(
        self,
        sim: Simulator,
        cpu: CPU,
        nthreads: int = 8,
        costs: Optional[RpcServerCosts] = None,
        drc: Optional[DuplicateRequestCache] = None,
        name: str = "rpcsvc",
        max_queue: Optional[int] = None,
    ):
        self.sim = sim
        self.cpu = cpu
        self.costs = costs or RpcServerCosts()
        self.drc = drc
        self.name = name
        self._programs: dict[tuple[int, int], RpcProgramHandler] = {}
        self.pool = KernelThreadPool(sim, nthreads, self._handle,
                                     name=f"{name}.pool", max_queue=max_queue)
        self.calls_served = Counter(f"{name}.calls")
        self.calls_failed = Counter(f"{name}.failed")
        #: security policy hook; failed dispatches count against the
        #: originating client's misbehavior score when set.
        self.security_policy = None

    def register_program(self, prog: int, vers: int, handler: RpcProgramHandler) -> None:
        key = (prog, vers)
        if key in self._programs:
            raise ValueError(f"program {prog}v{vers} already registered")
        self._programs[key] = handler

    def submit(self, call: RpcCall, respond: Callable[[RpcReply], Generator]) -> DrcDecision:
        """Queue one call; ``respond`` is the transport's reply path.

        With a DRC configured, duplicates of in-flight requests park
        their responder until the original completes (then the cached
        reply replays through it), and already-completed requests replay
        immediately — exactly-once semantics under retransmission.
        Returns the DRC classification so transports can account for
        duplicates; without a DRC every call is ``NEW``.
        """
        decision = self._drc_precheck(call, respond)
        if decision is not None:
            return decision
        self.pool.submit(self._task(call, respond))
        return DrcDecision.NEW

    def submit_process(self, call: RpcCall,
                       respond: Callable[[RpcReply], Generator]) -> Generator:
        """Process: like :meth:`submit`, but a full bounded run queue
        *blocks* the submitter instead of raising — the transport
        receive path's backpressure point.  Duplicates bypass the queue
        exactly as in :meth:`submit` (they consume no slot).
        """
        decision = self._drc_precheck(call, respond)
        if decision is not None:
            return decision
        yield from self.pool.reserve_slot()
        self.pool.submit(self._task(call, respond), reserved=True)
        return DrcDecision.NEW

    def _drc_precheck(self, call: RpcCall, respond) -> Optional[DrcDecision]:
        """Duplicate handling shared by both submit paths; None = NEW.

        With a DRC, duplicates of in-flight requests park their
        responder until the original completes and already-completed
        requests replay immediately — exactly-once under retransmission.
        """
        if self.drc is None:
            return None
        decision, cached = self.drc.check(call.xid, call.prog, call.proc)
        if decision is DrcDecision.IN_PROGRESS:
            if not self.drc.add_waiter(call.xid, call.prog, call.proc, respond):
                # Raced with completion: replay through this responder.
                _, cached = self.drc.check(call.xid, call.prog, call.proc)
                self.sim.process(respond(cached), name=f"{self.name}.replay")
            return decision
        if decision is DrcDecision.REPLAY:
            self.sim.process(respond(cached), name=f"{self.name}.replay")
            return decision
        san = self.sim.sanitizer
        if san is not None:
            san.on_drc_begin(self.drc, call.xid, call.prog, call.proc)
        self.drc.begin(call.xid, call.prog, call.proc)
        return None

    def _task(self, call: RpcCall, respond) -> tuple:
        """Build one queue entry, opening its queue-residency span."""
        telemetry = self.sim.telemetry
        tracer = telemetry.tracer if telemetry is not None else None
        qspan = None
        if tracer is not None:
            qspan = tracer.begin("rpc.queue", "server", "server", "svc.queue",
                                 parent=tracer.xid_span(call.xid), xid=call.xid)
        return call, respond, qspan

    @property
    def backlog(self) -> int:
        return self.pool.backlog

    def _record_bad_call(self, call: RpcCall) -> None:
        if self.security_policy is not None:
            self.security_policy.record_bad_call(
                getattr(call, "client_id", None))

    def _handle(self, worker: int, task) -> Generator:
        call, respond, qspan = task
        if qspan is not None:
            qspan.end()
        telemetry = self.sim.telemetry
        tracer = telemetry.tracer if telemetry is not None else None
        if tracer is None:
            yield from self._handle_inner(call, respond)
            return
        span = tracer.begin("rpc.dispatch", "server", "server",
                            f"svc.w{worker}", parent=tracer.xid_span(call.xid),
                            xid=call.xid, proc=call.proc)
        prev = tracer.push_task(span)
        try:
            yield from self._handle_inner(call, respond)
        finally:
            tracer.pop_task(prev)
            span.end()

    def _handle_inner(self, call: RpcCall, respond) -> Generator:
        yield from self.cpu.consume(self.costs.decode_cpu_us)
        handler = self._programs.get((call.prog, call.vers))
        if handler is None:
            self.calls_failed.add()
            self._record_bad_call(call)
            reply = RpcReply(xid=call.xid, stat=1, header=b"")  # PROG_UNAVAIL-ish
        else:
            try:
                reply = yield from handler(call)
            except RpcError:
                self.calls_failed.add()
                self._record_bad_call(call)
                reply = RpcReply(xid=call.xid, stat=1, header=b"")
        if not isinstance(reply, RpcReply):
            raise TypeError(
                f"handler for prog {call.prog} returned {type(reply).__name__}, "
                "expected RpcReply"
            )
        reply.trace_id = call.trace_id
        yield from self.cpu.consume(self.costs.encode_cpu_us)
        if self.drc is not None:
            waiters = self.drc.complete(call.xid, call.prog, call.proc, reply)
            for parked in waiters:
                # Duplicates that arrived mid-execution (possibly over a
                # fresh connection after a reconnect) get the same reply.
                self.sim.process(parked(reply), name=f"{self.name}.replay")
        yield from respond(reply)
        self.calls_served.add()
