"""Transport interfaces shared by TCP and the two RPC/RDMA designs."""

from __future__ import annotations

import abc
from typing import Generator

from repro.errors import TransportError
from repro.rpc.msg import RpcCall, RpcReply
from repro.rpc.svc import RpcServer

__all__ = ["RpcClientTransport", "RpcServerTransport", "RpcTimeout"]


class RpcTimeout(TransportError):
    """The reply never arrived within the caller's patience."""


class RpcClientTransport(abc.ABC):
    """Client half: issue a call, produce the matching reply."""

    @abc.abstractmethod
    def call(self, call: RpcCall) -> Generator:
        """Process: send ``call``, wait for and return the RpcReply.

        Implementations must preserve the bulk-data contract: the
        reply's ``read_payload`` carries any bulk data the server
        returned, regardless of how it moved on the wire.
        """


class RpcServerTransport(abc.ABC):
    """Server half: receive calls, feed the dispatcher, return replies."""

    @abc.abstractmethod
    def attach(self, server: RpcServer) -> None:
        """Bind to a dispatcher and start the receive path."""
