"""XDR (RFC 4506) encoding — the wire language of ONC RPC and NFS.

Only the subset NFS v3 and RPC/RDMA need: 32/64-bit (un)signed ints,
booleans, variable-length opaques/strings (padded to 4-byte alignment)
and counted arrays.  Everything the stack puts on the simulated wire
round-trips through these real bytes, so header sizes — and therefore
inline-threshold decisions in the RPC/RDMA transport — are genuine.
"""

from __future__ import annotations

import struct
from typing import Callable, TypeVar

__all__ = ["XdrDecoder", "XdrEncoder", "XdrError"]

T = TypeVar("T")

_U32 = struct.Struct(">I")
_I32 = struct.Struct(">i")
_U64 = struct.Struct(">Q")
_I64 = struct.Struct(">q")


class XdrError(ValueError):
    """Malformed XDR data or out-of-range value."""


def _pad(n: int) -> int:
    return (4 - n % 4) % 4


#: Shared padding table: XDR alignment needs at most 3 zero bytes, so
#: index by ``length & 3`` instead of allocating ``b"\x00" * pad`` on
#: every opaque (a measurable per-call allocation in the seed profile).
_PADDING = (b"", b"\x00\x00\x00", b"\x00\x00", b"\x00")


class XdrEncoder:
    """Append-only XDR byte builder."""

    def __init__(self):
        self._parts: list[bytes] = []
        self._length = 0

    def _push(self, raw: bytes) -> "XdrEncoder":
        self._parts.append(raw)
        self._length += len(raw)
        return self

    # -- scalars -----------------------------------------------------------
    def u32(self, value: int) -> "XdrEncoder":
        if not 0 <= value < 2**32:
            raise XdrError(f"u32 out of range: {value}")
        return self._push(_U32.pack(value))

    def i32(self, value: int) -> "XdrEncoder":
        if not -(2**31) <= value < 2**31:
            raise XdrError(f"i32 out of range: {value}")
        return self._push(_I32.pack(value))

    def u64(self, value: int) -> "XdrEncoder":
        if not 0 <= value < 2**64:
            raise XdrError(f"u64 out of range: {value}")
        return self._push(_U64.pack(value))

    def i64(self, value: int) -> "XdrEncoder":
        if not -(2**63) <= value < 2**63:
            raise XdrError(f"i64 out of range: {value}")
        return self._push(_I64.pack(value))

    def boolean(self, value: bool) -> "XdrEncoder":
        return self.u32(1 if value else 0)

    # -- composites -----------------------------------------------------------
    def opaque(self, data: bytes) -> "XdrEncoder":
        """Variable-length opaque: length prefix + data + pad."""
        n = len(data)
        self.u32(n)
        self._push(data if isinstance(data, bytes) else bytes(data))
        pad = _PADDING[n & 3]
        return self._push(pad) if pad else self

    def fixed_opaque(self, data: bytes, size: int) -> "XdrEncoder":
        if len(data) != size:
            raise XdrError(f"fixed opaque of {len(data)} bytes, expected {size}")
        self._push(data if isinstance(data, bytes) else bytes(data))
        pad = _PADDING[size & 3]
        return self._push(pad) if pad else self

    def string(self, text: str) -> "XdrEncoder":
        return self.opaque(text.encode("utf-8"))

    def array(self, items, encode_item: Callable[["XdrEncoder", T], None]) -> "XdrEncoder":
        """Counted array: u32 length then each element."""
        self.u32(len(items))
        for item in items:
            encode_item(self, item)
        return self

    def optional(self, value, encode_value: Callable[["XdrEncoder", T], None]) -> "XdrEncoder":
        """XDR optional-data (``*`` in XDR language): bool then value."""
        if value is None:
            return self.boolean(False)
        self.boolean(True)
        encode_value(self, value)
        return self

    def raw(self, data: bytes) -> "XdrEncoder":
        """Splice pre-encoded XDR (must already be 4-byte aligned)."""
        if len(data) % 4:
            raise XdrError("raw splice not 4-byte aligned")
        return self._push(data)

    # -- output -----------------------------------------------------------
    def take(self) -> bytes:
        return b"".join(self._parts)

    def __len__(self) -> int:
        return self._length


class XdrDecoder:
    """Cursor-based XDR reader with strict bounds checking."""

    def __init__(self, data: bytes):
        self._data = bytes(data)
        self._pos = 0

    def _pull(self, n: int) -> bytes:
        if self._pos + n > len(self._data):
            raise XdrError(
                f"truncated XDR: wanted {n} bytes at offset {self._pos}, "
                f"have {len(self._data) - self._pos}"
            )
        out = self._data[self._pos : self._pos + n]
        self._pos += n
        return out

    # -- scalars -----------------------------------------------------------
    def u32(self) -> int:
        return _U32.unpack(self._pull(4))[0]

    def i32(self) -> int:
        return _I32.unpack(self._pull(4))[0]

    def u64(self) -> int:
        return _U64.unpack(self._pull(8))[0]

    def i64(self) -> int:
        return _I64.unpack(self._pull(8))[0]

    def boolean(self) -> bool:
        value = self.u32()
        if value not in (0, 1):
            raise XdrError(f"boolean encoded as {value}")
        return bool(value)

    # -- composites -----------------------------------------------------------
    def opaque(self) -> bytes:
        n = self.u32()
        data = self._pull(n)
        self._pull(_pad(n))
        return data

    def fixed_opaque(self, size: int) -> bytes:
        data = self._pull(size)
        self._pull(_pad(size))
        return data

    def string(self) -> str:
        return self.opaque().decode("utf-8")

    def array(self, decode_item: Callable[["XdrDecoder"], T], max_items: int = 1 << 20) -> list[T]:
        n = self.u32()
        if n > max_items:
            raise XdrError(f"array of {n} items exceeds cap {max_items}")
        return [decode_item(self) for _ in range(n)]

    def optional(self, decode_value: Callable[["XdrDecoder"], T]):
        return decode_value(self) if self.boolean() else None

    def remainder(self) -> bytes:
        out = self._data[self._pos :]
        self._pos = len(self._data)
        return out

    @property
    def consumed(self) -> int:
        return self._pos

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def done(self) -> None:
        """Assert the message was fully consumed (catches codec drift)."""
        if self.remaining:
            raise XdrError(f"{self.remaining} trailing bytes after decode")
