"""ONC RPC call/reply messages (RFC 5531, trimmed to what NFS needs).

``RpcCall``/``RpcReply`` carry the XDR-encoded procedure header in
``header`` and bulk data out-of-band in ``write_payload`` (client →
server, e.g. NFS WRITE data) and ``read_payload`` (server → client,
e.g. NFS READ data).  On TCP the transport just concatenates them; on
RPC/RDMA the transport moves them via chunks — which is the entire
subject of the paper.

The client also passes *hints*:

``read_len_hint``
    Upper bound on the reply's bulk data (the NFS READ ``count``).  The
    Read-Write design uses it to size the write chunk advertised in the
    call.
``reply_len_hint``
    Upper bound on the reply *header* when it may exceed the inline
    threshold (READDIR/READLINK).  Sizes the reply chunk (RPC long
    reply).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.rpc.xdr import XdrDecoder, XdrEncoder

__all__ = [
    "MSG_ACCEPTED",
    "MSG_DENIED",
    "RpcCall",
    "RpcError",
    "RpcReply",
    "frame_message",
    "unframe_message",
]

_xids = itertools.count(0x10_0000)

RPC_VERSION = 2
CALL = 0
REPLY = 1
MSG_ACCEPTED = 0
MSG_DENIED = 1


class RpcError(Exception):
    """Protocol-level RPC failure (garbage args, prog unavailable...)."""


@dataclass
class RpcCall:
    """One RPC request."""

    prog: int
    vers: int
    proc: int
    header: bytes = b""
    write_payload: Optional[bytes] = None
    read_len_hint: int = 0
    reply_len_hint: int = 0
    #: Optional caller-owned, RDMA-addressable source holding
    #: ``write_payload`` — lets RDMA transports send zero-copy.
    write_buffer: Optional[object] = None
    #: Optional caller-owned destination for reply bulk data — the
    #: direct-I/O zero-copy READ path of the Read-Write design.
    read_buffer: Optional[object] = None
    xid: int = field(default_factory=lambda: next(_xids))
    #: Telemetry correlation handle, set by the transport when tracing
    #: is enabled.  Deliberately *not* encoded: real RPC has no such
    #: field, and adding wire bytes would change simulated timing.
    trace_id: Optional[int] = None
    #: Virtual lane on a multiplexed connection, set by
    #: :class:`repro.ib.mux.MuxLane` before handing the call to the
    #: shared channel.  Not encoded here — the RPC/RDMA *transport*
    #: header carries it (version 2), mirroring how the real protocol
    #: would extend rpcrdma1 rather than ONC RPC itself.
    lane: Optional[int] = None
    #: Per-lane send sequence number (see :attr:`lane`).
    lane_seq: int = 0

    def encode(self) -> bytes:
        """Wire encoding of the call *header* (bulk rides separately)."""
        enc = XdrEncoder()
        enc.u32(self.xid)
        enc.u32(CALL)
        enc.u32(RPC_VERSION)
        enc.u32(self.prog)
        enc.u32(self.vers)
        enc.u32(self.proc)
        # AUTH_NONE credential + verifier.
        enc.u32(0).opaque(b"")
        enc.u32(0).opaque(b"")
        enc.raw(_aligned(self.header))
        return enc.take()

    @classmethod
    def decode(cls, data: bytes, header_len: Optional[int] = None) -> "RpcCall":
        dec = XdrDecoder(data)
        xid = dec.u32()
        if dec.u32() != CALL:
            raise RpcError("not an RPC call")
        if dec.u32() != RPC_VERSION:
            raise RpcError("bad RPC version")
        prog, vers, proc = dec.u32(), dec.u32(), dec.u32()
        dec.u32(); dec.opaque()  # cred
        dec.u32(); dec.opaque()  # verf
        header = dec.remainder()
        call = cls(prog=prog, vers=vers, proc=proc, header=header, xid=xid)
        return call


@dataclass
class RpcReply:
    """One RPC response."""

    xid: int
    stat: int = MSG_ACCEPTED
    header: bytes = b""
    read_payload: Optional[bytes] = None
    #: Telemetry correlation handle (see :attr:`RpcCall.trace_id`).
    trace_id: Optional[int] = None

    def encode(self) -> bytes:
        enc = XdrEncoder()
        enc.u32(self.xid)
        enc.u32(REPLY)
        enc.u32(self.stat)
        enc.u32(0).opaque(b"")  # verifier
        enc.u32(0)              # accept stat SUCCESS
        enc.raw(_aligned(self.header))
        return enc.take()

    @classmethod
    def decode(cls, data: bytes) -> "RpcReply":
        dec = XdrDecoder(data)
        xid = dec.u32()
        if dec.u32() != REPLY:
            raise RpcError("not an RPC reply")
        stat = dec.u32()
        dec.u32(); dec.opaque()  # verifier
        accept = dec.u32()
        if stat == MSG_ACCEPTED and accept != 0:
            raise RpcError(f"RPC accepted with error status {accept}")
        return cls(xid=xid, stat=stat, header=dec.remainder())


def _aligned(data: bytes) -> bytes:
    """Pad arbitrary header bytes to XDR alignment for splicing."""
    pad = (4 - len(data) % 4) % 4
    return data + b"\x00" * pad if pad else data


import struct as _struct

from repro.payload import Payload

_FRAME_LEN = _struct.Struct(">I")


def frame_message(header: bytes, payload) -> "bytes | Payload":
    """``[u32 header_len][header][bulk]`` — the byte-count-equivalent
    stand-in for XDR-inline bulk encoding, shared by every transport.

    Headers are always real bytes; bulk may be a zero-copy
    :class:`~repro.payload.Payload`, in which case the framed message
    stays a payload descriptor (the simulated wire only needs its
    length) instead of materialising the bulk bytes.
    """
    prefix = _FRAME_LEN.pack(len(header)) + header
    if not payload:
        return prefix
    if isinstance(payload, Payload):
        return Payload.concat((prefix, payload))
    return prefix + payload


def unframe_message(message) -> tuple[bytes, "Optional[bytes | Payload]"]:
    """Inverse of :func:`frame_message`.

    The returned header is always materialised bytes (decoders index
    into it); the bulk payload keeps whatever representation it rode in
    with.
    """
    if len(message) < 4:
        raise RpcError("short RPC record")
    if isinstance(message, Payload):
        head = message[0:4].tobytes()
        (hlen,) = _FRAME_LEN.unpack(head)
        if 4 + hlen > len(message):
            raise RpcError("RPC record header overruns message")
        header = message[4:4 + hlen].tobytes()
        payload = message[4 + hlen:] or None
        return header, payload
    (hlen,) = _FRAME_LEN.unpack_from(message)
    if 4 + hlen > len(message):
        raise RpcError("RPC record header overruns message")
    header = message[4 : 4 + hlen]
    payload = message[4 + hlen :] or None
    return header, payload
