"""ONC RPC over TCP: the baseline transport the paper compares against.

Record framing: each RPC message on the wire is
``[u32 header_len][header][bulk payload]`` — byte-count-equivalent to
classic XDR-inline encoding (NFS WRITE data lives inside the args
opaque) while keeping the header/bulk split explicit, so the same NFS
layer runs over every transport.

All of TCP's per-byte copy and checksum CPU is charged inside
:class:`repro.tcpip.tcp.TcpConnection`; this module only adds XID
demultiplexing and the connection-per-client server loop.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.rpc.msg import RpcCall, RpcReply, frame_message, unframe_message
from repro.rpc.svc import RpcServer
from repro.rpc.transport import RpcClientTransport, RpcServerTransport, RpcTimeout
from repro.sim import AnyOf, Counter, Event
from repro.tcpip.tcp import TcpConnection, TcpEndpoint

__all__ = ["TcpRpcClient", "TcpRpcServerTransport"]

class TcpRpcClient(RpcClientTransport):
    """Client endpoint of RPC-over-TCP with XID demultiplexing."""

    def __init__(self, endpoint: TcpEndpoint, conn: TcpConnection,
                 retrans_timeout_us: Optional[float] = None,
                 max_retries: int = 5,
                 max_retrans_timeout_us: float = 60_000_000.0,
                 name: str = "rpc-tcp"):
        if max_retrans_timeout_us <= 0:
            raise ValueError("max retransmit timeout must be positive")
        self.sim = endpoint.sim
        self.endpoint = endpoint
        self.conn = conn
        self.retrans_timeout_us = retrans_timeout_us
        self.max_retries = max_retries
        #: backoff ceiling (RPC's classic 60 s major timeout): doubling
        #: stops here instead of growing without bound.
        self.max_retrans_timeout_us = max_retrans_timeout_us
        self.name = name
        # Telemetry process label: "client0.tcp" endpoint → "client0".
        self.node_name = endpoint.name.split(".")[0]
        self._pending: dict[int, Event] = {}
        self.calls_sent = Counter(f"{name}.calls")
        self.retransmissions = Counter(f"{name}.retrans")
        self.sim.process(self._receiver(), name=f"{name}.rx")

    def call(self, call: RpcCall) -> Generator:
        """Send the call; optionally retransmit with exponential backoff.

        Retransmissions reuse the XID, so the server's duplicate request
        cache (if configured) suppresses re-execution and the demux here
        drops whichever reply arrives second.
        """
        telemetry = self.sim.telemetry
        tracer = telemetry.tracer if telemetry is not None else None
        if tracer is None:
            return (yield from self._call_inner(call, None))
        span = tracer.begin("rpc.call", "rpc", self.node_name, "rpctcp",
                            parent=tracer.task_span(), xid=call.xid)
        call.trace_id = span.trace_id
        prev = tracer.push_task(span)
        tracer.bind_xid(call.xid, span)
        try:
            return (yield from self._call_inner(call, tracer))
        finally:
            tracer.unbind_xid(call.xid, span)
            tracer.pop_task(prev)
            span.end()

    def _call_inner(self, call: RpcCall, tracer) -> Generator:
        waiter = Event(self.sim)
        self._pending[call.xid] = waiter
        message = frame_message(call.encode(), call.write_payload)
        yield from self.conn.send(self.endpoint, message)
        self.calls_sent.add()
        if self.retrans_timeout_us is None:
            reply = yield waiter
            return reply
        timeout_us = self.retrans_timeout_us
        for attempt in range(self.max_retries + 1):
            race = yield AnyOf(self.sim, [waiter, self.sim.timeout(timeout_us)])
            if waiter.triggered:
                return waiter.value
            if attempt < self.max_retries:
                self.retransmissions.add()
                rspan = None
                if tracer is not None:
                    rspan = tracer.begin("rpc.retransmit", "rpc",
                                         self.node_name, "rpctcp",
                                         parent=tracer.task_span(),
                                         xid=call.xid, attempt=attempt + 1)
                yield from self.conn.send(self.endpoint, message)
                if rspan is not None:
                    rspan.end()
                # Classic RPC exponential backoff, capped at the ceiling.
                timeout_us = min(timeout_us * 2, self.max_retrans_timeout_us)
        self._pending.pop(call.xid, None)
        raise RpcTimeout(
            f"{self.name}: xid {call.xid:#x} unanswered after "
            f"{self.max_retries} retransmissions"
        )

    def _receiver(self) -> Generator:
        while True:
            message = yield self.conn.recv(self.endpoint)
            header, payload = unframe_message(message)
            reply = RpcReply.decode(header)
            reply.read_payload = payload
            waiter = self._pending.pop(reply.xid, None)
            if waiter is None:
                # Late/duplicate reply: drop, as a real client would.
                continue
            waiter.succeed(reply)


class TcpRpcServerTransport(RpcServerTransport):
    """Server side: one instance per accepted client connection."""

    def __init__(self, endpoint: TcpEndpoint, conn: TcpConnection, name: str = "rpc-tcpd"):
        self.sim = endpoint.sim
        self.endpoint = endpoint
        self.conn = conn
        self.name = name
        self.server: Optional[RpcServer] = None
        self.calls_received = Counter(f"{name}.calls")
        #: failure injection: silently discard this many replies.
        self.drop_next_replies = 0
        self.replies_dropped = Counter(f"{name}.dropped")

    def attach(self, server: RpcServer) -> None:
        if self.server is not None:
            raise RuntimeError("transport already attached")
        self.server = server
        self.sim.process(self._receiver(), name=f"{self.name}.rx")

    def _receiver(self) -> Generator:
        assert self.server is not None
        while True:
            message = yield self.conn.recv(self.endpoint)
            header, payload = unframe_message(message)
            call = RpcCall.decode(header)
            call.write_payload = payload
            self.calls_received.add()
            # Blocking submit: a full bounded run queue stalls the
            # receive loop, so backpressure propagates through the TCP
            # window exactly as a real kernel RPC service would.
            yield from self.server.submit_process(call, self._responder(call))

    def _responder(self, call: RpcCall):
        def respond(reply: RpcReply) -> Generator:
            if self.drop_next_replies > 0:
                # Failure injection: the reply vanishes on the wire.
                self.drop_next_replies -= 1
                self.replies_dropped.add()
                telemetry = self.sim.telemetry
                if telemetry is not None and telemetry.tracer is not None:
                    telemetry.tracer.instant(
                        "fault.reply_dropped", "fault",
                        self.endpoint.name.split(".")[0], "rpctcp",
                        xid=reply.xid)
                return
            message = frame_message(reply.encode(), reply.read_payload)
            yield from self.conn.send(self.endpoint, message)

        return respond
