"""Typed exception hierarchy for the whole package.

Every operational failure the simulated stack can raise descends from
:class:`ReproError`, so callers working through :mod:`repro.api` can
write one ``except ReproError`` instead of guessing which layer threw.
The concrete layers keep their historical names (``QPError``,
``RpcTimeout``, ``NfsError``...) but rebase onto this hierarchy:

``ReproError``
    ``TransportError`` — fatal connection-level failures
        ``QPError`` (:mod:`repro.ib.verbs`) — QP entered the error state
        ``RpcTimeout`` (:mod:`repro.rpc.transport`) — reply never arrived
    ``NfsStatusError`` — an NFS call completed with a non-OK status
        ``NfsError`` (:mod:`repro.nfs.protocol`) — carries Nfs3Status + proc
    ``PoolExhausted`` — a bounded resource pool (shared receive pool,
        dispatcher run queue) rejected new work
    ``ProtectionError`` (:mod:`repro.ib.memory`) — TPT validation failure

Configuration mistakes (bad kwargs, unknown names) stay ``ValueError``:
they are programming errors, not simulated-system failures.
"""

from __future__ import annotations

__all__ = ["NfsStatusError", "PoolExhausted", "ReproError", "TransportError"]


class ReproError(Exception):
    """Root of every operational error raised by the simulated stack."""


class TransportError(ReproError):
    """Fatal transport failure (flushed WRs, protocol violation...)."""


class NfsStatusError(ReproError):
    """An NFS procedure returned a non-OK status.

    ``status`` holds the protocol-level status object (an
    ``Nfs3Status`` for the NFSv3 client in this package).
    """

    def __init__(self, message: str, status=None):
        super().__init__(message)
        self.status = status


class PoolExhausted(ReproError):
    """A bounded pool (receive buffers, run-queue slots) is out of capacity."""
