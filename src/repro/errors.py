"""Typed exception hierarchy for the whole package.

Every operational failure the simulated stack can raise descends from
:class:`ReproError`, so callers working through :mod:`repro.api` can
write one ``except ReproError`` instead of guessing which layer threw.
The concrete layers keep their historical names (``QPError``,
``RpcTimeout``, ``NfsError``...) but rebase onto this hierarchy:

``ReproError``
    ``TransportError`` — fatal connection-level failures
        ``QPError`` (:mod:`repro.ib.verbs`) — QP entered the error state
        ``RpcTimeout`` (:mod:`repro.rpc.transport`) — reply never arrived
    ``NfsStatusError`` — an NFS call completed with a non-OK status
        ``NfsError`` (:mod:`repro.nfs.protocol`) — carries Nfs3Status + proc
    ``PoolExhausted`` — a bounded resource pool (shared receive pool,
        dispatcher run queue) rejected new work
    ``ProtectionError`` (:mod:`repro.ib.memory`) — TPT validation failure
    ``SanitizerError`` — an invariant violation caught by the runtime
        checker (:mod:`repro.check`); one subclass per checked rule

Configuration mistakes (bad kwargs, unknown names) stay ``ValueError``:
they are programming errors, not simulated-system failures.
"""

from __future__ import annotations

__all__ = [
    "AccessViolation",
    "BoundsViolation",
    "ChunkLifetimeViolation",
    "CreditViolation",
    "DrcViolation",
    "LeakViolation",
    "NfsStatusError",
    "NondeterminismViolation",
    "PoolExhausted",
    "ReproError",
    "SanitizerError",
    "SrqViolation",
    "StaleStagViolation",
    "TransportError",
]


class ReproError(Exception):
    """Root of every operational error raised by the simulated stack."""


class TransportError(ReproError):
    """Fatal transport failure (flushed WRs, protocol violation...)."""


class NfsStatusError(ReproError):
    """An NFS procedure returned a non-OK status.

    ``status`` holds the protocol-level status object (an
    ``Nfs3Status`` for the NFSv3 client in this package).
    """

    def __init__(self, message: str, status=None):
        super().__init__(message)
        self.status = status


class PoolExhausted(ReproError):
    """A bounded pool (receive buffers, run-queue slots) is out of capacity."""


class SanitizerError(ReproError):
    """An invariant violation caught by :mod:`repro.check` at runtime.

    One subclass per checked rule so tests (and CI) can assert which
    invariant broke.  ``rule`` is the machine-readable rule name used in
    violation reports and telemetry counters.
    """

    rule: str = "sanitizer"


class BoundsViolation(SanitizerError):
    """An RDMA access fell outside the registered region's bounds."""

    rule = "bounds"


class AccessViolation(SanitizerError):
    """An RDMA access lacked the needed access rights on the target MR."""

    rule = "access"


class StaleStagViolation(SanitizerError):
    """A WR executed against a steering tag whose registration epoch
    changed between posting and execution (use-after-deregister or
    use-after-FMR-unmap, including the stag-reuse stale-rkey window)."""

    rule = "stale-stag"


class ChunkLifetimeViolation(SanitizerError):
    """An RDMA Write landed outside any currently-advertised, unconsumed
    chunk — the server wrote into client memory it was never offered
    (or offered for a call that already completed)."""

    rule = "chunk-lifetime"


class SrqViolation(SanitizerError):
    """Shared-receive-pool slot lifecycle broke: a slot was recycled
    while still posted, or posted twice without an intervening take."""

    rule = "srq"


class CreditViolation(SanitizerError):
    """Per-connection credit conservation broke: more requests in flight
    than the granted window, or a release without an acquire."""

    rule = "credits"


class DrcViolation(SanitizerError):
    """Duplicate request cache exactly-once assertion failed: the server
    began executing a call whose (xid, prog, proc) entry was still live."""

    rule = "drc"


class LeakViolation(SanitizerError):
    """Teardown leak report: buffers still pinned or registered after
    the cluster was torn down (the paper's Read-Read complaint)."""

    rule = "leak"


class NondeterminismViolation(SanitizerError):
    """A nondeterminism source was used inside a running simulation
    (wall-clock read, unseeded RNG draw)."""

    rule = "nondeterminism"
