"""Command-line entry point.

::

    python -m repro list
    python -m repro run fig5 [--scale quick|full] [--jobs N]
    python -m repro attack --figure fig12 [--scale quick|full] [--jobs N]
    python -m repro check [--figure fig5] [--perturb-seed S ...] [--jobs N]
    python -m repro report [--scale quick|full] [--jobs N] [--output EXPERIMENTS.md]
    python -m repro bench [--scale quick|full] [--jobs N] [--output-dir .]
    python -m repro health --experiment fig5 [--slo slo/quick.toml] [--sink stdout|json|otel]
    python -m repro stats --figure fig5 --quick [--point N] [--json]
    python -m repro trace --figure fig5 --quick --out trace.json
    python -m repro iozone --transport rdma-rw --strategy cache --threads 8
    python -m repro oltp --strategy cache --readers 50
    python -m repro postmark --transactions 400 [--client-cache]

``--jobs N`` fans independent figure points across N worker processes;
results are bit-identical to ``--jobs 1`` (see repro.experiments.sweep).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import LINUX_DDR_RAID, LINUX_SDR, SOLARIS_SDR
from repro.experiments import Cluster, ClusterConfig
from repro.experiments.cluster import STRATEGIES, TRANSPORTS
from repro.experiments.registry import EXPERIMENTS, run as run_experiment
from repro.workloads import (
    IozoneParams,
    OltpParams,
    PostmarkParams,
    run_iozone,
    run_oltp,
    run_postmark,
)

PROFILES = {p.name: p for p in (SOLARIS_SDR, LINUX_SDR, LINUX_DDR_RAID)}


def _add_cluster_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--transport", choices=TRANSPORTS, default="rdma-rw")
    parser.add_argument("--strategy", choices=STRATEGIES, default="dynamic")
    parser.add_argument("--profile", choices=sorted(PROFILES), default="solaris-sdr")
    parser.add_argument("--backend", choices=("tmpfs", "raid"), default="tmpfs")
    parser.add_argument("--clients", type=int, default=1)
    parser.add_argument("--seed", type=int, default=2007)


def _cluster(args) -> Cluster:
    return Cluster(ClusterConfig(
        transport=args.transport,
        strategy=args.strategy,
        profile=PROFILES[args.profile],
        backend=args.backend,
        nclients=args.clients,
        seed=args.seed,
    ))


def cmd_list(args) -> int:
    print("experiments (python -m repro run <name>):")
    for name, runner in EXPERIMENTS.items():
        doc = (runner.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:<10} {doc}")
    print("\nworkload drivers: iozone, oltp, postmark (see --help on each)")
    return 0


def cmd_run(args) -> int:
    result = run_experiment(args.experiment, args.scale, jobs=args.jobs)
    print(result)
    chart = _chart_for(result)
    if chart:
        print(chart)
    return 0


#: The figures benchmarked by ``python -m repro bench`` (satellite of
#: DESIGN.md §8): each produces BENCH_<name>.json next to --output-dir.
BENCH_FIGURES = ("fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
                 "fig12", "fig13")

#: BENCH_*.json schema.  v1 (unversioned): events_stepped.  v2: adds
#: schema_version, events, core; tools/bench_gate.py reads both.
BENCH_SCHEMA_VERSION = 2


def _bench_profile(name: str, scale: str, jobs: int, top: int = 25) -> object:
    """Run one figure under cProfile and print the top-N hot spots."""
    import cProfile
    import pstats

    holder: dict = {}
    prof = cProfile.Profile()
    prof.enable()
    try:
        holder["result"] = run_experiment(name, scale, jobs=jobs)
    finally:
        prof.disable()
    stats = pstats.Stats(prof, stream=sys.stdout)
    for sort in ("cumulative", "tottime"):
        print(f"\n--- {name}: cProfile top {top} by {sort} ---")
        stats.sort_stats(sort).print_stats(top)
    return holder["result"]


def cmd_bench(args) -> int:
    """Benchmark the simulator itself: wall time and events/sec per figure."""
    import json
    import os
    import time

    from repro.sim.engine import ACTIVE_CORE

    os.makedirs(args.output_dir, exist_ok=True)
    for name in BENCH_FIGURES:
        t0 = time.perf_counter()  # lint-sim: allow[wallclock] (host bench timing)
        if args.profile:
            result = _bench_profile(name, args.scale, args.jobs, top=args.profile_top)
        else:
            result = run_experiment(name, args.scale, jobs=args.jobs)
        wall = time.perf_counter() - t0  # lint-sim: allow[wallclock] (host bench timing)
        payload = {
            "schema_version": BENCH_SCHEMA_VERSION,
            "experiment": name,
            "scale": args.scale,
            "jobs": args.jobs,
            "core": ACTIVE_CORE,
            "wall_seconds": round(wall, 3),
            "events": result.events,
            "events_per_sec": round(result.events / wall) if wall else 0,
            "points": len(result.rows),
        }
        path = os.path.join(args.output_dir, f"BENCH_{name}.json")
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"{name}: {wall:6.1f}s wall  {result.events:>10,} events  "
              f"{payload['events_per_sec']:>10,} events/s  -> {path}")
    return 0


def _chart_for(result) -> str:
    """Bar-chart the figure's primary metric, grouped by series."""
    from repro.analysis.plot import series_chart

    rows = result.rows
    if not rows or not isinstance(rows[0][-1], (int, float)):
        return ""
    if isinstance(rows[0][1], (int, float)) or len(rows[0]) >= 3:
        series: dict[str, dict] = {}
        for row in rows:
            series.setdefault(str(row[0]), {})[str(row[-3] if len(row) > 3 else row[1])] = (
                float(row[2]) if len(row) > 3 else float(row[-1])
            )
        try:
            return "\n" + series_chart(series, unit="")
        except (TypeError, ValueError):
            return ""
    return ""


def cmd_check(args) -> int:
    """Correctness suite: static analyzer + sanitized + perturbed grids."""
    if args.static:
        from repro.check.static import analyze

        try:
            report = analyze(rules=args.rule or None)
        except ValueError as exc:
            print(f"repro check --static: {exc}", file=sys.stderr)
            return 2
        out = (report.render_json() if args.format == "json"
               else report.render_text())
        print(out)
        return 0 if report.ok else 1
    if args.rule or args.format != "text":
        print("--rule/--format require --static", file=sys.stderr)
        return 2
    from repro.check.runner import run_check

    report = run_check(
        figures=args.figure or None,
        perturb_seeds=tuple(args.perturb_seed or (1, 2, 3)),
        scale=args.scale,
        jobs=args.jobs,
        lint=not args.no_lint,
        progress=print,
    )
    print(report.summary())
    return 0 if report.passed else 1


def cmd_attack(args) -> int:
    """Run the adversary-campaign figure through the experiments registry."""
    result = run_experiment(args.figure, args.scale, jobs=args.jobs)
    print(result)
    return 0


def cmd_report(args) -> int:
    from repro.experiments.report import generate

    content = generate(args.scale, jobs=args.jobs)
    with open(args.output, "w") as fh:
        fh.write(content)
    print(f"wrote {args.output} ({len(content)} bytes)")
    return 0


def cmd_iozone(args) -> int:
    cluster = _cluster(args)
    result = run_iozone(cluster, IozoneParams(
        nthreads=args.threads,
        record_bytes=args.record_kb * 1024,
        ops_per_thread=args.ops,
    ))
    print(f"read  {result.read_mb_s:8.1f} MB/s   latency {result.read_latency}")
    print(f"write {result.write_mb_s:8.1f} MB/s   latency {result.write_latency}")
    print(f"client CPU {result.client_cpu_read * 100:.1f}%  "
          f"server CPU {result.server_cpu_read * 100:.1f}%")
    return 0


def cmd_oltp(args) -> int:
    cluster = _cluster(args)
    result = run_oltp(cluster, OltpParams(
        readers=args.readers, writers=args.writers,
        ops_per_thread=args.ops,
    ))
    print(f"{result.ops_per_s:.0f} ops/s, {result.client_cpu_us_per_op:.1f} "
          f"client-CPU us/op over {result.elapsed_us / 1e6:.2f}s simulated")
    return 0


def _telemetry_point(args):
    """Build one figure point's cluster with telemetry on, then run it."""
    from repro.experiments.figures import figure_grid
    from repro.experiments.sweep import _build_cluster, run_point

    scale = "quick" if args.quick else args.scale
    grid = figure_grid(args.figure, scale)
    if not 0 <= args.point < len(grid):
        raise SystemExit(
            f"--point must be in [0, {len(grid)}) for {args.figure}/{scale}"
        )
    label, point = grid[args.point]
    cluster = _build_cluster({**point.cluster, "telemetry": True})
    run_point(point, cluster=cluster)
    return label, cluster


def cmd_stats(args) -> int:
    from repro.telemetry.nfsstat import render_stats, stats_dict

    label, cluster = _telemetry_point(args)
    if args.json:
        import json

        payload = {"figure": args.figure, "point": args.point,
                   "label": label, **stats_dict(cluster)}
        print(json.dumps(payload, indent=2))
    else:
        print(f"== {args.figure} point {args.point} ({label}) ==")
        print(render_stats(cluster))
        print()
        print("see also: repro health (SLO gate), repro check (sanitizer"
              " + perturbation), repro check --static (contract analyzer)")
    return 0


def cmd_health(args) -> int:
    """Health checks + SLO gate; exit code is the worst verdict (0/1/2)."""
    from repro.health import SINKS, run_health

    report = run_health(
        args.experiment,
        scale=args.scale,
        slo_path=args.slo,
        point=args.point,
        seed=args.seed,
        crashes=args.crashes,
    )
    out = SINKS[args.sink](report)
    if not out.endswith("\n"):
        out += "\n"
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(out)
        print(f"{args.experiment}/{args.scale}: {report.status.name} "
              f"-> {args.out}")
    else:
        sys.stdout.write(out)
    return report.exit_code


def cmd_trace(args) -> int:
    label, cluster = _telemetry_point(args)
    tracer = cluster.telemetry.tracer
    tracer.write_chrome(args.out)
    print(f"{args.figure} point {args.point} ({label}): "
          f"{len(tracer.spans)} spans, {len(tracer.instants)} instants "
          f"-> {args.out}")
    return 0


def cmd_postmark(args) -> int:
    cluster = _cluster(args)
    result = run_postmark(cluster, PostmarkParams(
        initial_files=args.files, transactions=args.transactions,
        nthreads=args.threads, use_client_cache=args.client_cache,
    ))
    print(f"{result.txns_per_s:.0f} txns/s "
          f"({result.created} created, {result.deleted} deleted)")
    print(f"latency: {result.latency}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="NFS/RDMA reproduction: experiments and workload drivers",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(fn=cmd_list)

    p = sub.add_parser("run", help="run one paper experiment")
    p.add_argument("experiment", choices=sorted(EXPERIMENTS))
    p.add_argument("--scale", choices=("quick", "full"), default="quick")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the point sweep (default 1)")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser(
        "check",
        help="correctness suite: lint + sanitizer + schedule perturbation")
    from repro.check.runner import CHECK_FIGURES

    p.add_argument("--figure", action="append", choices=CHECK_FIGURES,
                   help="restrict to one figure grid (repeatable; "
                        "default: all)")
    p.add_argument("--perturb-seed", action="append", type=int, default=None,
                   help="schedule-perturbation seed (repeatable; "
                        "default: 1 2 3)")
    p.add_argument("--scale", choices=("quick", "full"), default="quick")
    p.add_argument("--jobs", type=int, default=1)
    p.add_argument("--no-lint", action="store_true",
                   help="skip the static analyzer pass")
    p.add_argument("--static", action="store_true",
                   help="run only the static contract analyzer "
                        "(repro.check.static) and exit")
    p.add_argument("--rule", action="append", default=None,
                   help="with --static: restrict to one rule or pack "
                        "name (repeatable)")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="with --static: output format (default text)")
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser(
        "attack",
        help="adversary campaign vs the mitigation ladder (fig12)")
    p.add_argument("--figure", choices=("fig12",), default="fig12")
    p.add_argument("--scale", choices=("quick", "full"), default="quick")
    p.add_argument("--jobs", type=int, default=1)
    p.set_defaults(fn=cmd_attack)

    p = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    p.add_argument("--scale", choices=("quick", "full"), default="quick")
    p.add_argument("--jobs", type=int, default=1)
    p.add_argument("--output", default="EXPERIMENTS.md")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("bench", help="benchmark the simulator (BENCH_*.json)")
    p.add_argument("--scale", choices=("quick", "full"), default="quick")
    p.add_argument("--jobs", type=int, default=1)
    p.add_argument("--output-dir", default=".")
    p.add_argument("--profile", action="store_true",
                   help="run each figure under cProfile and print the "
                        "top-N hot spots (cumulative + tottime); wall "
                        "numbers then include profiler overhead")
    p.add_argument("--profile-top", type=int, default=25, metavar="N",
                   help="rows per cProfile table (default 25)")
    p.set_defaults(fn=cmd_bench)

    def _add_point_args(p):
        p.add_argument("--figure",
                       choices=("fig5", "fig6", "fig7", "fig8", "fig9",
                                "fig10", "fig11", "fig12", "fig13"),
                       default="fig5")
        p.add_argument("--scale", choices=("quick", "full"), default="quick")
        p.add_argument("--quick", action="store_true",
                       help="force the quick grid (alias for --scale quick)")
        p.add_argument("--point", type=int, default=0,
                       help="index into the figure's point grid (default 0)")

    p = sub.add_parser(
        "health",
        help="health checks + SLO gate; exit 0 OK / 1 WARN / 2 CRITICAL")
    from repro.health.runner import FIGURES as HEALTH_FIGURES

    p.add_argument("--experiment", choices=(*HEALTH_FIGURES, "chaos"),
                   default="fig5")
    p.add_argument("--scale", choices=("quick", "full"), default="quick")
    p.add_argument("--point", type=int, default=None,
                   help="grade one grid index instead of the whole figure")
    p.add_argument("--slo", default=None, metavar="FILE",
                   help="TOML/JSON SLO thresholds layered over defaults")
    p.add_argument("--sink", choices=("stdout", "json", "otel"),
                   default="stdout")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="write sink output to FILE instead of stdout")
    p.add_argument("--seed", type=int, default=2007,
                   help="(chaos) soak seed")
    p.add_argument("--crashes", type=int, default=0,
                   help="(chaos) seeded server crash-restarts to inject")
    p.set_defaults(fn=cmd_health)

    p = sub.add_parser("stats",
                       help="nfsstat-style report for one figure point")
    _add_point_args(p)
    p.add_argument("--json", action="store_true",
                   help="machine-readable dump (stats_dict) instead of text")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("trace",
                       help="Chrome trace_event JSON for one figure point")
    _add_point_args(p)
    p.add_argument("--out", default="trace.json")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("iozone", help="IOzone-style bandwidth run")
    _add_cluster_args(p)
    p.add_argument("--threads", type=int, default=8)
    p.add_argument("--record-kb", type=int, default=128)
    p.add_argument("--ops", type=int, default=60)
    p.set_defaults(fn=cmd_iozone)

    p = sub.add_parser("oltp", help="FileBench OLTP run")
    _add_cluster_args(p)
    p.add_argument("--readers", type=int, default=50)
    p.add_argument("--writers", type=int, default=10)
    p.add_argument("--ops", type=int, default=5)
    p.set_defaults(fn=cmd_oltp)

    p = sub.add_parser("postmark", help="PostMark small-file run")
    _add_cluster_args(p)
    p.add_argument("--files", type=int, default=100)
    p.add_argument("--transactions", type=int, default=400)
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--client-cache", action="store_true")
    p.set_defaults(fn=cmd_postmark)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
