"""Figure-grid driver behind ``python -m repro check``.

For each figure it runs the quick point grid three ways and requires the
metric dicts to be **bit-identical** across all of them:

* baseline — the plain deterministic engine, sanitizer off;
* sanitized — same grid with ``sanitizer=True``: every RDMA access,
  stag epoch, advertised chunk, SRQ slot, credit counter and DRC entry
  is checked on the fly, and teardown asserts nothing leaked.  Because
  the sanitizer only *reads* sim state, any drift from baseline is a
  bug in the sanitizer itself;
* perturbed — same grid under :class:`~repro.check.races.PerturbedSimulator`
  with each requested seed: same-timestamp ties break in seeded-random
  order, so any result that depends on incidental event ordering shows
  up as a table diff.

The static contract analyzer (:mod:`repro.check.static`) runs first —
purity, zero-cost-off guards, interprocedural purity escapes, process/
generator discipline, wire-format symmetry and exception boundaries are
all cheap AST passes that catch problems the dynamic passes would only
hit probabilistically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.check.purity import Finding
from repro.check.static import analyze

__all__ = ["CHECK_FIGURES", "CheckReport", "FigureCheck", "run_check"]

#: every figure with a point grid (Table 1 and the security audit have
#: no sweep; the security audit is itself a correctness check).  fig12
#: is the adversary-campaign grid: checking it proves attack traffic —
#: NAK storms, quarantine evictions, lease reclaims — is as schedule-
#: deterministic as the benign figures.
CHECK_FIGURES = ("fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
                 "fig12", "fig13")


@dataclass
class FigureCheck:
    """Outcome of the three-way sweep for one figure."""

    figure: str
    points: int
    #: labels whose sanitized metrics differed from baseline.
    sanitizer_diffs: list[str] = field(default_factory=list)
    #: (seed, label) pairs whose perturbed metrics differed from baseline.
    perturb_diffs: list[tuple[int, str]] = field(default_factory=list)
    #: error text if a sweep raised (sanitizer violation, leak, crash).
    error: Optional[str] = None

    @property
    def passed(self) -> bool:
        return not (self.sanitizer_diffs or self.perturb_diffs or self.error)


@dataclass
class CheckReport:
    """Everything ``python -m repro check`` found."""

    lint_findings: list[Finding] = field(default_factory=list)
    figures: list[FigureCheck] = field(default_factory=list)
    lint_ran: bool = False

    @property
    def passed(self) -> bool:
        return not self.lint_findings and all(f.passed for f in self.figures)

    def summary(self) -> str:
        lines = []
        if self.lint_findings:
            lines.append(f"lint: {len(self.lint_findings)} finding(s)")
            lines.extend(f"  {f}" for f in self.lint_findings)
        else:
            lines.append("lint: clean" if self.lint_ran else "lint: skipped")
        for check in self.figures:
            if check.passed:
                lines.append(
                    f"{check.figure}: OK ({check.points} points, sanitized + "
                    f"perturbed bit-identical)"
                )
                continue
            lines.append(f"{check.figure}: FAILED")
            if check.error:
                lines.append(f"  error: {check.error}")
            for label in check.sanitizer_diffs:
                lines.append(f"  sanitized run diverged at point {label}")
            for seed, label in check.perturb_diffs:
                lines.append(
                    f"  perturb-seed {seed} diverged at point {label}")
        lines.append("check: " + ("PASS" if self.passed else "FAIL"))
        return "\n".join(lines)


def _repro_src_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def _variant(points, **overrides):
    from repro.experiments.sweep import Point

    return [Point(kind=p.kind, cluster={**p.cluster, **overrides},
                  params=p.params)
            for p in points]


def _diff_labels(labels, baseline, variant) -> list[str]:
    return [label for label, a, b in zip(labels, baseline, variant) if a != b]


def _check_figure(figure: str, scale: str, jobs: int,
                  perturb_seeds: Sequence[int]) -> FigureCheck:
    from repro.experiments.figures import figure_grid
    from repro.experiments.sweep import sweep

    grid = figure_grid(figure, scale)
    labels = [label for label, _ in grid]
    points = [p for _, p in grid]
    check = FigureCheck(figure=figure, points=len(points))
    try:
        baseline = sweep(points, jobs)
        sanitized = sweep(_variant(points, sanitizer=True), jobs)
        check.sanitizer_diffs = _diff_labels(labels, baseline, sanitized)
        for seed in perturb_seeds:
            perturbed = sweep(_variant(points, perturb_seed=seed), jobs)
            check.perturb_diffs.extend(
                (seed, label)
                for label in _diff_labels(labels, baseline, perturbed))
    except Exception as exc:  # sanitizer violation, leak, or crash
        check.error = f"{type(exc).__name__}: {exc}"
    return check


def run_check(figures: Optional[Sequence[str]] = None,
              perturb_seeds: Sequence[int] = (1, 2, 3),
              scale: str = "quick", jobs: int = 1,
              lint: bool = True,
              progress=None) -> CheckReport:
    """Run the full correctness suite; see the module docstring.

    ``figures=None`` covers every grid in :data:`CHECK_FIGURES`;
    ``progress`` is an optional ``print``-like callable for live status.
    """
    report = CheckReport()
    if lint:
        if progress:
            progress("static: src/repro ...")
        report.lint_findings = analyze(root=_repro_src_root()).findings
        report.lint_ran = True
    for figure in (figures or CHECK_FIGURES):
        if progress:
            progress(f"{figure}: baseline + sanitized + "
                     f"{len(tuple(perturb_seeds))} perturbed sweep(s) ...")
        report.figures.append(
            _check_figure(figure, scale, jobs, tuple(perturb_seeds)))
    return report
