"""Static sim-purity lint: the intraprocedural AST pass behind the
``purity`` rule pack of ``python -m repro check --static``.

The simulator's determinism contract (bit-identical golden tables) is
easy to break with perfectly ordinary Python.  This pass flags the four
patterns that have historically done it, at parse time, with no imports
of the checked code:

``wallclock``
    Calls to ``time.time()``/``monotonic()``/``perf_counter()`` (and
    ``_ns`` variants) or ``datetime``/``date`` ``now()/utcnow()/today()``.
    Wall-clock reads inside sim logic make results machine-dependent.

``global-random``
    Calls to module-level ``random.*`` / ``numpy.random.*`` functions,
    which draw from hidden process-global state shared across the whole
    interpreter.  Seeded instances — ``random.Random(seed)``,
    ``np.random.default_rng(seed)`` — are the allowed idiom.

``set-iteration``
    ``for``/comprehension/``list()``/``tuple()``/``iter()``/``*``-unpack
    over a name assigned or annotated as a ``set`` (including values of
    ``dict[..., set]`` attributes).  Sets of identity-hashed objects
    iterate in id() order, which varies run-to-run; ``sorted(...)`` (or
    a dict-as-ordered-set) is the deterministic idiom.  Membership
    tests and ``len()`` are fine and not flagged.

``mutable-default``
    ``def f(x, acc=[])`` / ``={}`` / ``=set()``-style defaults: shared
    mutable state across calls, the classic aliasing bug.

Suppression: append ``# lint-sim: allow[rule]`` (comma-separated rules,
or ``allow[*]``) to the offending line.  Suppressions are per-line and
per-rule so every exception is visible and greppable.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Union

__all__ = ["Finding", "lint_file", "lint_paths", "lint_source", "raw_findings"]

RULES = ("wallclock", "global-random", "set-iteration", "mutable-default")

_ALLOW_RE = re.compile(r"#\s*lint-sim:\s*allow\[([^\]]*)\]")

_WALLCLOCK_TIME_FNS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "clock",
})
_WALLCLOCK_DATE_FNS = frozenset({"now", "utcnow", "today"})
_DATE_BASES = frozenset({"datetime", "date"})

_GLOBAL_RANDOM_FNS = frozenset({
    "random", "uniform", "randint", "randrange", "choice", "choices",
    "shuffle", "sample", "gauss", "expovariate", "betavariate",
    "triangular", "getrandbits", "seed", "normalvariate",
    "vonmisesvariate", "paretovariate", "weibullvariate", "lognormvariate",
    "rand", "randn", "permutation", "normal", "standard_normal",
})
#: calls under random./np.random. that are explicitly fine (seeded
#: constructors, not draws from global state).
_RANDOM_ALLOWED = frozenset({"Random", "SystemRandom", "default_rng", "Generator"})

_ITER_WRAPPERS = frozenset({"list", "tuple", "iter", "enumerate", "max", "min"})


@dataclass(frozen=True)
class Finding:
    """One lint violation."""

    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


#: key for a tracked set-typed binding: ("name", x) or ("attr", x) for self.x.
_SetKey = tuple[str, str]


def _target_key(node: ast.AST) -> Optional[_SetKey]:
    if isinstance(node, ast.Name):
        return ("name", node.id)
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name) and node.value.id == "self"):
        return ("attr", node.attr)
    return None


def _annotation_is_set(node: Optional[ast.expr]) -> bool:
    """``set`` / ``set[...]`` / ``Set[...]`` annotations."""
    if node is None:
        return False
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split("[")[0].strip() in ("set", "Set")
    name = _dotted(node)
    return name is not None and name.split(".")[-1] in ("set", "Set")


def _annotation_is_dict_of_set(node: Optional[ast.expr]) -> bool:
    """``dict[K, set]`` / ``dict[K, set[...]]`` annotations."""
    if not isinstance(node, ast.Subscript):
        return False
    base = _dotted(node.value)
    if base is None or base.split(".")[-1] not in ("dict", "Dict"):
        return False
    if isinstance(node.slice, ast.Tuple) and len(node.slice.elts) == 2:
        return _annotation_is_set(node.slice.elts[1])
    return False


def _value_is_set(node: Optional[ast.expr]) -> bool:
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        return name in ("set", "frozenset")
    return False


class _SetCollector(ast.NodeVisitor):
    """First pass: names bound or annotated as sets (or dicts of sets)."""

    def __init__(self) -> None:
        self.sets: set[_SetKey] = set()
        self.dicts_of_sets: set[_SetKey] = set()

    def visit_Assign(self, node: ast.Assign) -> None:
        if _value_is_set(node.value):
            for target in node.targets:
                key = _target_key(target)
                if key is not None:
                    self.sets.add(key)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        key = _target_key(node.target)
        if key is not None:
            if _annotation_is_set(node.annotation) or _value_is_set(node.value):
                self.sets.add(key)
            elif _annotation_is_dict_of_set(node.annotation):
                self.dicts_of_sets.add(key)
        self.generic_visit(node)


class _PurityVisitor(ast.NodeVisitor):
    """Second pass: flag the four rule violations."""

    def __init__(self, path: str, sets: set[_SetKey],
                 dicts_of_sets: set[_SetKey]) -> None:
        self.path = path
        self.sets = sets
        self.dicts_of_sets = dicts_of_sets
        self.findings: list[Finding] = []

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            Finding(self.path, getattr(node, "lineno", 0), rule, message))

    # -- wallclock + global-random (both are Call patterns) ---------------
    def visit_Call(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        if name is not None:
            parts = name.split(".")
            if len(parts) >= 2:
                base, fn = parts[-2], parts[-1]
                if base == "time" and fn in _WALLCLOCK_TIME_FNS:
                    self._flag(node, "wallclock",
                               f"wall-clock read {name}() in sim code; "
                               f"use sim.now")
                elif base in _DATE_BASES and fn in _WALLCLOCK_DATE_FNS:
                    self._flag(node, "wallclock",
                               f"wall-clock read {name}() in sim code; "
                               f"use sim.now")
                elif (base == "random" and parts[-3:-2] != ["Random"]
                      and fn in _GLOBAL_RANDOM_FNS
                      and fn not in _RANDOM_ALLOWED):
                    self._flag(node, "global-random",
                               f"module-level RNG {name}() draws hidden "
                               f"global state; use a seeded random.Random / "
                               f"DeterministicRNG instance")
        # list(X) / tuple(X) / iter(X) over a set-typed name.
        if (isinstance(node.func, ast.Name)
                and node.func.id in _ITER_WRAPPERS and len(node.args) == 1):
            self._check_iteration(node.args[0], node)
        self.generic_visit(node)

    # -- set iteration ----------------------------------------------------
    def _is_set_expr(self, node: ast.expr) -> bool:
        if _value_is_set(node):  # {..} / set(..) literal iterated in place
            return True
        key = _target_key(node)
        if key is not None and key in self.sets:
            return True
        if isinstance(node, ast.Subscript):
            base_key = _target_key(node.value)
            if base_key is not None and base_key in self.dicts_of_sets:
                return True
        return False

    def _check_iteration(self, iterable: ast.expr, site: ast.AST) -> None:
        if self._is_set_expr(iterable):
            self._flag(site, "set-iteration",
                       "iteration over a set: order is id()-dependent for "
                       "identity-hashed members; iterate sorted(...) or use "
                       "a dict-as-ordered-set")

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, node)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for comp in node.generators:
            self._check_iteration(comp.iter, node)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def visit_Starred(self, node: ast.Starred) -> None:
        self._check_iteration(node.value, node)
        self.generic_visit(node)

    # -- mutable defaults --------------------------------------------------
    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            bad = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if isinstance(default, ast.Call):
                name = _dotted(default.func)
                bad = name in ("list", "dict", "set", "bytearray",
                               "collections.deque", "deque")
            if bad:
                self._flag(default, "mutable-default",
                           f"mutable default argument in {node.name}(); "
                           f"use None and create inside")
        self.generic_visit(node)

    visit_FunctionDef = _check_defaults
    visit_AsyncFunctionDef = _check_defaults


def _suppressions(source: str) -> dict[int, set[str]]:
    allowed: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(line)
        if match:
            rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
            allowed[lineno] = rules
    return allowed


def raw_findings(tree: ast.Module, path: str = "<string>") -> list[Finding]:
    """All four intraprocedural rules over one parsed module, *before*
    suppression — the entry point used by the ``purity`` rule pack of
    :mod:`repro.check.static` (the analyzer core applies suppressions
    uniformly across every pack)."""
    collector = _SetCollector()
    collector.visit(tree)
    visitor = _PurityVisitor(path, collector.sets, collector.dicts_of_sets)
    visitor.visit(tree)
    return visitor.findings


def lint_source(source: str, path: str = "<string>") -> list[Finding]:
    """Lint one module's source text; returns unsuppressed findings."""
    tree = ast.parse(source, filename=path)
    raw = raw_findings(tree, path)
    allowed = _suppressions(source)
    findings = []
    for finding in raw:
        rules = allowed.get(finding.line)
        if rules is not None and ("*" in rules or finding.rule in rules):
            continue
        findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def lint_file(path: Union[str, Path]) -> list[Finding]:
    path = Path(path)
    return lint_source(path.read_text(encoding="utf-8"), str(path))


def lint_paths(paths: Iterable[Union[str, Path]]) -> list[Finding]:
    """Lint every ``.py`` file under each path (file or directory tree)."""
    findings: list[Finding] = []
    for root in paths:
        root = Path(root)
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in files:
            findings.extend(lint_file(file))
    return findings
