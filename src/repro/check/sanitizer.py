"""Runtime RDMA sanitizer: invariant checks on the simulated data path.

The paper's security argument is about memory-protection mistakes —
guessable steering tags, buffers pinned forever, server memory exposed
to remote Reads — and four PRs of protocol code enforce the matching
invariants only implicitly.  This module makes them machine-checked:

========================  =============================================
rule                      checked where
========================  =============================================
``bounds`` / ``access``   RDMA Read/Write target validation in the HCA
                          delivery path, *before* the TPT lookup, so a
                          violation surfaces as a typed error rather
                          than a modeled NAK.
``stale-stag``            Every registration and invalidation bumps a
                          per-``(tpt, stag)`` epoch; work requests
                          snapshot the epochs they name at post time
                          and the HCA re-checks at execution/delivery.
                          This catches the FMR stag-reuse window — a WR
                          naming a stag that was unmapped and remapped
                          to a different buffer passes the TPT lookup
                          but fails the epoch check.
``chunk-lifetime``        Transports declare the chunk windows they
                          advertise in an RPC/RDMA header and retire
                          them when the call completes (client) or the
                          ``RDMA_DONE`` arrives (Read-Read server).  A
                          remote access outside every live window for
                          its stag — or against a retired stag the
                          registration cache kept valid — violates.
``srq``                   Shared-receive-pool slots follow a strict
                          posted → taken → posted cycle; double-post
                          (= double-recycle) and take-of-unposted fire.
``credits``               Conservation per connection: ``outstanding -
                          deficit <= grant`` and no release without an
                          acquire (checked against the manager's own
                          counters, never the pool level, so blocked
                          acquirers can't false-positive).
``drc``                   ``begin`` of a (xid, prog, proc) key whose
                          entry is still live = a re-execution the
                          exactly-once machinery should have stopped.
``leak``                  Teardown report: strategy acquire/release
                          imbalance, FMR mappings never unmapped, and
                          Read-Read exposures still awaiting DONE (the
                          paper's pinned-forever complaint).
========================  =============================================

Timing inertness: every hook only *reads* simulator state — no events,
no CPU charges, no RNG draws — so a sanitized run's figure tables are
bit-identical to an unsanitized run (asserted by ``repro check``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import (
    AccessViolation,
    BoundsViolation,
    ChunkLifetimeViolation,
    CreditViolation,
    DrcViolation,
    LeakViolation,
    SanitizerError,
    SrqViolation,
    StaleStagViolation,
)
from repro.ib.memory import AccessFlags
from repro.ib.phys import GLOBAL_STAG

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim import Simulator

__all__ = ["Sanitizer", "Violation"]

#: Rule names in reporting order (also the telemetry counter keys).
RULES = ("bounds", "access", "stale-stag", "chunk-lifetime", "srq",
         "credits", "drc", "leak", "nondeterminism")


@dataclass(frozen=True)
class Violation:
    """One recorded invariant violation."""

    rule: str
    message: str
    time: float


class Sanitizer:
    """Runtime invariant checker; attach via ``sim.sanitizer``.

    With ``raise_on_violation`` (the default) the offending hook raises
    the typed :class:`~repro.errors.SanitizerError` subclass at the
    exact simulated instant of the violation — the ASAN-style "crash at
    first badness".  With it off, violations are only recorded in
    :attr:`violations` (the soak/telemetry mode).
    """

    RULES = RULES

    def __init__(self, sim: "Simulator", raise_on_violation: bool = True):
        self.sim = sim
        self.raise_on_violation = raise_on_violation
        self.violations: list[Violation] = []
        self.counts: dict[str, int] = {rule: 0 for rule in RULES}
        # (tpt name, stag) -> registration epoch.  Bumped on every
        # register/map AND deregister/unmap/invalidate, so any epoch
        # change between snapshot and use means the binding changed.
        self._epoch: dict[tuple[str, int], int] = {}
        # (tpt name, stag) -> live advertised windows
        # [addr, length, xid, kind] with kind "read" | "write".
        self._advertised: dict[tuple[str, int], list[tuple[int, int, int, str]]] = {}
        # (tpt name, xid) -> stag keys advertised under that call.
        self._adv_by_xid: dict[tuple[str, int], list[tuple[str, int]]] = {}
        # Stags whose advertisements were all retired while the
        # registration itself stayed live (registration cache): writes
        # here are use-after-retire even though the TPT would allow them.
        self._retired: set[tuple[str, int]] = set()
        # (pool name, slot index) -> "posted" | "taken".
        self._srq_state: dict[tuple[str, int], str] = {}

    # -- reporting --------------------------------------------------------
    def _violate(self, exc_cls: type[SanitizerError], message: str) -> None:
        self.violations.append(Violation(exc_cls.rule, message, self.sim.now))
        self.counts[exc_cls.rule] += 1
        if self.raise_on_violation:
            raise exc_cls(f"[t={self.sim.now:.3f}us] {message}")

    @property
    def total_violations(self) -> int:
        return len(self.violations)

    # -- registration epochs (TPT / FMR hooks) ----------------------------
    def on_register(self, tpt, mr) -> None:
        """A stag was bound (TPT register or FMR map)."""
        key = (tpt.name, mr.stag)
        self._epoch[key] = self._epoch.get(key, 0) + 1
        # A fresh binding under a reused stag starts a new lifetime.
        self._retired.discard(key)

    def on_invalidate(self, tpt, mr) -> None:
        """A stag binding was dropped (deregister, FMR unmap, teardown)."""
        key = (tpt.name, mr.stag)
        self._epoch[key] = self._epoch.get(key, 0) + 1

    # -- work-request epoch snapshots -------------------------------------
    def on_post_send(self, qp, wr) -> None:
        """Snapshot the epochs of every stag the WR names, at post time."""
        tname = qp.hca.tpt.name
        segs = getattr(wr, "segments", None)
        if segs is None:
            segs = getattr(wr, "local", None)
        if segs:
            epoch = self._epoch
            wr._san_local = [
                (seg.stag, epoch.get((tname, seg.stag), 0))
                for seg in segs if seg.stag != GLOBAL_STAG
            ]
        remote = getattr(wr, "remote", None)
        if remote is not None and remote.stag != GLOBAL_STAG and qp.peer is not None:
            rname = qp.peer.hca.tpt.name
            wr._san_remote = (remote.stag, self._epoch.get((rname, remote.stag), 0))

    def on_wr_execute(self, hca, wr) -> None:
        """The HCA began executing ``wr``: its local stags must be unchanged."""
        snap = getattr(wr, "_san_local", None)
        if not snap:
            return
        tname = hca.tpt.name
        for stag, epoch in snap:
            current = self._epoch.get((tname, stag), 0)
            if current != epoch:
                self._violate(
                    StaleStagViolation,
                    f"{hca.name}: WR {wr.wr_id} executed with local stag "
                    f"{stag:#010x} whose registration changed since posting "
                    f"(epoch {epoch} -> {current})",
                )

    # -- remote target validation -----------------------------------------
    def _check_remote_epoch(self, tpt, wr) -> None:
        snap = getattr(wr, "_san_remote", None)
        if snap is None:
            return
        stag, epoch = snap
        current = self._epoch.get((tpt.name, stag), 0)
        if current != epoch:
            self._violate(
                StaleStagViolation,
                f"{tpt.name}: WR {wr.wr_id} targets stag {stag:#010x} whose "
                f"registration changed since posting (epoch {epoch} -> "
                f"{current}) — use-after-{'unmap' if current > epoch else 'free'}",
            )

    def _check_remote_mr(self, tpt, stag: int, addr: int, length: int,
                         need: AccessFlags, wr) -> None:
        mr = tpt._entries.get(stag)
        if mr is None or not mr.valid:
            self._violate(
                StaleStagViolation,
                f"{tpt.name}: WR {wr.wr_id} targets stag {stag:#010x} with no "
                f"live registration (use-after-deregister)",
            )
            return
        if need & ~mr.access:
            self._violate(
                AccessViolation,
                f"{tpt.name}: stag {stag:#010x} grants {mr.access!r} but WR "
                f"{wr.wr_id} needs {need!r}",
            )
        if addr < mr.addr or addr + length > mr.addr + mr.length:
            self._violate(
                BoundsViolation,
                f"{tpt.name}: access {addr:#x}+{length} outside MR "
                f"[{mr.addr:#x}, {mr.addr + mr.length:#x}) for stag {stag:#010x}",
            )

    def _check_chunk(self, tpt_name: str, stag: int, addr: int, length: int,
                     kind: str, wr) -> None:
        key = (tpt_name, stag)
        windows = self._advertised.get(key)
        if windows:
            for waddr, wlength, _xid, wkind in windows:
                if wkind == kind and waddr <= addr and addr + length <= waddr + wlength:
                    return
            self._violate(
                ChunkLifetimeViolation,
                f"{tpt_name}: RDMA {kind} {addr:#x}+{length} on stag "
                f"{stag:#010x} lands outside every advertised {kind} chunk",
            )
        elif key in self._retired:
            self._violate(
                ChunkLifetimeViolation,
                f"{tpt_name}: RDMA {kind} on stag {stag:#010x} after its "
                f"advertised chunk was retired (call already completed)",
            )
        # Never-advertised stags are raw verbs traffic (transport pools,
        # tests): bounds/access/epoch checks above still cover them.

    def on_rdma_write_target(self, tpt, wr, nbytes: int) -> None:
        """An RDMA Write is landing in ``tpt``'s memory."""
        if getattr(wr, "adversarial", False):
            # Modeled attack traffic (repro.security): the TPT's NAK is
            # the *expected* outcome, not an invariant violation.
            return
        remote = wr.remote
        if remote.stag == GLOBAL_STAG:
            return
        self._check_remote_epoch(tpt, wr)
        self._check_remote_mr(tpt, remote.stag, remote.addr, nbytes,
                              AccessFlags.REMOTE_WRITE, wr)
        self._check_chunk(tpt.name, remote.stag, remote.addr, nbytes, "write", wr)

    def on_rdma_read_target(self, tpt, wr) -> None:
        """An RDMA Read is being served from ``tpt``'s memory."""
        if getattr(wr, "adversarial", False):
            return
        remote = wr.remote
        if remote.stag == GLOBAL_STAG:
            return
        self._check_remote_epoch(tpt, wr)
        self._check_remote_mr(tpt, remote.stag, remote.addr, remote.length,
                              AccessFlags.REMOTE_READ, wr)
        self._check_chunk(tpt.name, remote.stag, remote.addr, remote.length,
                          "read", wr)

    # -- advertised-chunk lifetime ----------------------------------------
    def advertise(self, tpt_name: str, xid: int, chunks) -> None:
        """Declare the chunk windows an RPC/RDMA header exposes.

        ``tpt_name`` is the TPT of the *advertising* side (whose memory
        the peer will access).  Read chunks may be RDMA-Read, write and
        reply chunks RDMA-Written, until :meth:`retire` for ``xid``.
        """
        if chunks is None:
            return
        for chunk in chunks.read_chunks:
            self._advertise_segment(tpt_name, xid, chunk.segment, "read")
        for chunk in chunks.write_chunks:
            for seg in chunk.segments:
                self._advertise_segment(tpt_name, xid, seg, "write")
        if chunks.reply_chunk is not None:
            for seg in chunks.reply_chunk.segments:
                self._advertise_segment(tpt_name, xid, seg, "write")

    def _advertise_segment(self, tpt_name: str, xid: int, seg, kind: str) -> None:
        if seg.stag == GLOBAL_STAG:
            return
        key = (tpt_name, seg.stag)
        self._retired.discard(key)
        self._advertised.setdefault(key, []).append(
            (seg.addr, seg.length, xid, kind))
        self._adv_by_xid.setdefault((tpt_name, xid), []).append(key)

    def retire(self, tpt_name: str, xid: int) -> None:
        """The call owning ``xid``'s advertisements completed."""
        keys = self._adv_by_xid.pop((tpt_name, xid), None)
        if not keys:
            return
        for key in keys:
            windows = self._advertised.get(key)
            if windows is None:
                continue
            windows[:] = [w for w in windows if w[2] != xid]
            if not windows:
                del self._advertised[key]
                self._retired.add(key)

    # -- shared receive pool ----------------------------------------------
    def on_srq_post(self, pool, slot) -> None:
        key = (pool.name, slot.index)
        if self._srq_state.get(key) == "posted":
            self._violate(
                SrqViolation,
                f"{pool.name}: slot {slot.index} posted while already posted "
                f"(double-recycle)",
            )
        self._srq_state[key] = "posted"

    def on_srq_take(self, pool, slot) -> None:
        key = (pool.name, slot.index)
        if self._srq_state.get(key) != "posted":
            self._violate(
                SrqViolation,
                f"{pool.name}: slot {slot.index} taken while not posted",
            )
        self._srq_state[key] = "taken"

    # -- credit conservation ----------------------------------------------
    def check_credits(self, mgr) -> None:
        """Invariant after any acquire/release: derived from the pool
        algebra ``level + outstanding - deficit == grant`` with
        ``level >= 0``, but stated only in the manager's own counters so
        credits parked in transit to a blocked acquirer can't
        false-positive."""
        if mgr._outstanding < 0 or mgr._deficit < 0:
            self._violate(
                CreditViolation,
                f"{mgr.name}: negative accounting (outstanding="
                f"{mgr._outstanding}, deficit={mgr._deficit})",
            )
        elif mgr._outstanding - mgr._deficit > mgr.grant:
            self._violate(
                CreditViolation,
                f"{mgr.name}: {mgr._outstanding} outstanding exceeds grant "
                f"{mgr.grant} (deficit {mgr._deficit}) — more requests in "
                f"flight than receive buffers",
            )

    def credit_underflow(self, mgr) -> None:
        self._violate(
            CreditViolation,
            f"{mgr.name}: credit released but none outstanding",
        )

    # -- duplicate request cache ------------------------------------------
    def on_drc_begin(self, drc, xid: int, prog: int, proc: int) -> None:
        if (xid, prog, proc) in drc._entries:
            self._violate(
                DrcViolation,
                f"{drc.name}: began executing xid {xid:#x} prog {prog} proc "
                f"{proc} while its cache entry is live — exactly-once broken",
            )

    # -- teardown leak report ---------------------------------------------
    def leak_report(self, cluster) -> list[str]:
        """Buffers still pinned/registered once a cluster is quiescent."""
        leaks: list[str] = []
        strategies: list[tuple[str, object]] = []
        stacks = getattr(cluster, "all_stacks", None)
        if stacks is not None:
            # Sharded deployment: every server/data-server stack has its
            # own strategy; auditing only the first would hide leaks.
            for stack in stacks:
                strategies.append((stack.name, stack.strategy))
        else:
            server_strategy = getattr(cluster, "server_strategy", None)
            if server_strategy is not None:
                strategies.append(("server", server_strategy))
        for mux in (getattr(cluster, "muxes", None) or {}).values():
            for channel in mux.channels:
                strategies.append((channel.name, channel.strategy))
        for mount in getattr(cluster, "mounts", None) or []:
            strategy = getattr(mount.transport, "strategy", None)
            if strategy is not None:
                strategies.append((mount.node.name, strategy))
            # Striped mounts carry extra per-data-server transports.
            for dclient in getattr(mount.nfs, "data", None) or []:
                strategy = getattr(dclient.transport, "strategy", None)
                if strategy is not None:
                    strategies.append((dclient.name, strategy))
        seen: set[int] = set()
        for label, strategy in strategies:
            # Mux lanes share their channel's strategy — audit each once.
            if id(strategy) in seen:
                continue
            seen.add(id(strategy))
            held = strategy.acquires.events - strategy.releases.events
            if held > 0:
                leaks.append(
                    f"{label}/{strategy.name}: {held} region(s) acquired but "
                    f"never released"
                )
            fmr_pool = getattr(strategy, "pool", None)
            if fmr_pool is not None and hasattr(fmr_pool, "pool_size"):
                mapped = fmr_pool.pool_size - fmr_pool.available
                if mapped > 0:
                    leaks.append(
                        f"{label}/{strategy.name}: {mapped} FMR mapping(s) "
                        f"never unmapped"
                    )
        for transport in getattr(cluster, "server_transports", None) or []:
            pending = getattr(transport, "pending_done", None)
            if pending:
                leaks.append(
                    f"{transport.name}: {len(pending)} exposure(s) still "
                    f"awaiting RDMA_DONE (client-controlled lifetime)"
                )
        return leaks

    def check_teardown(self, cluster) -> None:
        """Raise/record a ``leak`` violation if the cluster leaks."""
        leaks = self.leak_report(cluster)
        if leaks:
            self._violate(LeakViolation, "; ".join(leaks))
