"""Shared front end: module loader, symbol table, call graph, summaries.

Every rule pack sees the same :class:`Program` — all modules under the
analysis root parsed once, every function/method indexed by dotted
qualname, and each call site resolved to its callee *conservatively*:
a call is bound only when the target is provably a function in the
program (a module-level name, a ``from``-import, a ``self.`` method
through the class's in-program MRO, or an ``alias.name`` attribute on
an imported module).  Unresolvable calls stay unbound — interprocedural
rules under-approximate rather than guess, which keeps them quiet on
dynamic dispatch they cannot see.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Union

__all__ = ["CallSite", "ClassInfo", "FunctionInfo", "Module", "Program",
           "dotted", "load_program", "load_source"]

_ALLOW_RE = re.compile(r"#\s*lint-sim:\s*allow\[([^\]]*)\]")


def dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class Module:
    """One parsed source file."""

    path: str
    name: str                      # dotted module name, e.g. "repro.core.base"
    tree: ast.Module
    source: str
    #: line -> rules listed in a lint-sim allow comment on that line.
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    #: ``import x.y as z`` -> {"z": "x.y"}
    import_aliases: dict[str, str] = field(default_factory=dict)
    #: ``from x import y as z`` -> {"z": ("x", "y")}
    from_imports: dict[str, tuple[str, str]] = field(default_factory=dict)


@dataclass
class CallSite:
    """One call expression inside a function body."""

    node: ast.Call
    #: dotted qualname of the resolved in-program callee, or None.
    callee: Optional[str]
    #: True when the call is the immediate operand of ``yield from``.
    in_yield_from: bool = False


@dataclass
class FunctionInfo:
    """Symbol-table entry + summary for one function or method."""

    qualname: str                  # "repro.core.base.Endpoint.call"
    module: Module
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    cls: Optional[str] = None      # owning class qualname, if a method
    is_generator: bool = False
    calls: list[CallSite] = field(default_factory=list)
    #: yield expressions lexically inside this function (not nested defs).
    yields: list[ast.expr] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def line(self) -> int:
        return self.node.lineno


@dataclass
class ClassInfo:
    qualname: str
    module: Module
    node: ast.ClassDef
    #: resolved in-program base-class qualnames, declaration order.
    bases: list[str] = field(default_factory=list)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)


class Program:
    """Every module under the analysis root, indexed and cross-linked."""

    def __init__(self, modules: list[Module]):
        self.modules = modules
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self._by_module: dict[str, Module] = {m.name: m for m in modules}
        for module in modules:
            self._index_module(module)
        for module in modules:
            self._resolve_calls(module)

    # -- indexing ---------------------------------------------------------
    def _index_module(self, module: Module) -> None:
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                self._index_import(module, stmt)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(module, stmt, cls=None)
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(module, stmt)

    def _index_import(self, module: Module,
                      stmt: Union[ast.Import, ast.ImportFrom]) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                name = alias.asname or alias.name.split(".")[0]
                module.import_aliases[name] = (alias.name if alias.asname
                                               else alias.name.split(".")[0])
            return
        if stmt.module is None or stmt.level:
            return  # relative imports are not used in this tree
        for alias in stmt.names:
            module.from_imports[alias.asname or alias.name] = (
                stmt.module, alias.name)

    def _index_class(self, module: Module, node: ast.ClassDef) -> None:
        qualname = f"{module.name}.{node.name}"
        info = ClassInfo(qualname=qualname, module=module, node=node)
        self.classes[qualname] = info
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._index_function(module, stmt, cls=qualname)
                info.methods[stmt.name] = fn

    def _index_function(self, module: Module, node, cls: Optional[str]
                        ) -> FunctionInfo:
        parent = cls or module.name
        qualname = f"{parent}.{node.name}"
        info = FunctionInfo(qualname=qualname, module=module, node=node,
                            cls=cls, is_generator=_is_generator(node))
        self.functions[qualname] = info
        # Nested defs are indexed as <outer>.<inner> (best-effort).
        for stmt in ast.walk(node):
            if stmt is node:
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested = f"{qualname}.{stmt.name}"
                if nested not in self.functions:
                    self.functions[nested] = FunctionInfo(
                        qualname=nested, module=module, node=stmt, cls=cls,
                        is_generator=_is_generator(stmt))
        return info

    # -- class resolution --------------------------------------------------
    def _finish_bases(self) -> None:
        for info in self.classes.values():
            if info.bases:
                continue
            for base in info.node.bases:
                resolved = self._resolve_symbol(info.module, base)
                if resolved in self.classes:
                    info.bases.append(resolved)

    def mro(self, cls_qualname: str) -> Iterator[ClassInfo]:
        """Best-effort linearization: the class, then bases depth-first."""
        seen: set[str] = set()
        stack = [cls_qualname]
        while stack:
            name = stack.pop(0)
            if name in seen or name not in self.classes:
                continue
            seen.add(name)
            info = self.classes[name]
            yield info
            stack.extend(info.bases)

    def method(self, cls_qualname: str, name: str) -> Optional[FunctionInfo]:
        for cls in self.mro(cls_qualname):
            fn = cls.methods.get(name)
            if fn is not None:
                return fn
        return None

    # -- call resolution ---------------------------------------------------
    def _resolve_symbol(self, module: Module, node: ast.AST) -> Optional[str]:
        """Dotted program qualname for a Name/Attribute reference."""
        name = dotted(node)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        # from x import y [as z]  ->  z(.rest)
        if head in module.from_imports:
            src, orig = module.from_imports[head]
            base = f"{src}.{orig}"
            return f"{base}.{rest}" if rest else base
        # import x.y [as z]  ->  z.attr
        if head in module.import_aliases:
            base = module.import_aliases[head]
            return f"{base}.{rest}" if rest else base
        # module-local symbol
        local = f"{module.name}.{name}"
        if (local in self.functions or local in self.classes
                or f"{module.name}.{head}" in self.classes):
            return local
        return None

    def _bind(self, module: Module, cls: Optional[str],
              func: ast.expr) -> Optional[str]:
        """Resolve one call's target to an in-program function qualname."""
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name) \
                and func.value.id == "self" and cls is not None:
            target = self.method(cls, func.attr)
            return target.qualname if target is not None else None
        resolved = self._resolve_symbol(module, func)
        if resolved is None:
            return None
        if resolved in self.functions:
            return resolved
        if resolved in self.classes:
            ctor = self.method(resolved, "__init__")
            return ctor.qualname if ctor is not None else None
        # classmethod/staticmethod access Cls.method
        parent, _, attr = resolved.rpartition(".")
        if parent in self.classes:
            target = self.method(parent, attr)
            return target.qualname if target is not None else None
        return None

    def _resolve_calls(self, module: Module) -> None:
        self._finish_bases()
        for info in self.functions.values():
            if info.module is not module or info.calls or info.yields:
                continue
            collector = _BodyCollector()
            collector.collect(info.node)
            info.yields = collector.yields
            for node, in_yf in collector.calls:
                info.calls.append(CallSite(
                    node=node,
                    callee=self._bind(module, info.cls, node.func),
                    in_yield_from=in_yf))

    # -- convenience -------------------------------------------------------
    def bind_callable(self, info: FunctionInfo,
                      expr: ast.expr) -> Optional[str]:
        """Public call-target resolution for a reference seen inside
        ``info`` (used by packs to bind callback/function arguments)."""
        return self._bind(info.module, info.cls, expr)

    def module(self, name: str) -> Optional[Module]:
        return self._by_module.get(name)

    def functions_in(self, module: Module) -> Iterator[FunctionInfo]:
        for info in self.functions.values():
            if info.module is module:
                yield info


class _BodyCollector(ast.NodeVisitor):
    """Calls + yields lexically inside one function (not nested defs)."""

    def __init__(self) -> None:
        self.calls: list[tuple[ast.Call, bool]] = []
        self.yields: list[ast.expr] = []
        self._yield_from_operands: set[int] = set()

    def collect(self, node) -> None:
        for stmt in node.body:
            self.visit(stmt)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested def: belongs to its own FunctionInfo

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        if isinstance(node.value, ast.Call):
            self._yield_from_operands.add(id(node.value))
        self.yields.append(node)
        self.generic_visit(node)

    def visit_Yield(self, node: ast.Yield) -> None:
        self.yields.append(node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        self.calls.append((node, id(node) in self._yield_from_operands))
        self.generic_visit(node)


def _is_generator(node) -> bool:
    return any(
        isinstance(n, (ast.Yield, ast.YieldFrom))
        for n in _walk_same_scope(node)
    )


def _walk_same_scope(node) -> Iterator[ast.AST]:
    """ast.walk that does not descend into nested function scopes."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def _suppressions(source: str) -> dict[int, set[str]]:
    """Per-line allow sets, read from *actual* comments only — a
    docstring that documents the ``# lint-sim: allow[...]`` syntax must
    neither suppress findings nor trip the unused-suppression audit."""
    allowed: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _ALLOW_RE.search(token.string)
            if match:
                allowed[token.start[0]] = {
                    r.strip() for r in match.group(1).split(",") if r.strip()}
    except tokenize.TokenizeError:
        pass
    return allowed


def load_source(source: str, path: str = "<string>",
                name: str = "repro.fixture") -> Module:
    """Parse one module from text (fixture tests use synthetic names)."""
    tree = ast.parse(source, filename=path)
    return Module(path=path, name=name, tree=tree, source=source,
                  suppressions=_suppressions(source))


def _module_name(root: Path, file: Path, package: str) -> str:
    rel = file.relative_to(root).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([package, *parts]) if parts else package


def load_program(root: Union[str, Path, None] = None,
                 package: str = "repro") -> Program:
    """Parse every ``.py`` under ``root`` (default: the installed
    ``repro`` package directory) into one :class:`Program`."""
    if root is None:
        import repro

        root = Path(repro.__file__).resolve().parent
    root = Path(root)
    modules = []
    for file in sorted(root.rglob("*.py")):
        source = file.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(file))
        modules.append(Module(
            path=str(file), name=_module_name(root, file, package),
            tree=tree, source=source, suppressions=_suppressions(source)))
    return Program(modules)
