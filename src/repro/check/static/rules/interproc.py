"""Pack ``interproc`` — rule ``purity-escape``.

The intraprocedural purity rules flag a wall-clock read or global-RNG
draw *where it is written*.  What they cannot see is laundering through
a helper: a host-side utility with a legitimate
``# lint-sim: allow[wallclock]`` (bench timing, report stamps) that sim
code later starts calling — the direct finding stays suppressed at the
definition site and the nondeterminism walks into the schedule unseen.

This pack computes per-function *effect summaries* — the set of purity
effects a function performs directly (suppressed or not: a suppression
justifies the effect at its own site, never for new callers) — and
propagates them over the front end's call graph to a fixpoint.  A call
site inside a sim-scope module whose (transitively resolved) callee
carries any effect is a ``purity-escape`` finding, with the call chain
spelled out in the message.

Direct effect sources are the purity pack's wallclock/global-random/
set-iteration detectors plus an ``entropy`` class for ``os.urandom``,
``uuid.uuid1/4`` and ``secrets.*`` (process-unique values that no
intraprocedural rule previously covered).
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.check.purity import Finding, raw_findings
from repro.check.static.frontend import FunctionInfo, Program, dotted
from repro.check.static.rules import RulePack

RULE = "purity-escape"

#: effects that poison callers (mutable-default is a definition-site
#: property, not a runtime effect, so it does not propagate).
PROPAGATED = ("wallclock", "global-random", "set-iteration", "entropy")

#: module prefixes whose call sites must stay effect-free: everything
#: that runs inside the simulated schedule.
SIM_PREFIXES = (
    "repro.core.", "repro.ib.", "repro.rpc.", "repro.nfs.", "repro.fs.",
    "repro.sim.", "repro.osmodel.", "repro.tcpip.", "repro.faults.",
    "repro.workloads.", "repro.security.",
)

_ENTROPY_CALLS = {
    "os.urandom": "os.urandom()",
    "uuid.uuid1": "uuid.uuid1()",
    "uuid.uuid4": "uuid.uuid4()",
}


def _in_sim_scope(module_name: str) -> bool:
    return module_name.startswith(SIM_PREFIXES)


def _function_span(info: FunctionInfo) -> tuple[int, int]:
    return info.node.lineno, getattr(info.node, "end_lineno", info.node.lineno)


def _direct_effects(program: Program) -> dict[str, dict[str, str]]:
    """qualname -> {effect rule -> detail} for directly-performed effects."""
    effects: dict[str, dict[str, str]] = {}

    # Purity detector findings, attributed to the innermost enclosing
    # function by line span.
    per_module: dict[str, list[Finding]] = {}
    for module in program.modules:
        per_module[module.name] = [
            f for f in raw_findings(module.tree, module.path)
            if f.rule in PROPAGATED
        ]
    for info in program.functions.values():
        lo, hi = _function_span(info)
        owned: dict[str, str] = {}
        for finding in per_module.get(info.module.name, ()):
            if lo <= finding.line <= hi:
                owned.setdefault(finding.rule,
                                 f"{finding.rule} at line {finding.line}")
        # entropy sources the purity pack does not model
        for site in info.calls:
            name = dotted(site.node.func)
            if name is None:
                continue
            tail = ".".join(name.split(".")[-2:])
            if tail in _ENTROPY_CALLS:
                owned.setdefault("entropy", _ENTROPY_CALLS[tail])
            elif name.split(".")[0] == "secrets" and "." in name:
                owned.setdefault("entropy", f"{name}()")
        if owned:
            effects[info.qualname] = owned
    return effects


def _propagate(program: Program, direct: dict[str, dict[str, str]]
               ) -> dict[str, dict[str, tuple[str, str]]]:
    """Fixpoint: qualname -> {effect -> (via qualname, detail)}.

    ``via`` is the immediate callee through which the effect arrives
    (or the function itself for direct effects), giving findings a
    one-hop-at-a-time chain that is stable under iteration order.
    """
    summary: dict[str, dict[str, tuple[str, str]]] = {
        fn: {rule: (fn, detail) for rule, detail in owned.items()}
        for fn, owned in direct.items()
    }
    changed = True
    while changed:
        changed = False
        for info in program.functions.values():
            mine = summary.setdefault(info.qualname, {})
            for site in info.calls:
                if site.callee is None or site.callee == info.qualname:
                    continue
                for rule, (_via, detail) in summary.get(site.callee,
                                                        {}).items():
                    if rule not in mine:
                        mine[rule] = (site.callee, detail)
                        changed = True
    return {fn: eff for fn, eff in summary.items() if eff}


def _chain(summary: dict[str, dict[str, tuple[str, str]]],
           start: str, rule: str, limit: int = 6) -> list[str]:
    chain = [start]
    current = start
    for _ in range(limit):
        via, _detail = summary[current][rule]
        if via == current:
            break
        chain.append(via)
        current = via
    return chain


def run(program: Program) -> list[Finding]:
    direct = _direct_effects(program)
    summary = _propagate(program, direct)
    findings: list[Finding] = []
    for info in program.functions.values():
        if not _in_sim_scope(info.module.name):
            continue
        for site in info.calls:
            callee: Optional[str] = site.callee
            if callee is None or callee == info.qualname:
                continue
            for rule, (_via, detail) in sorted(summary.get(callee,
                                                           {}).items()):
                chain = _chain(summary, callee, rule)
                path = " -> ".join(chain)
                findings.append(Finding(
                    info.module.path, site.node.lineno, RULE,
                    f"call to {callee} reaches {rule} ({detail}) "
                    f"via {path}; sim code must not launder impurity "
                    f"through helpers"))
    return findings


PACK = RulePack(
    name="interproc",
    rules=(RULE,),
    doc="wallclock/global-RNG/set-iteration/entropy effects reached "
        "through helper calls from sim-scope code",
    run=run,
)
