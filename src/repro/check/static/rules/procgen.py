"""Pack ``procgen`` — simulation process/generator discipline.

Three rules over the engine's process model (DESIGN.md §13):

``process-yield``
    A *process generator* — one handed to ``sim.process(...)`` /
    ``Process(...)``, or reached from one via ``yield from`` — may only
    yield Event-producing expressions.  ``yield 5``, ``yield None`` or
    yielding a literal container is a guaranteed
    ``SimulationError: yielded X, expected Event`` at runtime; the rule
    moves that crash to lint time.  (Plain data iterators are *not*
    process generators and stay free to yield anything.)

``callback-yield``
    Functions registered as event callbacks (``ev.callbacks.append(f)``)
    are invoked synchronously by the scheduler with the event as the
    sole argument; a *generator* function registered there silently
    builds a generator object and never runs.  Flag any callback
    registration whose resolved target is a generator function.

``double-trigger``
    ``Event.succeed()``/``fail()`` raise ``SimulationError`` on an
    already-triggered event.  Two static shapes are flagged: a second
    trigger of the same receiver in the same straight-line block, and a
    trigger inside a loop whose receiver is loop-invariant (bound
    outside the loop, never reassigned inside, no ``.triggered`` guard
    in the loop body).
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.check.purity import Finding
from repro.check.static.frontend import FunctionInfo, Program, dotted
from repro.check.static.rules import RulePack

RULES = ("process-yield", "callback-yield", "double-trigger")

#: yield operands that can never produce an Event.
_NON_EVENT_YIELDS = (ast.Constant, ast.List, ast.Tuple, ast.Dict, ast.Set,
                     ast.ListComp, ast.SetComp, ast.DictComp, ast.JoinedStr,
                     ast.BinOp, ast.BoolOp, ast.Compare, ast.UnaryOp)


# -- process-generator discovery -----------------------------------------
def _process_seeds(program: Program) -> set[str]:
    """Generator functions whose calls are passed to ``sim.process()``
    or a ``Process(...)`` constructor anywhere in the program."""
    seeds: set[str] = set()
    for info in program.functions.values():
        for site in info.calls:
            func = site.node.func
            is_spawn = (isinstance(func, ast.Attribute)
                        and func.attr == "process")
            if not is_spawn:
                name = dotted(func)
                is_spawn = name is not None and name.split(".")[-1] == "Process"
            if not is_spawn or not site.node.args:
                continue
            for arg in site.node.args:
                if not isinstance(arg, ast.Call):
                    continue
                target = program.bind_callable(info, arg.func)
                if target is not None and program.functions[target].is_generator:
                    seeds.add(target)
    return seeds


def _process_generators(program: Program) -> set[str]:
    """Seeds plus everything reached from them via ``yield from``."""
    members = _process_seeds(program)
    queue = list(members)
    while queue:
        current = program.functions.get(queue.pop())
        if current is None:
            continue
        for site in current.calls:
            if not site.in_yield_from or site.callee is None:
                continue
            callee = program.functions.get(site.callee)
            if callee is not None and callee.is_generator \
                    and site.callee not in members:
                members.add(site.callee)
                queue.append(site.callee)
    return members


def _check_yields(info: FunctionInfo, findings: list[Finding]) -> None:
    for node in info.yields:
        if isinstance(node, ast.YieldFrom):
            continue
        value = node.value
        if value is None or isinstance(value, _NON_EVENT_YIELDS):
            shown = ("bare yield" if value is None
                     else f"yield of {type(value).__name__}")
            findings.append(Finding(
                info.module.path, node.lineno, "process-yield",
                f"{shown} in process generator {info.name}(); process "
                f"generators may only yield Event/Timeout-producing "
                f"expressions"))


# -- callback-yield -------------------------------------------------------
def _check_callbacks(program: Program, info: FunctionInfo,
                     findings: list[Finding]) -> None:
    for site in info.calls:
        func = site.node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "append"):
            continue
        owner = func.value
        if not (isinstance(owner, ast.Attribute)
                and owner.attr == "callbacks"):
            continue
        for arg in site.node.args:
            target: Optional[str] = None
            if isinstance(arg, (ast.Name, ast.Attribute)):
                target = program.bind_callable(info, arg)
            if target is None:
                continue
            callee = program.functions.get(target)
            if callee is not None and callee.is_generator:
                findings.append(Finding(
                    info.module.path, site.node.lineno, "callback-yield",
                    f"generator function {callee.name}() registered as an "
                    f"event callback; callbacks run synchronously and must "
                    f"not yield"))


# -- double-trigger -------------------------------------------------------
def _trigger_receiver(node: ast.AST) -> Optional[str]:
    """Dotted receiver of an ``X.succeed()``/``X.fail()`` call."""
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("succeed", "fail")):
        return dotted(node.func.value)
    return None


def _stmt_triggers(stmt: ast.stmt) -> list[tuple[str, int]]:
    """Receivers triggered directly by this simple statement."""
    out = []
    for node in ast.walk(stmt):
        receiver = _trigger_receiver(node)
        if receiver is not None:
            out.append((receiver, node.lineno))
    return out


def _assigns(stmt: ast.stmt) -> set[str]:
    return {n.id for n in ast.walk(stmt)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Store)}


def _has_triggered_guard(body: list[ast.stmt], receiver: str) -> bool:
    base = receiver.split(".")[0]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Attribute) and node.attr == "triggered":
                guard_of = dotted(node.value)
                if guard_of is not None and (
                        guard_of == receiver
                        or guard_of.split(".")[0] == base):
                    return True
    return False


_COMPOUND = (ast.If, ast.For, ast.While, ast.Try, ast.With, ast.Match)


def _check_block(path: str, stmts: list[ast.stmt],
                 findings: list[Finding]) -> None:
    fired: dict[str, int] = {}
    for stmt in stmts:
        if isinstance(stmt, _COMPOUND):
            # control flow between triggers: previous triggers may be
            # conditional on this one's path — stop the straight-line
            # tracking and recurse into the nested blocks.
            fired.clear()
            _check_compound(path, stmt, findings)
            continue
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        assigned = _assigns(stmt)
        for name in list(fired):
            if name.split(".")[0] in assigned:
                del fired[name]
        for receiver, lineno in _stmt_triggers(stmt):
            first = fired.get(receiver)
            if first is not None:
                findings.append(Finding(
                    path, lineno, "double-trigger",
                    f"{receiver}.succeed()/fail() already triggered at "
                    f"line {first} in the same block; triggering an "
                    f"already-triggered Event raises SimulationError"))
            else:
                fired[receiver] = lineno


def _check_compound(path: str, stmt: ast.stmt,
                    findings: list[Finding]) -> None:
    if isinstance(stmt, (ast.For, ast.While)):
        assigned = set()
        for inner in stmt.body:
            assigned |= _assigns(inner)
        if isinstance(stmt, ast.For):
            for node in ast.walk(stmt.target):
                if isinstance(node, ast.Name):
                    assigned.add(node.id)
        for inner in stmt.body:
            for receiver, lineno in _stmt_triggers(inner):
                base = receiver.split(".")[0]
                if base == "self" or base in assigned:
                    continue
                if _has_triggered_guard(stmt.body, receiver):
                    continue
                findings.append(Finding(
                    path, lineno, "double-trigger",
                    f"loop-invariant {receiver} triggered inside a loop "
                    f"with no .triggered guard; the second iteration "
                    f"raises SimulationError"))
    for body in (getattr(stmt, "body", []), getattr(stmt, "orelse", []),
                 getattr(stmt, "finalbody", [])):
        if body and not isinstance(stmt, (ast.For, ast.While)):
            _check_block(path, body, findings)
        elif body:
            for inner in body:
                if isinstance(inner, _COMPOUND):
                    _check_compound(path, inner, findings)
    for handler in getattr(stmt, "handlers", []):
        _check_block(path, handler.body, findings)


def run(program: Program) -> list[Finding]:
    findings: list[Finding] = []
    members = _process_generators(program)
    for qualname in sorted(members):
        _check_yields(program.functions[qualname], findings)
    for info in program.functions.values():
        _check_callbacks(program, info, findings)
        _check_block(info.module.path, list(info.node.body), findings)
    return findings


PACK = RulePack(
    name="procgen",
    rules=RULES,
    doc="process generators yield Events only; callbacks must not "
        "yield; no double succeed/fail on one Event",
    run=run,
)
