"""Pack ``zerocost`` — rule ``zero-cost-off``.

The observability contract (DESIGN.md §9/§11): when telemetry and the
sanitizer are off, ``sim.telemetry`` / ``sim.sanitizer`` are ``None``
and every hot-path touchpoint costs exactly one attribute load plus an
``is None`` test.  That only holds if every touchpoint actually *has*
the test: an unguarded ``sim.telemetry.tracer.begin(...)`` either
crashes with the knob off or — worse — quietly forces the knob on.

This rule checks, in the hot-path packages (``repro.rpc``, ``repro.ib``,
``repro.nfs``, ``repro.core``, ``repro.fs``), that every *use* (attribute
access or call) of a sentinel value is dominated by a ``None`` guard:

* sentinel sources: any dotted chain ending ``.telemetry`` or
  ``.sanitizer``, locals assigned from one (``san = self.sim.sanitizer``),
  the derived ``<sentinel>.tracer`` handle, and ``x if c else None``
  conditionals over those;
* accepted guards: ``if x is not None: ...``, early-exit ``if x is
  None: return/raise/continue``, truthiness tests, ``and``/``or``
  short-circuit accumulation, conditional expressions, ``assert x is
  not None``.

The walker is a dominance *approximation*: guards established inside a
branch do not leak past it unless the other branch terminates, and any
reassignment invalidates the guard.  False positives are suppressible
with ``# lint-sim: allow[zero-cost-off]`` plus a justification.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.check.purity import Finding
from repro.check.static.frontend import FunctionInfo, Program, dotted
from repro.check.static.rules import RulePack

RULE = "zero-cost-off"

#: attribute tails that mark a maybe-None hot-path sentinel.
SENTINEL_ATTRS = frozenset({"telemetry", "sanitizer"})
#: attributes of a sentinel that are themselves maybe-None handles.
DERIVED_ATTRS = frozenset({"tracer"})

#: module prefixes whose touchpoints must stay zero-cost when off.
HOT_PREFIXES = ("repro.rpc.", "repro.ib.", "repro.nfs.", "repro.core.",
                "repro.fs.")


def _is_hot(module_name: str) -> bool:
    return module_name.startswith(HOT_PREFIXES)


def _is_none(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


class _FunctionWalker:
    """Guard-dominance walk over one function body."""

    def __init__(self, path: str, findings: list[Finding]):
        self.path = path
        self.findings = findings
        #: local names currently bound to a maybe-None sentinel.
        self.tracked: set[str] = set()

    # -- sentinel identification ----------------------------------------
    def _key(self, node: ast.expr) -> Optional[str]:
        """Sentinel key for an expression, or None if not a sentinel."""
        if isinstance(node, ast.Name) and node.id in self.tracked:
            return node.id
        if isinstance(node, ast.Attribute):
            if node.attr in SENTINEL_ATTRS:
                name = dotted(node)
                if name is not None and "." in name:
                    return name
            # telemetry.tracer is itself maybe-None and guardable:
            # "if telemetry.tracer is None: return" must dominate uses.
            if node.attr in DERIVED_ATTRS and self._key(node.value) is not None:
                return dotted(node)
        return None

    def _origin(self, node: ast.expr, guarded: set[str]) -> bool:
        """Is ``node`` a maybe-None sentinel-producing expression?"""
        if self._key(node) is not None:
            return True
        if (isinstance(node, ast.Attribute) and node.attr in DERIVED_ATTRS
                and self._key(node.value) is not None):
            return True
        if isinstance(node, ast.IfExp) and _is_none(node.orelse):
            return self._origin(node.body, guarded)
        return False

    # -- guard extraction -------------------------------------------------
    def _if_true(self, test: ast.expr) -> set[str]:
        """Sentinel keys proven non-None when ``test`` is truthy."""
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            key = self._key(test.left)
            if key is not None and _is_none(test.comparators[0]):
                return {key} if isinstance(test.ops[0], ast.IsNot) else set()
            return set()
        key = self._key(test)
        if key is not None:
            return {key}
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return self._if_false(test.operand)
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            out: set[str] = set()
            for value in test.values:
                out |= self._if_true(value)
            return out
        return set()

    def _if_false(self, test: ast.expr) -> set[str]:
        """Sentinel keys proven non-None when ``test`` is falsy."""
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            key = self._key(test.left)
            if key is not None and _is_none(test.comparators[0]):
                return {key} if isinstance(test.ops[0], ast.Is) else set()
            return set()
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return self._if_true(test.operand)
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
            out: set[str] = set()
            for value in test.values:
                out |= self._if_false(value)
            return out
        return set()

    # -- expression scan ---------------------------------------------------
    def _flag(self, node: ast.AST, key: str) -> None:
        self.findings.append(Finding(
            self.path, getattr(node, "lineno", 0), RULE,
            f"{key} used without a dominating 'is None' guard; hot-path "
            f"telemetry/sanitizer touchpoints must be zero-cost when off"))

    def scan(self, node: Optional[ast.expr], guarded: set[str]) -> None:
        if node is None:
            return
        if isinstance(node, ast.BoolOp):
            acc = set(guarded)
            for value in node.values:
                self.scan(value, acc)
                acc |= (self._if_true(value)
                        if isinstance(node.op, ast.And)
                        else self._if_false(value))
            return
        if isinstance(node, ast.IfExp):
            self.scan(node.test, guarded)
            self.scan(node.body, guarded | self._if_true(node.test))
            self.scan(node.orelse, guarded | self._if_false(node.test))
            return
        if isinstance(node, ast.Attribute):
            key = self._key(node.value)
            if key is not None and key not in guarded:
                self._flag(node, key)
            self.scan(node.value, guarded)
            return
        if isinstance(node, ast.Call):
            key = self._key(node.func)
            if key is not None and key not in guarded:
                self._flag(node, key)
            for child in ast.iter_child_nodes(node):
                self.scan(child, guarded)  # type: ignore[arg-type]
            return
        if isinstance(node, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # separate scope
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.scan(child, guarded)
            elif isinstance(child, (ast.comprehension, ast.keyword,
                                    ast.Starred)):
                for sub in ast.iter_child_nodes(child):
                    if isinstance(sub, ast.expr):
                        self.scan(sub, guarded)

    # -- statement walk ----------------------------------------------------
    def _assigned_names(self, stmts: list[ast.stmt]) -> set[str]:
        out: set[str] = set()
        for stmt in stmts:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Name) and isinstance(
                        node.ctx, ast.Store):
                    out.add(node.id)
        return out

    def _handle_assign(self, targets: list[ast.expr], value: Optional[ast.expr],
                       guarded: set[str]) -> None:
        if value is not None:
            self.scan(value, guarded)
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if value is not None and self._origin(value, guarded):
            src_key = self._key(value)
            alias_guarded = src_key is not None and src_key in guarded
            for name in names:
                self.tracked.add(name)
                guarded.discard(name)
                if alias_guarded:
                    guarded.add(name)
        else:
            for name in names:
                self.tracked.discard(name)
                guarded.discard(name)

    def walk(self, stmts: list[ast.stmt], guarded: set[str]) -> bool:
        """Process a block; returns True if every path terminates."""
        for stmt in stmts:
            if isinstance(stmt, ast.Assign):
                self._handle_assign(stmt.targets, stmt.value, guarded)
            elif isinstance(stmt, ast.AnnAssign):
                self._handle_assign([stmt.target], stmt.value, guarded)
            elif isinstance(stmt, ast.AugAssign):
                self.scan(stmt.value, guarded)
            elif isinstance(stmt, ast.Expr):
                self.scan(stmt.value, guarded)
            elif isinstance(stmt, ast.Return):
                self.scan(stmt.value, guarded)
                return True
            elif isinstance(stmt, ast.Raise):
                self.scan(stmt.exc, guarded)
                return True
            elif isinstance(stmt, (ast.Continue, ast.Break)):
                return True
            elif isinstance(stmt, ast.Assert):
                self.scan(stmt.test, guarded)
                guarded |= self._if_true(stmt.test)
            elif isinstance(stmt, ast.If):
                self.scan(stmt.test, guarded)
                true_g = self._if_true(stmt.test)
                false_g = self._if_false(stmt.test)
                touched = self._assigned_names(stmt.body + stmt.orelse)
                body_term = self.walk(stmt.body, guarded | true_g)
                else_term = (self.walk(stmt.orelse, guarded | false_g)
                             if stmt.orelse else False)
                guarded -= touched
                if body_term and else_term:
                    return True
                if body_term:
                    guarded |= false_g - touched
                elif else_term:
                    guarded |= true_g - touched
            elif isinstance(stmt, ast.While):
                self.scan(stmt.test, guarded)
                touched = self._assigned_names(stmt.body)
                self.walk(stmt.body,
                          (guarded | self._if_true(stmt.test)) - touched)
                guarded -= touched
                self.walk(stmt.orelse, set(guarded))
            elif isinstance(stmt, ast.For):
                self.scan(stmt.iter, guarded)
                touched = self._assigned_names(stmt.body) | \
                    self._assigned_names([stmt])
                self.walk(stmt.body, guarded - touched)
                guarded -= touched
                self.walk(stmt.orelse, set(guarded))
            elif isinstance(stmt, ast.Try):
                touched = self._assigned_names([stmt])
                self.walk(stmt.body, set(guarded))
                for handler in stmt.handlers:
                    self.walk(handler.body, guarded - touched)
                self.walk(stmt.orelse, set(guarded))
                self.walk(stmt.finalbody, guarded - touched)
                guarded -= touched
            elif isinstance(stmt, ast.With):
                for item in stmt.items:
                    self.scan(item.context_expr, guarded)
                if self.walk(stmt.body, guarded):
                    return True
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                continue  # separate scope, walked via its own FunctionInfo
            elif isinstance(stmt, ast.Delete):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.tracked.discard(target.id)
                        guarded.discard(target.id)
        return False


def _check_function(info: FunctionInfo, findings: list[Finding]) -> None:
    walker = _FunctionWalker(info.module.path, findings)
    walker.walk(list(info.node.body), set())


def run(program: Program) -> list[Finding]:
    findings: list[Finding] = []
    for module in program.modules:
        if not _is_hot(module.name):
            continue
        for info in program.functions_in(module):
            _check_function(info, findings)
    return findings


PACK = RulePack(
    name="zerocost",
    rules=(RULE,),
    doc="telemetry/sanitizer touchpoints in hot-path modules must be "
        "dominated by an 'is None' guard (zero-cost when off)",
    run=run,
)
