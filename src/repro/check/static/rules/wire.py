"""Pack ``wire`` — rule ``wire-symmetry``.

Encode/decode pairing for the wire codecs.  The golden-table contract
"v1 framing byte-for-byte when no lane is set" (and its v2 sibling for
the mux lane words, DESIGN.md §15) lives entirely in hand-paired
``encode``/``decode`` bodies: a field written but never read, read in a
different order, or guarded by mismatched conditionals silently skews
every simulated wire size.

For every codec pair in the wire modules — classes defining both
``encode`` and ``decode``, plus module-level ``encode_X``/``decode_X``
function pairs — the rule abstracts each body into an ordered token
sequence:

* primitive ops on the encoder/decoder handle (``u32``, ``u64``,
  ``opaque``, ``string``, ``boolean``; ``raw`` pairs with
  ``remainder``), including chained calls (``enc.u32(0).opaque(b"")``);
* ``array(...)`` / ``optional(...)`` combinators, recursing into their
  lambda (or named-function) item codecs;
* ``nested`` for a sub-codec invocation (``self.chunks.encode(enc)`` /
  ``ChunkList.decode(dec)`` / ``_encode_segment(e, ...)``);
* ``opt[...]`` groups for tokens under an ``if`` (version/flag-gated
  fields — both sides must gate the same token run at the same spot);
* ``many[...]`` groups for tokens inside a loop.

The two sequences must match element-for-element; the finding names the
first divergence from both sides.  Tokens appearing in an ``if`` *test*
(``if dec.u32() != CALL: raise``) count as unconditional — the read
happens on every path.
"""

from __future__ import annotations

import ast
from typing import Optional, Union

from repro.check.purity import Finding
from repro.check.static.frontend import FunctionInfo, Module, Program, dotted
from repro.check.static.rules import RulePack

RULE = "wire-symmetry"

#: modules containing hand-paired wire codecs.  rpc.lanes carries the
#: v2 lane-framing bookkeeping (the lane words themselves are encoded
#: by core.header's version-2 arm, which this list covers).
WIRE_MODULES = (
    "repro.core.header",
    "repro.core.chunks",
    "repro.rpc.msg",
    "repro.rpc.lanes",
    "repro.nfs.fh",
    "repro.nfs.protocol",
)

#: primitive token spellings, normalized encode <-> decode.
_PRIMITIVES = {
    "u32": "u32", "u64": "u64", "i32": "i32", "i64": "i64",
    "opaque": "opaque", "string": "string", "boolean": "boolean",
    "raw": "raw", "remainder": "raw",
}
_COMBINATORS = {"array", "optional"}

Token = Union[str, tuple]  # "u32" | ("opt"|"many"|"array"|"optional", [...]) | "nested"


def _fmt(tokens: list[Token]) -> str:
    parts = []
    for token in tokens:
        if isinstance(token, tuple):
            parts.append(f"{token[0]}[{_fmt(token[1])}]")
        else:
            parts.append(token)
    return " ".join(parts)


class _TokenExtractor:
    """Ordered codec-op tokens for one encode/decode body."""

    def __init__(self, handles: set[str]):
        #: names bound to the encoder/decoder (parameter or local).
        self.handles = set(handles)

    def _is_handle(self, node: ast.expr) -> bool:
        return isinstance(node, ast.Name) and node.id in self.handles

    def _handle_passed(self, call: ast.Call) -> bool:
        return any(self._is_handle(a) for a in call.args) or any(
            self._is_handle(k.value) for k in call.keywords)

    def _unchain(self, call: ast.Call) -> list[ast.Call]:
        """``enc.u32(0).opaque(b"")`` -> [u32 call, opaque call]."""
        chain: list[ast.Call] = []
        node: ast.expr = call
        while (isinstance(node, ast.Call)
               and isinstance(node.func, ast.Attribute)):
            chain.append(node)
            node = node.func.value
        if self._is_handle(node):
            return list(reversed(chain))
        return []

    def _lambda_tokens(self, fn: ast.expr) -> list[Token]:
        """Tokens of an item-codec argument (lambda or function ref)."""
        if isinstance(fn, ast.Lambda):
            inner = _TokenExtractor({a.arg for a in fn.args.args})
            return inner.expr_tokens(fn.body)
        if isinstance(fn, (ast.Name, ast.Attribute)):
            return ["nested"]
        return []

    def expr_tokens(self, node: Optional[ast.expr]) -> list[Token]:
        if node is None:
            return []
        out: list[Token] = []
        if isinstance(node, ast.Call):
            chain = self._unchain(node)
            if chain:
                for link in chain:
                    assert isinstance(link.func, ast.Attribute)
                    op = link.func.attr
                    # arguments evaluate before the op applies
                    for arg in link.args:
                        out.extend(self.expr_tokens(arg))
                    for kw in link.keywords:
                        out.extend(self.expr_tokens(kw.value))
                    if op in _PRIMITIVES:
                        out.append(_PRIMITIVES[op])
                    elif op in _COMBINATORS:
                        inner: list[Token] = []
                        for arg in link.args:
                            inner = self._lambda_tokens(arg) or inner
                        out.append((op, inner))
                return out
            # a call that receives the handle is a nested sub-codec
            tokens: list[Token] = []
            for child in list(node.args) + [k.value for k in node.keywords]:
                tokens.extend(self.expr_tokens(child))
            if self._handle_passed(node):
                return tokens + ["nested"]
            return tokens
        if isinstance(node, (ast.Lambda, ast.FunctionDef)):
            return []
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                out.extend(self.expr_tokens(child))
            elif isinstance(child, ast.keyword):
                out.extend(self.expr_tokens(child.value))
            elif isinstance(child, ast.comprehension):
                # [X(s) for s in dec.array(...)] — the codec op lives
                # in the comprehension's iterator.
                out.extend(self.expr_tokens(child.iter))
                for test in child.ifs:
                    out.extend(self.expr_tokens(test))
        return out

    def _grouped(self, tokens: list[Token], kind: str) -> list[Token]:
        return [(kind, tokens)] if tokens else []

    def block_tokens(self, stmts: list[ast.stmt]) -> list[Token]:
        out: list[Token] = []
        for stmt in stmts:
            if isinstance(stmt, (ast.Expr, ast.Return)):
                out.extend(self.expr_tokens(stmt.value))
            elif isinstance(stmt, ast.Assign):
                out.extend(self.expr_tokens(stmt.value))
            elif isinstance(stmt, ast.AnnAssign):
                out.extend(self.expr_tokens(stmt.value))
            elif isinstance(stmt, ast.AugAssign):
                out.extend(self.expr_tokens(stmt.value))
            elif isinstance(stmt, ast.If):
                out.extend(self.expr_tokens(stmt.test))
                body = self.block_tokens(stmt.body)
                orelse = self.block_tokens(stmt.orelse)
                if body and orelse:
                    # both arms read/write: either arm runs, so the
                    # group is conditional with two shapes — encode it
                    # as opt[body] opt[orelse] for positional matching.
                    out.extend(self._grouped(body, "opt"))
                    out.extend(self._grouped(orelse, "opt"))
                else:
                    out.extend(self._grouped(body or orelse, "opt"))
            elif isinstance(stmt, (ast.For, ast.While)):
                inner = self.block_tokens(stmt.body)
                if isinstance(stmt, ast.For):
                    out.extend(self.expr_tokens(stmt.iter))
                else:
                    out.extend(self.expr_tokens(stmt.test))
                out.extend(self._grouped(inner, "many"))
            elif isinstance(stmt, ast.Try):
                out.extend(self.block_tokens(stmt.body))
                out.extend(self.block_tokens(stmt.orelse))
                out.extend(self.block_tokens(stmt.finalbody))
            elif isinstance(stmt, ast.With):
                for item in stmt.items:
                    out.extend(self.expr_tokens(item.context_expr))
                out.extend(self.block_tokens(stmt.body))
            elif isinstance(stmt, ast.Raise):
                continue  # error path, not a field
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                continue
        return out


def _codec_handles(info: FunctionInfo) -> set[str]:
    """Names bound to the encoder/decoder inside one codec body:
    parameters annotated/named enc/dec/e/d plus locals assigned from an
    ``Xdr{Encoder,Decoder}(...)`` constructor."""
    handles = {a.arg for a in info.node.args.args
               if a.arg in ("enc", "dec", "e", "d", "encoder", "decoder")}
    for stmt in info.node.body:
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
            name = dotted(stmt.value.func) or ""
            if name.split(".")[-1] in ("XdrEncoder", "XdrDecoder"):
                handles.update(t.id for t in stmt.targets
                               if isinstance(t, ast.Name))
    return handles


def _tokens_for(info: FunctionInfo) -> list[Token]:
    extractor = _TokenExtractor(_codec_handles(info))
    return extractor.block_tokens(list(info.node.body))


def _match(enc: list[Token], dec: list[Token]) -> Optional[str]:
    """None when symmetric, else a first-divergence description."""
    for index, (a, b) in enumerate(zip(enc, dec)):
        a_kind = a[0] if isinstance(a, tuple) else a
        b_kind = b[0] if isinstance(b, tuple) else b
        group_kinds = {"opt", "many", "array", "optional"}
        if a_kind in group_kinds and b_kind in group_kinds:
            if a_kind != b_kind and {a_kind, b_kind} != {"opt", "opt"}:
                # array/optional must pair exactly; opt pairs with opt.
                if {a_kind, b_kind} - {"opt"} and a_kind != b_kind:
                    return (f"field {index}: encode has {a_kind}[...] but "
                            f"decode has {b_kind}[...]")
            inner = _match(a[1] if isinstance(a, tuple) else [],
                           b[1] if isinstance(b, tuple) else [])
            if inner is not None:
                return inner
            continue
        if a_kind != b_kind:
            return (f"field {index}: encode writes '{a_kind}' but decode "
                    f"reads '{b_kind}'")
    if len(enc) != len(dec):
        if len(enc) > len(dec):
            extra = _fmt(enc[len(dec):])
            return (f"encode writes {len(enc)} field(s), decode reads "
                    f"{len(dec)}: '{extra}' written but never read")
        extra = _fmt(dec[len(enc):])
        return (f"decode reads {len(dec)} field(s), encode writes "
                f"{len(enc)}: '{extra}' read but never written")
    return None


def _pairs(program: Program, module: Module
           ) -> list[tuple[str, FunctionInfo, FunctionInfo]]:
    pairs = []
    for cls in program.classes.values():
        if cls.module is not module:
            continue
        enc = cls.methods.get("encode")
        dec = cls.methods.get("decode")
        if enc is not None and dec is not None:
            pairs.append((cls.qualname, enc, dec))
    for info in program.functions.values():
        if info.module is not module or info.cls is not None:
            continue
        if info.name.startswith("encode_") or info.name == "_encode_segment":
            suffix = info.name.replace("encode", "decode", 1)
            partner = program.functions.get(f"{module.name}.{suffix}")
            if partner is not None:
                pairs.append((info.qualname, info, partner))
    return pairs


def run(program: Program) -> list[Finding]:
    findings: list[Finding] = []
    for name in WIRE_MODULES:
        module = program.module(name)
        if module is None:
            continue
        for pair_name, enc, dec in _pairs(program, module):
            enc_tokens = _tokens_for(enc)
            dec_tokens = _tokens_for(dec)
            if not enc_tokens and not dec_tokens:
                continue
            divergence = _match(enc_tokens, dec_tokens)
            if divergence is not None:
                findings.append(Finding(
                    module.path, enc.line, RULE,
                    f"{pair_name}: encode/decode field sequences diverge "
                    f"— {divergence} (encode: {_fmt(enc_tokens)}; decode: "
                    f"{_fmt(dec_tokens)})"))
    return findings


PACK = RulePack(
    name="wire",
    rules=(RULE,),
    doc="encode/decode field pairing for the wire codecs (v1 header, "
        "v2 lane words, ONC RPC, NFS types)",
    run=run,
)
