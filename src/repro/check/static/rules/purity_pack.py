"""Pack ``purity`` — the four intraprocedural sim-purity rules.

Absorbed from the pre-analyzer standalone lint (``tools/lint_sim.py``):
the detection logic still lives in :mod:`repro.check.purity` (which
keeps its ``lint_source``/``lint_paths`` compatibility API); this pack
just runs it over every module the front end loaded.
"""

from __future__ import annotations

from repro.check.purity import RULES, Finding, raw_findings
from repro.check.static.frontend import Program
from repro.check.static.rules import RulePack


def run(program: Program) -> list[Finding]:
    findings: list[Finding] = []
    for module in program.modules:
        findings.extend(raw_findings(module.tree, module.path))
    return findings


PACK = RulePack(
    name="purity",
    rules=tuple(RULES),
    doc="wallclock / global-random / set-iteration / mutable-default "
        "direct uses (intraprocedural)",
    run=run,
)
