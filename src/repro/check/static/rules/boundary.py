"""Pack ``boundary`` — rule ``exception-boundary``.

The sanitizer contract (DESIGN.md §11): ``SanitizerError`` is
deliberately *not* a ``ProtectionError`` subclass, so an invariant
violation escapes the modeled fault-recovery machinery instead of being
absorbed as just another injected fault.  That design only works if the
transport/fault-recovery code doesn't catch it by accident.

In the transport-scope modules this rule flags ``except`` clauses that
would swallow a sanitizer violation or the whole ``ReproError`` tree:

* a bare ``except:`` or ``except BaseException`` / ``except Exception``
  with no bare ``raise`` in the handler body;
* an explicit ``except ReproError`` or ``except SanitizerError``
  (alone or inside a tuple) with no bare ``raise``.

A handler that re-raises (a bare ``raise`` statement anywhere in its
body outside nested defs) passes: it observes the exception but lets it
propagate.  Handlers for narrower, modeled exception types
(``ProtectionError``, ``TransportError``, ``OSError``, ...) are the
normal fault-handling path and are never flagged.
"""

from __future__ import annotations

import ast

from repro.check.purity import Finding
from repro.check.static.frontend import Module, Program, dotted
from repro.check.static.rules import RulePack

RULE = "exception-boundary"

#: module prefixes forming the transport / fault-recovery boundary.
TRANSPORT_PREFIXES = ("repro.rpc.", "repro.ib.", "repro.nfs.",
                      "repro.core.", "repro.faults.", "repro.tcpip.")

#: exception names that (would) swallow sanitizer violations.
_BROAD = {"Exception", "BaseException"}
_FORBIDDEN = {"ReproError", "SanitizerError"}


def _in_scope(module_name: str) -> bool:
    return module_name.startswith(TRANSPORT_PREFIXES)


def _caught_names(handler: ast.ExceptHandler) -> list[str]:
    """Terminal names of the caught exception type(s)."""
    if handler.type is None:
        return ["<bare>"]
    nodes = (handler.type.elts if isinstance(handler.type, ast.Tuple)
             else [handler.type])
    names = []
    for node in nodes:
        name = dotted(node)
        if name is not None:
            names.append(name.split(".")[-1])
    return names


def _reraises(handler: ast.ExceptHandler) -> bool:
    """True when the handler body contains a bare ``raise`` (outside
    nested defs) — the exception is observed but still propagates."""
    stack: list[ast.AST] = list(handler.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if isinstance(node, ast.Raise) and node.exc is None:
            return True
        stack.extend(ast.iter_child_nodes(node))
    return False


def _check_module(module: Module, findings: list[Finding]) -> None:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        names = _caught_names(node)
        if _reraises(node):
            continue
        offending = [n for n in names if n in _FORBIDDEN]
        broad = [n for n in names if n in _BROAD or n == "<bare>"]
        if offending:
            shown = "/".join(offending)
            findings.append(Finding(
                module.path, node.lineno, RULE,
                f"'except {shown}' in transport code swallows sanitizer "
                f"violations; catch the specific modeled exception "
                f"(e.g. ProtectionError/TransportError) or re-raise"))
        elif broad:
            shown = "bare except" if broad[0] == "<bare>" \
                else f"'except {broad[0]}'"
            findings.append(Finding(
                module.path, node.lineno, RULE,
                f"{shown} without re-raise in transport code would "
                f"swallow SanitizerError/ReproError; narrow the type "
                f"or add a bare 'raise'"))


def run(program: Program) -> list[Finding]:
    findings: list[Finding] = []
    for module in program.modules:
        if _in_scope(module.name):
            _check_module(module, findings)
    return findings


PACK = RulePack(
    name="boundary",
    rules=(RULE,),
    doc="except clauses in transport/fault-recovery code must not "
        "swallow SanitizerError or the ReproError tree",
    run=run,
)
