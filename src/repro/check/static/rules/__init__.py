"""Rule-pack registry for the static contract analyzer.

A :class:`RulePack` owns one or more named rules and a ``run`` callable
taking the loaded :class:`~repro.check.static.frontend.Program` and
returning **raw** findings (pre-suppression; the analyzer core applies
``# lint-sim: allow[rule]`` lines uniformly).  Packs must be cheap,
deterministic, and import nothing from the checked code.

To add a rule pack:

1. write ``rules/<name>.py`` exporting ``PACK = RulePack(...)``;
2. append it to :data:`RULE_PACKS` below;
3. add good/bad fixture tests in ``tests/test_check_static.py``;
4. document the contract it guards in DESIGN.md §16.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.check.purity import Finding
from repro.check.static.frontend import Program

__all__ = ["RULE_PACKS", "RulePack"]


@dataclass(frozen=True)
class RulePack:
    """One pluggable analysis pass."""

    name: str
    #: rule names this pack can emit (suppression + --rule selection keys).
    rules: tuple[str, ...]
    #: docstring-grade one-liner for --help / DESIGN.md.
    doc: str
    run: Callable[[Program], list[Finding]]


def _packs() -> tuple[RulePack, ...]:
    # Imported lazily so a syntax error in one pack names itself.
    from repro.check.static.rules import (
        boundary,
        interproc,
        procgen,
        purity_pack,
        wire,
        zerocost,
    )

    return (purity_pack.PACK, zerocost.PACK, interproc.PACK,
            procgen.PACK, wire.PACK, boundary.PACK)


RULE_PACKS: tuple[RulePack, ...] = _packs()
