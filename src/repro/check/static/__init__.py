"""``repro.check.static`` — interprocedural contract analyzer.

The dynamic layers of ``repro check`` (sanitizer, schedule
perturbation) *prove* the simulation's contracts by running golden
grids; this package makes the same contracts **statically checkable**
so a violation is caught at lint time, before a golden run executes.

Architecture (DESIGN.md §16):

* a shared **front end** (:mod:`repro.check.static.frontend`): module
  loader over ``src/repro``, a symbol table of every function/method,
  a conservatively-resolved call graph, and per-function summaries
  (generator-ness, direct impurity effects, call sites);
* an **analyzer core** (:mod:`repro.check.static.analyzer`): runs rule
  packs over the loaded program, applies per-line
  ``# lint-sim: allow[rule]`` suppressions, and audits for allow
  comments that no longer suppress anything (``unused-suppression``);
* **rule packs** (:mod:`repro.check.static.rules`): pluggable passes,
  each owning one or more named rules.  Shipped packs:

  ========== ==========================================================
  pack       rules
  ========== ==========================================================
  purity     wallclock, global-random, set-iteration, mutable-default
             (the intraprocedural rules absorbed from the old
             ``tools/lint_sim.py``)
  zerocost   zero-cost-off — ``sim.telemetry``/``sim.sanitizer``
             touchpoints in hot-path modules must be dominated by an
             ``is None`` guard
  interproc  purity-escape — wallclock/global-RNG/set-iteration
             reached *through helper calls* from sim code
  procgen    process-yield, callback-yield, double-trigger — simulation
             process/generator discipline
  wire       wire-symmetry — encode/decode field pairing for the wire
             codecs (v1 header, v2 lane framing, ONC RPC, NFS types)
  boundary   exception-boundary — ``except`` clauses in transport/
             fault-recovery code that would swallow ``SanitizerError``
  ========== ==========================================================

Surfaced as ``python -m repro check --static [--rule NAME]
[--format text|json]`` and run as the lint phase of the full
``python -m repro check`` suite.
"""

from __future__ import annotations

from repro.check.static.analyzer import (
    StaticReport,
    analyze,
    analyze_source,
    rule_names,
)
from repro.check.static.frontend import FunctionInfo, Module, Program, load_program
from repro.check.static.rules import RULE_PACKS, RulePack

__all__ = [
    "RULE_PACKS",
    "FunctionInfo",
    "Module",
    "Program",
    "RulePack",
    "StaticReport",
    "analyze",
    "analyze_source",
    "load_program",
    "rule_names",
]
