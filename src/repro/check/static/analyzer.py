"""Analyzer core: run rule packs, apply suppressions, audit them.

``analyze`` loads (or accepts) a :class:`Program`, runs the selected
rule packs, drops findings whose line carries a matching
``# lint-sim: allow[rule]`` comment (``allow[*]`` matches every rule),
and — on full runs — emits an ``unused-suppression`` finding for every
allow comment that suppressed nothing, so stale waivers cannot
accumulate as the code under them gets fixed.

``analyze_source`` wraps a single in-memory module for fixture tests:
the good/bad source pairs in ``tests/test_check_static.py`` go through
exactly the production path, minus the filesystem walk.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.check.purity import Finding
from repro.check.static.frontend import Program, load_program, load_source
from repro.check.static.rules import RULE_PACKS

__all__ = ["StaticReport", "analyze", "analyze_source", "rule_names"]

AUDIT_RULE = "unused-suppression"


def rule_names() -> tuple[str, ...]:
    """Every selectable rule name, pack order, audit rule last."""
    names: list[str] = []
    for pack in RULE_PACKS:
        names.extend(pack.rules)
    names.append(AUDIT_RULE)
    return tuple(names)


@dataclass
class StaticReport:
    """Outcome of one analyzer run."""

    findings: list[Finding]
    #: findings silenced by allow comments (kept for the audit + -v).
    suppressed: list[Finding] = field(default_factory=list)
    modules_scanned: int = 0
    rules_run: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.findings

    def render_text(self) -> str:
        lines = [str(f) for f in self.findings]
        lines.append(
            f"{len(self.findings)} finding(s) "
            f"({len(self.suppressed)} suppressed) across "
            f"{self.modules_scanned} module(s), "
            f"rules: {', '.join(self.rules_run)}")
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps({
            "ok": self.ok,
            "modules_scanned": self.modules_scanned,
            "rules_run": list(self.rules_run),
            "findings": [
                {"path": f.path, "line": f.line, "rule": f.rule,
                 "message": f.message}
                for f in self.findings
            ],
            "suppressed": len(self.suppressed),
        }, indent=2)


def _selected_packs(rules: Optional[Sequence[str]]):
    if not rules:
        return list(RULE_PACKS), None
    wanted = set(rules)
    known = set(rule_names()) | {p.name for p in RULE_PACKS}
    unknown = wanted - known
    if unknown:
        raise ValueError(
            f"unknown rule(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(rule_names())}")
    packs = [p for p in RULE_PACKS
             if wanted & (set(p.rules) | {p.name})]
    return packs, wanted


def _apply_suppressions(program: Program, raw: list[Finding]
                        ) -> tuple[list[Finding], list[Finding],
                                   dict[tuple[str, int], set[str]]]:
    """Split raw findings into (kept, suppressed); also return the
    set of rules each allow comment actually suppressed, keyed by
    (path, line), for the unused-suppression audit."""
    by_path = {m.path: m for m in program.modules}
    used: dict[tuple[str, int], set[str]] = {}
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in raw:
        module = by_path.get(finding.path)
        allowed = (module.suppressions.get(finding.line, set())
                   if module is not None else set())
        if finding.rule in allowed or "*" in allowed:
            suppressed.append(finding)
            used.setdefault((finding.path, finding.line), set()).add(
                finding.rule if finding.rule in allowed else "*")
        else:
            kept.append(finding)
    return kept, suppressed, used


def _audit_suppressions(program: Program,
                        used: dict[tuple[str, int], set[str]],
                        selected: Optional[set[str]]) -> list[Finding]:
    """Stale allow comments.  With ``--rule`` the audit only covers the
    selected rules (an allow for an unselected rule is untestable this
    run); ``allow[*]`` is audited only on full runs for the same
    reason."""
    findings: list[Finding] = []
    for module in program.modules:
        for line, rules in sorted(module.suppressions.items()):
            fired = used.get((module.path, line), set())
            for rule in sorted(rules):
                if rule in fired:
                    continue
                if rule == "*":
                    if selected is not None:
                        continue
                elif selected is not None and rule not in selected:
                    continue
                findings.append(Finding(
                    module.path, line, AUDIT_RULE,
                    f"allow[{rule}] suppresses nothing on this line; "
                    f"remove the stale comment or fix its rule name"))
    return findings


def analyze(program: Optional[Program] = None,
            root: Union[str, Path, None] = None,
            rules: Optional[Sequence[str]] = None) -> StaticReport:
    """Run the analyzer over ``program`` (or load one from ``root``,
    default: the installed ``repro`` package)."""
    if program is None:
        program = load_program(root)
    packs, selected = _selected_packs(rules)
    raw: list[Finding] = []
    for pack in packs:
        pack_findings = pack.run(program)
        if selected is not None and not (set(pack.rules) <= selected
                                         or pack.name in selected):
            pack_findings = [f for f in pack_findings
                             if f.rule in selected]
        raw.extend(pack_findings)
    kept, suppressed, used = _apply_suppressions(program, raw)
    if rules is None or AUDIT_RULE in set(rules):
        kept.extend(_audit_suppressions(program, used, selected))
    kept.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    ran: list[str] = []
    for pack in packs:
        ran.extend(r for r in pack.rules
                   if selected is None or r in selected
                   or set(pack.rules) <= selected or pack.name in selected)
    if rules is None or AUDIT_RULE in set(rules):
        ran.append(AUDIT_RULE)
    return StaticReport(findings=kept, suppressed=suppressed,
                        modules_scanned=len(program.modules),
                        rules_run=tuple(dict.fromkeys(ran)))


def analyze_source(source: str, path: str = "<fixture>",
                   name: str = "repro.rpc.fixture",
                   rules: Optional[Sequence[str]] = None) -> StaticReport:
    """Analyze a single in-memory module (fixture-test entry point).

    ``name`` controls which scoped rules see the module: the default
    ``repro.rpc.fixture`` lands in the hot-path/transport/sim scopes so
    every pack is exercised; pass e.g. ``repro.core.header`` to hit the
    wire-module list.
    """
    module = load_source(source, path=path, name=name)
    return analyze(program=Program([module]), rules=rules)
