"""Correctness tooling: runtime sanitizer, race detector, static analyzer.

Three layers, all surfaced through ``python -m repro check``:

* :class:`Sanitizer` (:mod:`repro.check.sanitizer`) — an ASAN/MSAN-style
  runtime checker hooked into the HCA/TPT/FMR/SRQ/credit/DRC layers.
  Attached by building a cluster with ``ClusterConfig(sanitizer=True)``;
  when off, ``sim.sanitizer`` is ``None`` and every hook site costs one
  attribute load (the same contract as telemetry).  Violations raise
  typed :class:`repro.errors.SanitizerError` subclasses.
* :class:`PerturbedSimulator` (:mod:`repro.check.races`) — a seeded
  schedule-perturbation engine that shuffles same-timestamp tie-break
  order; bit-identical figure tables under perturbation prove no result
  depends on incidental event ordering.  :func:`nondeterminism_guard`
  additionally traps wall-clock reads and global-RNG draws at runtime.
* :func:`analyze` (:mod:`repro.check.static`) — the interprocedural
  contract analyzer: the intraprocedural purity rules from
  :mod:`repro.check.purity` plus zero-cost-off guard dominance,
  cross-function purity escapes, process/generator discipline,
  wire-format symmetry and exception-boundary checks.  Surfaced as
  ``python -m repro check --static``.

The heavyweight figure-grid driver lives in :mod:`repro.check.runner`
and is imported lazily by the CLI (it pulls in the experiment stack).
"""

from __future__ import annotations

from repro.check.purity import Finding, lint_file, lint_paths
from repro.check.races import PerturbedSimulator, nondeterminism_guard
from repro.check.sanitizer import Sanitizer, Violation

__all__ = [
    "Finding",
    "PerturbedSimulator",
    "Sanitizer",
    "Violation",
    "lint_file",
    "lint_paths",
    "nondeterminism_guard",
]
