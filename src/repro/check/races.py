"""Schedule-perturbation race detector for the deterministic engine.

The engine's heap orders events by ``(time, seq)``: same-instant events
fire in scheduling order.  That determinism is what makes golden tables
possible — but it can also *mask* order-dependence: code whose result
depends on which of two same-timestamp events happens to have been
scheduled first produces stable-but-arbitrary output that silently
changes under any refactor that reorders scheduling.

:class:`PerturbedSimulator` makes the masking visible — surgically.
Shuffling *all* same-timestamp ties is unsound for a queueing model:
it reorders independent causal chains at shared serial resources
(CPUs, ports, TPT engines), and contended-resource timing legitimately
depends on that service order.  Even step-scoped shuffling is too wide:
one event's callback list resumes many waiting processes, and *their*
mutual order is the engine's documented FIFO fairness guarantee (who
gets the next worker, the next credit, the next link slot).  What must
NOT matter is narrower still: the relative order of **siblings** —
events scheduled at the same timestamp *by one callback invocation*.
That is precisely the footprint of iteration: a loop walking a
collection and scheduling per element, a teardown draining a table, a
broadcast arming one event per member.  If the collection is a ``list``
the sibling order is programmed; if it is a ``set`` keyed by ``id()``
the order is incidental and varies machine-to-machine — exactly the
hazard this detector exists to surface.

One sibling class is exempt: **process boots** (and interrupt
carriers, the two users of the engine's ``_Wakeup``).  ``sim.process``
is an explicit host-level act — a workload booting threads 0, 1, 2 in
a loop has *chosen* that start order the same way construction code
chooses its wiring order, and multi-threaded aggregate results
legitimately depend on which thread reaches a contended resource
first; likewise a CQE handler boots the interrupt process *before*
waking completion waiters, and that precedence is the modeled hardware
order.  Shuffling boots would therefore reject correct models, not
find broken ones.  A boot acts as a program-order *barrier* within its
callback: siblings scheduled before it keep preceding it, siblings
after it keep following it, and each side shuffles only internally.
The residual hazard — booting processes while iterating an unordered
collection — is a *static* property, and the set-iteration rule in
:mod:`repro.check.static` catches it at parse time.

The perturbed heap therefore keys entries ``(time, region, random,
seq)`` where ``region`` is a counter bumped on every callback
invocation (and on every schedule made from host code outside a
callback): cross-region FIFO is preserved — region order *is*
scheduling order — while same-instant siblings within one region fire
in seeded-random order.  Causality is trivially preserved (an event
enters the heap only after its cause ran), so every perturbed schedule
is a legal schedule — and well-written sim code produces
**bit-identical** figure tables under every seed.  ``python -m repro
check --perturb-seed`` asserts exactly that over the quick golden grid.

:func:`nondeterminism_guard` covers the other leak: real-world entropy.
Inside the guard, wall-clock reads (``time.time`` & friends) and draws
from the process-global ``random`` generator raise
:class:`~repro.errors.NondeterminismViolation`.  Seeded
``random.Random`` instances — the only RNG the sim layer is allowed to
use — are untouched.  (``datetime.now`` is C-level and can't be patched;
the static lint in :mod:`repro.check.purity` covers it instead.)
"""

from __future__ import annotations

import heapq
import random
import time
from contextlib import contextmanager
from typing import Iterator

from repro.errors import NondeterminismViolation
from repro.sim._pyengine import SimulationError, _Wakeup
from repro.sim.engine import Event, PurePythonSimulator

__all__ = ["PerturbedSimulator", "nondeterminism_guard"]


class PerturbedSimulator(PurePythonSimulator):
    """A :class:`Simulator` that shuffles same-callback sibling events.

    Heap entries are ``(time, region, tie_key, seq, event)``: ``region``
    identifies the callback invocation that pushed the event (host-code
    pushes each get a fresh region, so construction order is FIFO),
    ``tie_key`` is drawn from a ``random.Random(seed)`` owned by this
    simulator (a seeded instance, so perturbed runs are themselves
    reproducible), and ``seq`` stays as the final tiebreaker so entries
    never compare events.  Same-timestamp entries from *different*
    regions keep their original relative order (region order equals
    scheduling order); same-timestamp **siblings** from one callback
    fire in seeded-random order.  :attr:`tie_events` counts pops whose
    successor shared both instant and region — the population whose
    order actually gets shuffled.
    """

    def __init__(self, seed: int):
        super().__init__()
        self.perturb_seed = seed
        self._tie_rng = random.Random(seed)
        self._region = 0
        self._in_callback = False
        #: popped events whose heap successor shared (time, region) —
        #: the sibling groups whose order the seed actually perturbs.
        self.tie_events = 0
        # The base engine keeps a bucketed calendar; the perturbation
        # checker needs a totally ordered view of every pending entry so
        # its tie keys can reorder siblings, so it runs its own
        # ``(time, region, tie, seq, event)`` heap and overrides every
        # queue-touching method below.
        self._queue: list = []
        self._seq = 0

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        if isinstance(event, _Wakeup):
            # A process boot/interrupt is a program-order *barrier*
            # within its callback (see module docstring): siblings
            # scheduled before it stay before it, siblings after stay
            # after, so it sits alone in a region of its own (fixed tie
            # key — it never shuffles with anything).
            self._region += 1
            heapq.heappush(
                self._queue, (self.now + delay, self._region, 0.5, self._seq, event)
            )
            self._seq += 1
            self._region += 1
            return
        if not self._in_callback:
            self._region += 1
        heapq.heappush(
            self._queue,
            (self.now + delay, self._region, self._tie_rng.random(),
             self._seq, event),
        )
        self._seq += 1

    def step(self, _heappop=heapq.heappop) -> None:
        queue = self._queue
        when, region, _, _, event = _heappop(queue)
        if queue and queue[0][0] == when and queue[0][1] == region:
            self.tie_events += 1
        self.now = when
        self.steps += 1
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        assert callbacks is not None
        for callback in callbacks:
            self._region += 1
            self._in_callback = True
            callback(event)
        self._in_callback = False
        if not event._ok and not event._defused:
            exc = event._value
            raise exc if isinstance(exc, BaseException) else SimulationError(repr(exc))

    def run(self, until=None) -> None:
        if until is not None and until < self.now:
            raise SimulationError(f"run(until={until}) is in the past (now={self.now})")
        queue = self._queue
        step = self.step
        while queue:
            if until is not None and queue[0][0] > until:
                self.now = until
                return
            step()
        if until is not None:
            self.now = until

    def run_until_complete(self, process, limit: float = float("inf")):
        queue = self._queue
        step = self.step
        while not process._triggered:
            if not queue:
                raise SimulationError(f"deadlock: {process.name!r} never completed")
            if queue[0][0] > limit:
                raise SimulationError(
                    f"time limit {limit} exceeded waiting for {process.name!r}")
            step()
        if not process.ok:
            raise process.value
        return process.value

    @property
    def queue_size(self) -> int:
        return len(self._queue)


#: time-module functions that read the host clock.
_WALLCLOCK_NAMES = (
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns",
)

#: module-level random functions backed by the hidden global Random.
_GLOBAL_RANDOM_NAMES = (
    "random", "uniform", "randint", "randrange", "choice", "choices",
    "shuffle", "sample", "gauss", "expovariate", "betavariate",
    "triangular", "getrandbits", "normalvariate", "vonmisesvariate",
    "paretovariate", "weibullvariate", "lognormvariate",
)


def _raiser(kind: str, name: str):
    def _blocked(*args, **kwargs):
        raise NondeterminismViolation(
            f"{kind} source {name}() used inside a running simulation — "
            f"use sim.now / a seeded DeterministicRNG instead"
        )
    return _blocked


@contextmanager
def nondeterminism_guard() -> Iterator[None]:
    """Trap wall-clock reads and global-RNG draws for the enclosed block.

    Patches ``time.time``/``monotonic``/``perf_counter`` (and their
    ``_ns`` variants) plus every module-level ``random`` function to
    raise :class:`~repro.errors.NondeterminismViolation`.  Seeded
    ``random.Random`` / ``DeterministicRNG`` instances keep working.
    """
    saved: list[tuple[object, str, object]] = []
    try:
        for name in _WALLCLOCK_NAMES:
            saved.append((time, name, getattr(time, name)))
            setattr(time, name, _raiser("wall-clock", f"time.{name}"))
        for name in _GLOBAL_RANDOM_NAMES:
            saved.append((random, name, getattr(random, name)))
            setattr(random, name, _raiser("global-RNG", f"random.{name}"))
        yield
    finally:
        for module, name, original in saved:
            setattr(module, name, original)
