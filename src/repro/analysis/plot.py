"""Terminal plots: ASCII bar charts and series sparklines.

The experiment runners return rows; these helpers render them the way
the paper renders figures — one bar/line per series — without any
plotting dependency, so `python -m repro run fig5` shows a shape you
can eyeball against the paper.
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = ["bar_chart", "series_chart"]

_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(value: float, vmax: float, width: int) -> str:
    if vmax <= 0:
        return ""
    cells = value / vmax * width
    whole = int(cells)
    frac = int((cells - whole) * 8)
    out = "█" * whole
    if frac and whole < width:
        out += _BLOCKS[frac]
    return out


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
    vmax: Optional[float] = None,
) -> str:
    """Horizontal bars, one per label."""
    if len(labels) != len(values):
        raise ValueError("labels and values length mismatch")
    if not labels:
        return "(no data)"
    vmax = vmax if vmax is not None else max(values) or 1.0
    label_w = max(len(str(l)) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = _bar(float(value), vmax, width)
        lines.append(f"{str(label):<{label_w}}  {bar:<{width}}  {value:g}{unit}")
    return "\n".join(lines)


def series_chart(
    series: dict[str, dict],
    width: int = 40,
    unit: str = "",
) -> str:
    """Grouped bars: {series_name: {x: y}} — one block per series.

    Shares one scale across every series so relative magnitudes (the
    point of the paper's figures) survive the rendering.
    """
    if not series:
        return "(no data)"
    vmax = max((max(points.values()) for points in series.values() if points),
               default=1.0) or 1.0
    blocks = []
    for name, points in series.items():
        xs = sorted(points)
        body = bar_chart(
            [str(x) for x in xs],
            [points[x] for x in xs],
            width=width, unit=unit, vmax=vmax,
        )
        blocks.append(f"-- {name} --\n{body}")
    return "\n\n".join(blocks)
