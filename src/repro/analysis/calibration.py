"""Calibrated cost profiles for the paper's three testbeds.

Every timing constant the simulation uses lives here, named after the
hardware it stands in for.  Constants were fit so the *mechanisms* the
paper identifies reproduce its measured plateaus (the fit targets and
achieved values are tabulated in EXPERIMENTS.md):

* The serialized TPT engine makes per-operation registration the
  throughput ceiling of dynamic registration (Figs 5/7/9: ≈350–400 MB/s
  on OpenSolaris).
* Client-side registration is cheaper than server-side (warm,
  contiguous direct-I/O user pages vs cold slab-backed kernel buffers),
  which is why the server-side registration cache lifts Read throughput
  to ≈730 MB/s while the client still registers dynamically (Fig 7a).
* The per-QP read-response engine caps RDMA Read (hence NFS WRITE)
  throughput near 520 MB/s regardless of registration strategy
  (Figs 6/7b: "the serialization of RDMA Reads").
* All-physical mode eliminates TPT work entirely (Fig 9a ≈900 MB/s
  Read) but fragments transfers at physical-run boundaries, multiplying
  RDMA Reads on the WRITE path into the IRD/ORD cap (Fig 9b).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import RpcRdmaConfig
from repro.ib.hca import HCAConfig
from repro.ib.link import LinkConfig
from repro.ib.memory import RegistrationCosts
from repro.osmodel.cpu import CPUConfig
from repro.tcpip.nic import GIGE_PROFILE, IPOIB_PROFILE, NicProfile

__all__ = ["LINUX_DDR_RAID", "LINUX_SDR", "SOLARIS_SDR", "TestbedProfile"]


@dataclass(frozen=True)
class TestbedProfile:
    """One evaluation rig from §5 of the paper."""

    name: str
    description: str
    client_cpu: CPUConfig
    server_cpu: CPUConfig
    link: LinkConfig
    client_hca: HCAConfig
    server_hca: HCAConfig
    rpcrdma: RpcRdmaConfig
    interrupt_cost_us: float
    server_threads: int
    #: mean physically-contiguous run, drives all-physical fragmentation.
    phys_mean_run_bytes: int
    ipoib: NicProfile = IPOIB_PROFILE
    gige: NicProfile = GIGE_PROFILE


def _hca(reg: RegistrationCosts, read_setup_us: float,
         phys_mean_run_bytes: int = 128 * 1024) -> HCAConfig:
    return HCAConfig(
        wqe_process_us=0.6,
        post_cpu_us=0.4,
        read_response_setup_us=read_setup_us,
        max_ird=8,
        max_ord=8,
        phys_mean_run_bytes=phys_mean_run_bytes,
        registration=reg,
    )


# --------------------------------------------------------------------------
# Dual Opteron x2100, 2 GB, SDR x8 PCIe HCAs, tmpfs backend (Figs 5–8).
# --------------------------------------------------------------------------

#: Client (direct-I/O user pages: warm mappings, contiguous) — ≈170 µs
#: serialized TPT time per 128 KB register+deregister pair.
_SOLARIS_CLIENT_REG = RegistrationCosts(
    pin_cpu_per_page_us=0.20,
    unpin_cpu_per_page_us=0.08,
    reg_tpt_base_us=3.0,
    reg_tpt_per_page_us=3.7,
    dereg_tpt_base_us=2.0,
    dereg_tpt_per_page_us=1.75,
    fmr_map_base_us=2.5,
    fmr_map_per_page_us=2.6,
    fmr_unmap_base_us=1.5,
    fmr_unmap_per_page_us=1.2,
)

#: Server (cold slab-backed kernel buffers) — ≈350 µs per pair at 128 KB:
#: the dynamic-registration ceiling of Figs 5/7.
_SOLARIS_SERVER_REG = RegistrationCosts(
    pin_cpu_per_page_us=0.25,
    unpin_cpu_per_page_us=0.10,
    reg_tpt_base_us=4.0,
    reg_tpt_per_page_us=6.5,
    dereg_tpt_base_us=3.0,
    dereg_tpt_per_page_us=3.5,
    fmr_map_base_us=3.0,
    fmr_map_per_page_us=6.4,
    fmr_unmap_base_us=2.0,
    fmr_unmap_per_page_us=3.0,
)

_SDR_LINK = LinkConfig(
    bandwidth_mb_s=950.0,
    latency_us=1.5,
    per_message_overhead_bytes=64,
    chunk_bytes=32 * 1024,
)

SOLARIS_SDR = TestbedProfile(
    name="solaris-sdr",
    description="Dual Opteron x2100 / 2 GB / SDR x8 PCIe / OpenSolaris b33 / tmpfs",
    client_cpu=CPUConfig(cores=2, memcpy_mb_s=800.0),
    server_cpu=CPUConfig(cores=2, memcpy_mb_s=800.0),
    link=_SDR_LINK,
    client_hca=_hca(_SOLARIS_CLIENT_REG, read_setup_us=112.0),
    server_hca=_hca(_SOLARIS_SERVER_REG, read_setup_us=212.0),
    rpcrdma=RpcRdmaConfig(),
    interrupt_cost_us=4.0,
    server_threads=16,
    phys_mean_run_bytes=64 * 1024,
)

# --------------------------------------------------------------------------
# Same Opterons under Linux (Fig 9): faster kernel registration path, and
# the all-physical (global stag) mode is available.
# --------------------------------------------------------------------------

_LINUX_CLIENT_REG = RegistrationCosts(
    pin_cpu_per_page_us=0.20,
    unpin_cpu_per_page_us=0.08,
    reg_tpt_base_us=2.5,
    reg_tpt_per_page_us=2.4,
    dereg_tpt_base_us=1.5,
    dereg_tpt_per_page_us=1.1,
    fmr_map_base_us=2.0,
    fmr_map_per_page_us=1.8,
    fmr_unmap_base_us=1.0,
    fmr_unmap_per_page_us=0.8,
)

_LINUX_SERVER_REG = RegistrationCosts(
    pin_cpu_per_page_us=0.25,
    unpin_cpu_per_page_us=0.10,
    reg_tpt_base_us=3.0,
    reg_tpt_per_page_us=4.5,
    dereg_tpt_base_us=2.0,
    dereg_tpt_per_page_us=2.2,
    fmr_map_base_us=2.5,
    fmr_map_per_page_us=4.0,
    fmr_unmap_base_us=1.5,
    fmr_unmap_per_page_us=2.0,
)

LINUX_SDR = TestbedProfile(
    name="linux-sdr",
    description="Dual Opteron x2100 / SDR x8 PCIe / Linux NFS/RDMA / tmpfs",
    client_cpu=CPUConfig(cores=2, memcpy_mb_s=800.0),
    server_cpu=CPUConfig(cores=2, memcpy_mb_s=800.0),
    link=_SDR_LINK,
    client_hca=_hca(_LINUX_CLIENT_REG, read_setup_us=112.0),
    server_hca=_hca(_LINUX_SERVER_REG, read_setup_us=212.0),
    rpcrdma=RpcRdmaConfig(),
    interrupt_cost_us=4.0,
    server_threads=16,
    phys_mean_run_bytes=64 * 1024,
)

# --------------------------------------------------------------------------
# Dual Xeon 3.6 / DDR HCA / 8× 30 MB/s RAID-0 / XFS (Fig 10).  The paper
# runs this rig in all-physical mode; the DDR HCA behind x8 PCIe delivers
# a bit over the SDR wire.
# --------------------------------------------------------------------------

_DDR_LINK = LinkConfig(
    bandwidth_mb_s=1000.0,
    latency_us=1.2,
    per_message_overhead_bytes=64,
    chunk_bytes=32 * 1024,
)

LINUX_DDR_RAID = TestbedProfile(
    name="linux-ddr-raid",
    description="Dual Xeon 3.6 / DDR HCA / 8-disk RAID-0 XFS / 4–8 GB cache",
    client_cpu=CPUConfig(cores=2, memcpy_mb_s=1500.0),
    server_cpu=CPUConfig(cores=2, memcpy_mb_s=1500.0),
    link=_DDR_LINK,
    client_hca=_hca(_LINUX_CLIENT_REG, read_setup_us=100.0),
    server_hca=_hca(_LINUX_SERVER_REG, read_setup_us=180.0),
    rpcrdma=RpcRdmaConfig(),
    interrupt_cost_us=3.0,
    server_threads=32,
    phys_mean_run_bytes=64 * 1024,
)
