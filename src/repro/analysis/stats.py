"""Metric helpers: bandwidth windows and result formatting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["BandwidthWindow", "summarize_mb_s", "format_table"]


@dataclass
class BandwidthWindow:
    """Accumulates (bytes, elapsed) over a measurement window.

    Simulated microseconds and MB/s have the happy property that
    ``bytes / microseconds == MB/s`` exactly.
    """

    bytes_moved: float = 0.0
    t_start: float = 0.0
    t_end: float = 0.0

    def open(self, now: float) -> None:
        self.t_start = now
        self.t_end = now
        self.bytes_moved = 0.0

    def account(self, nbytes: int, now: float) -> None:
        self.bytes_moved += nbytes
        self.t_end = max(self.t_end, now)

    @property
    def elapsed_us(self) -> float:
        return self.t_end - self.t_start

    @property
    def mb_s(self) -> float:
        return self.bytes_moved / self.elapsed_us if self.elapsed_us > 0 else 0.0


def summarize_mb_s(nbytes: float, elapsed_us: float) -> float:
    """Bytes over simulated microseconds → MB/s."""
    return nbytes / elapsed_us if elapsed_us > 0 else 0.0


def format_table(headers: list[str], rows: Iterable[Iterable]) -> str:
    """Plain-text table for benchmark output (the paper-figure rows)."""
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)
