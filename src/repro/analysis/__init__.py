"""Analysis layer: calibrated testbed profiles, metrics and reporting."""

from repro.analysis.calibration import (
    LINUX_DDR_RAID,
    LINUX_SDR,
    SOLARIS_SDR,
    TestbedProfile,
)
from repro.analysis.latency import LatencyRecorder, LatencySummary
from repro.analysis.stats import BandwidthWindow, summarize_mb_s

__all__ = [
    "BandwidthWindow",
    "LatencyRecorder",
    "LatencySummary",
    "LINUX_DDR_RAID",
    "LINUX_SDR",
    "SOLARIS_SDR",
    "TestbedProfile",
    "summarize_mb_s",
]
