"""Per-operation latency recording and percentile summaries.

Bandwidth plateaus tell half the story; the paper's mechanisms (DONE
round trips, synchronous read stalls, registration on the critical
path) are *latency* effects that only surface at low concurrency.  A
:class:`LatencyRecorder` collects per-op latencies cheaply (numpy
array, amortized growth) and reports the distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LatencyRecorder", "LatencySummary"]


@dataclass(frozen=True)
class LatencySummary:
    """Distribution snapshot, microseconds."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    maximum: float

    def __str__(self) -> str:  # pragma: no cover - presentation
        return (f"n={self.count} mean={self.mean:.1f}us p50={self.p50:.1f} "
                f"p90={self.p90:.1f} p99={self.p99:.1f} max={self.maximum:.1f}")

    @classmethod
    def empty(cls) -> "LatencySummary":
        return cls(count=0, mean=0.0, p50=0.0, p90=0.0, p99=0.0, maximum=0.0)


class LatencyRecorder:
    """Append-only latency sink with vectorized summarization."""

    def __init__(self, name: str = "latency", initial_capacity: int = 1024):
        self.name = name
        self._values = np.empty(initial_capacity, dtype=np.float64)
        self._count = 0

    def record(self, latency_us: float) -> None:
        if latency_us < 0:
            raise ValueError(f"negative latency {latency_us}")
        if self._count == len(self._values):
            self._grow(2 * max(1, len(self._values)))
        self._values[self._count] = latency_us
        self._count += 1

    def _grow(self, capacity: int) -> None:
        """Amortized growth without the concatenate-and-copy round trip.

        ``ndarray.resize`` extends the buffer in place when the allocator
        permits.  ``refcheck`` must stay on: the ``values`` property hands
        out views, and resizing under a live view would dangle it — in
        that case fall back to one explicit copy.
        """
        try:
            self._values.resize(capacity, refcheck=True)
        except ValueError:
            grown = np.empty(capacity, dtype=np.float64)
            grown[: self._count] = self._values[: self._count]
            self._values = grown

    def __len__(self) -> int:
        return self._count

    @property
    def values(self) -> np.ndarray:
        return self._values[: self._count]

    def summarize(self) -> LatencySummary:
        if self._count == 0:
            return LatencySummary.empty()
        data = self.values
        p50, p90, p99 = np.percentile(data, [50, 90, 99])
        return LatencySummary(
            count=self._count,
            mean=float(data.mean()),
            p50=float(p50),
            p90=float(p90),
            p99=float(p99),
            maximum=float(data.max()),
        )

    def merge(self, other: "LatencyRecorder") -> "LatencyRecorder":
        """Combine two recorders (e.g. per-client) into a fresh one."""
        merged = LatencyRecorder(self.name, max(1, self._count + other._count))
        merged._values[: self._count] = self.values
        merged._values[self._count : self._count + other._count] = other.values
        merged._count = self._count + other._count
        return merged

    def extend(self, other: "LatencyRecorder") -> None:
        """In-place variant of :meth:`merge` (aggregation rollups)."""
        needed = self._count + other._count
        if needed > len(self._values):
            self._grow(max(needed, 2 * len(self._values)))
        self._values[self._count : needed] = other.values
        self._count = needed
