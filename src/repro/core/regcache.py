"""The server buffer registration cache (§4.3, "Design of the Buffer
Registration Cache").

The NFS server's buffer allocation and registration calls are overridden
to draw from per-size slab caches whose objects *keep their memory
registration across free/alloc cycles*.  A buffer that comes back from
the slab already registered costs nothing to "register" again.  Because
the cache is keyed on slab identity — never on a virtual address — it
sidesteps the correctness hazards of virtual-address registration
caches [Wyckoff & Wu 2005], and because the slab honours a memory
budget with reclaim it cannot grow without bound.  The server never
discloses cached stags except through the normal chunk protocol, so the
scheme is exactly as secure as regular registration.

``wrap`` (caller-owned memory, i.e. the client direct-I/O path) cannot
be cached by the slab scheme — there is no slab identity to key on — so
it falls back to dynamic registration; the paper's client-side variant
(discussed in its technical report) is implemented here as
:class:`ClientRegistrationCache`, which keys on buffer-object identity.
"""

from __future__ import annotations

from typing import Generator

from repro.ib.fabric import IBNode
from repro.ib.memory import AccessFlags, MemoryBuffer
from repro.ib.verbs import Segment
from repro.osmodel.slab import SlabAllocator, SlabObject
from repro.sim import Counter

from repro.core.strategies import (
    DynamicRegistration,
    RegisteredRegion,
    RegistrationStrategy,
)

__all__ = ["ClientRegistrationCache", "RegistrationCacheStrategy"]


class RegistrationCacheStrategy(RegistrationStrategy):
    """Slab-backed registration cache for transport-owned buffers."""

    name = "regcache"

    def __init__(self, node: IBNode, budget_bytes: float = float("inf")):
        super().__init__(node)
        self.slab = SlabAllocator(
            budget_bytes=budget_bytes,
            name=f"{node.name}.regcache",
            factory=node.arena.alloc,
            destructor=node.arena.free,
        )
        self._fallback = DynamicRegistration(node)
        self.hits = Counter(f"{node.name}.regcache.hits")
        self.misses = Counter(f"{node.name}.regcache.misses")

    def acquire(self, nbytes: int, access: AccessFlags) -> Generator:
        obj: SlabObject = self.slab.alloc(nbytes)
        buffer: MemoryBuffer = obj.buffer
        mr = obj.registration
        if mr is not None and mr.valid and (access & ~mr.access) == AccessFlags(0):
            # Cache hit: the slab object came back still registered with
            # (at least) the rights we need.  Zero registration cost.
            self.hits.add()
            self._hit_instant(nbytes)
        else:
            if mr is not None and mr.valid:
                # Registered with narrower rights: replace the mapping.
                yield from self.node.hca.tpt.deregister(mr)
            # Register with the union of rights this size class has
            # needed so far, maximising future hits.
            wanted = access | (mr.access if mr is not None else AccessFlags(0))
            mr = yield from self.node.hca.tpt.register(buffer, wanted)
            obj.registration = mr
            self.misses.add()
        self.acquires.add()
        return RegisteredRegion(
            buffer=buffer,
            segments=[Segment(mr.stag, buffer.addr, nbytes)],
            access=access,
            owned=True,
            mr=mr,
            handle=obj,
        )

    def wrap(self, buffer, access, addr=None, length=None) -> Generator:
        region = yield from self._fallback.wrap(buffer, access, addr=addr, length=length)
        region.handle = "fallback"
        self.acquires.add()
        return region

    def release(self, region: RegisteredRegion) -> Generator:
        if region.handle == "fallback":
            yield from self._fallback.release(region)
        else:
            # Return to the slab *registered*; reclaim (if the budget
            # forces it) invalidates the MR and frees the arena buffer.
            self.slab.free(region.handle)
        self.releases.add()

    def _hit_instant(self, nbytes: int) -> None:
        telemetry = self.node.sim.telemetry
        if telemetry is not None and telemetry.tracer is not None:
            telemetry.tracer.instant("reg.cache_hit", "reg", self.node.name,
                                     "regcache", bytes=nbytes)

    @property
    def footprint_bytes(self) -> int:
        return self.slab.footprint_bytes()


class ClientRegistrationCache(RegistrationStrategy):
    """Client-side registration cache — the technical-report extension.

    "The server registration cache scheme described above can also be
    applied to the client side, as discussed in the technical report."

    Caches ``wrap`` registrations of caller-owned buffers keyed on the
    exact (buffer identity, window, rights) triple.  Unlike user-level
    virtual-address caches, the key includes the buffer *object*, so a
    freed-and-reallocated buffer at the same virtual address can never
    alias a stale mapping (the Wyckoff & Wu hazard): dropping the
    buffer drops the key.  Entries are evicted LRU beyond ``max_entries``
    and on explicit ``invalidate_buffer``.

    ``acquire`` (transport-owned buffers) delegates to a nested
    server-style slab cache, so this strategy is usable on either side.
    """

    name = "client-regcache"

    def __init__(self, node: IBNode, max_entries: int = 128,
                 budget_bytes: float = float("inf")):
        super().__init__(node)
        if max_entries < 1:
            raise ValueError("cache needs at least one entry")
        self.max_entries = max_entries
        self._slab_side = RegistrationCacheStrategy(node, budget_bytes=budget_bytes)
        #: (id(buffer), addr, length) -> (buffer, MR); insertion-ordered
        #: for LRU.
        self._wrapped: dict[tuple, tuple] = {}
        self.hits = Counter(f"{node.name}.cliregcache.hits")
        self.misses = Counter(f"{node.name}.cliregcache.misses")
        self._pending_evictions: list = []

    def acquire(self, nbytes: int, access: AccessFlags) -> Generator:
        region = yield from self._slab_side.acquire(nbytes, access)
        region.handle = ("slab", region.handle)
        return region

    def wrap(self, buffer, access, addr=None, length=None) -> Generator:
        addr = buffer.addr if addr is None else addr
        length = buffer.length if length is None else length
        key = (id(buffer), addr, length)
        entry = self._wrapped.get(key)
        if entry is not None:
            cached_buffer, mr = entry
            if mr.valid and (access & ~mr.access) == AccessFlags(0):
                # LRU-promote and reuse: zero registration cost.
                del self._wrapped[key]
                self._wrapped[key] = entry
                self.hits.add()
                self._slab_side._hit_instant(length)
                self.acquires.add()
                from repro.ib.verbs import Segment

                return RegisteredRegion(
                    buffer=buffer,
                    segments=[Segment(mr.stag, addr, length)],
                    access=access,
                    owned=False,
                    mr=mr,
                    handle=("cached", key),
                )
            del self._wrapped[key]
        self.misses.add()
        wanted = access
        if entry is not None and entry[1].valid:
            wanted |= entry[1].access
            yield from self.node.hca.tpt.deregister(entry[1])
        mr = yield from self.node.hca.tpt.register(
            buffer, wanted, addr=addr, length=length
        )
        self._wrapped[key] = (buffer, mr)
        yield from self._evict_over_capacity()
        self.acquires.add()
        from repro.ib.verbs import Segment

        return RegisteredRegion(
            buffer=buffer,
            segments=[Segment(mr.stag, addr, length)],
            access=access,
            owned=False,
            mr=mr,
            handle=("cached", key),
        )

    def _evict_over_capacity(self) -> Generator:
        while len(self._wrapped) > self.max_entries:
            key, (buffer, mr) = next(iter(self._wrapped.items()))
            del self._wrapped[key]
            if mr.valid:
                yield from self.node.hca.tpt.deregister(mr)

    def release(self, region: RegisteredRegion) -> Generator:
        kind = region.handle[0] if isinstance(region.handle, tuple) else None
        if kind == "slab":
            region.handle = region.handle[1]
            yield from self._slab_side.release(region)
        else:
            # Cached wrap: the registration stays live for reuse.
            pass
        self.releases.add()

    def invalidate_buffer(self, buffer) -> Generator:
        """Drop every cached window of ``buffer`` (free/teardown hook)."""
        doomed = [k for k in self._wrapped if k[0] == id(buffer)]
        for key in doomed:
            _, mr = self._wrapped.pop(key)
            if mr.valid:
                yield from self.node.hca.tpt.deregister(mr)

    @property
    def cached_entries(self) -> int:
        return len(self._wrapped)
