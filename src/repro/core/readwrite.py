"""The proposed Read-Write design (§4): server-issued RDMA Writes.

The client advertises, *in the RPC call*, where reply bulk data should
land: a write chunk list for NFS READ data, a reply chunk for long
replies.  When the file system returns, the server RDMA-Writes the data
directly into client memory and immediately sends the RPC reply —
InfiniBand's guaranteed Write→Send completion ordering means the send's
completion proves the writes landed, so the server neither blocks nor
takes extra interrupts, and its buffers deregister as soon as the send
completes.  Consequences (§4.2):

* **Security** — the server exposes no steering tags, ever; a client
  cannot issue any RDMA operation against server memory.
* **No RDMA_DONE** — buffer lifetime is server-controlled; a malicious
  client cannot pin server resources by withholding completion signals.
* **Parallel writes** — RDMA Writes don't consume IRD/ORD slots and the
  HCA issues many concurrently; the §4.1 read-serialisation bottleneck
  disappears from the READ path.
* **Zero-copy client** — with direct I/O the client wraps the
  application buffer itself in the write chunk (registration instead of
  a copy; the copy-CPU collapse of Fig 6).

The exposure trade runs the other way: *client* buffers are exposed to
the server — acceptable because NFS deployments trust the server.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.base import (
    RpcRdmaClientBase,
    RpcRdmaServerBase,
    TransportError,
    slice_segments,
)
from repro.core.chunks import ChunkList, WriteChunk
from repro.core.header import MessageType, RpcRdmaHeader
from repro.ib.memory import AccessFlags
from repro.rpc.msg import RpcCall, RpcReply, frame_message, unframe_message
from repro.sim import Counter

__all__ = ["ReadWriteClient", "ReadWriteServer"]

#: Conservative bound on reply-header framing overhead when deciding
#: whether an expected reply still fits inline.
_REPLY_OVERHEAD = 192


class ReadWriteClient(RpcRdmaClientBase):
    """Client half of the Read-Write design."""

    design = "read-write"

    def __init__(self, node, qp, config, strategy, name=""):
        super().__init__(node, qp, config, strategy, name)
        self.zero_copy_reads = Counter(f"{self.name}.zero_copy_reads")
        self.buffered_reads = Counter(f"{self.name}.buffered_reads")

    def _prepare_reply_resources(self, call: RpcCall, chunks: ChunkList, ctx: dict) -> Generator:
        # NFS READ (and friends): advertise a write chunk sized to the
        # expected data so the server can RDMA-Write straight back.
        if call.read_len_hint > 0 and (
            call.read_len_hint + _REPLY_OVERHEAD > self.config.inline_threshold
        ):
            if call.read_buffer is not None:
                # Direct I/O zero-copy: register exactly the I/O window
                # of the app buffer in place.
                region = yield from self.strategy.wrap(
                    call.read_buffer, AccessFlags.REMOTE_WRITE,
                    addr=call.read_buffer.addr,
                    length=min(call.read_len_hint, call.read_buffer.length),
                )
                ctx["read_zero_copy"] = True
                self.zero_copy_reads.add()
            else:
                region = yield from self.strategy.acquire(
                    call.read_len_hint, AccessFlags.REMOTE_WRITE
                )
                ctx["read_zero_copy"] = False
                self.buffered_reads.add()
            ctx["regions"].append(region)
            ctx["read_region"] = region
            chunks.write_chunks.append(
                WriteChunk(slice_segments(region.segments, 0, call.read_len_hint))
            )
        # Long reply (READDIR/READLINK): advertise a reply chunk.
        if call.reply_len_hint + _REPLY_OVERHEAD > self.config.inline_threshold:
            region = yield from self.strategy.acquire(
                max(call.reply_len_hint, 4096), AccessFlags.REMOTE_WRITE
            )
            ctx["regions"].append(region)
            ctx["reply_region"] = region
            chunks.reply_chunk = WriteChunk(region.segments)

    def _handle_reply(self, header: RpcRdmaHeader, ctx: dict) -> Generator:
        if header.mtype is MessageType.RDMA_NOMSG:
            # Long reply: the entire RPC message was RDMA-written into
            # our reply chunk; its echoed length says how much.
            region = ctx.get("reply_region")
            if region is None or header.chunks.reply_chunk is None:
                raise TransportError(f"{self.name}: long reply without reply chunk")
            actual = header.chunks.reply_chunk.capacity
            yield from self._crypt(actual)
            message = region.peek(actual)
        elif header.mtype is MessageType.RDMA_MSG:
            message = header.rpc_message
        else:
            raise TransportError(f"{self.name}: unexpected reply type {header.mtype}")
        rpc_header, inline_payload = unframe_message(message)
        reply = RpcReply.decode(rpc_header)
        reply.read_payload = inline_payload
        # READ data: already in client memory courtesy of the server's
        # RDMA Writes; the echoed write chunk tells us how much arrived.
        if header.chunks.write_chunks:
            actual = sum(w.capacity for w in header.chunks.write_chunks)
            region = ctx.get("read_region")
            if region is None:
                raise TransportError(f"{self.name}: write chunk echo without window")
            yield from self._crypt(actual)
            if not ctx.get("read_zero_copy", False):
                # Buffered path: one copy from the transport buffer to
                # the application (direct I/O skips this entirely).
                yield from self.node.cpu.copy(actual)
            reply.read_payload = region.peek(actual)
        return reply


class ReadWriteServer(RpcRdmaServerBase):
    """Server half of the Read-Write design."""

    design = "read-write"

    def __init__(self, node, qp, config, strategy, name="", credit_policy=None,
                 srq=None, policy=None):
        super().__init__(node, qp, config, strategy, name,
                         credit_policy=credit_policy, srq=srq, policy=policy)
        self.rdma_writes_issued = Counter(f"{self.name}.writes")
        self.long_replies = Counter(f"{self.name}.long_replies")

    def _respond(self, ctx: dict, reply: RpcReply) -> Generator:
        call_header: RpcRdmaHeader = ctx["header"]
        reply_chunks = ChunkList()
        reply_bytes = reply.encode()
        inline_payload: Optional[bytes] = None
        payload = reply.read_payload

        if payload:
            fits_inline = (
                4 + len(reply_bytes) + len(payload) + 64 <= self.config.inline_threshold
            )
            if call_header.chunks.write_chunks:
                # RDMA-Write the data into the client's advertised chunk.
                target = call_header.chunks.write_chunks[0]
                if len(payload) > target.capacity:
                    raise TransportError(
                        f"{self.name}: {len(payload)} bytes exceed client's "
                        f"write chunk of {target.capacity}"
                    )
                region = yield from self.strategy.acquire(
                    len(payload), AccessFlags.LOCAL_WRITE
                )
                ctx["regions"].append(region)
                yield from self._crypt(len(payload))
                region.fill(payload)
                yield from self.push_chunks(region, list(target.segments), len(payload))
                self.rdma_writes_issued.add()
                # Echo the chunk trimmed to the bytes actually written.
                reply_chunks.write_chunks.append(
                    WriteChunk(slice_segments(list(target.segments), 0, len(payload)))
                )
            elif fits_inline:
                inline_payload = payload
            else:
                raise TransportError(
                    f"{self.name}: bulk reply but client advertised no write chunk"
                )

        message = frame_message(reply_bytes, inline_payload)
        lane_fields = self._lane_reply_fields(ctx)
        header = RpcRdmaHeader(
            xid=reply.xid,
            credits=self.grant(),
            mtype=MessageType.RDMA_MSG,
            chunks=reply_chunks,
            rpc_message=message,
            **lane_fields,
        )
        if header.wire_size > self.config.inline_threshold:
            # RPC long reply: write the whole message into the client's
            # reply chunk, send a bodyless NOMSG reply.
            target = call_header.chunks.reply_chunk
            if target is None:
                raise TransportError(
                    f"{self.name}: long reply but client advertised no reply chunk"
                )
            if len(message) > target.capacity:
                raise TransportError(
                    f"{self.name}: long reply of {len(message)} bytes exceeds "
                    f"client reply chunk of {target.capacity}"
                )
            region = yield from self.strategy.acquire(len(message), AccessFlags.LOCAL_WRITE)
            ctx["regions"].append(region)
            yield from self._crypt(len(message))
            region.fill(message)
            yield from self.push_chunks(region, list(target.segments), len(message))
            self.long_replies.add()
            reply_chunks.reply_chunk = WriteChunk(
                slice_segments(list(target.segments), 0, len(message))
            )
            header = RpcRdmaHeader(
                xid=reply.xid,
                credits=self.grant(),
                mtype=MessageType.RDMA_NOMSG,
                chunks=reply_chunks,
                rpc_message=b"",
                **lane_fields,
            )
        send_wr = yield from self.send_header(header)
        # The send's completion guarantees all prior RDMA Writes landed
        # (§4.2); only then may the bulk buffers be released — which the
        # base class does right after this returns.
        yield send_wr.completion
        if not send_wr.cqe.ok:
            raise TransportError(f"{self.name}: reply send failed: {send_wr.cqe.error}")
