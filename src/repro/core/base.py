"""Shared machinery for both RPC/RDMA transport designs.

Everything that is *identical* between the Read-Read and Read-Write
designs lives here (§3–4 of the paper):

* pre-registered inline send/receive pools with credit-based flow
  control (the client never overruns the server's posted receives);
* the inline send path (RDMA_MSG) and the RPC long call (RDMA_NOMSG +
  position-0 read chunks);
* the NFS WRITE data path: client exposes read chunks, the server
  RDMA-Reads them and **blocks until the reads complete** — the
  synchronous-read stall of §4.1, required because InfiniBand does not
  order a Read ahead of a later Send;
* segment slicing/pairing helpers used to map possibly-fragmented
  (all-physical) chunk lists onto individual RDMA operations.

The designs subclass the client and server bases and override only the
reply-direction bulk path — which is precisely where they differ.
"""

from __future__ import annotations

from collections import deque
from typing import Generator, Optional

from repro.core.chunks import ChunkList, ReadChunk
from repro.core.config import RpcRdmaConfig
from repro.core.credits import CreditManager
from repro.core.header import MessageType, RpcRdmaHeader
from repro.core.strategies import RegisteredRegion, RegistrationStrategy
from repro.errors import TransportError
from repro.ib.fabric import IBNode
from repro.ib.memory import AccessFlags
from repro.ib.verbs import (
    CqeStatus,
    QPError,
    QPState,
    QueuePair,
    RdmaReadWR,
    RdmaWriteWR,
    RecvWR,
    Segment,
    SendWR,
)
from repro.rpc.lanes import LaneLedger
from repro.rpc.msg import RpcCall, RpcReply, frame_message, unframe_message
from repro.rpc.svc import RpcServer
from repro.rpc.transport import RpcClientTransport, RpcServerTransport, RpcTimeout
from repro.rpc.xdr import XdrError
from repro.sim import AnyOf, Counter, Event, Store

__all__ = [
    "RpcRdmaClientBase",
    "RpcRdmaServerBase",
    "TransportError",
    "pair_transfers",
    "slice_segments",
]

#: Data read chunks (NFS WRITE payload) carry this position; position 0
#: is reserved for long-call/long-reply message bodies.
DATA_CHUNK_POSITION = 1


def slice_segments(segments: list[Segment], offset: int, length: int) -> list[Segment]:
    """A sub-window of a (possibly fragmented) segment list."""
    out: list[Segment] = []
    pos = 0
    for seg in segments:
        if length <= 0:
            break
        if pos + seg.length <= offset:
            pos += seg.length
            continue
        start = max(0, offset - pos)
        take = min(seg.length - start, length)
        out.append(Segment(seg.stag, seg.addr + start, take))
        length -= take
        offset += take
        pos += seg.length
    if length > 0:
        raise TransportError(f"segment list short by {length} bytes")
    return out


def pair_transfers(
    src: list[Segment], dst: list[Segment], length: int
) -> list[tuple[list[Segment], Segment]]:
    """Split one logical transfer into per-destination-segment RDMA ops.

    Each RDMA Write/Read names exactly one remote segment; fragmented
    remote chunk lists (all-physical mode) therefore multiply operations
    — the Fig 9b effect.
    """
    ops: list[tuple[list[Segment], Segment]] = []
    offset = 0
    for dseg in dst:
        if offset >= length:
            break
        take = min(dseg.length, length - offset)
        ops.append(
            (
                slice_segments(src, offset, take),
                Segment(dseg.stag, dseg.addr, take),
            )
        )
        offset += take
    if offset < length:
        raise TransportError(
            f"destination chunk too small: {length} bytes into {sum(d.length for d in dst)}"
        )
    return ops


class _InlinePool:
    """Pre-registered fixed-size buffers for inline sends/receives.

    Registered once at connection setup, never per-operation — matching
    both real implementations and the paper's cost analysis (inline
    traffic contributes no registration cost).
    """

    def __init__(self, node: IBNode, count: int, size: int, name: str):
        self.node = node
        self.count = count
        self.size = size
        self.name = name
        self.free: Store = Store(node.sim, name=f"{name}.free")
        self.regions: list[RegisteredRegion] = []

    def setup(self) -> Generator:
        tpt = self.node.hca.tpt
        for _ in range(self.count):
            buffer = self.node.arena.alloc(self.size)
            mr = yield from tpt.register(buffer, AccessFlags.LOCAL_WRITE)
            region = RegisteredRegion(
                buffer=buffer,
                segments=[Segment(mr.stag, buffer.addr, self.size)],
                access=AccessFlags.LOCAL_WRITE,
                owned=True,
                mr=mr,
            )
            self.regions.append(region)
            self.free.put(region)


class _RdmaEndpoint:
    """Send-path plumbing shared by client and server endpoints."""

    def __init__(
        self,
        node: IBNode,
        qp: QueuePair,
        config: RpcRdmaConfig,
        strategy: RegistrationStrategy,
        name: str,
        srq=None,
    ):
        self.node = node
        self.sim = node.sim
        self.config = config
        self.strategy = strategy
        self.name = name
        #: shared receive pool (:mod:`repro.ib.srq`); when set, this
        #: endpoint posts no private receive ring — inbound messages
        #: consume buffers from the HCA-wide pool instead.
        self.srq = srq
        self._srq_inbox = None
        self._bind_qp(qp)
        self.send_pool = _InlinePool(node, config.credits, config.inline_threshold,
                                     f"{name}.sendpool")
        self.recv_pool = (None if srq is not None else
                          _InlinePool(node, config.credits, config.inline_threshold,
                                      f"{name}.recvpool"))
        self.headers_sent = Counter(f"{name}.headers")
        self._posted: deque = deque()
        self.bytes_rdma_read = Counter(f"{name}.rdma_read_bytes")
        self.bytes_rdma_written = Counter(f"{name}.rdma_write_bytes")
        #: Event for the peer's setup (the CM handshake completes only
        #: once both sides have pre-posted receives); set by the wiring
        #: layer, waited on before the first send.
        self.peer_ready = None
        self.failed = False

    # -- connection binding ------------------------------------------------
    def _bind_qp(self, qp: QueuePair) -> None:
        """Adopt ``qp`` as the current connection and watch it for death."""
        self.qp = qp
        qp.on_error.append(self._qp_error_callback)

    def _qp_error_callback(self, qp: QueuePair, cause: str) -> None:
        if qp is not self.qp:
            return  # a previous incarnation dying late; already replaced
        self.failed = True
        self._on_connection_error(cause)

    def _on_connection_error(self, cause: str) -> None:
        """Subclass hook: synchronous reaction to connection death."""

    # -- setup ---------------------------------------------------------
    def _setup_pools(self) -> Generator:
        yield from self.send_pool.setup()
        if self.srq is not None:
            # Shared pool: registered once at server start; this
            # connection only waits for it and opens its inbox.
            if not self.srq.ready.processed:
                yield self.srq.ready
            self._srq_inbox = self.srq.attach(self.qp)
            return
        yield from self.recv_pool.setup()
        for region in self.recv_pool.regions:
            self.repost_recv(region)

    def _teardown_pools(self) -> Generator:
        """Deregister and free the private inline pools (teardown)."""
        if self.srq is not None:
            self.srq.detach(self.qp)
        pools = (self.send_pool,) if self.recv_pool is None else (
            self.send_pool, self.recv_pool)
        for pool in pools:
            for region in pool.regions:
                if region.mr is not None:
                    yield from self.node.hca.tpt.deregister(region.mr)
                self.node.arena.free(region.buffer)
            pool.regions.clear()

    # -- inline send -----------------------------------------------------
    def send_header(self, header: RpcRdmaHeader) -> Generator:
        """Process: ship one RPC/RDMA header (plus inline body) via Send."""
        payload = header.encode()
        if len(payload) > self.config.inline_threshold:
            raise TransportError(
                f"header of {len(payload)} bytes exceeds inline threshold "
                f"{self.config.inline_threshold}"
            )
        region = yield self.send_pool.free.get()
        yield from self.node.cpu.copy(len(payload))  # marshal into send buffer
        region.fill(payload)
        seg = region.segments[0]
        wr = SendWR(self.sim, segments=[Segment(seg.stag, seg.addr, len(payload))])
        telemetry = self.sim.telemetry
        if telemetry is not None and telemetry.tracer is not None:
            wr.tspan = telemetry.tracer.task_span()
        yield from self.node.hca.post_send(self.qp, wr)
        self.headers_sent.add()
        self.sim.process(self._reclaim_send(region, wr), name=f"{self.name}.reclaim")
        return wr

    def _reclaim_send(self, region: RegisteredRegion, wr: SendWR) -> Generator:
        yield wr.completion
        if not wr.cqe.ok:
            self.failed = True
        self.send_pool.free.put(region)

    def _crypt(self, nbytes: int) -> Generator:
        """Process: one AES pass over ``nbytes`` when the encrypted
        payload path is configured; zero events when it is off."""
        if not self.config.aes_payload or nbytes <= 0:
            return
        yield from self.node.cpu.crypt(nbytes)

    def repost_recv(self, region: RegisteredRegion) -> None:
        wr = RecvWR(self.sim, list(region.segments))
        wr.pool_region = region
        try:
            self.qp.post_recv(wr)
        except QPError:
            # Connection died: the endpoint is finished, not the sim.
            self.failed = True
            return
        self._posted.append(wr)

    def next_recv(self) -> RecvWR:
        """The oldest posted receive (RC completes receives in order)."""
        if not self._posted:
            raise TransportError(f"{self.name}: receive queue empty")
        return self._posted.popleft()

    # -- chunk fetch (RDMA Read of peer-exposed chunks) -------------------
    def fetch_chunks(
        self, remote_segments: list[Segment], region: RegisteredRegion, length: int
    ) -> Generator:
        """Process: RDMA-Read ``length`` bytes of peer chunks into ``region``.

        Blocks until every read completes — the issuing thread cannot
        proceed because a subsequent Send could pass the Reads (§4.1).
        """
        telemetry = self.sim.telemetry
        tracer = telemetry.tracer if telemetry is not None else None
        span = None
        if tracer is not None:
            span = tracer.begin("rdma.read_chunks", "transport", self.node.name,
                                "rpcrdma", parent=tracer.task_span(), bytes=length)
        try:
            ops = pair_transfers(region.segments, remote_segments, length)
            wrs = []
            for local_slice, remote_seg in ops:
                # For a read, locals scatter and remote is the source; the
                # pairing helper treats the remote list as the op splitter.
                wr = RdmaReadWR(self.sim, local=local_slice, remote=remote_seg)
                if span is not None:
                    wr.tspan = span
                yield from self.node.hca.post_send(self.qp, wr)
                wrs.append(wr)
            for wr in wrs:
                yield wr.completion
                if not wr.cqe.ok:
                    raise TransportError(f"RDMA Read failed: {wr.cqe.error}")
            self.bytes_rdma_read.add(length)
        finally:
            if span is not None:
                span.end()

    def push_chunks(
        self, region: RegisteredRegion, remote_segments: list[Segment], length: int
    ) -> Generator:
        """Process: RDMA-Write ``length`` bytes of ``region`` into peer chunks.

        Writes are posted *unsignaled* and not waited for: InfiniBand
        guarantees a later Send on the same QP completes after them
        (§4.2), so the reply send carries the completion semantics.
        """
        telemetry = self.sim.telemetry
        tracer = telemetry.tracer if telemetry is not None else None
        span = None
        if tracer is not None:
            span = tracer.begin("rdma.write_chunks", "transport", self.node.name,
                                "rpcrdma", parent=tracer.task_span(), bytes=length)
        try:
            ops = pair_transfers(region.segments, remote_segments, length)
            for local_slice, remote_seg in ops:
                wr = RdmaWriteWR(self.sim, local=local_slice, remote=remote_seg,
                                 signaled=False)
                if span is not None:
                    wr.tspan = span
                yield from self.node.hca.post_send(self.qp, wr)
            self.bytes_rdma_written.add(length)
        finally:
            if span is not None:
                span.end()


class RpcRdmaClientBase(_RdmaEndpoint, RpcClientTransport):
    """Client half: marshalling, credits, XID demux, long calls, WRITE data.

    Subclasses provide the reply-direction behaviour:

    * ``_prepare_reply_resources(call, chunks, ctx)`` — what to advertise
      in the call (Read-Write: write/reply chunks; Read-Read: nothing);
    * ``_handle_reply(header, ctx)`` — how to obtain reply bulk data
      (Read-Write: already in client memory; Read-Read: RDMA-Read the
      server's chunks, then send RDMA_DONE).
    """

    design = "base"

    def __init__(self, node, qp, config, strategy, name=""):
        name = name or f"{node.name}.rpcrdma-{self.design}"
        super().__init__(node, qp, config, strategy, name)
        self.credits = CreditManager(node.sim, config.credits, name=f"{name}.credits")
        self._pending: dict[int, Event] = {}
        self._contexts: dict[int, dict] = {}
        self.calls_sent = Counter(f"{name}.calls")
        #: recovery policy, installed by the wiring layer (e.g. Cluster):
        #: a generator ``reconnector(client) -> (new_qp, peer_ready)``
        #: that redials the server.  None = fail-fast (legacy behaviour).
        self.reconnector = None
        self.retransmissions = Counter(f"{name}.retrans")
        self.reconnects = Counter(f"{name}.reconnects")
        self.calls_recovered = Counter(f"{name}.recovered")
        #: bumped on every successful reconnect so concurrent failed
        #: calls can tell "connection already renewed" from "dead".
        self._epoch = 0
        self._reconnect_done: Optional[Event] = None
        self._jitter_rng = node.rng.child(name, "backoff")
        #: mux hook: called with every lane-tagged reply header so the
        #: :class:`repro.ib.mux.QpMux` can refresh per-lane grants.
        #: None on dedicated connections — zero work on that path.
        self.lane_hook = None
        self.ready = self.sim.process(self._setup_pools(), name=f"{name}.setup")
        self._recv_fifo: deque = deque()
        self.sim.process(self._receiver(), name=f"{name}.rx")

    def _on_connection_error(self, cause: str) -> None:
        # Prompt failure detection: wake every parked call immediately
        # (the verbs async event) instead of waiting for flushed CQEs.
        self._flush_waiters()

    # -- public API ---------------------------------------------------------
    def call(self, call: RpcCall) -> Generator:
        """Issue one RPC; transparently retransmit and reconnect.

        The xid is preserved across every resend and redial, so the
        server's duplicate request cache guarantees at-most-once
        execution while the retry loop guarantees at-least-once
        delivery — together, exactly-once.
        """
        redials = 0
        while True:
            epoch = self._epoch
            try:
                return (yield from self._attempt_call(call))
            except (TransportError, QPError, RpcTimeout):
                if self.reconnector is None:
                    raise
                redials += 1
                if redials > self.config.max_reconnects:
                    raise
                if self._epoch == epoch:
                    yield from self._recover()
                self.calls_recovered.add()

    def _attempt_call(self, call: RpcCall) -> Generator:
        telemetry = self.sim.telemetry
        tracer = telemetry.tracer if telemetry is not None else None
        if tracer is None:
            return (yield from self._attempt_call_inner(call))
        span = tracer.begin("rpc.call", "rpc", self.node.name, "rpcrdma",
                            parent=tracer.task_span(), xid=call.xid)
        call.trace_id = span.trace_id
        prev = tracer.push_task(span)
        tracer.bind_xid(call.xid, span)
        try:
            return (yield from self._attempt_call_inner(call))
        finally:
            tracer.unbind_xid(call.xid, span)
            tracer.pop_task(prev)
            span.end()

    def _attempt_call_inner(self, call: RpcCall) -> Generator:
        if not self.ready.processed:
            yield self.ready
        if self.peer_ready is not None and not self.peer_ready.processed:
            yield self.peer_ready
        if self.failed:
            raise TransportError(f"{self.name}: connection failed")
        yield from self.credits.acquire()
        yield from self.node.cpu.consume(self.config.per_op_cpu_us)
        ctx: dict = {"regions": [], "call": call}
        self._contexts[call.xid] = ctx
        try:
            header = yield from self._build_call(call, ctx)
            san = self.sim.sanitizer
            if san is not None:
                san.advertise(self.node.hca.tpt.name, call.xid, header.chunks)
            waiter = Event(self.sim)
            self._pending[call.xid] = waiter
            yield from self.send_header(header)
            self.calls_sent.add()
            reply_header: RpcRdmaHeader = yield from self._await_reply(call, header, waiter)
            reply = yield from self._handle_reply(reply_header, ctx)
            return reply
        finally:
            self._contexts.pop(call.xid, None)
            self._pending.pop(call.xid, None)
            san = self.sim.sanitizer
            if san is not None:
                san.retire(self.node.hca.tpt.name, call.xid)
            for region in ctx["regions"]:
                yield from self.strategy.release(region)
            self.credits.release(ctx.get("new_grant"))

    def _await_reply(self, call: RpcCall, header: RpcRdmaHeader,
                     waiter: Event) -> Generator:
        """Wait for the reply; with a timeout configured, retransmit with
        exponential backoff + jitter, reusing the xid and the already-
        advertised chunks (the server replays into the same windows)."""
        timeout_us = self.config.reply_timeout_us
        if timeout_us is None:
            # No timer configured: zero extra events on this path.
            return (yield waiter)
        for attempt in range(self.config.max_retransmits + 1):
            yield AnyOf(self.sim, [waiter, self.sim.timeout(timeout_us)])
            if waiter.triggered:
                return waiter.value
            if attempt >= self.config.max_retransmits:
                break
            self.retransmissions.add()
            telemetry = self.sim.telemetry
            tracer = telemetry.tracer if telemetry is not None else None
            rspan = prev = None
            if tracer is not None:
                rspan = tracer.begin("rpc.retransmit", "rpc", self.node.name,
                                     "rpcrdma", parent=tracer.task_span(),
                                     xid=call.xid, attempt=attempt + 1)
                prev = tracer.push_task(rspan)
            try:
                yield from self.node.cpu.consume(self.config.per_op_cpu_us)
                yield from self.send_header(header)
            finally:
                if tracer is not None:
                    tracer.pop_task(prev)
                    rspan.end()
            timeout_us = min(timeout_us * self.config.backoff_factor,
                             self.config.max_reply_timeout_us)
            timeout_us *= 1.0 + self.config.backoff_jitter * self._jitter_rng.uniform(-1.0, 1.0)
        raise RpcTimeout(
            f"{self.name}: xid {call.xid:#x} unanswered after "
            f"{self.config.max_retransmits} retransmissions"
        )

    def _recover(self) -> Generator:
        """Redial the server: fresh QP, fresh pools, same credit ledger.

        Serialized — the first failed call performs the reconnect while
        the rest park on ``_reconnect_done`` and then retry.
        """
        if self._reconnect_done is not None:
            yield self._reconnect_done
            return
        done = self._reconnect_done = Event(self.sim)
        try:
            backoff = self.config.reconnect_backoff_us
            if backoff > 0:
                backoff *= 1.0 + self.config.backoff_jitter * self._jitter_rng.uniform(-1.0, 1.0)
                yield self.sim.timeout(backoff)
            new_qp, peer_ready = yield from self.reconnector(self)
            yield from self._teardown_pools()
            self._bind_qp(new_qp)
            self.peer_ready = peer_ready
            self.failed = False
            self.send_pool = _InlinePool(self.node, self.config.credits,
                                         self.config.inline_threshold,
                                         f"{self.name}.sendpool")
            self.recv_pool = _InlinePool(self.node, self.config.credits,
                                         self.config.inline_threshold,
                                         f"{self.name}.recvpool")
            self._posted = deque()
            # Re-run the CM handshake: re-register buffers through the
            # active strategy, pre-post receives, wait for the peer.
            self.ready = self.sim.process(self._setup_pools(),
                                          name=f"{self.name}.setup")
            yield self.ready
            if self.peer_ready is not None and not self.peer_ready.processed:
                yield self.peer_ready
            self.sim.process(self._receiver(), name=f"{self.name}.rx")
            self._epoch += 1
            self.reconnects.add()
            telemetry = self.sim.telemetry
            if telemetry is not None and telemetry.tracer is not None:
                telemetry.tracer.instant("rpc.redial", "rpc", self.node.name,
                                         "rpcrdma", epoch=self._epoch)
        finally:
            self._reconnect_done = None
            done.succeed()

    # -- call marshalling ---------------------------------------------------
    def _build_call(self, call: RpcCall, ctx: dict) -> Generator:
        chunks = ChunkList()
        rpc_bytes = call.encode()
        inline_payload: Optional[bytes] = None
        payload = call.write_payload
        if payload is not None:
            if 4 + len(rpc_bytes) + len(payload) + 64 <= self.config.inline_threshold:
                inline_payload = payload  # small write rides inline
            else:
                yield from self._add_write_data_chunks(call, chunks, ctx)
        yield from self._prepare_reply_resources(call, chunks, ctx)
        message = frame_message(rpc_bytes, inline_payload)
        header = RpcRdmaHeader(
            xid=call.xid,
            credits=self.config.credits,
            mtype=MessageType.RDMA_MSG,
            chunks=chunks,
            rpc_message=message,
            lane=call.lane,
            lane_seq=call.lane_seq,
        )
        if header.wire_size > self.config.inline_threshold:
            # RPC long call: body moves as position-0 read chunks.
            region = yield from self.strategy.acquire(len(message), AccessFlags.REMOTE_READ)
            yield from self.node.cpu.copy(len(message))
            yield from self._crypt(len(message))
            region.fill(message)
            ctx["regions"].append(region)
            chunks.read_chunks = [
                ReadChunk(position=0, segment=seg) for seg in region.segments
            ] + chunks.read_chunks
            header = RpcRdmaHeader(
                xid=call.xid,
                credits=self.config.credits,
                mtype=MessageType.RDMA_NOMSG,
                chunks=chunks,
                rpc_message=b"",
                lane=call.lane,
                lane_seq=call.lane_seq,
            )
        return header

    def _add_write_data_chunks(self, call: RpcCall, chunks: ChunkList, ctx: dict) -> Generator:
        """Expose the NFS WRITE payload for server RDMA Reads.

        Identical in both designs (§4: "The NFS Procedure WRITE is
        similar in both the Read-Read and Read-Write based designs").
        """
        payload = call.write_payload
        if call.write_buffer is not None:
            # Zero-copy: register exactly the payload extent in place.
            region = yield from self.strategy.wrap(
                call.write_buffer, AccessFlags.REMOTE_READ,
                addr=call.write_buffer.addr,
                length=min(len(payload), call.write_buffer.length),
            )
        else:
            region = yield from self.strategy.acquire(len(payload), AccessFlags.REMOTE_READ)
            yield from self.node.cpu.copy(len(payload))
            region.fill(payload)
        yield from self._crypt(len(payload))
        ctx["regions"].append(region)
        chunks.read_chunks.extend(
            ReadChunk(position=DATA_CHUNK_POSITION, segment=seg)
            for seg in slice_segments(region.segments, 0, len(payload))
        )

    # -- design-specific hooks ---------------------------------------------
    def _prepare_reply_resources(self, call, chunks, ctx) -> Generator:
        raise NotImplementedError
        yield  # pragma: no cover

    def _handle_reply(self, header: RpcRdmaHeader, ctx: dict) -> Generator:
        raise NotImplementedError
        yield  # pragma: no cover

    # -- receive path ---------------------------------------------------------
    def _receiver(self) -> Generator:
        yield self.ready
        qp = self.qp
        while True:
            if self.qp is not qp:
                return  # superseded by a reconnect; the new receiver owns state
            if self.failed or not self._posted:
                self.failed = True
                self._flush_waiters()
                return
            wr = self.next_recv()
            yield wr.completion
            if self.qp is not qp:
                return
            if not wr.cqe.ok:
                self.failed = True
                self._flush_waiters()
                return
            header = RpcRdmaHeader.decode(wr.received)
            # Repost a fresh inline receive in this buffer's place.
            self.repost_recv(wr.pool_region)
            waiter = self._pending.pop(header.xid, None)
            if waiter is None:
                continue  # stale reply for an aborted call
            ctx = self._contexts.get(header.xid)
            if ctx is not None:
                ctx["new_grant"] = header.credits
            if header.lane is not None and self.lane_hook is not None:
                self.lane_hook(header)
            waiter.succeed(header)

    def _flush_waiters(self) -> None:
        for xid, waiter in list(self._pending.items()):
            waiter.fail(TransportError(f"{self.name}: connection failed")).defused()
            del self._pending[xid]


class RpcRdmaServerBase(_RdmaEndpoint, RpcServerTransport):
    """Server half: receive path, long-call fetch, WRITE-data fetch.

    Subclasses implement ``_respond(call_ctx, reply)`` — the reply path
    is where the two designs genuinely differ.
    """

    design = "base"

    def __init__(self, node, qp, config, strategy, name="", credit_policy=None,
                 srq=None, policy=None):
        name = name or f"{node.name}.rpcrdmad-{self.design}"
        super().__init__(node, qp, config, strategy, name, srq=srq)
        self.server: Optional[RpcServer] = None
        self.calls_received = Counter(f"{name}.calls")
        #: server-side credit policy (§7 future work); defaults to the
        #: static grant from the transport config.
        self.credit_policy = credit_policy
        if credit_policy is not None:
            credit_policy.register_connection(qp.qp_num)
        #: security policy (misbehavior scoring / throttle / quarantine);
        #: None keeps every hardening hook off the hot path.
        self.policy = policy
        self.malformed_received = Counter(f"{name}.malformed")
        #: per-lane ledger, created lazily on the first version-2 call;
        #: stays None (zero cost) on dedicated connections.
        self.lanes: Optional[LaneLedger] = None
        self.ready = self.sim.process(self._setup_pools(), name=f"{name}.setup")

    @property
    def client_id(self) -> str:
        """The node name of the client this transport serves."""
        name = self.qp.peer.hca.name
        return name.split(".")[0] if "." in name else name

    def grant(self) -> int:
        """Credits field for the next reply (policy- or config-driven)."""
        if self.credit_policy is None:
            return self.config.credits
        backlog = self.server.backlog if self.server is not None else 0
        return self.credit_policy.grant_for(self.qp.qp_num, backlog)

    def attach(self, server: RpcServer) -> None:
        if self.server is not None:
            raise RuntimeError("transport already attached")
        self.server = server
        self.sim.process(self._receiver(), name=f"{self.name}.rx")

    def _on_connection_error(self, cause: str) -> None:
        # Close the SRQ inbox promptly so in-flight deliveries recycle
        # into the pool instead of parking on a dead connection.
        if self.srq is not None:
            self.srq.detach(self.qp)

    # -- receive path ---------------------------------------------------------
    def _receiver(self) -> Generator:
        yield self.ready
        if self.srq is not None:
            yield from self._srq_receiver()
            return
        while True:
            if self.failed or not self._posted:
                self.failed = True
                return
            wr = self.next_recv()
            yield wr.completion
            if not wr.cqe.ok:
                self.failed = True
                return
            raw = wr.received
            self.repost_recv(wr.pool_region)
            try:
                header = RpcRdmaHeader.decode(raw)
            except XdrError:
                # Garbage frame (flooding/fuzzing client): drop it, score
                # the sender, keep the receive loop alive.
                self.malformed_received.add()
                if self.policy is not None:
                    self.policy.record_malformed(self.client_id)
                continue
            # Handle each message off the receive loop so long fetches
            # don't head-of-line-block subsequent requests; a connection
            # dying mid-fetch fails that request, not the server.
            self.sim.process(self._handle_message_safely(header),
                             name=f"{self.name}.req")

    def _srq_receiver(self) -> Generator:
        """Receive loop in shared-pool mode: drain this QP's inbox.

        The buffer recycles into the pool the moment the header is
        decoded (the message body is inline by construction), so pool
        residency per request is the wire+decode time only — that is
        what lets one small pool serve hundreds of mounts.
        """
        inbox = self._srq_inbox
        while True:
            if self.failed:
                return
            wr = yield inbox.get()
            if wr is self.srq.CLOSED:
                return
            if not wr.cqe.ok:
                self.srq.recycle(wr)
                self.failed = True
                return
            raw = wr.received
            try:
                header = RpcRdmaHeader.decode(raw)
            except XdrError:
                self.srq.recycle(wr)
                self.malformed_received.add()
                if self.policy is not None:
                    self.policy.record_malformed(self.client_id)
                continue
            self.srq.recycle(wr)
            self.sim.process(self._handle_message_safely(header),
                             name=f"{self.name}.req")

    def _handle_message_safely(self, header: RpcRdmaHeader) -> Generator:
        try:
            yield from self._handle_message(header)
        except (QPError, TransportError):
            self.failed = True

    def _handle_message(self, header: RpcRdmaHeader) -> Generator:
        if header.mtype is MessageType.RDMA_DONE:
            yield from self._handle_done(header)
            return
        telemetry = self.sim.telemetry
        tracer = telemetry.tracer if telemetry is not None else None
        if tracer is None:
            yield from self._handle_message_inner(header)
            return
        # Parent onto the client's in-flight call span (xid binding is
        # read-only here: the client owns the entry).
        span = tracer.begin("rpc.receive", "transport", self.node.name,
                            "rpcrdma", parent=tracer.xid_span(header.xid),
                            xid=header.xid)
        prev = tracer.push_task(span)
        try:
            yield from self._handle_message_inner(header)
        finally:
            tracer.pop_task(prev)
            span.end()

    def _handle_message_inner(self, header: RpcRdmaHeader) -> Generator:
        if self.policy is not None:
            # Throttled clients wait out their penalty before dispatch.
            penalty = self.policy.throttle_penalty_us(self.client_id)
            if penalty > 0:
                yield self.sim.timeout(penalty)
        yield from self.node.cpu.consume(self.config.per_op_cpu_us)
        if header.lane is not None:
            if self.lanes is None:
                self.lanes = LaneLedger(f"{self.name}.lanes")
            self.lanes.on_call(header.lane, header.lane_seq)
        ctx: dict = {"regions": [], "header": header}
        # 1. Obtain the RPC message (inline or long call).
        if header.mtype is MessageType.RDMA_NOMSG:
            body_chunks = header.chunks.read_chunks_at(0)
            length = sum(c.length for c in body_chunks)
            region = yield from self.strategy.acquire(length, AccessFlags.LOCAL_WRITE)
            yield from self.fetch_chunks([c.segment for c in body_chunks], region, length)
            yield from self._crypt(length)
            message = region.peek(length)
            yield from self.strategy.release(region)
        else:
            message = header.rpc_message
        rpc_header, inline_payload = unframe_message(message)
        call = RpcCall.decode(rpc_header)
        call.write_payload = inline_payload
        telemetry = self.sim.telemetry
        if telemetry is not None and telemetry.tracer is not None:
            bound = telemetry.tracer.xid_span(call.xid)
            if bound is not None:
                call.trace_id = bound.trace_id
        # 2. Fetch NFS WRITE data chunks (both designs: server RDMA Read,
        #    synchronous — the worker blocks inside fetch_chunks).
        data_chunks = header.chunks.read_chunks_at(DATA_CHUNK_POSITION)
        if data_chunks:
            length = sum(c.length for c in data_chunks)
            region = yield from self.strategy.acquire(length, AccessFlags.LOCAL_WRITE)
            ctx["regions"].append(region)
            yield from self.fetch_chunks([c.segment for c in data_chunks], region, length)
            yield from self._crypt(length)
            call.write_payload = region.peek(length)
        self.calls_received.add()
        if self.policy is not None:
            call.client_id = self.client_id
        assert self.server is not None
        # Blocking submit: a full bounded run queue stalls this request
        # process (not the receive loop), which withholds the reply and
        # its credit grant — backpressure reaches the client in-band.
        yield from self.server.submit_process(call, self._responder(ctx))

    def _handle_done(self, header: RpcRdmaHeader) -> Generator:
        """Read-Read only; the base treats it as a protocol error."""
        raise TransportError(f"{self.name}: unexpected RDMA_DONE")
        # The unreachable bare yield only marks this handler as a
        # generator so `yield from` accepts it.
        yield  # pragma: no cover # lint-sim: allow[process-yield]

    def _responder(self, ctx: dict):
        def respond(reply: RpcReply) -> Generator:
            telemetry = self.node.sim.telemetry
            tracer = telemetry.tracer if telemetry is not None else None
            span = prev = None
            if tracer is not None:
                # Reply path (chunk pushes + reply send) as one span
                # nested under the dispatch span of the serving worker.
                span = tracer.begin("rpc.reply", "transport", self.node.name,
                                    "rpcrdma", parent=tracer.task_span(),
                                    xid=reply.xid)
                prev = tracer.push_task(span)
            try:
                yield from self._respond(ctx, reply)
            except (QPError, TransportError):
                # The client's connection died while we replied: drop
                # the reply, keep the worker; resources still release.
                self.failed = True
            finally:
                if tracer is not None:
                    tracer.pop_task(prev)
                    span.end()
                lane = ctx["header"].lane
                if lane is not None and self.lanes is not None:
                    self.lanes.on_reply(lane)
                for region in ctx["regions"]:
                    yield from self.strategy.release(region)

        return respond

    def _lane_reply_fields(self, ctx: dict) -> dict:
        """Version-2 header fields echoing the call's lane; empty for
        dedicated connections, which keeps replies at wire version 1."""
        lane = ctx["header"].lane
        if lane is None or self.lanes is None:
            return {}
        return {"lane": lane, "lane_seq": ctx["header"].lane_seq,
                "lane_credits": self.lanes.grant_for(lane, self.grant())}

    def _respond(self, ctx: dict, reply: RpcReply) -> Generator:
        raise NotImplementedError
        yield  # pragma: no cover

    def disconnect(self) -> Generator:
        """Process: tear the connection down and reclaim every resource.

        This is the operational defense against misbehaving clients:
        whatever a client managed to pin (§4.1's withheld-DONE attack)
        comes back the moment the server drops the connection.
        """
        if self.credit_policy is not None:
            self.credit_policy.unregister_connection(self.qp.qp_num)
        self.qp.enter_error("server-initiated disconnect")
        # A CM disconnect reaches the peer too: error the client's QP so
        # its pending calls flush instead of waiting on replies that can
        # never arrive (a quarantine eviction must not strand the very
        # client it evicts — or any honest call it had in flight).
        peer = self.qp.peer
        if peer is not None and peer.state is not QPState.ERROR:
            peer.enter_error("server-initiated disconnect (remote)")
        self.failed = True
        if self.srq is not None:
            self.srq.detach(self.qp)
        yield from self._reclaim_on_disconnect()

    def _reclaim_on_disconnect(self) -> Generator:
        """Subclass hook: release design-specific pinned state."""
        return
        yield  # pragma: no cover
